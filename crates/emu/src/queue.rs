//! Time-ordered event calendar.

use livenet_types::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic event calendar.
///
/// Events scheduled for the same instant pop in insertion order (FIFO
/// stability), which keeps runs reproducible regardless of heap internals.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventSlot<E>)>>,
    seq: u64,
    now: SimTime,
}

/// Wrapper that excludes the payload from ordering.
#[derive(Debug)]
struct EventSlot<E>(E);

impl<E> PartialEq for EventSlot<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventSlot<E> {}
impl<E> PartialOrd for EventSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventSlot<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty calendar at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; the event is clamped to
    /// `now` so time never goes backwards, and debug builds assert.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past: {at} < {}", self.now);
        let at = at.max(self.now);
        self.heap.push(Reverse((at, self.seq, EventSlot(event))));
        self.seq += 1;
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Pop the next event, advancing `now` to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((t, _, EventSlot(e))) = self.heap.pop()?;
        self.now = t;
        Some((t, e))
    }

    /// Pop the next event only if it fires at or before `until`.
    pub fn pop_until(&mut self, until: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= until => self.pop(),
            _ => None,
        }
    }

    /// Advance `now` to `t` without popping (forward only; must not skip
    /// past a pending event).
    pub fn advance_to(&mut self, t: SimTime) {
        debug_assert!(
            self.peek_time().is_none_or(|p| p >= t),
            "advance_to({t}) would skip a pending event"
        );
        self.now = self.now.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livenet_types::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        assert_eq!(q.pop_until(SimTime::from_millis(15)).unwrap().1, 1);
        assert!(q.pop_until(SimTime::from_millis(15)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn schedule_in_past_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.pop();
        // now = 10ms; in release mode this clamps rather than panicking.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.schedule(SimTime::from_millis(5), 2);
        }));
        if r.is_ok() {
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, SimTime::from_millis(10));
        }
        let _ = q.now() + SimDuration::ZERO;
    }
}
