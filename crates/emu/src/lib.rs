//! Deterministic discrete-event network emulator.
//!
//! The paper evaluates LiveNet on Alibaba's production CDN; this crate is
//! the substitute substrate (see DESIGN.md §1): a seedable, deterministic
//! emulator in which hosts exchange datagrams over links that model
//! propagation delay, serialization at a finite bandwidth, a finite queue
//! (drop-tail) and random loss (Bernoulli or Gilbert–Elliott).
//!
//! Two layers are exposed:
//!
//! * [`EventQueue`] — a bare event calendar (time-ordered, FIFO-stable),
//!   reused by the fleet-level simulator in `livenet-sim`;
//! * [`NetSim`] — the network emulator proper, which owns a set of [`Host`]
//!   state machines and delivers datagrams and timers to them.
//!
//! Hosts are sans-I/O: they receive `(now, event)` and emit [`Action`]s; the
//! engine performs the actions. This is exactly the structure the tokio
//! transport reuses with real sockets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod link;
pub mod queue;
pub mod sim;

pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use link::{LinkConfig, LinkStats, LossModel};
pub use queue::EventQueue;
pub use sim::{Action, Ctx, Datagram, Host, NetSim, TimerKey};
