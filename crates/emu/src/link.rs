//! Link models: delay, bandwidth, queueing and loss.

use livenet_types::{Bandwidth, DetRng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Random-loss model for a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossModel {
    /// No random loss (queue overflow can still drop).
    None,
    /// Independent per-packet loss with probability `p`.
    Bernoulli {
        /// Loss probability in [0, 1].
        p: f64,
    },
    /// Two-state Gilbert–Elliott bursty loss.
    GilbertElliott {
        /// P(good → bad) per packet.
        p_gb: f64,
        /// P(bad → good) per packet.
        p_bg: f64,
        /// Loss probability in the good state.
        loss_good: f64,
        /// Loss probability in the bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// Long-run average loss probability of the model.
    pub fn mean_loss(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { p } => p,
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
            } => {
                // Stationary distribution of the 2-state chain.
                let denom = p_gb + p_bg;
                if denom == 0.0 {
                    return loss_good;
                }
                let pi_bad = p_gb / denom;
                loss_good * (1.0 - pi_bad) + loss_bad * pi_bad
            }
        }
    }
}

/// Static configuration of a directed link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Serialization bandwidth.
    pub bandwidth: Bandwidth,
    /// Maximum queued bytes awaiting serialization (drop-tail beyond this).
    pub queue_bytes: usize,
    /// Random-loss model.
    pub loss: LossModel,
    /// Uniform jitter added to each packet's delivery, `[0, jitter]`.
    pub jitter: SimDuration,
}

impl LinkConfig {
    /// A sensible backbone-style default: 10 ms, 1 Gbps, 2 MB queue, lossless.
    pub fn backbone(delay: SimDuration) -> Self {
        LinkConfig {
            delay,
            bandwidth: Bandwidth::from_gbps(1),
            queue_bytes: 2 * 1024 * 1024,
            loss: LossModel::None,
            jitter: SimDuration::ZERO,
        }
    }

    /// Round-trip time of a symmetric link pair with this config.
    pub fn rtt(&self) -> SimDuration {
        self.delay * 2
    }
}

/// Per-link transmission counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets accepted and delivered (scheduled for arrival).
    pub delivered: u64,
    /// Packets dropped by the random-loss model.
    pub lost_random: u64,
    /// Packets dropped because the queue was full.
    pub lost_queue: u64,
    /// Packets dropped because the link was administratively down
    /// (fault injection).
    pub lost_down: u64,
    /// Total payload bytes delivered.
    pub bytes: u64,
}

impl LinkStats {
    /// Total send attempts.
    pub fn attempts(&self) -> u64 {
        self.delivered + self.lost_random + self.lost_queue + self.lost_down
    }

    /// Observed loss rate over all attempts.
    pub fn loss_rate(&self) -> f64 {
        let a = self.attempts();
        if a == 0 {
            0.0
        } else {
            (self.lost_random + self.lost_queue + self.lost_down) as f64 / a as f64
        }
    }
}

/// Runtime state of a directed link inside the emulator.
#[derive(Debug, Clone)]
pub struct LinkState {
    /// Configuration (mutable: experiments vary loss/bandwidth over time).
    pub config: LinkConfig,
    /// When the transmitter finishes serializing the last accepted packet.
    pub busy_until: SimTime,
    /// Gilbert–Elliott state: true = bad.
    pub ge_bad: bool,
    /// Administrative liveness: a down link drops everything offered.
    pub up: bool,
    /// Loss model saved across a fault-injected loss-burst episode, so
    /// the burst's end can restore the steady-state model.
    pub burst_base: Option<LossModel>,
    /// Counters.
    pub stats: LinkStats,
}

/// Outcome of offering one packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Packet will arrive at the far end at the given time.
    Deliver {
        /// Arrival instant at the remote host.
        arrive_at: SimTime,
    },
    /// Dropped by the random loss model.
    LostRandom,
    /// Dropped because the serialization queue was full.
    LostQueue,
    /// Dropped because the link is administratively down.
    LostDown,
}

impl LinkState {
    /// New idle link.
    pub fn new(config: LinkConfig) -> Self {
        LinkState {
            config,
            busy_until: SimTime::ZERO,
            ge_bad: false,
            up: true,
            burst_base: None,
            stats: LinkStats::default(),
        }
    }

    /// Offer a packet of `bytes` bytes at time `now`.
    pub fn send(&mut self, now: SimTime, bytes: usize, rng: &mut DetRng) -> SendOutcome {
        // A down link blackholes everything before any RNG is consumed,
        // so an outage window never perturbs the loss-model stream.
        if !self.up {
            self.stats.lost_down += 1;
            return SendOutcome::LostDown;
        }
        // Random loss first (models the physical path, not our queue).
        let lost = match self.config.loss {
            LossModel::None => false,
            LossModel::Bernoulli { p } => rng.chance(p),
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
            } => {
                // Advance the chain one step per packet.
                if self.ge_bad {
                    if rng.chance(p_bg) {
                        self.ge_bad = false;
                    }
                } else if rng.chance(p_gb) {
                    self.ge_bad = true;
                }
                rng.chance(if self.ge_bad { loss_bad } else { loss_good })
            }
        };
        if lost {
            self.stats.lost_random += 1;
            return SendOutcome::LostRandom;
        }

        // Queue admission: bytes currently awaiting serialization.
        let backlog_time = self.busy_until.saturating_since(now);
        let backlog_bytes = self.config.bandwidth.bytes_in(backlog_time);
        if backlog_bytes as usize > self.config.queue_bytes {
            self.stats.lost_queue += 1;
            return SendOutcome::LostQueue;
        }

        let tx = self.config.bandwidth.transmission_time(bytes);
        let start = self.busy_until.max(now);
        self.busy_until = start + tx;
        let jitter = if self.config.jitter > SimDuration::ZERO {
            SimDuration::from_nanos(rng.range_u64(0, self.config.jitter.as_nanos().max(1)))
        } else {
            SimDuration::ZERO
        };
        let arrive_at = self.busy_until + self.config.delay + jitter;
        self.stats.delivered += 1;
        self.stats.bytes += bytes as u64;
        SendOutcome::Deliver { arrive_at }
    }

    /// Instantaneous utilization estimate: fraction of the last `window`
    /// that the transmitter will be busy for, given its current backlog.
    pub fn utilization(&self, now: SimTime, window: SimDuration) -> f64 {
        let backlog = self.busy_until.saturating_since(now);
        (backlog.as_nanos() as f64 / window.as_nanos().max(1) as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LinkConfig {
        LinkConfig {
            delay: SimDuration::from_millis(10),
            bandwidth: Bandwidth::from_mbps(8), // 1 byte/us
            queue_bytes: 10_000,
            loss: LossModel::None,
            jitter: SimDuration::ZERO,
        }
    }

    #[test]
    fn delivery_time_includes_tx_and_prop() {
        let mut link = LinkState::new(cfg());
        let mut rng = DetRng::seed(1);
        // 1000 bytes at 8 Mbps = 1 ms tx; +10 ms prop = 11 ms.
        match link.send(SimTime::ZERO, 1000, &mut rng) {
            SendOutcome::Deliver { arrive_at } => {
                assert_eq!(arrive_at, SimTime::from_millis(11));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn serialization_is_sequential() {
        let mut link = LinkState::new(cfg());
        let mut rng = DetRng::seed(1);
        let a = link.send(SimTime::ZERO, 1000, &mut rng);
        let b = link.send(SimTime::ZERO, 1000, &mut rng);
        let (SendOutcome::Deliver { arrive_at: t1 }, SendOutcome::Deliver { arrive_at: t2 }) =
            (a, b)
        else {
            panic!("expected deliveries");
        };
        assert_eq!(t2 - t1, SimDuration::from_millis(1)); // back-to-back
    }

    #[test]
    fn queue_overflow_drops() {
        let mut link = LinkState::new(LinkConfig {
            queue_bytes: 2_000,
            ..cfg()
        });
        let mut rng = DetRng::seed(1);
        let mut dropped = 0;
        for _ in 0..10 {
            if matches!(
                link.send(SimTime::ZERO, 1_000, &mut rng),
                SendOutcome::LostQueue
            ) {
                dropped += 1;
            }
        }
        assert!(dropped > 0);
        assert_eq!(link.stats.lost_queue, dropped);
        // The first packets were accepted.
        assert!(link.stats.delivered >= 2);
    }

    #[test]
    fn bernoulli_loss_rate_matches() {
        let mut link = LinkState::new(LinkConfig {
            loss: LossModel::Bernoulli { p: 0.1 },
            queue_bytes: usize::MAX,
            ..cfg()
        });
        let mut rng = DetRng::seed(7);
        let mut now = SimTime::ZERO;
        for _ in 0..20_000 {
            link.send(now, 100, &mut rng);
            now += SimDuration::from_millis(1);
        }
        let rate = link.stats.loss_rate();
        assert!((rate - 0.1).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn gilbert_elliott_is_bursty_but_mean_holds() {
        let model = LossModel::GilbertElliott {
            p_gb: 0.01,
            p_bg: 0.2,
            loss_good: 0.0,
            loss_bad: 0.5,
        };
        // mean = pi_bad * 0.5; pi_bad = 0.01/0.21 ≈ 0.0476 → ≈ 0.0238.
        assert!((model.mean_loss() - 0.0238).abs() < 0.001);
        let mut link = LinkState::new(LinkConfig {
            loss: model,
            queue_bytes: usize::MAX,
            ..cfg()
        });
        let mut rng = DetRng::seed(3);
        let mut now = SimTime::ZERO;
        for _ in 0..100_000 {
            link.send(now, 100, &mut rng);
            now += SimDuration::from_micros(100);
        }
        let rate = link.stats.loss_rate();
        assert!((rate - model.mean_loss()).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn utilization_reflects_backlog() {
        let mut link = LinkState::new(cfg());
        let mut rng = DetRng::seed(1);
        assert_eq!(link.utilization(SimTime::ZERO, SimDuration::from_millis(10)), 0.0);
        // Queue 5 ms of serialization work.
        for _ in 0..5 {
            link.send(SimTime::ZERO, 1_000, &mut rng);
        }
        let u = link.utilization(SimTime::ZERO, SimDuration::from_millis(10));
        assert!((u - 0.5).abs() < 0.01, "u={u}");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut link = LinkState::new(LinkConfig {
                loss: LossModel::Bernoulli { p: 0.05 },
                ..cfg()
            });
            let mut rng = DetRng::seed(42);
            (0..1000)
                .map(|i| {
                    matches!(
                        link.send(SimTime::from_millis(i), 500, &mut rng),
                        SendOutcome::Deliver { .. }
                    )
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(), run());
    }
}
