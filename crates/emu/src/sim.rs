//! The network emulator proper: hosts, datagram delivery, timers.

use crate::fault::{FaultKind, FaultPlan};
use crate::link::{LinkConfig, LinkState, LinkStats, SendOutcome};
use crate::queue::EventQueue;
use bytes::Bytes;
use livenet_telemetry::{ids, MetricSink, Snapshot, TelemetryHub, QUEUE_DEPTH_BOUNDS};
use livenet_types::{DetRng, NodeId, SimDuration, SimTime};
use std::collections::{BTreeSet, HashMap};

/// Nominal packet size used to express link backlog as a queue depth.
const MTU_BYTES: u64 = 1500;

/// An opaque timer key chosen by the host; redelivered on expiry.
pub type TimerKey = u64;

/// A datagram in flight or delivered.
#[derive(Debug, Clone)]
pub struct Datagram {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload bytes (RTP or RTCP wire format in the LiveNet data plane).
    pub payload: Bytes,
}

/// Actions a host can request from the engine.
#[derive(Debug, Clone)]
pub enum Action {
    /// Send a datagram over the direct link to `to` (must exist).
    Send {
        /// Destination host.
        to: NodeId,
        /// Payload.
        payload: Bytes,
    },
    /// Fire `Host::on_timer(key)` at absolute time `at`.
    SetTimer {
        /// Expiry instant.
        at: SimTime,
        /// Key passed back on expiry.
        key: TimerKey,
    },
}

/// Execution context handed to host callbacks.
///
/// Collects requested actions; the engine applies them after the callback
/// returns (avoiding re-entrancy).
#[derive(Debug)]
pub struct Ctx {
    now: SimTime,
    actions: Vec<Action>,
}

impl Ctx {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Queue a datagram for transmission.
    pub fn send(&mut self, to: NodeId, payload: Bytes) {
        self.actions.push(Action::Send { to, payload });
    }

    /// Request a timer callback at absolute time `at`.
    pub fn set_timer_at(&mut self, at: SimTime, key: TimerKey) {
        self.actions.push(Action::SetTimer { at, key });
    }

    /// Request a timer callback `after` from now.
    pub fn set_timer_after(&mut self, after: SimDuration, key: TimerKey) {
        let at = self.now + after;
        self.set_timer_at(at, key);
    }
}

/// A sans-I/O host state machine living inside the emulator.
pub trait Host {
    /// A datagram arrived.
    fn on_datagram(&mut self, ctx: &mut Ctx, from: NodeId, payload: Bytes);
    /// A timer set via [`Ctx::set_timer_at`] expired.
    fn on_timer(&mut self, ctx: &mut Ctx, key: TimerKey);
    /// Called once when the simulation starts, to arm initial timers.
    fn on_start(&mut self, _ctx: &mut Ctx) {}
    /// The host's process crashed (fault injection): drop volatile state.
    /// No `Ctx` — a dead process sends nothing.
    fn on_crash(&mut self) {}
    /// The host restarts after a crash with its volatile state already
    /// cleared by [`Host::on_crash`]. Defaults to re-running start-up.
    fn on_restart(&mut self, ctx: &mut Ctx) {
        self.on_start(ctx);
    }
}

#[derive(Debug)]
enum Event {
    Arrival(Datagram),
    /// Timer with the owner's crash epoch at scheduling time: timers armed
    /// before a crash must not fire after the restart.
    Timer(NodeId, TimerKey, u64),
    Fault(FaultKind),
}

/// The deterministic network emulator.
pub struct NetSim<H: Host> {
    hosts: HashMap<NodeId, H>,
    links: HashMap<(NodeId, NodeId), LinkState>,
    queue: EventQueue<Event>,
    rng: DetRng,
    started: bool,
    /// Nodes currently crashed by fault injection.
    down: BTreeSet<NodeId>,
    /// Per-node crash epoch; bumping it cancels pre-crash timers.
    epochs: HashMap<NodeId, u64>,
    /// Count of sends addressed to nodes with no configured link (dropped).
    pub no_route_drops: u64,
    /// Count of datagrams blackholed at a crashed host.
    pub fault_drops: u64,
    /// Event-loop telemetry: send outcomes, queue depth, fault episodes.
    telemetry: TelemetryHub,
}

impl<H: Host> NetSim<H> {
    /// New emulator with the given RNG seed (drives all loss and jitter).
    pub fn new(seed: u64) -> Self {
        NetSim {
            hosts: HashMap::new(),
            links: HashMap::new(),
            queue: EventQueue::new(),
            rng: DetRng::seed(seed).fork("netsim"),
            started: false,
            down: BTreeSet::new(),
            epochs: HashMap::new(),
            no_route_drops: 0,
            fault_drops: 0,
            telemetry: TelemetryHub::new(),
        }
    }

    /// The emulator's telemetry hub (the consumer-node-log analogue:
    /// per-link send outcomes, queue depth and fault episodes).
    pub fn telemetry(&self) -> &TelemetryHub {
        &self.telemetry
    }

    /// Freeze current telemetry into a canonical [`Snapshot`].
    pub fn telemetry_snapshot(&self) -> Snapshot {
        self.telemetry.snapshot()
    }

    /// Register a host.
    pub fn add_host(&mut self, id: NodeId, host: H) {
        let prev = self.hosts.insert(id, host);
        assert!(prev.is_none(), "duplicate host {id}");
    }

    /// Install a directed link.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, config: LinkConfig) {
        self.links.insert((from, to), LinkState::new(config));
    }

    /// Install a symmetric link pair.
    pub fn add_duplex(&mut self, a: NodeId, b: NodeId, config: LinkConfig) {
        self.add_link(a, b, config);
        self.add_link(b, a, config);
    }

    /// Mutate a link's configuration mid-run (diurnal loss sweeps etc.).
    pub fn link_config_mut(&mut self, from: NodeId, to: NodeId) -> Option<&mut LinkConfig> {
        self.links.get_mut(&(from, to)).map(|l| &mut l.config)
    }

    /// Read a link's counters.
    pub fn link_stats(&self, from: NodeId, to: NodeId) -> Option<LinkStats> {
        self.links.get(&(from, to)).map(|l| l.stats)
    }

    /// Aggregate counters over all links.
    pub fn total_link_stats(&self) -> LinkStats {
        let mut total = LinkStats::default();
        for l in self.links.values() {
            total.delivered += l.stats.delivered;
            total.lost_random += l.stats.lost_random;
            total.lost_queue += l.stats.lost_queue;
            total.bytes += l.stats.bytes;
        }
        total
    }

    /// Immutable access to a host.
    pub fn host(&self, id: NodeId) -> Option<&H> {
        self.hosts.get(&id)
    }

    /// Mutable access to a host (for injecting external requests between
    /// steps, e.g. a viewer arrival driven by the workload generator).
    pub fn host_mut(&mut self, id: NodeId) -> Option<&mut H> {
        self.hosts.get_mut(&id)
    }

    /// Remove a host from the simulation, returning it. Events addressed
    /// to it after removal are silently discarded.
    pub fn remove_host(&mut self, id: NodeId) -> Option<H> {
        self.hosts.remove(&id)
    }

    /// Schedule one fault for execution at `at`.
    pub fn schedule_fault(&mut self, at: SimTime, kind: FaultKind) {
        self.queue.schedule(at, Event::Fault(kind));
    }

    /// Schedule every event of a fault plan.
    pub fn schedule_fault_plan(&mut self, plan: &FaultPlan) {
        for ev in plan.events() {
            self.schedule_fault(ev.at, ev.kind);
        }
    }

    /// Whether a node is currently crashed by fault injection.
    pub fn node_is_down(&self, id: NodeId) -> bool {
        self.down.contains(&id)
    }

    /// Whether a directed link is administratively up (true when absent
    /// links are queried returns false).
    pub fn link_is_up(&self, from: NodeId, to: NodeId) -> bool {
        self.links.get(&(from, to)).is_some_and(|l| l.up)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Invoke a closure on a host with a [`Ctx`], applying resulting actions.
    /// Used to inject external stimuli (client requests) deterministically.
    /// Returns `None` for unknown hosts and for hosts currently crashed by
    /// fault injection (a dead process accepts no stimuli).
    pub fn with_host<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut H, &mut Ctx) -> R,
    ) -> Option<R> {
        if self.down.contains(&id) {
            return None;
        }
        let mut ctx = Ctx {
            now: self.queue.now(),
            actions: Vec::new(),
        };
        let host = self.hosts.get_mut(&id)?;
        let r = f(host, &mut ctx);
        self.apply_actions(id, ctx.actions);
        Some(r)
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let ids: Vec<NodeId> = self.hosts.keys().copied().collect();
        for id in ids {
            let mut ctx = Ctx {
                now: self.queue.now(),
                actions: Vec::new(),
            };
            if let Some(h) = self.hosts.get_mut(&id) {
                h.on_start(&mut ctx);
            }
            self.apply_actions(id, ctx.actions);
        }
    }

    fn apply_actions(&mut self, from: NodeId, actions: Vec<Action>) {
        let now = self.queue.now();
        for action in actions {
            match action {
                Action::Send { to, payload } => {
                    let Some(link) = self.links.get_mut(&(from, to)) else {
                        self.no_route_drops += 1;
                        self.telemetry.incr(ids::EMU_NO_ROUTE);
                        continue;
                    };
                    let backlog_pkts = link
                        .config
                        .bandwidth
                        .bytes_in(link.busy_until.saturating_since(now))
                        / MTU_BYTES;
                    self.telemetry.observe_with(
                        ids::EMU_QUEUE_DEPTH,
                        QUEUE_DEPTH_BOUNDS,
                        backlog_pkts as f64,
                    );
                    match link.send(now, payload.len(), &mut self.rng) {
                        SendOutcome::Deliver { arrive_at } => {
                            self.telemetry.incr(ids::EMU_DELIVERED);
                            self.queue.schedule(
                                arrive_at,
                                Event::Arrival(Datagram { from, to, payload }),
                            );
                        }
                        SendOutcome::LostRandom => self.telemetry.incr(ids::EMU_LOST_RANDOM),
                        SendOutcome::LostQueue => self.telemetry.incr(ids::EMU_LOST_QUEUE),
                        SendOutcome::LostDown => self.telemetry.incr(ids::EMU_LOST_DOWN),
                    }
                }
                Action::SetTimer { at, key } => {
                    let epoch = self.epochs.get(&from).copied().unwrap_or(0);
                    self.queue
                        .schedule(at.max(now), Event::Timer(from, key, epoch));
                }
            }
        }
    }

    /// Process one event. Returns false when the calendar is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let Some((now, event)) = self.queue.pop() else {
            return false;
        };
        self.dispatch(now, event);
        true
    }

    /// Run until the calendar empties or simulated time exceeds `until`,
    /// leaving the clock exactly at `until` (so follow-up injections via
    /// [`Self::with_host`] carry the intended timestamp).
    pub fn run_until(&mut self, until: SimTime) {
        self.ensure_started();
        while let Some((now, event)) = self.queue.pop_until(until) {
            self.dispatch(now, event);
        }
        self.queue.advance_to(until);
    }

    fn dispatch(&mut self, now: SimTime, event: Event) {
        type Deliver<H> = Box<dyn FnOnce(&mut H, &mut Ctx)>;
        let (node, run): (NodeId, Deliver<H>) = match event {
            Event::Arrival(d) => {
                if self.down.contains(&d.to) {
                    self.fault_drops += 1;
                    self.telemetry.incr(ids::EMU_FAULT_DROPS);
                    return; // blackholed at the crashed host
                }
                (
                    d.to,
                    Box::new(move |h, ctx| h.on_datagram(ctx, d.from, d.payload)),
                )
            }
            Event::Timer(node, key, epoch) => {
                if self.down.contains(&node)
                    || self.epochs.get(&node).copied().unwrap_or(0) != epoch
                {
                    return; // cancelled by a crash
                }
                (node, Box::new(move |h, ctx| h.on_timer(ctx, key)))
            }
            Event::Fault(kind) => {
                self.apply_fault(now, kind);
                return;
            }
        };
        let Some(host) = self.hosts.get_mut(&node) else {
            return; // host was removed; drop the event
        };
        let mut ctx = Ctx {
            now,
            actions: Vec::new(),
        };
        run(host, &mut ctx);
        self.apply_actions(node, ctx.actions);
    }

    fn apply_fault(&mut self, now: SimTime, kind: FaultKind) {
        match kind {
            FaultKind::NodeCrash { node } => {
                if self.hosts.contains_key(&node) && self.down.insert(node) {
                    self.telemetry.incr(ids::EMU_FAULT_NODE_CRASH);
                    *self.epochs.entry(node).or_insert(0) += 1;
                    if let Some(h) = self.hosts.get_mut(&node) {
                        h.on_crash();
                    }
                }
            }
            FaultKind::NodeRestart { node } => {
                if self.down.remove(&node) {
                    self.telemetry.incr(ids::EMU_FAULT_NODE_RESTART);
                    let mut ctx = Ctx {
                        now,
                        actions: Vec::new(),
                    };
                    if let Some(h) = self.hosts.get_mut(&node) {
                        h.on_restart(&mut ctx);
                    }
                    self.apply_actions(node, ctx.actions);
                }
            }
            FaultKind::LinkDown { from, to } => {
                if let Some(l) = self.links.get_mut(&(from, to)) {
                    l.up = false;
                    self.telemetry.incr(ids::EMU_FAULT_LINK_DOWN);
                }
            }
            FaultKind::LinkUp { from, to } => {
                if let Some(l) = self.links.get_mut(&(from, to)) {
                    l.up = true;
                    self.telemetry.incr(ids::EMU_FAULT_LINK_UP);
                }
            }
            FaultKind::LossBurst { from, to, loss } => {
                if let Some(l) = self.links.get_mut(&(from, to)) {
                    if l.burst_base.is_none() {
                        l.burst_base = Some(l.config.loss);
                    }
                    l.config.loss = crate::link::LossModel::Bernoulli { p: loss };
                    self.telemetry.incr(ids::EMU_FAULT_LOSS_BURST);
                }
            }
            FaultKind::LossBurstEnd { from, to } => {
                if let Some(l) = self.links.get_mut(&(from, to)) {
                    if let Some(base) = l.burst_base.take() {
                        l.config.loss = base;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livenet_types::Bandwidth;

    /// Echo host: replies to any datagram; counts receptions.
    #[derive(Default)]
    struct Echo {
        received: Vec<(NodeId, Bytes)>,
        timers: Vec<TimerKey>,
        echo: bool,
    }

    impl Host for Echo {
        fn on_datagram(&mut self, ctx: &mut Ctx, from: NodeId, payload: Bytes) {
            self.received.push((from, payload.clone()));
            if self.echo {
                ctx.send(from, payload);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx, key: TimerKey) {
            self.timers.push(key);
        }
    }

    fn link() -> LinkConfig {
        LinkConfig {
            delay: SimDuration::from_millis(5),
            bandwidth: Bandwidth::from_mbps(100),
            queue_bytes: 1 << 20,
            loss: crate::link::LossModel::None,
            jitter: SimDuration::ZERO,
        }
    }

    #[test]
    fn datagram_roundtrip_with_echo() {
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        let mut sim = NetSim::new(1);
        sim.add_host(a, Echo::default());
        sim.add_host(
            b,
            Echo {
                echo: true,
                ..Default::default()
            },
        );
        sim.add_duplex(a, b, link());
        sim.with_host(a, |_, ctx| ctx.send(b, Bytes::from_static(b"ping")));
        // RTT ≈ 2 * (prop + tx) ≈ just over 10 ms: not yet done at 9 ms…
        sim.run_until(SimTime::from_millis(9));
        assert_eq!(sim.host(a).unwrap().received.len(), 0);
        // …complete by 12 ms.
        sim.run_until(SimTime::from_millis(12));
        assert_eq!(sim.host(b).unwrap().received.len(), 1);
        let a_host = sim.host(a).unwrap();
        assert_eq!(a_host.received.len(), 1);
        assert_eq!(&a_host.received[0].1[..], b"ping");
        assert_eq!(sim.now(), SimTime::from_millis(12));
    }

    #[test]
    fn timers_fire_in_order() {
        let a = NodeId::new(1);
        let mut sim = NetSim::new(1);
        sim.add_host(a, Echo::default());
        sim.with_host(a, |_, ctx| {
            ctx.set_timer_after(SimDuration::from_millis(20), 2);
            ctx.set_timer_after(SimDuration::from_millis(10), 1);
        });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.host(a).unwrap().timers, vec![1, 2]);
    }

    #[test]
    fn send_without_link_counts_no_route() {
        let a = NodeId::new(1);
        let mut sim = NetSim::new(1);
        sim.add_host(a, Echo::default());
        sim.with_host(a, |_, ctx| ctx.send(NodeId::new(99), Bytes::from_static(b"x")));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.no_route_drops, 1);
    }

    #[test]
    fn lossy_link_drops_some() {
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        let mut sim = NetSim::new(5);
        sim.add_host(a, Echo::default());
        sim.add_host(b, Echo::default());
        let mut cfg = link();
        cfg.loss = crate::link::LossModel::Bernoulli { p: 0.5 };
        sim.add_duplex(a, b, cfg);
        for _ in 0..200 {
            sim.with_host(a, |_, ctx| ctx.send(b, Bytes::from_static(b"d")));
        }
        sim.run_until(SimTime::from_secs(1));
        let got = sim.host(b).unwrap().received.len();
        assert!(got > 50 && got < 150, "got={got}");
        let stats = sim.link_stats(a, b).unwrap();
        assert_eq!(stats.delivered as usize, got);
        assert_eq!(stats.attempts(), 200);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let run = |seed| {
            let a = NodeId::new(1);
            let b = NodeId::new(2);
            let mut sim = NetSim::new(seed);
            sim.add_host(a, Echo::default());
            sim.add_host(b, Echo::default());
            let mut cfg = link();
            cfg.loss = crate::link::LossModel::Bernoulli { p: 0.3 };
            cfg.jitter = SimDuration::from_millis(2);
            sim.add_duplex(a, b, cfg);
            for _ in 0..100 {
                sim.with_host(a, |_, ctx| ctx.send(b, Bytes::from_static(b"d")));
            }
            sim.run_until(SimTime::from_secs(1));
            sim.host(b).unwrap().received.len()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10)); // and seeds matter (w.h.p.)
    }

    #[test]
    fn crashed_host_blackholes_and_restart_revives() {
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        let mut sim = NetSim::new(1);
        sim.add_host(a, Echo::default());
        sim.add_host(b, Echo::default());
        sim.add_duplex(a, b, link());
        sim.schedule_fault(SimTime::from_millis(100), FaultKind::NodeCrash { node: b });
        sim.schedule_fault(SimTime::from_millis(300), FaultKind::NodeRestart { node: b });
        // Before the crash: delivered.
        sim.with_host(a, |_, ctx| ctx.send(b, Bytes::from_static(b"1")));
        sim.run_until(SimTime::from_millis(150));
        assert_eq!(sim.host(b).unwrap().received.len(), 1);
        assert!(sim.node_is_down(b));
        // During the outage: blackholed, and with_host refuses the victim.
        sim.with_host(a, |_, ctx| ctx.send(b, Bytes::from_static(b"2")));
        assert!(sim.with_host(b, |_, _| ()).is_none());
        sim.run_until(SimTime::from_millis(250));
        assert_eq!(sim.host(b).unwrap().received.len(), 1);
        assert_eq!(sim.fault_drops, 1);
        // After restart: delivered again.
        sim.run_until(SimTime::from_millis(350));
        assert!(!sim.node_is_down(b));
        sim.with_host(a, |_, ctx| ctx.send(b, Bytes::from_static(b"3")));
        sim.run_until(SimTime::from_millis(400));
        assert_eq!(sim.host(b).unwrap().received.len(), 2);
    }

    #[test]
    fn crash_cancels_pre_crash_timers() {
        let a = NodeId::new(1);
        let mut sim = NetSim::new(1);
        sim.add_host(a, Echo::default());
        sim.with_host(a, |_, ctx| {
            ctx.set_timer_after(SimDuration::from_millis(50), 1);
            ctx.set_timer_after(SimDuration::from_millis(500), 2);
        });
        sim.schedule_fault(SimTime::from_millis(100), FaultKind::NodeCrash { node: a });
        sim.schedule_fault(SimTime::from_millis(200), FaultKind::NodeRestart { node: a });
        sim.run_until(SimTime::from_secs(1));
        // Timer 1 fired before the crash; timer 2 was cancelled by it even
        // though the node was back up at its expiry.
        assert_eq!(sim.host(a).unwrap().timers, vec![1]);
    }

    #[test]
    fn link_down_drops_until_link_up() {
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        let mut sim = NetSim::new(1);
        sim.add_host(a, Echo::default());
        sim.add_host(b, Echo::default());
        sim.add_duplex(a, b, link());
        sim.schedule_fault(SimTime::from_millis(10), FaultKind::LinkDown { from: a, to: b });
        sim.schedule_fault(SimTime::from_millis(100), FaultKind::LinkUp { from: a, to: b });
        sim.run_until(SimTime::from_millis(20));
        assert!(!sim.link_is_up(a, b));
        assert!(sim.link_is_up(b, a)); // directional
        sim.with_host(a, |_, ctx| ctx.send(b, Bytes::from_static(b"x")));
        sim.run_until(SimTime::from_millis(90));
        assert_eq!(sim.host(b).unwrap().received.len(), 0);
        assert_eq!(sim.link_stats(a, b).unwrap().lost_down, 1);
        sim.run_until(SimTime::from_millis(110));
        sim.with_host(a, |_, ctx| ctx.send(b, Bytes::from_static(b"y")));
        sim.run_until(SimTime::from_millis(200));
        assert_eq!(sim.host(b).unwrap().received.len(), 1);
    }

    #[test]
    fn loss_burst_applies_and_restores_model() {
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        let mut sim = NetSim::new(3);
        sim.add_host(a, Echo::default());
        sim.add_host(b, Echo::default());
        sim.add_duplex(a, b, link());
        let mut plan = FaultPlan::new();
        plan.loss_burst(
            SimTime::from_millis(100),
            SimDuration::from_millis(200),
            a,
            b,
            1.0,
        );
        sim.schedule_fault_plan(&plan);
        sim.run_until(SimTime::from_millis(150));
        for _ in 0..20 {
            sim.with_host(a, |_, ctx| ctx.send(b, Bytes::from_static(b"x")));
        }
        sim.run_until(SimTime::from_millis(290));
        assert_eq!(sim.host(b).unwrap().received.len(), 0); // all lost in burst
        sim.run_until(SimTime::from_millis(310));
        for _ in 0..20 {
            sim.with_host(a, |_, ctx| ctx.send(b, Bytes::from_static(b"x")));
        }
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.host(b).unwrap().received.len(), 20); // model restored
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let run = || {
            let a = NodeId::new(1);
            let b = NodeId::new(2);
            let mut sim = NetSim::new(11);
            sim.add_host(a, Echo::default());
            sim.add_host(b, Echo { echo: true, ..Default::default() });
            let mut cfg = link();
            cfg.loss = crate::link::LossModel::Bernoulli { p: 0.2 };
            sim.add_duplex(a, b, cfg);
            let mut plan = FaultPlan::new();
            plan.outage(
                SimTime::from_millis(40),
                SimDuration::from_millis(30),
                b,
            );
            plan.loss_burst(
                SimTime::from_millis(90),
                SimDuration::from_millis(40),
                a,
                b,
                0.9,
            );
            sim.schedule_fault_plan(&plan);
            for i in 0..200u64 {
                sim.run_until(SimTime::from_millis(i));
                sim.with_host(a, |_, ctx| ctx.send(b, Bytes::from_static(b"d")));
            }
            sim.run_until(SimTime::from_secs(1));
            (
                sim.host(a).unwrap().received.len(),
                sim.host(b).unwrap().received.len(),
                sim.fault_drops,
                sim.link_stats(a, b).unwrap().lost_down,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn telemetry_mirrors_link_and_fault_counters() {
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        let mut sim = NetSim::new(5);
        sim.add_host(a, Echo::default());
        sim.add_host(b, Echo::default());
        let mut cfg = link();
        cfg.loss = crate::link::LossModel::Bernoulli { p: 0.5 };
        sim.add_duplex(a, b, cfg);
        sim.schedule_fault(SimTime::from_millis(500), FaultKind::NodeCrash { node: b });
        sim.schedule_fault(SimTime::from_millis(600), FaultKind::NodeRestart { node: b });
        for _ in 0..100 {
            sim.with_host(a, |_, ctx| ctx.send(b, Bytes::from_static(b"d")));
        }
        sim.with_host(a, |_, ctx| ctx.send(NodeId::new(99), Bytes::from_static(b"x")));
        sim.run_until(SimTime::from_secs(1));
        let snap = sim.telemetry_snapshot();
        let stats = sim.link_stats(a, b).unwrap();
        assert_eq!(snap.counter("emu.delivered"), stats.delivered);
        assert_eq!(snap.counter("emu.lost_random"), stats.lost_random);
        assert_eq!(snap.counter("emu.no_route_drops"), sim.no_route_drops);
        assert_eq!(snap.counter("emu.fault.node_crash"), 1);
        assert_eq!(snap.counter("emu.fault.node_restart"), 1);
        // The no-route send never reached a link, so only the 100 link
        // offers produced queue-depth observations.
        assert_eq!(snap.hist("emu.queue_depth_pkts").unwrap().count, 100);
    }

    #[test]
    fn host_removal_discards_events() {
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        let mut sim = NetSim::new(1);
        sim.add_host(a, Echo::default());
        sim.add_host(b, Echo::default());
        sim.add_duplex(a, b, link());
        sim.with_host(a, |_, ctx| ctx.send(b, Bytes::from_static(b"late")));
        sim.hosts.remove(&b);
        sim.run_until(SimTime::from_secs(1)); // must not panic
    }
}
