//! Deterministic fault injection: scripted or sampled fault plans.
//!
//! A [`FaultPlan`] is a time-ordered script of infrastructure failures the
//! emulator executes alongside normal traffic: node crashes and restarts,
//! directed link outages and flaps, and transient loss-burst episodes. The
//! plan is plain data — built explicitly from a scenario config, or sampled
//! from a [`DetRng`] stream (callers use `DetRng::seed(s).fork("faults")`
//! so the schedule is independent of traffic randomness and identical on
//! every shard of a partitioned run).

use livenet_types::{DetRng, NodeId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One kind of infrastructure fault the emulator can apply.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The node's process dies: volatile state is lost, pending timers are
    /// cancelled, and all datagrams addressed to it are blackholed until a
    /// matching [`FaultKind::NodeRestart`].
    NodeCrash {
        /// Victim node.
        node: NodeId,
    },
    /// The node comes back with fresh state (`Host::on_restart`).
    NodeRestart {
        /// Recovering node.
        node: NodeId,
    },
    /// The directed link drops every packet until [`FaultKind::LinkUp`].
    LinkDown {
        /// Transmitting side.
        from: NodeId,
        /// Receiving side.
        to: NodeId,
    },
    /// The directed link carries traffic again.
    LinkUp {
        /// Transmitting side.
        from: NodeId,
        /// Receiving side.
        to: NodeId,
    },
    /// The directed link's loss model is replaced by `Bernoulli { loss }`
    /// until a matching [`FaultKind::LossBurstEnd`].
    LossBurst {
        /// Transmitting side.
        from: NodeId,
        /// Receiving side.
        to: NodeId,
        /// Loss probability during the episode.
        loss: f64,
    },
    /// The link's pre-burst loss model is restored.
    LossBurstEnd {
        /// Transmitting side.
        from: NodeId,
        /// Receiving side.
        to: NodeId,
    },
}

/// A fault with its injection time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault is applied.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic script of faults, buildable from config or sampled.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// All events in insertion order (the event queue time-orders them).
    pub fn events(&self) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter()
    }

    /// Add a raw fault event.
    pub fn push(&mut self, at: SimTime, kind: FaultKind) -> &mut Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Crash `node` at `at`.
    pub fn crash(&mut self, at: SimTime, node: NodeId) -> &mut Self {
        self.push(at, FaultKind::NodeCrash { node })
    }

    /// Restart `node` at `at`.
    pub fn restart(&mut self, at: SimTime, node: NodeId) -> &mut Self {
        self.push(at, FaultKind::NodeRestart { node })
    }

    /// Crash `node` at `at` and restart it `down_for` later.
    pub fn outage(&mut self, at: SimTime, down_for: SimDuration, node: NodeId) -> &mut Self {
        self.crash(at, node);
        self.restart(at + down_for, node)
    }

    /// Take both directions of the `a`–`b` link down at `at` and restore
    /// them `down_for` later (a link flap).
    pub fn link_flap(
        &mut self,
        at: SimTime,
        down_for: SimDuration,
        a: NodeId,
        b: NodeId,
    ) -> &mut Self {
        self.push(at, FaultKind::LinkDown { from: a, to: b });
        self.push(at, FaultKind::LinkDown { from: b, to: a });
        self.push(at + down_for, FaultKind::LinkUp { from: a, to: b });
        self.push(at + down_for, FaultKind::LinkUp { from: b, to: a })
    }

    /// Run a Bernoulli loss episode on both directions of `a`–`b`.
    pub fn loss_burst(
        &mut self,
        at: SimTime,
        lasts: SimDuration,
        a: NodeId,
        b: NodeId,
        loss: f64,
    ) -> &mut Self {
        self.push(at, FaultKind::LossBurst { from: a, to: b, loss });
        self.push(at, FaultKind::LossBurst { from: b, to: a, loss });
        self.push(at + lasts, FaultKind::LossBurstEnd { from: a, to: b });
        self.push(at + lasts, FaultKind::LossBurstEnd { from: b, to: a })
    }

    /// Take a whole region down at once (Brain region outage, §6.5): every
    /// node in `nodes` crashes at `at` and restarts `down_for` later.
    pub fn region_outage<I: IntoIterator<Item = NodeId>>(
        &mut self,
        at: SimTime,
        down_for: SimDuration,
        nodes: I,
    ) -> &mut Self {
        for n in nodes {
            self.outage(at, down_for, n);
        }
        self
    }

    /// Sample a plan of node outages from a dedicated RNG stream: each
    /// candidate node suffers Poisson-ish outages at the given expected
    /// count over `[0, horizon)`, each lasting uniformly within
    /// `dur_range`. The caller passes `DetRng::seed(s).fork("faults")` so
    /// the schedule never perturbs traffic randomness.
    pub fn sample(
        rng: &mut DetRng,
        nodes: &[NodeId],
        horizon: SimDuration,
        outages_per_node: f64,
        dur_range: (SimDuration, SimDuration),
    ) -> Self {
        let mut plan = FaultPlan::new();
        let horizon_ns = horizon.as_nanos().max(1);
        for &node in nodes {
            // Thinned Bernoulli draw per node keeps the stream length
            // fixed per node regardless of outcomes.
            let mut t_ns = rng.exp(horizon_ns as f64 / outages_per_node.max(1e-9)) as u64;
            let happens = rng.chance(outages_per_node.min(1.0));
            let dur_ns = rng.range_u64(
                dur_range.0.as_nanos().max(1),
                dur_range.1.as_nanos().max(dur_range.0.as_nanos() + 1) + 1,
            );
            if !happens {
                continue;
            }
            t_ns %= horizon_ns;
            plan.outage(
                SimTime::from_nanos(t_ns),
                SimDuration::from_nanos(dur_ns),
                node,
            );
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outage_builds_crash_restart_pair() {
        let mut p = FaultPlan::new();
        p.outage(SimTime::from_secs(5), SimDuration::from_secs(30), NodeId::new(3));
        assert_eq!(p.len(), 2);
        let evs: Vec<&FaultEvent> = p.events().collect();
        assert_eq!(evs[0].kind, FaultKind::NodeCrash { node: NodeId::new(3) });
        assert_eq!(evs[1].at, SimTime::from_secs(35));
    }

    #[test]
    fn link_flap_covers_both_directions() {
        let mut p = FaultPlan::new();
        p.link_flap(
            SimTime::from_secs(1),
            SimDuration::from_secs(2),
            NodeId::new(1),
            NodeId::new(2),
        );
        assert_eq!(p.len(), 4);
        let downs = p
            .events()
            .filter(|e| matches!(e.kind, FaultKind::LinkDown { .. }))
            .count();
        assert_eq!(downs, 2);
    }

    #[test]
    fn sampled_plan_is_deterministic() {
        let nodes: Vec<NodeId> = (1..=20).map(NodeId::new).collect();
        let draw = || {
            let mut rng = DetRng::seed(77).fork("faults");
            FaultPlan::sample(
                &mut rng,
                &nodes,
                SimDuration::from_secs(3600),
                0.5,
                (SimDuration::from_secs(5), SimDuration::from_secs(60)),
            )
        };
        let a = draw();
        let b = draw();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // Every crash has a matching restart.
        let crashes = a
            .events()
            .filter(|e| matches!(e.kind, FaultKind::NodeCrash { .. }))
            .count();
        let restarts = a
            .events()
            .filter(|e| matches!(e.kind, FaultKind::NodeRestart { .. }))
            .count();
        assert_eq!(crashes, restarts);
    }
}
