//! Property-based tests for the discrete-event emulator.

use bytes::Bytes;
use livenet_emu::{Ctx, EventQueue, Host, LinkConfig, LossModel, NetSim};
use livenet_types::{Bandwidth, NodeId, SimDuration, SimTime};
use proptest::prelude::*;

/// Collects everything it receives with timestamps.
#[derive(Default)]
struct Sink {
    got: Vec<(SimTime, Vec<u8>)>,
}

impl Host for Sink {
    fn on_datagram(&mut self, ctx: &mut Ctx, _from: NodeId, payload: Bytes) {
        self.got.push((ctx.now(), payload.to_vec()));
    }
    fn on_timer(&mut self, _ctx: &mut Ctx, _key: u64) {}
}

proptest! {
    /// A lossless link is FIFO: datagrams sent in order arrive in order,
    /// regardless of sizes.
    #[test]
    fn lossless_link_is_fifo(sizes in prop::collection::vec(1usize..2000, 1..60)) {
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        let mut sim: NetSim<Sink> = NetSim::new(1);
        sim.add_host(a, Sink::default());
        sim.add_host(b, Sink::default());
        sim.add_duplex(a, b, LinkConfig {
            delay: SimDuration::from_millis(5),
            bandwidth: Bandwidth::from_mbps(10),
            queue_bytes: usize::MAX,
            loss: LossModel::None,
            jitter: SimDuration::ZERO,
        });
        for (i, &size) in sizes.iter().enumerate() {
            let mut payload = vec![0u8; size];
            payload[0] = i as u8;
            sim.with_host(a, |_, ctx| ctx.send(b, Bytes::from(payload)));
        }
        sim.run_until(SimTime::from_secs(60));
        let got = &sim.host(b).unwrap().got;
        prop_assert_eq!(got.len(), sizes.len());
        for (i, (_, payload)) in got.iter().enumerate() {
            prop_assert_eq!(payload[0], i as u8, "reordered");
            prop_assert_eq!(payload.len(), sizes[i]);
        }
        // Arrival times are non-decreasing.
        for w in got.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
    }

    /// Delivery time ≥ propagation + serialization for every datagram.
    #[test]
    fn delivery_respects_physics(sizes in prop::collection::vec(1usize..5000, 1..30)) {
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        let bw = Bandwidth::from_mbps(8);
        let prop_delay = SimDuration::from_millis(7);
        let mut sim: NetSim<Sink> = NetSim::new(2);
        sim.add_host(a, Sink::default());
        sim.add_host(b, Sink::default());
        sim.add_duplex(a, b, LinkConfig {
            delay: prop_delay,
            bandwidth: bw,
            queue_bytes: usize::MAX,
            loss: LossModel::None,
            jitter: SimDuration::ZERO,
        });
        for &size in &sizes {
            sim.with_host(a, |_, ctx| ctx.send(b, Bytes::from(vec![0u8; size])));
        }
        sim.run_until(SimTime::from_secs(120));
        let got = &sim.host(b).unwrap().got;
        let mut cumulative_tx = SimDuration::ZERO;
        for (i, (at, _)) in got.iter().enumerate() {
            cumulative_tx += bw.transmission_time(sizes[i]);
            let floor = SimTime::ZERO + cumulative_tx + prop_delay;
            prop_assert!(
                *at >= floor - SimDuration::from_nanos(sizes.len() as u64),
                "datagram {i} arrived at {at}, floor {floor}"
            );
        }
    }

    /// Bernoulli loss: the delivered count is binomially plausible and the
    /// run is deterministic in the seed.
    #[test]
    fn lossy_link_is_deterministic(seed: u64, p in 0.05f64..0.95) {
        let run = |seed: u64| {
            let a = NodeId::new(1);
            let b = NodeId::new(2);
            let mut sim: NetSim<Sink> = NetSim::new(seed);
            sim.add_host(a, Sink::default());
            sim.add_host(b, Sink::default());
            sim.add_duplex(a, b, LinkConfig {
                delay: SimDuration::from_millis(1),
                bandwidth: Bandwidth::from_gbps(1),
                queue_bytes: usize::MAX,
                loss: LossModel::Bernoulli { p },
                jitter: SimDuration::ZERO,
            });
            for _ in 0..200 {
                sim.with_host(a, |_, ctx| ctx.send(b, Bytes::from_static(b"x")));
            }
            sim.run_until(SimTime::from_secs(10));
            sim.host(b).unwrap().got.len()
        };
        let first = run(seed);
        prop_assert_eq!(first, run(seed), "nondeterministic");
        prop_assert!(first <= 200);
    }

    /// The event queue pops in (time, insertion) order for any schedule.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated at equal times");
            }
        }
    }
}
