//! The Brain's global view and the node reports that build it.
//!
//! CDN nodes report link latency (RTT), packet loss rate, link utilization
//! and node load on a 1-minute time scale (paper §4.2). The Global Discovery
//! module folds these into a [`GlobalView`] — the input to Global Routing —
//! and raises overload alarms when a node or link crosses the 80% target.

use crate::graph::Topology;
use livenet_types::{NodeId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The pre-defined overload target (80%, paper §4.2 / §4.3 constraint ii).
pub const OVERLOAD_TARGET: f64 = 0.80;

/// One link measurement inside a node report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkReport {
    /// Far end of the measured link.
    pub to: NodeId,
    /// Measured round-trip time.
    pub rtt: SimDuration,
    /// Measured loss rate in [0, 1].
    pub loss: f64,
    /// Link utilization in [0, 1].
    pub utilization: f64,
    /// True when the node had recent traffic on the link and read these from
    /// the transport layer; false when it fell back to UDP-ping probing
    /// (paper §4.2).
    pub from_transport: bool,
}

/// A periodic report from one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeReport {
    /// Reporting node.
    pub node: NodeId,
    /// When the report was generated.
    pub at: SimTime,
    /// Combined node load in [0, 1].
    pub utilization: f64,
    /// Per-link measurements.
    pub links: Vec<LinkReport>,
}

/// The assembled global view: freshest known state per node and link.
///
/// Backed by hash maps: every read/write is point access, and the only
/// iteration ([`GlobalView::apply_to`]) writes disjoint keys, so the
/// result never depends on iteration order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GlobalView {
    node_util: HashMap<NodeId, (SimTime, f64)>,
    link_state: HashMap<(NodeId, NodeId), (SimTime, LinkReport)>,
}

impl GlobalView {
    /// Empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one node report into the view (newest-wins per key).
    pub fn absorb(&mut self, report: &NodeReport) {
        let entry = self.node_util.entry(report.node).or_insert((report.at, 0.0));
        if report.at >= entry.0 {
            *entry = (report.at, report.utilization);
        }
        for lr in &report.links {
            let key = (report.node, lr.to);
            let entry = self.link_state.entry(key).or_insert((report.at, *lr));
            if report.at >= entry.0 {
                *entry = (report.at, *lr);
            }
        }
    }

    /// Last reported utilization of a node (None if never reported).
    pub fn node_utilization(&self, node: NodeId) -> Option<f64> {
        self.node_util.get(&node).map(|&(_, u)| u)
    }

    /// Last reported state of a directed link.
    pub fn link_report(&self, from: NodeId, to: NodeId) -> Option<&LinkReport> {
        self.link_state.get(&(from, to)).map(|(_, r)| r)
    }

    /// True when the node is at or beyond the overload target.
    pub fn node_overloaded(&self, node: NodeId) -> bool {
        self.node_utilization(node)
            .is_some_and(|u| u >= OVERLOAD_TARGET)
    }

    /// True when the link is at or beyond the overload target.
    pub fn link_overloaded(&self, from: NodeId, to: NodeId) -> bool {
        self.link_report(from, to)
            .is_some_and(|r| r.utilization >= OVERLOAD_TARGET)
    }

    /// Write the view's freshest measurements back into a [`Topology`]
    /// (the Brain's working graph for route computation).
    pub fn apply_to(&self, topology: &mut Topology) {
        for (&node, &(_, util)) in &self.node_util {
            if let Some(n) = topology.node_mut(node) {
                n.utilization = util;
            }
        }
        for (&(from, to), &(_, report)) in &self.link_state {
            if let Some(l) = topology.link_mut(from, to) {
                l.rtt = report.rtt;
                l.loss = report.loss;
                l.utilization = report.utilization;
            }
        }
    }

    /// Write through only the keys named by `report`, using the view's
    /// stored (newest-wins) values for those keys.
    ///
    /// Equivalent to a full [`GlobalView::apply_to`] after absorbing
    /// `report`, provided the topology's measured fields only change via
    /// these two methods: keys the report does not mention already hold
    /// the view's freshest value from an earlier write-through. Turns the
    /// per-report cost from O(view) into O(report).
    pub fn apply_report(&self, report: &NodeReport, topology: &mut Topology) {
        if let Some(&(_, util)) = self.node_util.get(&report.node) {
            if let Some(n) = topology.node_mut(report.node) {
                n.utilization = util;
            }
        }
        for lr in &report.links {
            let Some(&(_, stored)) = self.link_state.get(&(report.node, lr.to)) else {
                continue;
            };
            if let Some(l) = topology.link_mut(report.node, lr.to) {
                l.rtt = stored.rtt;
                l.loss = stored.loss;
                l.utilization = stored.utilization;
            }
        }
    }

    /// Number of nodes with at least one report.
    pub fn reported_nodes(&self) -> usize {
        self.node_util.len()
    }

    /// Drop state older than `horizon` (stale nodes that stopped reporting).
    pub fn expire_before(&mut self, horizon: SimTime) {
        self.node_util.retain(|_, (t, _)| *t >= horizon);
        self.link_state.retain(|_, (t, _)| *t >= horizon);
    }
}

/// Build the report a node would send given the true topology state —
/// used by simulations to produce 1-minute report streams.
pub fn report_from_topology(topology: &Topology, node: NodeId, at: SimTime) -> Option<NodeReport> {
    let info = topology.node(node)?;
    let links = topology
        .neighbors(node)
        .map(|(to, m)| LinkReport {
            to,
            rtt: m.rtt,
            loss: m.loss,
            utilization: m.utilization,
            from_transport: m.utilization > 0.0,
        })
        .collect();
    Some(NodeReport {
        node,
        at,
        utilization: info.utilization,
        links,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::{GeoConfig, GeoTopology};

    fn report(node: u64, at_ms: u64, util: f64, link_to: u64, link_util: f64) -> NodeReport {
        NodeReport {
            node: NodeId::new(node),
            at: SimTime::from_millis(at_ms),
            utilization: util,
            links: vec![LinkReport {
                to: NodeId::new(link_to),
                rtt: SimDuration::from_millis(20),
                loss: 0.001,
                utilization: link_util,
                from_transport: true,
            }],
        }
    }

    #[test]
    fn absorb_keeps_newest() {
        let mut v = GlobalView::new();
        v.absorb(&report(1, 100, 0.5, 2, 0.1));
        v.absorb(&report(1, 50, 0.9, 2, 0.9)); // stale, ignored
        assert_eq!(v.node_utilization(NodeId::new(1)), Some(0.5));
        assert_eq!(
            v.link_report(NodeId::new(1), NodeId::new(2)).unwrap().utilization,
            0.1
        );
        v.absorb(&report(1, 200, 0.7, 2, 0.85));
        assert_eq!(v.node_utilization(NodeId::new(1)), Some(0.7));
    }

    #[test]
    fn overload_thresholds() {
        let mut v = GlobalView::new();
        v.absorb(&report(1, 1, 0.79, 2, 0.85));
        assert!(!v.node_overloaded(NodeId::new(1)));
        assert!(v.link_overloaded(NodeId::new(1), NodeId::new(2)));
        v.absorb(&report(1, 2, 0.80, 2, 0.2));
        assert!(v.node_overloaded(NodeId::new(1)));
        assert!(!v.link_overloaded(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn unreported_is_not_overloaded() {
        let v = GlobalView::new();
        assert!(!v.node_overloaded(NodeId::new(9)));
        assert!(!v.link_overloaded(NodeId::new(9), NodeId::new(10)));
    }

    #[test]
    fn apply_to_updates_topology() {
        let g = GeoTopology::generate(&GeoConfig::tiny(1));
        let mut topo = g.topology.clone();
        let a = g.node_ids[0];
        let b = g.node_ids[1];
        let mut v = GlobalView::new();
        v.absorb(&NodeReport {
            node: a,
            at: SimTime::from_secs(60),
            utilization: 0.42,
            links: vec![LinkReport {
                to: b,
                rtt: SimDuration::from_millis(99),
                loss: 0.01,
                utilization: 0.33,
                from_transport: true,
            }],
        });
        v.apply_to(&mut topo);
        assert_eq!(topo.node(a).unwrap().utilization, 0.42);
        let l = topo.link(a, b).unwrap();
        assert_eq!(l.rtt, SimDuration::from_millis(99));
        assert_eq!(l.loss, 0.01);
        assert_eq!(l.utilization, 0.33);
    }

    #[test]
    fn report_from_topology_roundtrips() {
        let g = GeoTopology::generate(&GeoConfig::tiny(2));
        let a = g.node_ids[0];
        let rep = report_from_topology(&g.topology, a, SimTime::from_secs(60)).unwrap();
        assert_eq!(rep.node, a);
        assert_eq!(rep.links.len(), g.topology.neighbors(a).count());
        let mut v = GlobalView::new();
        v.absorb(&rep);
        assert_eq!(v.reported_nodes(), 1);
    }

    #[test]
    fn expire_drops_stale_state() {
        let mut v = GlobalView::new();
        v.absorb(&report(1, 100, 0.5, 2, 0.1));
        v.absorb(&report(3, 5000, 0.5, 4, 0.1));
        v.expire_before(SimTime::from_millis(1000));
        assert_eq!(v.node_utilization(NodeId::new(1)), None);
        assert!(v.node_utilization(NodeId::new(3)).is_some());
    }
}
