//! Nodes, links and the overlay graph.

use livenet_types::{Bandwidth, Error, NodeId, Result, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Dynamically assigned role of a node in the flat CDN.
///
/// Unlike Hier's fixed L1/L2 tiers, any LiveNet node can serve any role, and
/// roles are per-stream: the same node may be a producer for one stream and a
/// relay for another (paper §1, design choice 1). The role enum therefore
/// describes a node's function *for a given stream*, not a static class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeRole {
    /// Receives and processes streams from broadcasters.
    Producer,
    /// Receives viewer requests and applies fine-grained stream control.
    Consumer,
    /// Interconnects producers and consumers; forwards and caches.
    Relay,
}

/// Static + slowly-varying description of one CDN node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// Node identity.
    pub id: NodeId,
    /// Country index the node resides in (inter- vs intra-national paths).
    pub country: u32,
    /// Total egress capacity of the cluster.
    pub capacity: Bandwidth,
    /// Combined load metric in [0, 1]: stream transmissions + CPU + memory
    /// (paper §4.2 footnote 4).
    pub utilization: f64,
    /// Whether this node is reserved as a last-resort relay (§4.3). Such
    /// nodes sit at well-peered locations (IXPs) and are excluded from
    /// normal routing.
    pub last_resort: bool,
    /// Whether the node sits in a well-peered network (backbone PoP / IXP).
    /// Long-haul links between two poorly-peered nodes take inefficient
    /// BGP routes, which is why relay paths through well-peered nodes beat
    /// direct overlay links — the effect behind the paper's 92%-of-paths-
    /// are-2-hops distribution (Table 2).
    pub well_peered: bool,
}

/// Measured state of a directed overlay link (from the 1-minute reports).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkMetrics {
    /// Round-trip time between the two nodes.
    pub rtt: SimDuration,
    /// Packet loss rate in [0, 1].
    pub loss: f64,
    /// Link utilization in [0, 1].
    pub utilization: f64,
    /// Link capacity.
    pub capacity: Bandwidth,
}

impl LinkMetrics {
    /// A healthy link with the given RTT and capacity.
    pub fn healthy(rtt: SimDuration, capacity: Bandwidth) -> Self {
        LinkMetrics {
            rtt,
            loss: 0.0,
            utilization: 0.0,
            capacity,
        }
    }
}

/// The overlay graph: what exists and what was last measured.
///
/// Uses `BTreeMap` keyed containers so iteration order — and therefore every
/// downstream computation (KSP tie-breaks, report order) — is deterministic.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: BTreeMap<NodeId, NodeInfo>,
    links: BTreeMap<NodeId, BTreeMap<NodeId, LinkMetrics>>,
    /// Nodes currently marked down by the fault layer. Kept separate from
    /// `NodeInfo` so liveness is orthogonal to the measured state: a node
    /// that comes back keeps its last-reported metrics.
    down_nodes: BTreeSet<NodeId>,
    /// Directed links currently marked down (beyond any down endpoints).
    down_links: BTreeSet<(NodeId, NodeId)>,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add or replace a node.
    pub fn upsert_node(&mut self, info: NodeInfo) {
        self.nodes.insert(info.id, info);
    }

    /// Add or replace a directed link. Both endpoints must exist.
    pub fn upsert_link(&mut self, from: NodeId, to: NodeId, metrics: LinkMetrics) -> Result<()> {
        if !self.nodes.contains_key(&from) {
            return Err(Error::not_found(format!("node {from}")));
        }
        if !self.nodes.contains_key(&to) {
            return Err(Error::not_found(format!("node {to}")));
        }
        if from == to {
            return Err(Error::constraint("self-loop link"));
        }
        self.links.entry(from).or_default().insert(to, metrics);
        Ok(())
    }

    /// Add a symmetric link pair.
    pub fn upsert_duplex(&mut self, a: NodeId, b: NodeId, metrics: LinkMetrics) -> Result<()> {
        self.upsert_link(a, b, metrics)?;
        self.upsert_link(b, a, metrics)
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> Option<&NodeInfo> {
        self.nodes.get(&id)
    }

    /// Mutable node lookup (load updates).
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut NodeInfo> {
        self.nodes.get_mut(&id)
    }

    /// Link lookup.
    pub fn link(&self, from: NodeId, to: NodeId) -> Option<&LinkMetrics> {
        self.links.get(&from)?.get(&to)
    }

    /// Mutable link lookup (measurement updates).
    pub fn link_mut(&mut self, from: NodeId, to: NodeId) -> Option<&mut LinkMetrics> {
        self.links.get_mut(&from)?.get_mut(&to)
    }

    /// All nodes in deterministic (id) order.
    pub fn nodes(&self) -> impl Iterator<Item = &NodeInfo> {
        self.nodes.values()
    }

    /// Node IDs in deterministic order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys().copied()
    }

    /// Non-last-resort, currently-up node IDs (the routable set).
    pub fn routable_node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .values()
            .filter(|n| !n.last_resort && !self.down_nodes.contains(&n.id))
            .map(|n| n.id)
    }

    /// Last-resort relay node IDs.
    pub fn last_resort_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.values().filter(|n| n.last_resort).map(|n| n.id)
    }

    /// Mark a node up or down. Down nodes drop out of `routable_node_ids`
    /// and `neighbors`, so path computation routes around them without the
    /// graph forgetting the node's links. No-op for unknown ids.
    pub fn set_node_up(&mut self, id: NodeId, up: bool) {
        if !self.nodes.contains_key(&id) {
            return;
        }
        if up {
            self.down_nodes.remove(&id);
        } else {
            self.down_nodes.insert(id);
        }
    }

    /// Whether a node is currently up (unknown nodes count as down).
    pub fn node_is_up(&self, id: NodeId) -> bool {
        self.nodes.contains_key(&id) && !self.down_nodes.contains(&id)
    }

    /// Mark a directed link up or down without touching its metrics.
    pub fn set_link_up(&mut self, from: NodeId, to: NodeId, up: bool) {
        if self.link(from, to).is_none() {
            return;
        }
        if up {
            self.down_links.remove(&(from, to));
        } else {
            self.down_links.insert((from, to));
        }
    }

    /// Mark both directions of a link up or down.
    pub fn set_duplex_up(&mut self, a: NodeId, b: NodeId, up: bool) {
        self.set_link_up(a, b, up);
        self.set_link_up(b, a, up);
    }

    /// Whether a directed link is usable: it exists, is not itself down,
    /// and both endpoints are up.
    pub fn link_is_up(&self, from: NodeId, to: NodeId) -> bool {
        self.link(from, to).is_some()
            && !self.down_links.contains(&(from, to))
            && self.node_is_up(from)
            && self.node_is_up(to)
    }

    /// Currently-down node IDs, deterministic order.
    pub fn down_node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.down_nodes.iter().copied()
    }

    /// All node IDs in the given country, deterministic order (region
    /// outage support).
    pub fn nodes_in_country(&self, country: u32) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .values()
            .filter(move |n| n.country == country)
            .map(|n| n.id)
    }

    /// Out-neighbors of `from` with link metrics, deterministic order.
    /// Down links and links to down endpoints are excluded, so routing
    /// sees only the live graph.
    pub fn neighbors(&self, from: NodeId) -> impl Iterator<Item = (NodeId, &LinkMetrics)> {
        self.links
            .get(&from)
            .into_iter()
            .flat_map(|m| m.iter().map(|(k, v)| (*k, v)))
            .filter(move |(to, _)| {
                !self.down_links.contains(&(from, *to))
                    && !self.down_nodes.contains(&from)
                    && !self.down_nodes.contains(to)
            })
    }

    /// All directed links `(from, to, metrics)` in deterministic order.
    pub fn links(&self) -> impl Iterator<Item = (NodeId, NodeId, &LinkMetrics)> {
        self.links
            .iter()
            .flat_map(|(f, m)| m.iter().map(move |(t, v)| (*f, *t, v)))
    }

    /// All directed links mutably, same deterministic order as
    /// [`Topology::links`] (bulk measurement updates without per-link
    /// lookups).
    pub fn links_mut(&mut self) -> impl Iterator<Item = (NodeId, NodeId, &mut LinkMetrics)> {
        self.links.iter_mut().flat_map(|(f, m)| {
            let from = *f;
            m.iter_mut().map(move |(t, v)| (from, *t, v))
        })
    }

    /// All nodes mutably in deterministic (id) order.
    pub fn nodes_mut(&mut self) -> impl Iterator<Item = &mut NodeInfo> {
        self.nodes.values_mut()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.values().map(BTreeMap::len).sum()
    }

    /// True when broadcaster and viewer countries differ for the two nodes.
    pub fn is_international(&self, a: NodeId, b: NodeId) -> Option<bool> {
        Some(self.node(a)?.country != self.node(b)?.country)
    }

    /// Sum of RTTs along `path` (consecutive pairs); `None` if any link is
    /// missing. One-way delay is approximated as RTT/2 per hop.
    pub fn path_rtt(&self, path: &[NodeId]) -> Option<SimDuration> {
        let mut total = SimDuration::ZERO;
        for w in path.windows(2) {
            total += self.link(w[0], w[1])?.rtt;
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u64, country: u32) -> NodeInfo {
        NodeInfo {
            id: NodeId::new(id),
            country,
            capacity: Bandwidth::from_gbps(10),
            utilization: 0.0,
            last_resort: false,
            well_peered: false,
        }
    }

    fn link(rtt_ms: u64) -> LinkMetrics {
        LinkMetrics::healthy(SimDuration::from_millis(rtt_ms), Bandwidth::from_gbps(1))
    }

    #[test]
    fn upsert_and_lookup() {
        let mut t = Topology::new();
        t.upsert_node(node(1, 0));
        t.upsert_node(node(2, 1));
        t.upsert_duplex(NodeId::new(1), NodeId::new(2), link(20)).unwrap();
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.link_count(), 2);
        assert_eq!(
            t.link(NodeId::new(1), NodeId::new(2)).unwrap().rtt,
            SimDuration::from_millis(20)
        );
    }

    #[test]
    fn link_requires_both_endpoints() {
        let mut t = Topology::new();
        t.upsert_node(node(1, 0));
        assert!(t
            .upsert_link(NodeId::new(1), NodeId::new(9), link(10))
            .is_err());
        assert!(t
            .upsert_link(NodeId::new(9), NodeId::new(1), link(10))
            .is_err());
    }

    #[test]
    fn self_loop_rejected() {
        let mut t = Topology::new();
        t.upsert_node(node(1, 0));
        assert!(t
            .upsert_link(NodeId::new(1), NodeId::new(1), link(1))
            .is_err());
    }

    #[test]
    fn international_detection() {
        let mut t = Topology::new();
        t.upsert_node(node(1, 0));
        t.upsert_node(node(2, 0));
        t.upsert_node(node(3, 5));
        assert_eq!(t.is_international(NodeId::new(1), NodeId::new(2)), Some(false));
        assert_eq!(t.is_international(NodeId::new(1), NodeId::new(3)), Some(true));
        assert_eq!(t.is_international(NodeId::new(1), NodeId::new(99)), None);
    }

    #[test]
    fn path_rtt_sums_links() {
        let mut t = Topology::new();
        for i in 1..=3 {
            t.upsert_node(node(i, 0));
        }
        t.upsert_duplex(NodeId::new(1), NodeId::new(2), link(10)).unwrap();
        t.upsert_duplex(NodeId::new(2), NodeId::new(3), link(15)).unwrap();
        let path = [NodeId::new(1), NodeId::new(2), NodeId::new(3)];
        assert_eq!(t.path_rtt(&path), Some(SimDuration::from_millis(25)));
        let broken = [NodeId::new(1), NodeId::new(3)];
        assert_eq!(t.path_rtt(&broken), None);
    }

    #[test]
    fn routable_excludes_last_resort() {
        let mut t = Topology::new();
        t.upsert_node(node(1, 0));
        let mut lr = node(2, 0);
        lr.last_resort = true;
        t.upsert_node(lr);
        assert_eq!(t.routable_node_ids().count(), 1);
        assert_eq!(t.last_resort_ids().count(), 1);
    }

    #[test]
    fn down_node_leaves_routable_set_and_neighbor_lists() {
        let mut t = Topology::new();
        for i in 1..=3 {
            t.upsert_node(node(i, 0));
        }
        t.upsert_duplex(NodeId::new(1), NodeId::new(2), link(10)).unwrap();
        t.upsert_duplex(NodeId::new(2), NodeId::new(3), link(10)).unwrap();
        assert!(t.node_is_up(NodeId::new(2)));
        t.set_node_up(NodeId::new(2), false);
        assert!(!t.node_is_up(NodeId::new(2)));
        assert_eq!(t.routable_node_ids().count(), 2);
        assert_eq!(t.neighbors(NodeId::new(1)).count(), 0);
        assert_eq!(t.neighbors(NodeId::new(2)).count(), 0);
        assert!(!t.link_is_up(NodeId::new(1), NodeId::new(2)));
        // Metrics survive the outage.
        assert!(t.link(NodeId::new(1), NodeId::new(2)).is_some());
        t.set_node_up(NodeId::new(2), true);
        assert_eq!(t.routable_node_ids().count(), 3);
        assert_eq!(t.neighbors(NodeId::new(1)).count(), 1);
    }

    #[test]
    fn down_link_is_directional_and_duplex_helper_covers_both() {
        let mut t = Topology::new();
        t.upsert_node(node(1, 0));
        t.upsert_node(node(2, 0));
        t.upsert_duplex(NodeId::new(1), NodeId::new(2), link(10)).unwrap();
        t.set_link_up(NodeId::new(1), NodeId::new(2), false);
        assert!(!t.link_is_up(NodeId::new(1), NodeId::new(2)));
        assert!(t.link_is_up(NodeId::new(2), NodeId::new(1)));
        assert_eq!(t.neighbors(NodeId::new(1)).count(), 0);
        assert_eq!(t.neighbors(NodeId::new(2)).count(), 1);
        t.set_duplex_up(NodeId::new(1), NodeId::new(2), false);
        assert!(!t.link_is_up(NodeId::new(2), NodeId::new(1)));
        t.set_duplex_up(NodeId::new(1), NodeId::new(2), true);
        assert!(t.link_is_up(NodeId::new(1), NodeId::new(2)));
        assert!(t.link_is_up(NodeId::new(2), NodeId::new(1)));
    }

    #[test]
    fn nodes_in_country_selects_region() {
        let mut t = Topology::new();
        t.upsert_node(node(1, 0));
        t.upsert_node(node(2, 7));
        t.upsert_node(node(3, 7));
        let region: Vec<u64> = t.nodes_in_country(7).map(NodeId::raw).collect();
        assert_eq!(region, vec![2, 3]);
    }

    #[test]
    fn iteration_is_deterministic() {
        let mut t = Topology::new();
        for i in [5, 3, 9, 1] {
            t.upsert_node(node(i, 0));
        }
        let ids: Vec<u64> = t.node_ids().map(NodeId::raw).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
    }
}
