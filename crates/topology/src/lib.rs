//! Overlay topology model.
//!
//! LiveNet runs on 600+ CDN nodes in 70+ countries (paper §6). This crate
//! models the overlay as the Streaming Brain sees it:
//!
//! * [`graph`] — nodes (clusters with capacity and a combined load metric)
//!   and directed overlay links with measured RTT / loss / utilization;
//! * [`geo`] — a generator that lays nodes out across countries and derives
//!   intra- vs inter-national link RTTs, mirroring the distinction the
//!   paper's evaluation draws (Table 2, Fig. 12);
//! * [`view`] — the *global view* snapshot the Global Discovery module
//!   assembles from 1-minute node reports, consumed by Global Routing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod geo;
pub mod graph;
pub mod view;

pub use geo::{GeoConfig, GeoTopology};
pub use graph::{LinkMetrics, NodeInfo, NodeRole, Topology};
pub use view::{GlobalView, LinkReport, NodeReport, OVERLOAD_TARGET};
