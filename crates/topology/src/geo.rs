//! Geo-topology generator.
//!
//! Generates an overlay that mirrors the paper's deployment shape: nodes
//! spread over many countries, with short intra-national RTTs and long
//! inter-national RTTs, a handful of well-peered last-resort relays, and a
//! full-mesh overlay (any node pair *may* form an overlay link — the flat
//! CDN's defining property).
//!
//! Countries are placed on a 2-D plane; link RTT is a base propagation term
//! proportional to distance plus noise. The generator is deterministic in
//! the seed.

use crate::graph::{LinkMetrics, NodeInfo, Topology};
use livenet_types::{Bandwidth, DetRng, NodeId, SimDuration};
use serde::{Deserialize, Serialize};

/// Parameters for the generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeoConfig {
    /// Number of countries.
    pub countries: u32,
    /// Number of CDN nodes (excluding last-resort relays).
    pub nodes: u32,
    /// Number of reserved last-resort relay nodes.
    pub last_resort_nodes: u32,
    /// Egress capacity per node.
    pub node_capacity: Bandwidth,
    /// Capacity per overlay link.
    pub link_capacity: Bandwidth,
    /// Mean one-way intra-national propagation delay.
    pub intra_delay_ms: f64,
    /// Propagation delay per unit of inter-country distance (ms).
    pub inter_delay_per_unit_ms: f64,
    /// Baseline packet loss applied to all links.
    pub base_loss: f64,
    /// Fraction of (non-last-resort) nodes sitting in well-peered networks
    /// (backbone PoPs / IXP-adjacent clusters).
    pub well_peered_fraction: f64,
    /// RTT multiplier for links between two poorly-peered edge nodes
    /// (inefficient public-internet detours). This is what makes 2-hop
    /// relay paths through well-peered hubs beat direct edge-to-edge links,
    /// giving the paper's Table-2 path-length distribution.
    pub poor_peering_penalty: f64,
    /// RTT multiplier for hub↔hub long-haul links (private backbone).
    pub backbone_bonus: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeoConfig {
    fn default() -> Self {
        GeoConfig {
            countries: 12,
            nodes: 60,
            last_resort_nodes: 3,
            node_capacity: Bandwidth::from_gbps(40),
            link_capacity: Bandwidth::from_gbps(10),
            intra_delay_ms: 9.0,
            inter_delay_per_unit_ms: 40.0,
            base_loss: 0.0005,
            well_peered_fraction: 0.30,
            poor_peering_penalty: 2.2,
            backbone_bonus: 0.95,
            seed: 1,
        }
    }
}

impl GeoConfig {
    /// A small config for unit tests (fast KSP).
    pub fn tiny(seed: u64) -> Self {
        GeoConfig {
            countries: 3,
            nodes: 9,
            last_resort_nodes: 1,
            seed,
            ..Default::default()
        }
    }

    /// A config shaped like the paper's deployment, scaled down ~10×:
    /// 60 nodes across 12 countries (paper: 600+ nodes, 70+ countries).
    pub fn paper_scale(seed: u64) -> Self {
        GeoConfig {
            seed,
            ..Default::default()
        }
    }
}

/// The generated topology plus the geography behind it.
#[derive(Debug, Clone)]
pub struct GeoTopology {
    /// The overlay graph (full mesh over all nodes incl. last-resort).
    pub topology: Topology,
    /// Country positions on the plane (one per country).
    pub country_pos: Vec<(f64, f64)>,
    /// Country of each node, indexed by position in `node_ids`.
    pub node_ids: Vec<NodeId>,
}

impl GeoTopology {
    /// Generate from a config.
    pub fn generate(config: &GeoConfig) -> GeoTopology {
        let mut rng = DetRng::seed(config.seed).fork("geo");
        let mut topology = Topology::new();

        // Scatter countries on a unit-ish plane; distances drive inter RTTs.
        let country_pos: Vec<(f64, f64)> = (0..config.countries)
            .map(|_| (rng.range_f64(0.0, 4.0), rng.range_f64(0.0, 4.0)))
            .collect();

        // Nodes round-robin over countries so every country gets coverage,
        // like a real CDN footprint; extra nodes land in populous (early)
        // countries.
        let mut node_ids = Vec::new();
        let total = config.nodes + config.last_resort_nodes;
        for i in 0..total {
            let id = NodeId::new(u64::from(i) + 1);
            let last_resort = i >= config.nodes;
            let country = if last_resort {
                // Last-resort nodes sit in the most-connected (first)
                // countries, modeling IXP placement.
                i % config.countries.min(3)
            } else {
                i % config.countries
            };
            // Every country's first node is a backbone PoP (a real CDN
            // footprint always includes one well-peered cluster per
            // region); additional hubs appear at the configured rate.
            let well_peered = last_resort
                || i < config.countries
                || rng.chance(config.well_peered_fraction);
            topology.upsert_node(NodeInfo {
                id,
                country,
                capacity: config.node_capacity,
                utilization: 0.0,
                last_resort,
                well_peered,
            });
            node_ids.push(id);
        }

        // Full mesh of overlay links. RTT = 2 * one-way; one-way =
        // intra base + distance * per-unit + lognormal-ish noise.
        let ids = node_ids.clone();
        for (i, &a) in ids.iter().enumerate() {
            for &b in ids.iter().skip(i + 1) {
                let ca = topology.node(a).expect("node exists").country as usize;
                let cb = topology.node(b).expect("node exists").country as usize;
                let peered_a = topology.node(a).expect("a").well_peered;
                let peered_b = topology.node(b).expect("b").well_peered;
                // Peering-class multiplier: hub↔hub long-hauls ride the
                // private backbone; edge↔hub rides decent transit;
                // edge↔edge rides whatever BGP gives it.
                let class_factor = if peered_a && peered_b {
                    config.backbone_bonus * rng.range_f64(0.95, 1.05)
                } else if peered_a || peered_b {
                    rng.range_f64(0.95, 1.15)
                } else {
                    config.poor_peering_penalty * rng.range_f64(0.85, 1.15)
                };
                let one_way_ms = if ca == cb {
                    // Intra-national: short, varied by metro distance. The
                    // peering class matters here too, but more mildly: the
                    // hubs sit on the national backbone.
                    let f = if peered_a && peered_b {
                        0.85
                    } else if peered_a || peered_b {
                        1.0
                    } else {
                        // Domestic edge↔edge public-internet paths carry
                        // the full peering penalty and then some: they
                        // hairpin through congested metro exchanges.
                        config.poor_peering_penalty * 1.45
                    };
                    (config.intra_delay_ms * rng.range_f64(0.6, 1.55) * f).max(1.0)
                } else {
                    let (xa, ya) = country_pos[ca];
                    let (xb, yb) = country_pos[cb];
                    let dist = ((xa - xb).powi(2) + (ya - yb).powi(2)).sqrt();
                    let base = config.intra_delay_ms
                        + dist * config.inter_delay_per_unit_ms * rng.range_f64(0.9, 1.1);
                    (base * class_factor).max(5.0)
                };
                let metrics = LinkMetrics {
                    rtt: SimDuration::from_millis_f64(2.0 * one_way_ms),
                    loss: config.base_loss * rng.range_f64(0.2, 2.0),
                    utilization: 0.0,
                    capacity: config.link_capacity,
                };
                topology
                    .upsert_duplex(a, b, metrics)
                    .expect("endpoints exist");
            }
        }

        GeoTopology {
            topology,
            country_pos,
            node_ids,
        }
    }

    /// Nodes in a given country.
    pub fn nodes_in_country(&self, country: u32) -> Vec<NodeId> {
        self.topology
            .nodes()
            .filter(|n| n.country == country && !n.last_resort)
            .map(|n| n.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_counts() {
        let g = GeoTopology::generate(&GeoConfig::tiny(1));
        assert_eq!(g.topology.node_count(), 10);
        assert_eq!(g.topology.last_resort_ids().count(), 1);
        // Full mesh: n*(n-1) directed links.
        assert_eq!(g.topology.link_count(), 10 * 9);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = GeoTopology::generate(&GeoConfig::tiny(7));
        let b = GeoTopology::generate(&GeoConfig::tiny(7));
        for (f, t, m) in a.topology.links() {
            assert_eq!(b.topology.link(f, t).unwrap(), m);
        }
        let c = GeoTopology::generate(&GeoConfig::tiny(8));
        let differs = a
            .topology
            .links()
            .any(|(f, t, m)| c.topology.link(f, t).unwrap().rtt != m.rtt);
        assert!(differs);
    }

    #[test]
    fn intra_national_links_are_shorter_on_average() {
        let g = GeoTopology::generate(&GeoConfig::paper_scale(3));
        let mut intra = (0.0, 0u32);
        let mut inter = (0.0, 0u32);
        for (f, t, m) in g.topology.links() {
            let international = g.topology.is_international(f, t).unwrap();
            let ms = m.rtt.as_millis_f64();
            if international {
                inter = (inter.0 + ms, inter.1 + 1);
            } else {
                intra = (intra.0 + ms, intra.1 + 1);
            }
        }
        let intra_mean = intra.0 / f64::from(intra.1);
        let inter_mean = inter.0 / f64::from(inter.1);
        assert!(
            inter_mean > intra_mean * 2.0,
            "intra={intra_mean:.1}ms inter={inter_mean:.1}ms"
        );
    }

    #[test]
    fn every_country_has_nodes() {
        let cfg = GeoConfig::paper_scale(2);
        let g = GeoTopology::generate(&cfg);
        for c in 0..cfg.countries {
            assert!(!g.nodes_in_country(c).is_empty(), "country {c} empty");
        }
    }

    #[test]
    fn base_loss_is_small_backbone_like() {
        let cfg = GeoConfig::paper_scale(4);
        let g = GeoTopology::generate(&cfg);
        // Paper: backbone loss < 0.175% even at peak.
        for (_, _, m) in g.topology.links() {
            assert!(m.loss < 0.00175, "loss={}", m.loss);
        }
    }
}
