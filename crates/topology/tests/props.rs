//! Property-based tests for the geo-topology generator.

use livenet_topology::{GeoConfig, GeoTopology};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = GeoConfig> {
    (2u32..8, 6u32..30, 0u32..4, any::<u64>()).prop_map(
        |(countries, nodes, last_resort, seed)| GeoConfig {
            countries,
            nodes: nodes.max(countries), // every country needs a node
            last_resort_nodes: last_resort,
            seed,
            ..GeoConfig::paper_scale(seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The generator always produces a full mesh with positive RTTs,
    /// symmetric link existence, and loss under the paper's cap.
    #[test]
    fn generated_topology_wellformed(cfg in arb_config()) {
        let g = GeoTopology::generate(&cfg);
        let t = &g.topology;
        let n = (cfg.nodes + cfg.last_resort_nodes) as usize;
        prop_assert_eq!(t.node_count(), n);
        prop_assert_eq!(t.link_count(), n * (n - 1));
        for (a, b, m) in t.links() {
            prop_assert!(m.rtt.as_nanos() > 0);
            prop_assert!(m.loss >= 0.0 && m.loss < 0.0045);
            prop_assert!(t.link(b, a).is_some(), "asymmetric mesh");
        }
        prop_assert_eq!(t.last_resort_ids().count(), cfg.last_resort_nodes as usize);
    }

    /// Every country hosts at least one node and one well-peered hub.
    #[test]
    fn every_country_covered(cfg in arb_config()) {
        let g = GeoTopology::generate(&cfg);
        for c in 0..cfg.countries {
            let in_country: Vec<_> = g
                .topology
                .nodes()
                .filter(|n| n.country == c && !n.last_resort)
                .collect();
            prop_assert!(!in_country.is_empty(), "country {c} empty");
            prop_assert!(
                in_country.iter().any(|n| n.well_peered),
                "country {c} has no hub"
            );
        }
    }

    /// Same seed → identical topology; different seed → different RTTs.
    #[test]
    fn seed_determinism(cfg in arb_config()) {
        let a = GeoTopology::generate(&cfg);
        let b = GeoTopology::generate(&cfg);
        for (f, t, m) in a.topology.links() {
            prop_assert_eq!(b.topology.link(f, t).unwrap(), m);
        }
    }

    /// Intra-national mean RTT is below inter-national mean RTT whenever
    /// both kinds exist.
    #[test]
    fn locality_gradient(cfg in arb_config()) {
        prop_assume!(cfg.countries >= 2);
        let g = GeoTopology::generate(&cfg);
        let (mut intra, mut ni) = (0.0, 0u32);
        let (mut inter, mut ne) = (0.0, 0u32);
        for (f, t, m) in g.topology.links() {
            match g.topology.is_international(f, t) {
                Some(true) => { inter += m.rtt.as_millis_f64(); ne += 1; }
                Some(false) => { intra += m.rtt.as_millis_f64(); ni += 1; }
                None => {}
            }
        }
        prop_assume!(ni > 0 && ne > 0);
        prop_assert!(intra / f64::from(ni) < inter / f64::from(ne));
    }
}
