//! Deterministic encoder models.
//!
//! The video encoder produces a GoP-structured frame sequence whose sizes
//! average to the target bitrate. Size ratios follow common x264-style
//! budgets: an I frame is several times a P frame, which is larger than a
//! B frame. Frame-to-frame size jitter is deterministic in the frame index,
//! so two encoders with the same config emit byte-identical sequences —
//! which is what lets the fleet simulator replay runs exactly.

use crate::frame::{EncodedFrame, FrameId, FrameKind};
use livenet_types::{Bandwidth, SimDuration, SimTime, StreamId};
use serde::{Deserialize, Serialize};

/// GoP structure configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GopConfig {
    /// Frames per second.
    pub fps: u32,
    /// Frames per GoP (keyframe interval). Taobao-style low-latency live
    /// streams use 1–2 s GoPs; default 30 frames at 15 fps = 2 s.
    pub gop_frames: u32,
    /// Number of B frames between consecutive anchor (I/P) frames.
    pub b_between: u32,
    /// Fraction of B frames that are unreferenced (droppable first).
    pub unref_b_fraction: f64,
    /// I-frame size as a multiple of the mean frame size.
    pub i_ratio: f64,
    /// B-frame size as a multiple of the mean frame size.
    pub b_ratio: f64,
    /// Per-frame encode latency.
    pub encode_delay: SimDuration,
}

impl Default for GopConfig {
    fn default() -> Self {
        GopConfig {
            fps: 15,
            gop_frames: 30,
            b_between: 2,
            unref_b_fraction: 0.5,
            i_ratio: 6.0,
            b_ratio: 0.5,
            encode_delay: SimDuration::from_millis(20),
        }
    }
}

impl GopConfig {
    /// Duration of one frame period.
    pub fn frame_interval(&self) -> SimDuration {
        SimDuration::from_nanos(1_000_000_000 / u64::from(self.fps))
    }

    /// Duration of one full GoP.
    pub fn gop_duration(&self) -> SimDuration {
        self.frame_interval() * u64::from(self.gop_frames)
    }

    /// The frame kind at position `pos` within a GoP.
    pub fn kind_at(&self, pos: u32) -> FrameKind {
        debug_assert!(pos < self.gop_frames);
        if pos == 0 {
            return FrameKind::I;
        }
        if self.b_between == 0 {
            return FrameKind::P;
        }
        // Pattern after the I frame: groups of `b_between` Bs then one P.
        let cycle = self.b_between + 1;
        let in_cycle = (pos - 1) % cycle;
        if in_cycle < self.b_between {
            // Alternate referenced/unreferenced B frames according to the
            // configured fraction (deterministic in position).
            let unref_every = if self.unref_b_fraction <= 0.0 {
                u32::MAX
            } else {
                (1.0 / self.unref_b_fraction).round().max(1.0) as u32
            };
            if unref_every != u32::MAX && in_cycle.is_multiple_of(unref_every) {
                FrameKind::BUnref
            } else {
                FrameKind::B
            }
        } else {
            FrameKind::P
        }
    }

    /// Mean frame size in bytes for a target bitrate.
    pub fn mean_frame_bytes(&self, bitrate: Bandwidth) -> f64 {
        bitrate.as_bps() as f64 / 8.0 / f64::from(self.fps)
    }

    /// Count of each kind in one GoP: (i, p, b, b_unref).
    pub fn gop_census(&self) -> (u32, u32, u32, u32) {
        let (mut i, mut p, mut b, mut bu) = (0, 0, 0, 0);
        for pos in 0..self.gop_frames {
            match self.kind_at(pos) {
                FrameKind::I => i += 1,
                FrameKind::P => p += 1,
                FrameKind::B => b += 1,
                FrameKind::BUnref => bu += 1,
                FrameKind::Audio => unreachable!(),
            }
        }
        (i, p, b, bu)
    }

    /// Size in bytes of the frame at GoP position `pos`, scaled so a whole
    /// GoP averages to the target bitrate.
    pub fn frame_bytes(&self, bitrate: Bandwidth, pos: u32, frame_index: u64) -> u32 {
        let mean = self.mean_frame_bytes(bitrate);
        let (i, p, b, bu) = self.gop_census();
        // Solve for the P-frame size so the weighted sum hits the budget:
        // i*I_r*x + p*x + (b+bu)*B_r*x = gop_frames * mean
        let weight_sum = f64::from(i) * self.i_ratio
            + f64::from(p)
            + f64::from(b + bu) * self.b_ratio;
        let p_bytes = f64::from(self.gop_frames) * mean / weight_sum;
        let base = match self.kind_at(pos) {
            FrameKind::I => p_bytes * self.i_ratio,
            FrameKind::P => p_bytes,
            FrameKind::B | FrameKind::BUnref => p_bytes * self.b_ratio,
            FrameKind::Audio => unreachable!(),
        };
        // Deterministic ±10% content jitter from a hash of the frame index.
        let h = frame_index
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(31);
        let jitter = 0.9 + 0.2 * ((h >> 11) as f64 / (1u64 << 53) as f64);
        (base * jitter).max(64.0) as u32
    }
}

/// A deterministic timed video frame source for one rendition of one stream.
#[derive(Debug, Clone)]
pub struct VideoEncoder {
    stream: StreamId,
    config: GopConfig,
    bitrate: Bandwidth,
    start: SimTime,
    next_index: u64,
}

impl VideoEncoder {
    /// New encoder emitting frames from `start`.
    pub fn new(stream: StreamId, config: GopConfig, bitrate: Bandwidth, start: SimTime) -> Self {
        VideoEncoder {
            stream,
            config,
            bitrate,
            start,
            next_index: 0,
        }
    }

    /// The stream this encoder feeds.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// The configured bitrate.
    pub fn bitrate(&self) -> Bandwidth {
        self.bitrate
    }

    /// The GoP configuration.
    pub fn config(&self) -> &GopConfig {
        &self.config
    }

    fn capture_at(&self, index: u64) -> SimTime {
        // Exact rational timing (index * 1s / fps) avoids drift from a
        // truncated per-frame interval.
        self.start
            + livenet_types::SimDuration::from_nanos(
                index * 1_000_000_000 / u64::from(self.config.fps),
            )
    }

    /// Capture time of the next frame.
    pub fn next_capture_time(&self) -> SimTime {
        self.capture_at(self.next_index)
    }

    /// Emit the next frame (capture-ordered).
    pub fn next_frame(&mut self) -> EncodedFrame {
        let index = self.next_index;
        self.next_index += 1;
        let pos = (index % u64::from(self.config.gop_frames)) as u32;
        let capture_time = self.capture_at(index);
        let ticks_per_frame = 90_000 / u64::from(self.config.fps);
        EncodedFrame {
            id: FrameId {
                stream: self.stream,
                index,
            },
            kind: self.config.kind_at(pos),
            gop_index: index / u64::from(self.config.gop_frames),
            capture_time,
            rtp_timestamp: (index * ticks_per_frame) as u32,
            size_bytes: self.config.frame_bytes(self.bitrate, pos, index),
            encode_delay_ns: self.config.encode_delay.as_nanos(),
        }
    }

    /// Emit all frames captured strictly before `until`.
    pub fn frames_until(&mut self, until: SimTime) -> Vec<EncodedFrame> {
        let mut out = Vec::new();
        while self.next_capture_time() < until {
            out.push(self.next_frame());
        }
        out
    }
}

/// Constant-bitrate audio source (Opus-style 20 ms frames).
#[derive(Debug, Clone)]
pub struct AudioEncoder {
    stream: StreamId,
    bitrate: Bandwidth,
    start: SimTime,
    next_index: u64,
}

/// Audio frame period: 20 ms, the Opus default.
pub const AUDIO_FRAME_INTERVAL: SimDuration = SimDuration::from_millis(20);

impl AudioEncoder {
    /// New audio source; `bitrate` is typically 32–64 kbps.
    pub fn new(stream: StreamId, bitrate: Bandwidth, start: SimTime) -> Self {
        AudioEncoder {
            stream,
            bitrate,
            start,
            next_index: 0,
        }
    }

    /// Capture time of the next audio frame.
    pub fn next_capture_time(&self) -> SimTime {
        self.start + AUDIO_FRAME_INTERVAL * self.next_index
    }

    /// Emit the next audio frame.
    pub fn next_frame(&mut self) -> EncodedFrame {
        let index = self.next_index;
        self.next_index += 1;
        let capture_time = self.start + AUDIO_FRAME_INTERVAL * index;
        let bytes = self.bitrate.as_bps() / 8 / 50; // 50 frames per second
        EncodedFrame {
            id: FrameId {
                stream: self.stream,
                index,
            },
            kind: FrameKind::Audio,
            gop_index: 0,
            capture_time,
            rtp_timestamp: (index * 960) as u32, // 48 kHz * 20 ms
            size_bytes: bytes.max(16) as u32,
            encode_delay_ns: SimDuration::from_millis(5).as_nanos(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GopConfig {
        GopConfig::default()
    }

    #[test]
    fn gop_starts_with_i_frame() {
        assert_eq!(cfg().kind_at(0), FrameKind::I);
        let mut enc = VideoEncoder::new(
            StreamId::new(1),
            cfg(),
            Bandwidth::from_mbps(2),
            SimTime::ZERO,
        );
        let first = enc.next_frame();
        assert_eq!(first.kind, FrameKind::I);
        assert!(first.starts_gop());
    }

    #[test]
    fn gop_pattern_repeats() {
        let c = cfg();
        let mut enc = VideoEncoder::new(
            StreamId::new(1),
            c,
            Bandwidth::from_mbps(2),
            SimTime::ZERO,
        );
        let frames: Vec<_> = (0..c.gop_frames * 2).map(|_| enc.next_frame()).collect();
        for i in 0..c.gop_frames as usize {
            assert_eq!(frames[i].kind, frames[i + c.gop_frames as usize].kind);
        }
        assert_eq!(frames[0].gop_index, 0);
        assert_eq!(frames[c.gop_frames as usize].gop_index, 1);
    }

    #[test]
    fn gop_bytes_hit_bitrate_budget() {
        let c = cfg();
        let bitrate = Bandwidth::from_mbps(3);
        let mut enc = VideoEncoder::new(StreamId::new(1), c, bitrate, SimTime::ZERO);
        let total: u64 = (0..c.gop_frames * 10)
            .map(|_| u64::from(enc.next_frame().size_bytes))
            .sum();
        let secs = (c.gop_frames * 10) as f64 / f64::from(c.fps);
        let measured_bps = total as f64 * 8.0 / secs;
        let target = bitrate.as_bps() as f64;
        assert!(
            (measured_bps - target).abs() / target < 0.05,
            "measured {measured_bps} vs target {target}"
        );
    }

    #[test]
    fn i_frames_are_much_larger_than_b_frames() {
        let c = cfg();
        let mut enc = VideoEncoder::new(
            StreamId::new(1),
            c,
            Bandwidth::from_mbps(2),
            SimTime::ZERO,
        );
        let frames: Vec<_> = (0..c.gop_frames).map(|_| enc.next_frame()).collect();
        let i_size = frames.iter().find(|f| f.kind == FrameKind::I).unwrap().size_bytes;
        let b = frames
            .iter()
            .find(|f| matches!(f.kind, FrameKind::B | FrameKind::BUnref))
            .unwrap()
            .size_bytes;
        assert!(i_size > b * 5, "I={i_size} B={b}");
    }

    #[test]
    fn capture_times_are_evenly_spaced() {
        let c = cfg();
        let mut enc = VideoEncoder::new(
            StreamId::new(1),
            c,
            Bandwidth::from_mbps(1),
            SimTime::from_secs(5),
        );
        let a = enc.next_frame();
        let b = enc.next_frame();
        assert_eq!(a.capture_time, SimTime::from_secs(5));
        let spacing = (b.capture_time - a.capture_time).as_nanos() as i64;
        let nominal = c.frame_interval().as_nanos() as i64;
        assert!((spacing - nominal).abs() <= 1, "spacing={spacing}");
    }

    #[test]
    fn frames_until_respects_bound() {
        let c = cfg();
        let mut enc = VideoEncoder::new(
            StreamId::new(1),
            c,
            Bandwidth::from_mbps(1),
            SimTime::ZERO,
        );
        let frames = enc.frames_until(SimTime::from_secs(1));
        assert_eq!(frames.len(), c.fps as usize);
        assert!(enc.next_capture_time() >= SimTime::from_secs(1));
    }

    #[test]
    fn two_encoders_same_config_identical_output() {
        let c = cfg();
        let mk = || VideoEncoder::new(StreamId::new(9), c, Bandwidth::from_mbps(2), SimTime::ZERO);
        let mut a = mk();
        let mut b = mk();
        for _ in 0..100 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
    }

    #[test]
    fn census_covers_all_positions() {
        let c = cfg();
        let (i, p, b, bu) = c.gop_census();
        assert_eq!(i, 1);
        assert_eq!(i + p + b + bu, c.gop_frames);
        assert!(bu > 0, "default config should have droppable B frames");
    }

    #[test]
    fn audio_is_constant_rate() {
        let mut enc = AudioEncoder::new(StreamId::new(2), Bandwidth::from_kbps(48), SimTime::ZERO);
        let a = enc.next_frame();
        let b = enc.next_frame();
        assert_eq!(a.kind, FrameKind::Audio);
        assert_eq!(a.size_bytes, b.size_bytes);
        assert_eq!(b.capture_time - a.capture_time, AUDIO_FRAME_INTERVAL);
        // 48 kbps / 50 fps = 120 bytes.
        assert_eq!(a.size_bytes, 120);
    }

    #[test]
    fn zero_b_frames_config_yields_ipp() {
        let c = GopConfig {
            b_between: 0,
            ..cfg()
        };
        assert_eq!(c.kind_at(0), FrameKind::I);
        for pos in 1..c.gop_frames {
            assert_eq!(c.kind_at(pos), FrameKind::P);
        }
    }
}
