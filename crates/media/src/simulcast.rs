//! Simulcast bitrate ladders.
//!
//! LiveNet adopts simulcast rather than SVC (§5.2): the broadcaster encodes
//! several bitrate versions in parallel (e.g. 720P + 480P) and uploads all of
//! them to the producer node. Each rendition gets its own [`StreamId`]; the
//! consumer node picks the best rendition per viewer based on the viewer's
//! estimated bandwidth, keeping clients "thin" (§7.2).

use livenet_types::{Bandwidth, StreamId};
use serde::{Deserialize, Serialize};

/// One bitrate version of a broadcast.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rendition {
    /// Stream ID carried on the wire for this rendition.
    pub stream: StreamId,
    /// Human-readable label, e.g. "720p".
    pub name: String,
    /// Target video bitrate.
    pub bitrate: Bandwidth,
    /// Frame height in pixels (for bookkeeping only).
    pub height: u32,
}

/// The ordered set of renditions one broadcaster uploads.
///
/// Renditions are kept sorted by descending bitrate; selection walks down the
/// ladder until a rendition fits the viewer's available bandwidth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimulcastLadder {
    renditions: Vec<Rendition>,
}

impl SimulcastLadder {
    /// Build a ladder; renditions are sorted by descending bitrate.
    ///
    /// Panics if `renditions` is empty — a broadcast always has at least one
    /// version.
    pub fn new(mut renditions: Vec<Rendition>) -> Self {
        assert!(!renditions.is_empty(), "empty simulcast ladder");
        renditions.sort_by_key(|r| std::cmp::Reverse(r.bitrate));
        SimulcastLadder { renditions }
    }

    /// The paper's example ladder: 720p + 480p, given a base stream ID; the
    /// rendition stream IDs are `base` and `base + 1`.
    pub fn taobao_default(base: StreamId) -> Self {
        SimulcastLadder::new(vec![
            Rendition {
                stream: base,
                name: "720p".into(),
                bitrate: Bandwidth::from_kbps(2_500),
                height: 720,
            },
            Rendition {
                stream: StreamId::new(base.raw() + 1),
                name: "480p".into(),
                bitrate: Bandwidth::from_kbps(1_200),
                height: 480,
            },
        ])
    }

    /// All renditions, highest bitrate first.
    pub fn renditions(&self) -> &[Rendition] {
        &self.renditions
    }

    /// Number of renditions.
    pub fn len(&self) -> usize {
        self.renditions.len()
    }

    /// Always false (construction requires ≥ 1 rendition).
    pub fn is_empty(&self) -> bool {
        self.renditions.is_empty()
    }

    /// Total upload bandwidth the broadcaster needs (all renditions).
    pub fn total_upload(&self) -> Bandwidth {
        self.renditions.iter().map(|r| r.bitrate).sum()
    }

    /// The rendition a consumer node selects for a viewer with estimated
    /// available bandwidth `avail`, applying `headroom` (e.g. 1.2 means the
    /// rendition must fit in `avail / 1.2`). Falls back to the lowest
    /// rendition when nothing fits — a viewer always gets *something*.
    pub fn select(&self, avail: Bandwidth, headroom: f64) -> &Rendition {
        let budget = (avail.as_bps() as f64 / headroom.max(1.0)) as u64;
        self.renditions
            .iter()
            .find(|r| r.bitrate.as_bps() <= budget)
            .unwrap_or_else(|| self.renditions.last().expect("non-empty ladder"))
    }

    /// The rendition one step below `current`, if any (used when the send
    /// queue keeps building and the consumer requests a lower bitrate, §5.2).
    pub fn step_down(&self, current: StreamId) -> Option<&Rendition> {
        let idx = self.renditions.iter().position(|r| r.stream == current)?;
        self.renditions.get(idx + 1)
    }

    /// The rendition one step above `current`, if any.
    pub fn step_up(&self, current: StreamId) -> Option<&Rendition> {
        let idx = self.renditions.iter().position(|r| r.stream == current)?;
        idx.checked_sub(1).map(|i| &self.renditions[i])
    }

    /// Find a rendition by stream ID.
    pub fn by_stream(&self, stream: StreamId) -> Option<&Rendition> {
        self.renditions.iter().find(|r| r.stream == stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> SimulcastLadder {
        SimulcastLadder::taobao_default(StreamId::new(100))
    }

    #[test]
    fn sorted_descending() {
        let l = ladder();
        assert_eq!(l.renditions()[0].name, "720p");
        assert_eq!(l.renditions()[1].name, "480p");
    }

    #[test]
    fn select_picks_highest_fitting() {
        let l = ladder();
        let r = l.select(Bandwidth::from_mbps(10), 1.2);
        assert_eq!(r.name, "720p");
        let r = l.select(Bandwidth::from_kbps(2_000), 1.2);
        assert_eq!(r.name, "480p");
    }

    #[test]
    fn select_falls_back_to_lowest() {
        let l = ladder();
        let r = l.select(Bandwidth::from_kbps(100), 1.2);
        assert_eq!(r.name, "480p");
    }

    #[test]
    fn select_headroom_matters() {
        let l = ladder();
        // 2.6 Mbps fits 2.5 Mbps with no headroom but not with 1.2×.
        assert_eq!(l.select(Bandwidth::from_kbps(2_600), 1.0).name, "720p");
        assert_eq!(l.select(Bandwidth::from_kbps(2_600), 1.2).name, "480p");
    }

    #[test]
    fn step_down_and_up() {
        let l = ladder();
        let hi = l.renditions()[0].stream;
        let lo = l.renditions()[1].stream;
        assert_eq!(l.step_down(hi).unwrap().stream, lo);
        assert!(l.step_down(lo).is_none());
        assert_eq!(l.step_up(lo).unwrap().stream, hi);
        assert!(l.step_up(hi).is_none());
    }

    #[test]
    fn total_upload_sums() {
        let l = ladder();
        assert_eq!(l.total_upload(), Bandwidth::from_kbps(3_700));
    }

    #[test]
    fn renditions_have_distinct_stream_ids() {
        let l = ladder();
        assert_ne!(l.renditions()[0].stream, l.renditions()[1].stream);
    }

    #[test]
    #[should_panic(expected = "empty simulcast ladder")]
    fn empty_ladder_panics() {
        let _ = SimulcastLadder::new(vec![]);
    }
}
