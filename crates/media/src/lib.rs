//! Video source model.
//!
//! LiveNet transports *frames*: the broadcaster's encoder emits a GoP-
//! structured sequence of I/P/B video frames plus an audio track, in one or
//! more simulcast renditions (§5.2 of the paper). This crate models exactly
//! that — deterministically, so whole experiments replay from a seed:
//!
//! * [`FrameKind`] / [`EncodedFrame`] — the unit the data plane reasons about
//!   (the frame dropper drops unreferenced B frames first, then P, then the
//!   whole GoP; the pacer boosts I frames),
//! * [`GopConfig`] / [`VideoEncoder`] — a timed frame source with realistic
//!   size ratios between I, P and B frames,
//! * [`AudioEncoder`] — constant-bitrate audio frames (prioritized by the
//!   pacer over video to avoid head-of-line blocking),
//! * [`SimulcastLadder`] — the bitrate versions a broadcaster uploads in
//!   parallel; each rendition maps to its own [`StreamId`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encoder;
pub mod frame;
pub mod simulcast;

pub use encoder::{AudioEncoder, GopConfig, VideoEncoder};
pub use frame::{EncodedFrame, FrameId, FrameKind};
pub use simulcast::{Rendition, SimulcastLadder};
