//! Encoded frame model.

use livenet_types::{SimTime, StreamId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of an encoded video frame within its GoP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameKind {
    /// Intra-coded keyframe: starts a GoP, required by every later frame.
    I,
    /// Predicted frame: references the previous I/P frame.
    P,
    /// Bidirectional frame that other frames reference.
    B,
    /// Unreferenced B frame: nothing depends on it, so the consumer's
    /// proactive frame dropper discards these first (§5.2 — "dropping such
    /// frames only causes short blurring").
    BUnref,
    /// An audio frame. Modeled as a frame for uniform queueing, but never
    /// dropped and always prioritized by the pacer.
    Audio,
}

impl FrameKind {
    /// Encode as the 4-bit meta nibble carried in RTP fragment headers.
    pub fn to_nibble(self) -> u8 {
        match self {
            FrameKind::I => 1,
            FrameKind::P => 2,
            FrameKind::B => 3,
            FrameKind::BUnref => 4,
            FrameKind::Audio => 5,
        }
    }

    /// Decode from the meta nibble; `None` for unknown values.
    pub fn from_nibble(n: u8) -> Option<FrameKind> {
        match n {
            1 => Some(FrameKind::I),
            2 => Some(FrameKind::P),
            3 => Some(FrameKind::B),
            4 => Some(FrameKind::BUnref),
            5 => Some(FrameKind::Audio),
            _ => None,
        }
    }

    /// True for the three video frame kinds.
    pub fn is_video(self) -> bool {
        !matches!(self, FrameKind::Audio)
    }

    /// True when dropping this frame cannot corrupt any other frame.
    pub fn is_droppable_first(self) -> bool {
        matches!(self, FrameKind::BUnref)
    }

    /// Drop priority used by the proactive frame dropper: lower values are
    /// dropped earlier (BUnref < B < P < I; audio is never dropped).
    pub fn drop_rank(self) -> u8 {
        match self {
            FrameKind::BUnref => 0,
            FrameKind::B => 1,
            FrameKind::P => 2,
            FrameKind::I => 3,
            FrameKind::Audio => 4,
        }
    }
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FrameKind::I => "I",
            FrameKind::P => "P",
            FrameKind::B => "B",
            FrameKind::BUnref => "b",
            FrameKind::Audio => "A",
        };
        f.write_str(s)
    }
}

/// Globally unique frame identity: (stream, sequence-within-stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FrameId {
    /// The stream the frame belongs to.
    pub stream: StreamId,
    /// Monotone frame counter within the stream (capture order).
    pub index: u64,
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:f{}", self.stream, self.index)
    }
}

/// One encoded frame as produced by the broadcaster's encoder.
///
/// The payload content is synthetic (the emulator only cares about sizes and
/// timing); `size_bytes` is authoritative and is what the packetizer splits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedFrame {
    /// Frame identity.
    pub id: FrameId,
    /// I / P / B / unreferenced-B / audio.
    pub kind: FrameKind,
    /// Index of the GoP this frame belongs to (audio: GoP of same instant).
    pub gop_index: u64,
    /// Capture timestamp (when the camera produced the frame).
    pub capture_time: SimTime,
    /// RTP media timestamp (90 kHz video clock / 48 kHz audio clock ticks).
    pub rtp_timestamp: u32,
    /// Encoded size in bytes.
    pub size_bytes: u32,
    /// Time the encoder spent on this frame (contributes to the delay field).
    pub encode_delay_ns: u64,
}

impl EncodedFrame {
    /// True when this frame begins a new GoP.
    pub fn starts_gop(&self) -> bool {
        self.kind == FrameKind::I
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_rank_ordering_matches_paper_ladder() {
        // B-unref first, then (referenced) B, then P, then whole GoP (I).
        assert!(FrameKind::BUnref.drop_rank() < FrameKind::B.drop_rank());
        assert!(FrameKind::B.drop_rank() < FrameKind::P.drop_rank());
        assert!(FrameKind::P.drop_rank() < FrameKind::I.drop_rank());
        assert!(FrameKind::I.drop_rank() < FrameKind::Audio.drop_rank());
    }

    #[test]
    fn only_unref_b_is_freely_droppable() {
        assert!(FrameKind::BUnref.is_droppable_first());
        assert!(!FrameKind::B.is_droppable_first());
        assert!(!FrameKind::I.is_droppable_first());
    }

    #[test]
    fn nibble_roundtrips() {
        for k in [
            FrameKind::I,
            FrameKind::P,
            FrameKind::B,
            FrameKind::BUnref,
            FrameKind::Audio,
        ] {
            assert_eq!(FrameKind::from_nibble(k.to_nibble()), Some(k));
        }
        assert_eq!(FrameKind::from_nibble(0), None);
        assert_eq!(FrameKind::from_nibble(15), None);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(FrameKind::I.to_string(), "I");
        assert_eq!(FrameKind::BUnref.to_string(), "b");
        let id = FrameId {
            stream: StreamId::new(3),
            index: 17,
        };
        assert_eq!(id.to_string(), "st3:f17");
    }
}
