//! Property-based tests for the video source model.

use livenet_media::{FrameKind, GopConfig, SimulcastLadder, VideoEncoder};
use livenet_types::{Bandwidth, SimDuration, SimTime, StreamId};
use proptest::prelude::*;

fn arb_gop() -> impl Strategy<Value = GopConfig> {
    (5u32..60, 10u32..90, 0u32..4, 0.0f64..1.0, 2.0f64..10.0, 0.2f64..0.9).prop_map(
        |(fps, gop_frames, b_between, unref, i_ratio, b_ratio)| GopConfig {
            fps,
            gop_frames,
            b_between,
            unref_b_fraction: unref,
            i_ratio,
            b_ratio,
            encode_delay: SimDuration::from_millis(20),
        },
    )
}

proptest! {
    /// Every GoP config starts with an I frame and the census covers all
    /// positions exactly once.
    #[test]
    fn gop_structure_wellformed(cfg in arb_gop()) {
        prop_assert_eq!(cfg.kind_at(0), FrameKind::I);
        let (i, p, b, bu) = cfg.gop_census();
        prop_assert_eq!(i, 1);
        prop_assert_eq!(i + p + b + bu, cfg.gop_frames);
    }

    /// The encoder hits its bitrate budget within 6% over 10 GoPs, for any
    /// structure and bitrate.
    #[test]
    fn encoder_meets_bitrate(cfg in arb_gop(), kbps in 300u64..8_000) {
        let bitrate = Bandwidth::from_kbps(kbps);
        let mut enc = VideoEncoder::new(StreamId::new(1), cfg, bitrate, SimTime::ZERO);
        let frames = u64::from(cfg.gop_frames) * 10;
        let total: u64 = (0..frames).map(|_| u64::from(enc.next_frame().size_bytes)).sum();
        let secs = frames as f64 / f64::from(cfg.fps);
        let measured = total as f64 * 8.0 / secs;
        let target = bitrate.as_bps() as f64;
        prop_assert!(
            (measured - target).abs() / target < 0.06,
            "measured {measured}, target {target}"
        );
    }

    /// Capture times are non-decreasing and frame indices dense.
    #[test]
    fn encoder_timing_monotone(cfg in arb_gop(), n in 1u64..200) {
        let mut enc = VideoEncoder::new(
            StreamId::new(2),
            cfg,
            Bandwidth::from_mbps(1),
            SimTime::from_secs(1),
        );
        let mut last = SimTime::ZERO;
        for i in 0..n {
            let f = enc.next_frame();
            prop_assert!(f.capture_time >= last);
            prop_assert_eq!(f.id.index, i);
            last = f.capture_time;
        }
    }

    /// Ladder selection always returns a rendition whose bitrate fits the
    /// budget when any fits, and the lowest rung otherwise.
    #[test]
    fn ladder_selection_sound(avail_kbps in 1u64..50_000, headroom in 1.0f64..2.0) {
        let ladder = SimulcastLadder::taobao_default(StreamId::new(100));
        let avail = Bandwidth::from_kbps(avail_kbps);
        let chosen = ladder.select(avail, headroom);
        let budget = (avail.as_bps() as f64 / headroom) as u64;
        let any_fits = ladder.renditions().iter().any(|r| r.bitrate.as_bps() <= budget);
        if any_fits {
            prop_assert!(chosen.bitrate.as_bps() <= budget);
            // And it is the highest fitting one.
            for r in ladder.renditions() {
                if r.bitrate.as_bps() <= budget {
                    prop_assert!(chosen.bitrate >= r.bitrate);
                }
            }
        } else {
            prop_assert_eq!(&chosen.stream, &ladder.renditions().last().unwrap().stream);
        }
    }
}
