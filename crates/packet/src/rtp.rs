//! RTP packet model and binary codec.
//!
//! The layout follows RFC 3550 with a one-byte header-extension profile
//! (RFC 8285). LiveNet adds a proprietary extension element — the *delay
//! field* — that accumulates per-hop processing time and half-RTTs so the
//! viewing client can compute the end-to-end streaming delay (paper §6.1).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use livenet_types::{Error, Result, SeqNo, SimDuration, Ssrc, StreamId};
use serde::{Deserialize, Serialize};

/// Path MTU assumed by the packetizer (bytes of RTP payload + header).
pub const MTU: usize = 1200;

/// RTP media clock rate used for video (90 kHz, the conventional rate).
pub const RTP_CLOCK_HZ: u64 = 90_000;

/// RFC 8285 one-byte-header extension ID carrying the cumulative delay field.
pub const DELAY_EXT_ID: u8 = 1;

const RTP_VERSION: u8 = 2;
const MIN_HEADER_LEN: usize = 12;

/// What a packet carries. Audio is prioritized over video by the pacer
/// (§5.2 "Priority-Aware Data Sending").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MediaKind {
    /// Audio packets; never dropped by the frame dropper, sent first.
    Audio,
    /// Video packets.
    Video,
}

impl MediaKind {
    /// The RTP payload-type value used on the wire for this kind.
    pub fn payload_type(self) -> u8 {
        match self {
            MediaKind::Audio => 111,
            MediaKind::Video => 96,
        }
    }

    /// Inverse of [`MediaKind::payload_type`].
    pub fn from_payload_type(pt: u8) -> Result<Self> {
        match pt {
            111 => Ok(MediaKind::Audio),
            96 => Ok(MediaKind::Video),
            other => Err(Error::decode(format!("unknown payload type {other}"))),
        }
    }
}

/// Decoded RTP header fields used by the overlay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RtpHeader {
    /// Marker bit: set on the last packet of a frame.
    pub marker: bool,
    /// Media kind (mapped to/from the payload-type field).
    pub kind: MediaKind,
    /// Sequence number, per-stream, wrapping.
    pub seq: SeqNo,
    /// Media timestamp in RTP clock ticks (90 kHz for video).
    pub timestamp: u32,
    /// Synchronization source. LiveNet maps one SSRC per stream ID.
    pub ssrc: Ssrc,
    /// Cumulative delay field (the paper's RTP header extension), present on
    /// the first packet of each I frame and updated by every hop.
    pub delay_field: Option<SimDuration>,
}

/// A full RTP packet: header plus opaque payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtpPacket {
    /// Header fields.
    pub header: RtpHeader,
    /// Payload (a slice of an encoded frame).
    pub payload: Bytes,
}

impl RtpPacket {
    /// Total encoded size in bytes (header + extension + payload).
    pub fn wire_len(&self) -> usize {
        let ext = if self.header.delay_field.is_some() {
            4 + 8 // extension header + one 6-byte element padded to 8
        } else {
            0
        };
        MIN_HEADER_LEN + ext + self.payload.len()
    }

    /// Encode to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        let has_ext = self.header.delay_field.is_some();
        let b0 = (RTP_VERSION << 6) | u8::from(has_ext) << 4;
        buf.put_u8(b0);
        let b1 = (u8::from(self.header.marker) << 7) | self.header.kind.payload_type();
        buf.put_u8(b1);
        buf.put_u16(self.header.seq.0);
        buf.put_u32(self.header.timestamp);
        buf.put_u32(self.header.ssrc.0);
        if let Some(delay) = self.header.delay_field {
            // RFC 8285 one-byte header: profile 0xBEDE, length in 32-bit words.
            buf.put_u16(0xBEDE);
            buf.put_u16(2); // 8 bytes of extension data = 2 words
            // One-byte element: ID=DELAY_EXT_ID, len-1=5 (6 data bytes).
            buf.put_u8((DELAY_EXT_ID << 4) | 5);
            // 48-bit microsecond delay value.
            let us = delay.as_micros().min((1 << 48) - 1);
            buf.put_u16((us >> 32) as u16);
            buf.put_u32(us as u32);
            buf.put_u8(0); // padding to the word boundary
        }
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Decode from wire bytes.
    pub fn decode(mut buf: Bytes) -> Result<RtpPacket> {
        if buf.len() < MIN_HEADER_LEN {
            return Err(Error::decode(format!("RTP packet too short: {}", buf.len())));
        }
        let b0 = buf.get_u8();
        if b0 >> 6 != RTP_VERSION {
            return Err(Error::decode(format!("bad RTP version {}", b0 >> 6)));
        }
        let has_ext = (b0 >> 4) & 1 == 1;
        let csrc_count = (b0 & 0x0F) as usize;
        let b1 = buf.get_u8();
        let marker = b1 >> 7 == 1;
        let kind = MediaKind::from_payload_type(b1 & 0x7F)?;
        let seq = SeqNo(buf.get_u16());
        let timestamp = buf.get_u32();
        let ssrc = Ssrc(buf.get_u32());
        if buf.remaining() < csrc_count * 4 {
            return Err(Error::decode("truncated CSRC list"));
        }
        buf.advance(csrc_count * 4);

        let mut delay_field = None;
        if has_ext {
            if buf.remaining() < 4 {
                return Err(Error::decode("truncated extension header"));
            }
            let profile = buf.get_u16();
            let words = buf.get_u16() as usize;
            let ext_len = words * 4;
            if buf.remaining() < ext_len {
                return Err(Error::decode("truncated extension body"));
            }
            let mut ext = buf.split_to(ext_len);
            if profile == 0xBEDE {
                while ext.remaining() > 0 {
                    let tag = ext.get_u8();
                    if tag == 0 {
                        continue; // padding
                    }
                    let id = tag >> 4;
                    let len = (tag & 0x0F) as usize + 1;
                    if ext.remaining() < len {
                        return Err(Error::decode("truncated extension element"));
                    }
                    if id == DELAY_EXT_ID && len == 6 {
                        let hi = u64::from(ext.get_u16());
                        let lo = u64::from(ext.get_u32());
                        delay_field =
                            Some(SimDuration::from_micros((hi << 32) | lo));
                    } else {
                        ext.advance(len);
                    }
                }
            }
        }

        Ok(RtpPacket {
            header: RtpHeader {
                marker,
                kind,
                seq,
                timestamp,
                ssrc,
                delay_field,
            },
            payload: buf,
        })
    }

    /// Return a copy with `extra` added to the delay field (no-op when the
    /// packet carries no delay field). Called by every overlay hop with its
    /// processing time plus half the next hop's RTT (§6.1).
    #[must_use]
    pub fn with_added_delay(&self, extra: SimDuration) -> RtpPacket {
        let mut out = self.clone();
        if let Some(d) = out.header.delay_field {
            out.header.delay_field = Some(d + extra);
        }
        out
    }
}

/// Maps a stream ID to the SSRC used on the wire for that stream.
///
/// LiveNet gives every bitrate version its own stream ID (§5.2), so a 1:1
/// stream↔SSRC mapping suffices; we fold the 64-bit ID into 32 bits.
pub fn ssrc_for_stream(stream: StreamId) -> Ssrc {
    let raw = stream.raw();
    Ssrc((raw as u32) ^ ((raw >> 32) as u32) ^ 0x5EED_1E55)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(delay: Option<SimDuration>) -> RtpPacket {
        RtpPacket {
            header: RtpHeader {
                marker: true,
                kind: MediaKind::Video,
                seq: SeqNo(4242),
                timestamp: 0xDEAD_BEEF,
                ssrc: Ssrc(0x1234_5678),
                delay_field: delay,
            },
            payload: Bytes::from_static(b"hello frame data"),
        }
    }

    #[test]
    fn roundtrip_without_extension() {
        let p = sample(None);
        let decoded = RtpPacket::decode(p.encode()).unwrap();
        assert_eq!(decoded, p);
        assert_eq!(p.encode().len(), p.wire_len());
    }

    #[test]
    fn roundtrip_with_delay_field() {
        let p = sample(Some(SimDuration::from_micros(123_456)));
        let decoded = RtpPacket::decode(p.encode()).unwrap();
        assert_eq!(decoded, p);
        assert_eq!(p.encode().len(), p.wire_len());
    }

    #[test]
    fn audio_payload_type_roundtrip() {
        let mut p = sample(None);
        p.header.kind = MediaKind::Audio;
        p.header.marker = false;
        let decoded = RtpPacket::decode(p.encode()).unwrap();
        assert_eq!(decoded.header.kind, MediaKind::Audio);
        assert!(!decoded.header.marker);
    }

    #[test]
    fn decode_rejects_short_buffer() {
        assert!(RtpPacket::decode(Bytes::from_static(&[0u8; 4])).is_err());
    }

    #[test]
    fn decode_rejects_bad_version() {
        let mut bytes = sample(None).encode().to_vec();
        bytes[0] = 0x00; // version 0
        assert!(RtpPacket::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn decode_rejects_unknown_payload_type() {
        let mut bytes = sample(None).encode().to_vec();
        bytes[1] = 0x7F; // pt 127
        assert!(RtpPacket::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn with_added_delay_accumulates() {
        let p = sample(Some(SimDuration::from_millis(10)));
        let p2 = p
            .with_added_delay(SimDuration::from_millis(5))
            .with_added_delay(SimDuration::from_millis(7));
        assert_eq!(p2.header.delay_field, Some(SimDuration::from_millis(22)));
    }

    #[test]
    fn with_added_delay_noop_without_field() {
        let p = sample(None);
        let p2 = p.with_added_delay(SimDuration::from_millis(5));
        assert_eq!(p2.header.delay_field, None);
    }

    #[test]
    fn ssrc_for_stream_is_stable_and_spreads() {
        let a = ssrc_for_stream(StreamId::new(1));
        let b = ssrc_for_stream(StreamId::new(2));
        assert_eq!(a, ssrc_for_stream(StreamId::new(1)));
        assert_ne!(a, b);
    }

    #[test]
    fn large_delay_saturates_at_48_bits() {
        let p = sample(Some(SimDuration::from_secs(1_000_000_000)));
        let decoded = RtpPacket::decode(p.encode()).unwrap();
        let us = decoded.header.delay_field.unwrap().as_micros();
        assert_eq!(us, (1 << 48) - 1);
    }
}
