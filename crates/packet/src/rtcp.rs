//! RTCP feedback messages.
//!
//! The slow path (paper §5.1) scans for sequence holes every 50 ms and sends
//! the missing sequence numbers upstream in RTCP NACK messages; the upstream
//! node retransmits from its GoP/packet cache. Receiver reports carry the
//! loss and jitter statistics GCC needs, and a REMB-style message feeds the
//! delay-based bandwidth estimate back to the sender-side rate controller.
//!
//! The encodings are compact binary layouts in the spirit of RFC 4585 /
//! draft-alvestrand-rmcat-remb rather than byte-exact copies: the overlay
//! only ever talks to itself, so we keep the generic-NACK bitmask idea but
//! allow arbitrarily many entries per message.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use livenet_types::{Error, Result, SeqNo, Ssrc};
use serde::{Deserialize, Serialize};

const MAGIC: u8 = 0xCC;

const KIND_NACK: u8 = 1;
const KIND_RR: u8 = 2;
const KIND_REMB: u8 = 3;
const KIND_RTX_MISS: u8 = 4;

/// A negative acknowledgement listing lost sequence numbers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Nack {
    /// Stream whose packets were lost.
    pub ssrc: Ssrc,
    /// The missing sequence numbers (deduplicated, in detection order).
    pub lost: Vec<SeqNo>,
}

/// Receiver report: the slow path's periodic statistics to the upstream hop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReceiverReport {
    /// Stream being reported on.
    pub ssrc: Ssrc,
    /// Fraction of packets lost since the previous report, in [0, 1].
    pub loss_fraction: f64,
    /// Highest sequence number received.
    pub highest_seq: SeqNo,
    /// Interarrival jitter estimate in microseconds.
    pub jitter_us: u32,
}

/// Negative reply to a NACK: the sequence numbers the upstream could *not*
/// serve from its packet cache (lost on its own upstream link too, or
/// already evicted). Receiving this tells the requester to try an alternate
/// supplier immediately instead of waiting out the upstream's own recovery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RtxMiss {
    /// Stream the miss applies to.
    pub ssrc: Ssrc,
    /// The NACKed sequence numbers that missed the cache.
    pub missing: Vec<SeqNo>,
}

/// Receiver-estimated max bitrate (delay-based GCC output), bits per second.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Remb {
    /// Stream the estimate applies to.
    pub ssrc: Ssrc,
    /// Estimated available bitrate in bits per second.
    pub bitrate_bps: u64,
}

/// Any RTCP message the overlay exchanges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RtcpPacket {
    /// Loss report requesting retransmission.
    Nack(Nack),
    /// Periodic receiver statistics.
    ReceiverReport(ReceiverReport),
    /// Receiver-side bandwidth estimate.
    Remb(Remb),
    /// NACKed sequences the upstream's cache could not serve.
    RtxMiss(RtxMiss),
}

impl RtcpPacket {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        buf.put_u8(MAGIC);
        match self {
            RtcpPacket::Nack(n) => {
                buf.put_u8(KIND_NACK);
                buf.put_u32(n.ssrc.0);
                buf.put_u16(u16::try_from(n.lost.len().min(u16::MAX as usize)).unwrap());
                for s in n.lost.iter().take(u16::MAX as usize) {
                    buf.put_u16(s.0);
                }
            }
            RtcpPacket::ReceiverReport(r) => {
                buf.put_u8(KIND_RR);
                buf.put_u32(r.ssrc.0);
                // Loss fraction quantized to 1/256 as in RFC 3550.
                let q = (r.loss_fraction.clamp(0.0, 1.0) * 255.0).round() as u8;
                buf.put_u8(q);
                buf.put_u16(r.highest_seq.0);
                buf.put_u32(r.jitter_us);
            }
            RtcpPacket::Remb(m) => {
                buf.put_u8(KIND_REMB);
                buf.put_u32(m.ssrc.0);
                buf.put_u64(m.bitrate_bps);
            }
            RtcpPacket::RtxMiss(m) => {
                buf.put_u8(KIND_RTX_MISS);
                buf.put_u32(m.ssrc.0);
                buf.put_u16(u16::try_from(m.missing.len().min(u16::MAX as usize)).unwrap());
                for s in m.missing.iter().take(u16::MAX as usize) {
                    buf.put_u16(s.0);
                }
            }
        }
        buf.freeze()
    }

    /// Size of the encoded message in bytes.
    pub fn wire_len(&self) -> usize {
        match self {
            RtcpPacket::Nack(n) => 2 + 4 + 2 + 2 * n.lost.len().min(u16::MAX as usize),
            RtcpPacket::ReceiverReport(_) => 2 + 4 + 1 + 2 + 4,
            RtcpPacket::Remb(_) => 2 + 4 + 8,
            RtcpPacket::RtxMiss(m) => 2 + 4 + 2 + 2 * m.missing.len().min(u16::MAX as usize),
        }
    }

    /// Decode from wire bytes.
    pub fn decode(mut buf: Bytes) -> Result<RtcpPacket> {
        if buf.len() < 2 {
            return Err(Error::decode("RTCP packet too short"));
        }
        let magic = buf.get_u8();
        if magic != MAGIC {
            return Err(Error::decode(format!("bad RTCP magic {magic:#x}")));
        }
        let kind = buf.get_u8();
        match kind {
            KIND_NACK => {
                if buf.remaining() < 6 {
                    return Err(Error::decode("truncated NACK"));
                }
                let ssrc = Ssrc(buf.get_u32());
                let count = buf.get_u16() as usize;
                if buf.remaining() < count * 2 {
                    return Err(Error::decode("truncated NACK list"));
                }
                let lost = (0..count).map(|_| SeqNo(buf.get_u16())).collect();
                Ok(RtcpPacket::Nack(Nack { ssrc, lost }))
            }
            KIND_RR => {
                if buf.remaining() < 11 {
                    return Err(Error::decode("truncated RR"));
                }
                let ssrc = Ssrc(buf.get_u32());
                let q = buf.get_u8();
                let highest_seq = SeqNo(buf.get_u16());
                let jitter_us = buf.get_u32();
                Ok(RtcpPacket::ReceiverReport(ReceiverReport {
                    ssrc,
                    loss_fraction: f64::from(q) / 255.0,
                    highest_seq,
                    jitter_us,
                }))
            }
            KIND_REMB => {
                if buf.remaining() < 12 {
                    return Err(Error::decode("truncated REMB"));
                }
                let ssrc = Ssrc(buf.get_u32());
                let bitrate_bps = buf.get_u64();
                Ok(RtcpPacket::Remb(Remb { ssrc, bitrate_bps }))
            }
            KIND_RTX_MISS => {
                if buf.remaining() < 6 {
                    return Err(Error::decode("truncated RTX-miss"));
                }
                let ssrc = Ssrc(buf.get_u32());
                let count = buf.get_u16() as usize;
                if buf.remaining() < count * 2 {
                    return Err(Error::decode("truncated RTX-miss list"));
                }
                let missing = (0..count).map(|_| SeqNo(buf.get_u16())).collect();
                Ok(RtcpPacket::RtxMiss(RtxMiss { ssrc, missing }))
            }
            other => Err(Error::decode(format!("unknown RTCP kind {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nack_roundtrip() {
        let n = RtcpPacket::Nack(Nack {
            ssrc: Ssrc(42),
            lost: vec![SeqNo(1), SeqNo(5), SeqNo(65535)],
        });
        let d = RtcpPacket::decode(n.encode()).unwrap();
        assert_eq!(d, n);
        assert_eq!(n.encode().len(), n.wire_len());
    }

    #[test]
    fn empty_nack_roundtrip() {
        let n = RtcpPacket::Nack(Nack {
            ssrc: Ssrc(7),
            lost: vec![],
        });
        assert_eq!(RtcpPacket::decode(n.encode()).unwrap(), n);
    }

    #[test]
    fn rr_roundtrip_quantizes_loss() {
        let rr = RtcpPacket::ReceiverReport(ReceiverReport {
            ssrc: Ssrc(9),
            loss_fraction: 0.1,
            highest_seq: SeqNo(777),
            jitter_us: 1500,
        });
        match RtcpPacket::decode(rr.encode()).unwrap() {
            RtcpPacket::ReceiverReport(d) => {
                assert!((d.loss_fraction - 0.1).abs() < 1.0 / 255.0);
                assert_eq!(d.highest_seq, SeqNo(777));
                assert_eq!(d.jitter_us, 1500);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn remb_roundtrip() {
        let m = RtcpPacket::Remb(Remb {
            ssrc: Ssrc(3),
            bitrate_bps: 2_500_000,
        });
        assert_eq!(RtcpPacket::decode(m.encode()).unwrap(), m);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut bytes = RtcpPacket::Remb(Remb {
            ssrc: Ssrc(3),
            bitrate_bps: 1,
        })
        .encode()
        .to_vec();
        bytes[0] = 0x00;
        assert!(RtcpPacket::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn decode_rejects_unknown_kind() {
        let bytes = Bytes::from(vec![MAGIC, 99, 0, 0, 0, 0]);
        assert!(RtcpPacket::decode(bytes).is_err());
    }

    #[test]
    fn rtx_miss_roundtrip() {
        let m = RtcpPacket::RtxMiss(RtxMiss {
            ssrc: Ssrc(42),
            missing: vec![SeqNo(9), SeqNo(10), SeqNo(65535)],
        });
        let d = RtcpPacket::decode(m.encode()).unwrap();
        assert_eq!(d, m);
        assert_eq!(m.encode().len(), m.wire_len());
    }

    #[test]
    fn decode_rejects_truncated_rtx_miss_list() {
        // Claims 3 missing seqnos but provides none.
        let mut buf = BytesMut::new();
        buf.put_u8(MAGIC);
        buf.put_u8(KIND_RTX_MISS);
        buf.put_u32(1);
        buf.put_u16(3);
        assert!(RtcpPacket::decode(buf.freeze()).is_err());
    }

    #[test]
    fn decode_rejects_truncated_nack_list() {
        // Claims 4 lost seqnos but provides only 1.
        let mut buf = BytesMut::new();
        buf.put_u8(MAGIC);
        buf.put_u8(KIND_NACK);
        buf.put_u32(1);
        buf.put_u16(4);
        buf.put_u16(10);
        assert!(RtcpPacket::decode(buf.freeze()).is_err());
    }
}
