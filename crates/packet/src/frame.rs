//! Packetization of encoded frames into RTP packets, and reassembly.
//!
//! A frame is split into MTU-sized RTP packets sharing one timestamp; the
//! marker bit is set on the last packet of the frame (standard RTP video
//! framing). The depacketizer reassembles frames out of the slow path's
//! ordered packet stream and reports exactly which frames are complete —
//! the Framing Control module of Fig. 7 then groups frames into GoPs.

use crate::rtp::{MediaKind, RtpHeader, RtpPacket, MTU};
use bytes::{BufMut, Bytes};
use livenet_types::{SeqNo, SimDuration, Ssrc};
use std::collections::BTreeMap;

/// One-byte payload fragment header prepended to every packetized chunk, in
/// the spirit of the H.264 RTP payload format's FU indicator: real RTP gives
/// a frame *end* signal (the marker bit) but not a frame *start* signal,
/// which reassembly under reordering needs. Bits 4–7 carry an opaque
/// caller-supplied nibble (LiveNet uses it for the frame kind, so relays
/// and consumers can apply kind-aware policies — I-frame pacing gain,
/// B-frame dropping — without decoding the payload).
const FRAG_START: u8 = 0b0000_0001;

/// Extract the caller's meta nibble from a packetized RTP payload, if the
/// payload carries a fragment header.
pub fn frag_meta(payload: &[u8]) -> Option<u8> {
    payload.first().map(|b| b >> 4)
}

/// True when the packet payload is the first fragment of its frame.
pub fn frag_is_start(payload: &[u8]) -> bool {
    payload.first().is_some_and(|&b| b & FRAG_START != 0)
}

/// Splits frames into RTP packets, maintaining per-stream sequence state.
#[derive(Debug, Clone)]
pub struct Packetizer {
    ssrc: Ssrc,
    next_seq: SeqNo,
    payload_mtu: usize,
}

impl Packetizer {
    /// New packetizer for a stream; `first_seq` seeds the sequence space.
    pub fn new(ssrc: Ssrc, first_seq: SeqNo) -> Self {
        Packetizer {
            ssrc,
            next_seq: first_seq,
            payload_mtu: MTU - 24, // leave room for header + extension
        }
    }

    /// The sequence number the next produced packet will carry.
    pub fn next_seq(&self) -> SeqNo {
        self.next_seq
    }

    /// Packetize one encoded frame.
    ///
    /// `delay_field` is attached to the *first* packet only (the paper places
    /// the delay extension on the first packet of each I frame, §6.1);
    /// callers pass `None` for other frames.
    pub fn packetize(
        &mut self,
        kind: MediaKind,
        timestamp: u32,
        payload: &Bytes,
        delay_field: Option<SimDuration>,
    ) -> Vec<RtpPacket> {
        self.packetize_with_meta(kind, timestamp, payload, delay_field, 0)
    }

    /// [`Packetizer::packetize`] with a caller-supplied meta nibble stored in
    /// every fragment header (recoverable via [`frag_meta`]).
    pub fn packetize_with_meta(
        &mut self,
        kind: MediaKind,
        timestamp: u32,
        payload: &Bytes,
        delay_field: Option<SimDuration>,
        meta: u8,
    ) -> Vec<RtpPacket> {
        debug_assert!(meta <= 0x0F, "meta nibble out of range");
        let chunks: Vec<Bytes> = if payload.is_empty() {
            vec![Bytes::new()]
        } else {
            (0..payload.len())
                .step_by(self.payload_mtu)
                .map(|off| payload.slice(off..payload.len().min(off + self.payload_mtu)))
                .collect()
        };
        let n = chunks.len();
        chunks
            .into_iter()
            .enumerate()
            .map(|(i, chunk)| {
                let seq = self.next_seq;
                self.next_seq = self.next_seq.next();
                let mut framed = bytes::BytesMut::with_capacity(1 + chunk.len());
                framed.put_u8((meta << 4) | if i == 0 { FRAG_START } else { 0 });
                framed.extend_from_slice(&chunk);
                RtpPacket {
                    header: RtpHeader {
                        marker: i + 1 == n,
                        kind,
                        seq,
                        timestamp,
                        ssrc: self.ssrc,
                        delay_field: if i == 0 { delay_field } else { None },
                    },
                    payload: framed.freeze(),
                }
            })
            .collect()
    }
}

/// A frame reassembled by the depacketizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReassembledFrame {
    /// Media timestamp shared by all the frame's packets.
    pub timestamp: u32,
    /// Media kind.
    pub kind: MediaKind,
    /// First sequence number of the frame.
    pub first_seq: SeqNo,
    /// Last sequence number (the marker packet).
    pub last_seq: SeqNo,
    /// Concatenated payload.
    pub payload: Bytes,
    /// Delay field from the frame's first packet, if present.
    pub delay_field: Option<SimDuration>,
    /// The caller's meta nibble from the first fragment (LiveNet stores
    /// the frame kind here — a decoder needs it to sync on keyframes).
    pub meta: u8,
}

impl ReassembledFrame {
    /// Number of RTP packets the frame spanned.
    pub fn packet_count(&self) -> usize {
        (self.last_seq.distance(self.first_seq) + 1) as usize
    }
}

/// Internal per-frame assembly state, exposed for inspection in tests.
#[derive(Debug, Clone, Default)]
pub struct FrameAssembly {
    packets: BTreeMap<u16, RtpPacket>,
}

/// Reassembles frames from (possibly reordered) RTP packets of one stream.
///
/// Packets are grouped by timestamp. A frame completes when a contiguous
/// sequence run ending in a marker packet is present. Frames complete in any
/// order; the caller (the framing module) is responsible for playout order.
#[derive(Debug, Default)]
pub struct Depacketizer {
    pending: BTreeMap<u32, FrameAssembly>,
    /// Frames completed and not yet taken.
    ready: Vec<ReassembledFrame>,
    /// Highest timestamp ever completed (used to GC stragglers).
    max_done_ts: Option<u32>,
}

impl Depacketizer {
    /// Empty depacketizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of incomplete frames currently buffered.
    pub fn pending_frames(&self) -> usize {
        self.pending.len()
    }

    /// Feed one packet; complete frames become available via [`Self::drain`].
    pub fn push(&mut self, packet: RtpPacket) {
        let ts = packet.header.timestamp;
        let entry = self.pending.entry(ts).or_default();
        entry.packets.insert(packet.header.seq.0, packet);

        if let Some(frame) = Self::try_complete(entry) {
            self.pending.remove(&ts);
            self.max_done_ts = Some(self.max_done_ts.map_or(ts, |m| m.max(ts)));
            self.ready.push(frame);
        }
    }

    /// Take all frames completed since the last drain.
    pub fn drain(&mut self) -> Vec<ReassembledFrame> {
        std::mem::take(&mut self.ready)
    }

    /// Drop incomplete frames older than `keep` distinct timestamps behind
    /// the newest completed frame. Returns the number of frames discarded.
    ///
    /// This is how a consumer bounds memory when a frame can never complete
    /// (all retransmissions failed): the viewer will skip it.
    pub fn gc(&mut self, keep: usize) -> usize {
        let Some(max_done) = self.max_done_ts else {
            return 0;
        };
        let stale: Vec<u32> = self
            .pending
            .keys()
            .copied()
            .filter(|&ts| {
                // Timestamps more than `keep` frame-periods behind; use
                // wrapping distance on the 32-bit timestamp space.
                let dist = max_done.wrapping_sub(ts);
                dist < 0x8000_0000 && dist > keep as u32 * 3000
            })
            .collect();
        let n = stale.len();
        for ts in stale {
            self.pending.remove(&ts);
        }
        n
    }

    fn try_complete(assembly: &mut FrameAssembly) -> Option<ReassembledFrame> {
        // A frame is delimited by the start flag in the fragment header and
        // the RTP marker bit: it is complete when both anchors are present
        // and every sequence number between them has arrived.
        let (&last, marker_pkt) = assembly.packets.iter().find(|(_, p)| p.header.marker)?;
        let kind = marker_pkt.header.kind;
        let (&first, _) = assembly
            .packets
            .iter()
            .find(|(_, p)| p.payload.first().is_some_and(|&b| b & FRAG_START != 0))?;
        let span = SeqNo(last).distance(SeqNo(first));
        if span < 0 {
            return None; // marker precedes start: stray packets, keep waiting
        }
        let span = span as usize + 1;
        // Check every seq in [first..=last] is present (handles u16 wrap).
        let mut expect = SeqNo(first);
        for _ in 0..span {
            if !assembly.packets.contains_key(&expect.0) {
                return None;
            }
            expect = expect.next();
        }

        let packets = std::mem::take(&mut assembly.packets);
        let mut payload = bytes::BytesMut::new();
        let mut delay_field = None;
        let mut timestamp = 0;
        let mut meta = 0;
        let mut seq = SeqNo(first);
        for _ in 0..span {
            let p = &packets[&seq.0];
            if seq.0 == first {
                delay_field = p.header.delay_field;
                timestamp = p.header.timestamp;
                meta = frag_meta(&p.payload).unwrap_or(0);
            }
            // Strip the 1-byte fragment header.
            payload.extend_from_slice(&p.payload[1.min(p.payload.len())..]);
            seq = seq.next();
        }
        Some(ReassembledFrame {
            timestamp,
            kind,
            first_seq: SeqNo(first),
            last_seq: SeqNo(last),
            payload: payload.freeze(),
            delay_field,
            meta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livenet_types::SimDuration;

    fn make_payload(len: usize) -> Bytes {
        Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn single_packet_frame_roundtrips() {
        let mut p = Packetizer::new(Ssrc(1), SeqNo(100));
        let payload = make_payload(500);
        let pkts = p.packetize(MediaKind::Video, 3000, &payload, None);
        assert_eq!(pkts.len(), 1);
        assert!(pkts[0].header.marker);

        let mut d = Depacketizer::new();
        d.push(pkts[0].clone());
        let frames = d.drain();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].payload, payload);
        assert_eq!(frames[0].packet_count(), 1);
    }

    #[test]
    fn multi_packet_frame_reassembles_in_order() {
        let mut p = Packetizer::new(Ssrc(1), SeqNo(0));
        let payload = make_payload(5000);
        let pkts = p.packetize(MediaKind::Video, 6000, &payload, None);
        assert!(pkts.len() > 1);
        assert!(pkts.last().unwrap().header.marker);
        assert!(pkts[..pkts.len() - 1].iter().all(|p| !p.header.marker));

        let mut d = Depacketizer::new();
        for pkt in &pkts {
            d.push(pkt.clone());
        }
        let frames = d.drain();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].payload, payload);
        assert_eq!(frames[0].packet_count(), pkts.len());
    }

    #[test]
    fn reordered_packets_still_reassemble() {
        let mut p = Packetizer::new(Ssrc(1), SeqNo(10));
        let payload = make_payload(4000);
        let mut pkts = p.packetize(MediaKind::Video, 9000, &payload, None);
        pkts.reverse();

        let mut d = Depacketizer::new();
        for pkt in pkts {
            d.push(pkt);
        }
        let frames = d.drain();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].payload, payload);
    }

    #[test]
    fn incomplete_frame_stays_pending() {
        let mut p = Packetizer::new(Ssrc(1), SeqNo(0));
        let pkts = p.packetize(MediaKind::Video, 3000, &make_payload(4000), None);
        let mut d = Depacketizer::new();
        for pkt in pkts.iter().skip(1) {
            d.push(pkt.clone());
        }
        assert!(d.drain().is_empty());
        assert_eq!(d.pending_frames(), 1);
        // The missing packet arrives (e.g. via retransmission).
        d.push(pkts[0].clone());
        assert_eq!(d.drain().len(), 1);
        assert_eq!(d.pending_frames(), 0);
    }

    #[test]
    fn sequence_continues_across_frames() {
        let mut p = Packetizer::new(Ssrc(1), SeqNo(0));
        let a = p.packetize(MediaKind::Video, 0, &make_payload(3000), None);
        let b = p.packetize(MediaKind::Video, 3000, &make_payload(3000), None);
        assert_eq!(
            b[0].header.seq.0,
            a.last().unwrap().header.seq.0.wrapping_add(1)
        );
    }

    #[test]
    fn delay_field_only_on_first_packet() {
        let mut p = Packetizer::new(Ssrc(1), SeqNo(0));
        let pkts = p.packetize(
            MediaKind::Video,
            0,
            &make_payload(4000),
            Some(SimDuration::from_millis(1)),
        );
        assert!(pkts[0].header.delay_field.is_some());
        assert!(pkts[1..].iter().all(|p| p.header.delay_field.is_none()));
    }

    #[test]
    fn frames_complete_out_of_order() {
        let mut p = Packetizer::new(Ssrc(1), SeqNo(0));
        let f1 = p.packetize(MediaKind::Video, 0, &make_payload(2500), None);
        let f2 = p.packetize(MediaKind::Video, 3000, &make_payload(800), None);

        let mut d = Depacketizer::new();
        // Frame 2 fully arrives first; frame 1 is missing a packet.
        d.push(f2[0].clone());
        d.push(f1[1].clone());
        let done = d.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].timestamp, 3000);
        // Frame 1 completes later.
        d.push(f1[0].clone());
        d.push(f1[2].clone());
        let done = d.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].timestamp, 0);
    }

    #[test]
    fn gc_discards_stale_incomplete_frames() {
        let mut p = Packetizer::new(Ssrc(1), SeqNo(0));
        // Incomplete old frame at ts=0.
        let old = p.packetize(MediaKind::Video, 0, &make_payload(4000), None);
        let mut d = Depacketizer::new();
        d.push(old[0].clone());
        // Complete new frame far in the future.
        let newer = p.packetize(MediaKind::Video, 90_000, &make_payload(100), None);
        for pkt in newer {
            d.push(pkt);
        }
        d.drain();
        assert_eq!(d.pending_frames(), 1);
        let dropped = d.gc(4);
        assert_eq!(dropped, 1);
        assert_eq!(d.pending_frames(), 0);
    }

    #[test]
    fn meta_nibble_roundtrips_on_every_fragment() {
        let mut p = Packetizer::new(Ssrc(1), SeqNo(0));
        let pkts = p.packetize_with_meta(MediaKind::Video, 0, &make_payload(4000), None, 0x9);
        assert!(pkts.len() > 1);
        for (i, pkt) in pkts.iter().enumerate() {
            assert_eq!(frag_meta(&pkt.payload), Some(0x9));
            assert_eq!(frag_is_start(&pkt.payload), i == 0);
        }
        // Reassembly strips the header cleanly regardless of meta.
        let mut d = Depacketizer::new();
        for pkt in pkts {
            d.push(pkt);
        }
        assert_eq!(d.drain()[0].payload, make_payload(4000));
    }

    #[test]
    fn empty_payload_yields_one_packet() {
        let mut p = Packetizer::new(Ssrc(1), SeqNo(0));
        let pkts = p.packetize(MediaKind::Audio, 0, &Bytes::new(), None);
        assert_eq!(pkts.len(), 1);
        assert!(pkts[0].header.marker);
    }
}
