//! Wire formats for the LiveNet data plane.
//!
//! The overlay transports live video as RTP packets and control feedback as
//! RTCP packets (Fig. 6 of the paper). This crate implements, from scratch:
//!
//! * an RTP packet model and binary codec ([`rtp`]), including the paper's
//!   cumulative *delay field* header extension used to measure end-to-end
//!   streaming delay (§6.1),
//! * RTCP feedback messages ([`rtcp`]): NACKs for per-hop loss recovery,
//!   receiver reports carrying the slow path's loss/delay statistics, and a
//!   REMB-style bandwidth estimate used by GCC,
//! * packetization of encoded video frames into MTU-sized RTP packets and
//!   loss-tolerant reassembly ([`frame`]).
//!
//! Everything here is sans-I/O: codecs operate on [`bytes::Bytes`] buffers and
//! are driven by the emulator or the tokio transport.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod rtcp;
pub mod rtp;

pub use frame::{frag_is_start, frag_meta, Depacketizer, FrameAssembly, Packetizer, ReassembledFrame};
pub use rtcp::{Nack, ReceiverReport, Remb, RtcpPacket, RtxMiss};
pub use rtp::{MediaKind, RtpHeader, RtpPacket, DELAY_EXT_ID, MTU, RTP_CLOCK_HZ};
