//! Property-based tests for the wire formats and packetization.

use bytes::Bytes;
use livenet_packet::{
    Depacketizer, MediaKind, Nack, Packetizer, ReceiverReport, Remb, RtcpPacket, RtpHeader,
    RtpPacket,
};
use livenet_types::{DetRng, SeqNo, SimDuration, Ssrc};
use proptest::prelude::*;

fn arb_header(
    marker: bool,
    pt_audio: bool,
    seq: u16,
    ts: u32,
    ssrc: u32,
    delay: Option<u64>,
) -> RtpHeader {
    RtpHeader {
        marker,
        kind: if pt_audio { MediaKind::Audio } else { MediaKind::Video },
        seq: SeqNo(seq),
        timestamp: ts,
        ssrc: Ssrc(ssrc),
        delay_field: delay.map(SimDuration::from_micros),
    }
}

proptest! {
    /// Any RTP packet survives an encode/decode roundtrip.
    #[test]
    fn rtp_roundtrip(
        marker: bool,
        audio: bool,
        seq: u16,
        ts: u32,
        ssrc: u32,
        delay in prop::option::of(0u64..(1 << 46)),
        payload in prop::collection::vec(any::<u8>(), 0..3000),
    ) {
        let pkt = RtpPacket {
            header: arb_header(marker, audio, seq, ts, ssrc, delay),
            payload: Bytes::from(payload),
        };
        let decoded = RtpPacket::decode(pkt.encode()).expect("roundtrip");
        prop_assert_eq!(&decoded, &pkt);
        prop_assert_eq!(pkt.encode().len(), pkt.wire_len());
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn rtp_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = RtpPacket::decode(Bytes::from(bytes));
    }

    /// The 48-bit delay extension: any microsecond value below 2^48
    /// roundtrips exactly through encode/decode; anything above saturates
    /// to the field's ceiling instead of wrapping.
    #[test]
    fn delay_field_48bit_roundtrip(us in 0u64..(1 << 50)) {
        let pkt = RtpPacket {
            header: arb_header(false, false, 1, 2, 3, Some(us)),
            payload: Bytes::from_static(b"x"),
        };
        let decoded = RtpPacket::decode(pkt.encode()).expect("decode");
        let expect = us.min((1 << 48) - 1);
        prop_assert_eq!(
            decoded.header.delay_field,
            Some(SimDuration::from_micros(expect))
        );
    }

    /// Per-hop accumulation (`with_added_delay`) survives the wire: the
    /// decoded field equals the saturating sum of both hops' delays.
    #[test]
    fn delay_field_accumulates_across_hops(a in 0u64..(1 << 47), b in 0u64..(1 << 47)) {
        let pkt = RtpPacket {
            header: arb_header(true, false, 9, 9, 9, Some(a)),
            payload: Bytes::from_static(b"y"),
        };
        let hopped = pkt.with_added_delay(SimDuration::from_micros(b));
        let decoded = RtpPacket::decode(hopped.encode()).expect("decode");
        prop_assert_eq!(
            decoded.header.delay_field.map(|d| d.as_micros()),
            Some((a + b).min((1 << 48) - 1))
        );
    }

    /// RTCP messages roundtrip.
    #[test]
    fn rtcp_roundtrip(
        ssrc: u32,
        lost in prop::collection::vec(any::<u16>(), 0..100),
        loss in 0.0f64..1.0,
        seq: u16,
        jitter: u32,
        bitrate: u64,
    ) {
        let nack = RtcpPacket::Nack(Nack {
            ssrc: Ssrc(ssrc),
            lost: lost.iter().map(|&s| SeqNo(s)).collect(),
        });
        prop_assert_eq!(RtcpPacket::decode(nack.encode()).expect("nack"), nack);

        let rr = RtcpPacket::ReceiverReport(ReceiverReport {
            ssrc: Ssrc(ssrc),
            loss_fraction: loss,
            highest_seq: SeqNo(seq),
            jitter_us: jitter,
        });
        match RtcpPacket::decode(rr.encode()).expect("rr") {
            RtcpPacket::ReceiverReport(d) => {
                prop_assert!((d.loss_fraction - loss).abs() <= 1.0 / 255.0 + 1e-9);
                prop_assert_eq!(d.highest_seq, SeqNo(seq));
            }
            other => prop_assert!(false, "wrong kind {:?}", other),
        }

        let remb = RtcpPacket::Remb(Remb { ssrc: Ssrc(ssrc), bitrate_bps: bitrate });
        prop_assert_eq!(RtcpPacket::decode(remb.encode()).expect("remb"), remb);
    }

    /// RTCP decode never panics on garbage.
    #[test]
    fn rtcp_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = RtcpPacket::decode(Bytes::from(bytes));
    }

    /// Packetize → shuffle → depacketize reproduces the payload exactly,
    /// for any frame size, meta nibble and start seq.
    #[test]
    fn packetize_depacketize_roundtrip(
        size in 0usize..20_000,
        first_seq: u16,
        ts: u32,
        meta in 0u8..16,
        shuffle_seed: u64,
    ) {
        let payload = Bytes::from((0..size).map(|i| (i % 255) as u8).collect::<Vec<u8>>());
        let mut p = Packetizer::new(Ssrc(1), SeqNo(first_seq));
        let mut pkts = p.packetize_with_meta(MediaKind::Video, ts, &payload, None, meta);
        let mut rng = DetRng::seed(shuffle_seed);
        rng.shuffle(&mut pkts);

        let mut d = Depacketizer::new();
        for pkt in pkts {
            d.push(pkt);
        }
        let frames = d.drain();
        prop_assert_eq!(frames.len(), 1);
        prop_assert_eq!(&frames[0].payload, &payload);
        prop_assert_eq!(frames[0].timestamp, ts);
        prop_assert_eq!(d.pending_frames(), 0);
    }

    /// Multiple frames interleaved out of order all reassemble.
    #[test]
    fn multi_frame_interleaving(
        sizes in prop::collection::vec(1usize..5_000, 1..8),
        shuffle_seed: u64,
    ) {
        let mut p = Packetizer::new(Ssrc(9), SeqNo(0));
        let mut all = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let payload = Bytes::from(vec![i as u8; size]);
            all.extend(p.packetize(MediaKind::Video, (i as u32) * 3000, &payload, None));
        }
        let mut rng = DetRng::seed(shuffle_seed);
        rng.shuffle(&mut all);
        let mut d = Depacketizer::new();
        let mut done = 0;
        for pkt in all {
            d.push(pkt);
            done += d.drain().len();
        }
        prop_assert_eq!(done, sizes.len());
    }
}
