//! The Hier per-session delay model.
//!
//! Hier transports RTMP over TCP with full-stack, store-and-forward
//! processing at every hop (paper §2.2). The CDN path delay of a session
//! decomposes into:
//!
//! * per-hop propagation (half the link RTT),
//! * per-node application-stack processing — large for Hier because every
//!   node runs the whole RTMP stack and the streaming center additionally
//!   transcodes,
//! * expected TCP head-of-line/retransmission stalls on lossy hops
//!   (a lost segment stalls in-order delivery for about one RTT plus the
//!   retransmission; amortized over the loss probability).
//!
//! The constants were calibrated against the paper's Fig. 11: a 0-length
//! LiveNet path (pure processing) sits near 100–150 ms, and the fixed
//! 4-hop Hier path near 390–400 ms (Table 1).

use crate::control::HierPath;
use livenet_topology::Topology;
use livenet_types::{NodeId, SimDuration};
use serde::{Deserialize, Serialize};

/// Tunables of the Hier delay model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierDelayParams {
    /// Full-stack store-and-forward processing per L1/L2 hop.
    pub hop_processing: SimDuration,
    /// Streaming-center processing (media pipeline + transcoding).
    pub center_processing: SimDuration,
    /// Multiplier on `loss × RTT` for expected TCP stall per hop.
    pub tcp_stall_factor: f64,
}

impl Default for HierDelayParams {
    fn default() -> Self {
        HierDelayParams {
            hop_processing: SimDuration::from_millis(47),
            center_processing: SimDuration::from_millis(128),
            tcp_stall_factor: 1.5,
        }
    }
}

/// Computes session delay components for Hier paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierDelayModel {
    /// Parameters.
    pub params: HierDelayParams,
}

impl HierDelayModel {
    /// Model with explicit parameters.
    pub fn new(params: HierDelayParams) -> Self {
        HierDelayModel { params }
    }

    /// CDN path delay (ingress L1 → egress L1) for a pinned path.
    ///
    /// Returns `None` when the path references links missing from the
    /// topology.
    pub fn cdn_path_delay(&self, topology: &Topology, path: &HierPath) -> Option<SimDuration> {
        self.cdn_path_delay_nodes(topology, &path.nodes)
    }

    /// Slice-based variant of [`Self::cdn_path_delay`] — callers holding a
    /// node sequence can price it without building a [`HierPath`].
    pub fn cdn_path_delay_nodes(
        &self,
        topology: &Topology,
        nodes: &[NodeId],
    ) -> Option<SimDuration> {
        let mut total = SimDuration::ZERO;
        for w in nodes.windows(2) {
            if w[0] == w[1] {
                continue; // degenerate hop (same node chosen twice)
            }
            let link = topology.link(w[0], w[1])?;
            total += link.rtt / 2;
            // Expected TCP stall: loss × RTT × factor.
            let stall_ms =
                link.loss * link.rtt.as_millis_f64() * self.params.tcp_stall_factor;
            total += SimDuration::from_millis_f64(stall_ms);
        }
        // Node processing: center transcodes, the others store-and-forward.
        // The egress L1 (last node) also runs the stack; the ingress L1's
        // receive-side cost is charged to the first-mile, matching how the
        // paper attributes encoding + first mile to the client side.
        let center = nodes.get(2).copied();
        for (i, &n) in nodes.iter().enumerate() {
            if i == 0 {
                continue;
            }
            if Some(n) == center && i == 2 {
                total += self.params.center_processing;
            } else {
                total += self.params.hop_processing;
            }
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::HierController;
    use crate::roles::HierRoles;
    use livenet_topology::{GeoConfig, GeoTopology};
    use livenet_types::{NodeId, StreamId};

    fn setup(seed: u64) -> (Topology, HierController, Vec<NodeId>) {
        let g = GeoTopology::generate(&GeoConfig::paper_scale(seed));
        let roles = HierRoles::assign(&g.topology, 2);
        let l1: Vec<NodeId> = roles.l1_nodes().collect();
        (g.topology, HierController::new(roles), l1)
    }

    #[test]
    fn delay_includes_all_components() {
        let (topo, mut ctl, l1) = setup(1);
        let s = StreamId::new(1);
        ctl.register_stream(&topo, s, l1[0]).unwrap();
        let path = ctl.path_for(&topo, s, l1[7]).unwrap();
        let model = HierDelayModel::default();
        let d = model.cdn_path_delay(&topo, &path).unwrap();
        // Floor: center processing + 3 hop processings (4 post-ingress
        // nodes, one of which is the center).
        let floor = SimDuration::from_millis(110 + 3 * 35);
        assert!(d > floor, "d={d} <= floor {floor}");
        // And it is bounded by something sane (< 2 s).
        assert!(d < SimDuration::from_secs(2), "d={d}");
    }

    #[test]
    fn lossier_links_increase_delay() {
        let (mut topo, mut ctl, l1) = setup(2);
        let s = StreamId::new(1);
        ctl.register_stream(&topo, s, l1[0]).unwrap();
        let path = ctl.path_for(&topo, s, l1[3]).unwrap();
        let model = HierDelayModel::default();
        let before = model.cdn_path_delay(&topo, &path).unwrap();
        // Inject 5% loss on the first hop.
        topo.link_mut(path.nodes[0], path.nodes[1]).unwrap().loss = 0.05;
        let after = model.cdn_path_delay(&topo, &path).unwrap();
        assert!(after > before);
    }

    #[test]
    fn median_hier_delay_is_paper_scale() {
        // Over many L1 pairs, the median Hier CDN delay should land in the
        // paper's 350–450 ms band (Table 1: 393 ms).
        let (topo, mut ctl, l1) = setup(3);
        let model = HierDelayModel::default();
        let mut delays: Vec<f64> = Vec::new();
        for (i, &prod) in l1.iter().enumerate() {
            let s = StreamId::new(i as u64);
            ctl.register_stream(&topo, s, prod).unwrap();
            for &cons in l1.iter().skip(i % 3).step_by(3) {
                let path = ctl.path_for(&topo, s, cons).unwrap();
                delays.push(
                    model
                        .cdn_path_delay(&topo, &path)
                        .unwrap()
                        .as_millis_f64(),
                );
            }
        }
        delays.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = delays[delays.len() / 2];
        assert!(
            (280.0..520.0).contains(&median),
            "median Hier delay {median} ms out of band"
        );
    }
}
