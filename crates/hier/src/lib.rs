//! The `Hier` baseline (paper §2.2): Alibaba's first-generation
//! hierarchical video transport network.
//!
//! Hier organizes CDN nodes in two layers under a powerful streaming
//! center. Every stream climbs L1 → L2 → center and descends center → L2 →
//! L1 to each viewer: the path length is fixed at 4 overlay hops. A
//! VDN-like centralized controller maps L1 nodes to L2 nodes per stream to
//! avoid congested links, and L1/L2 nodes cache GoPs. Transport inside the
//! overlay is RTMP over TCP: reliable, in-order, store-and-forward at every
//! hop — which is exactly what makes Hier slow: full-stack processing per
//! hop and TCP head-of-line blocking under loss.
//!
//! This crate reuses the same [`livenet_topology::Topology`] ground truth
//! as LiveNet so the two systems are compared on identical footprints
//! (mirroring the paper's methodology, §6.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod control;
pub mod delay;
pub mod roles;

pub use control::{HierController, HierPath};
pub use delay::{HierDelayModel, HierDelayParams};
pub use roles::{HierRoles, Layer};
