//! Static role assignment for the hierarchical CDN.
//!
//! Unlike LiveNet's flat design, Hier pins every node to a fixed layer:
//! well-peered hub nodes become L2 aggregation nodes, everything else is an
//! L1 edge, and the streaming center lives in a small set of data-center
//! locations (we pick the best-connected hubs). This is the rigidity the
//! paper's §2.3 complains about: "many of our edge (leaf) nodes remain
//! underutilized, while our root nodes are heavily overloaded".

use livenet_topology::Topology;
use livenet_types::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A node's fixed layer in Hier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layer {
    /// Edge node serving broadcasters and viewers.
    L1,
    /// Aggregation node with more bandwidth/storage.
    L2,
    /// The streaming center (media processing + management).
    Center,
}

/// The static layer map.
#[derive(Debug, Clone)]
pub struct HierRoles {
    layers: BTreeMap<NodeId, Layer>,
    l2_nodes: Vec<NodeId>,
    centers: Vec<NodeId>,
}

impl HierRoles {
    /// Assign layers from the shared topology: well-peered nodes → L2,
    /// `num_centers` of them (the best-connected, i.e. lowest mean RTT to
    /// other hubs) → streaming-center replicas, the rest → L1.
    pub fn assign(topology: &Topology, num_centers: usize) -> HierRoles {
        let hubs: Vec<NodeId> = topology
            .nodes()
            .filter(|n| n.well_peered && !n.last_resort)
            .map(|n| n.id)
            .collect();
        // Rank hubs by mean RTT to the other hubs (center candidates).
        let mut ranked: Vec<(NodeId, f64)> = hubs
            .iter()
            .map(|&h| {
                let mut total = 0.0;
                let mut count = 0u32;
                for &other in &hubs {
                    if other != h {
                        if let Some(l) = topology.link(h, other) {
                            total += l.rtt.as_millis_f64();
                            count += 1;
                        }
                    }
                }
                (h, if count == 0 { f64::MAX } else { total / f64::from(count) })
            })
            .collect();
        ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let centers: Vec<NodeId> = ranked
            .iter()
            .take(num_centers.max(1))
            .map(|(n, _)| *n)
            .collect();

        let mut layers = BTreeMap::new();
        let mut l2_nodes = Vec::new();
        for info in topology.nodes() {
            if info.last_resort {
                continue; // not part of Hier
            }
            let layer = if centers.contains(&info.id) {
                Layer::Center
            } else if info.well_peered {
                l2_nodes.push(info.id);
                Layer::L2
            } else {
                Layer::L1
            };
            layers.insert(info.id, layer);
        }
        HierRoles {
            layers,
            l2_nodes,
            centers,
        }
    }

    /// Layer of a node (None for nodes outside Hier, e.g. last-resort).
    pub fn layer(&self, node: NodeId) -> Option<Layer> {
        self.layers.get(&node).copied()
    }

    /// All L2 aggregation nodes.
    pub fn l2_nodes(&self) -> &[NodeId] {
        &self.l2_nodes
    }

    /// Streaming-center replicas.
    pub fn centers(&self) -> &[NodeId] {
        &self.centers
    }

    /// All L1 edges.
    pub fn l1_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.layers
            .iter()
            .filter(|(_, l)| **l == Layer::L1)
            .map(|(n, _)| *n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livenet_topology::{GeoConfig, GeoTopology};

    #[test]
    fn assign_produces_all_three_layers() {
        let g = GeoTopology::generate(&GeoConfig::paper_scale(1));
        let roles = HierRoles::assign(&g.topology, 2);
        assert_eq!(roles.centers().len(), 2);
        assert!(!roles.l2_nodes().is_empty());
        assert!(roles.l1_nodes().count() > roles.l2_nodes().len());
    }

    #[test]
    fn centers_are_hubs_and_not_l2() {
        let g = GeoTopology::generate(&GeoConfig::paper_scale(2));
        let roles = HierRoles::assign(&g.topology, 2);
        for &c in roles.centers() {
            assert_eq!(roles.layer(c), Some(Layer::Center));
            assert!(g.topology.node(c).unwrap().well_peered);
            assert!(!roles.l2_nodes().contains(&c));
        }
    }

    #[test]
    fn last_resort_nodes_excluded() {
        let g = GeoTopology::generate(&GeoConfig::paper_scale(3));
        let roles = HierRoles::assign(&g.topology, 1);
        for lr in g.topology.last_resort_ids() {
            assert_eq!(roles.layer(lr), None);
        }
    }

    #[test]
    fn deterministic_assignment() {
        let g = GeoTopology::generate(&GeoConfig::paper_scale(4));
        let a = HierRoles::assign(&g.topology, 2);
        let b = HierRoles::assign(&g.topology, 2);
        assert_eq!(a.centers(), b.centers());
        assert_eq!(a.l2_nodes(), b.l2_nodes());
    }
}
