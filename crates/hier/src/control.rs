//! The Hier controller: VDN-like centralized L1→L2 mapping (paper §2.2).
//!
//! "We implemented a centralized control to coordinately map L1 nodes to L2
//! nodes for individual streams. The control ... has a global view of the
//! CDN overlay state and computes the map to optimize the predefined
//! utility. By doing so, we avoid path congestion due to static mapping."
//!
//! The utility here is the natural one: pick, per (L1, stream), the L2
//! whose combination of link RTT and current load is cheapest, and pin the
//! full 4-hop path L1 → L2 → center → L2' → L1'.

use crate::roles::HierRoles;
use livenet_topology::Topology;
use livenet_types::{Error, NodeId, Result, StreamId};
use std::collections::HashMap;

/// A pinned hierarchical path (always 4 hops / 5 nodes, unless degenerate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierPath {
    /// L1 ingest (broadcaster side), up-L2, center, down-L2, L1 egress.
    pub nodes: Vec<NodeId>,
}

impl HierPath {
    /// Number of overlay hops.
    pub fn hops(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }
}

/// Per-L2 load counter used by the mapping utility.
#[derive(Debug, Default, Clone)]
struct L2Load {
    streams: u32,
}

/// The centralized Hier controller.
#[derive(Debug)]
pub struct HierController {
    roles: HierRoles,
    /// Producer L1 of each active stream.
    streams: HashMap<StreamId, NodeId>,
    /// Chosen uplink L2 per stream (stable for the stream's life).
    uplink: HashMap<StreamId, NodeId>,
    /// Chosen center per stream.
    center: HashMap<StreamId, NodeId>,
    /// Load counters per L2.
    l2_load: HashMap<NodeId, L2Load>,
}

impl HierController {
    /// New controller over a role assignment.
    pub fn new(roles: HierRoles) -> Self {
        HierController {
            roles,
            streams: HashMap::new(),
            uplink: HashMap::new(),
            center: HashMap::new(),
            l2_load: HashMap::new(),
        }
    }

    /// Role map access.
    pub fn roles(&self) -> &HierRoles {
        &self.roles
    }

    /// Register a new stream uploading at L1 `producer`; picks and pins the
    /// uplink L2 and center.
    pub fn register_stream(
        &mut self,
        topology: &Topology,
        stream: StreamId,
        producer: NodeId,
    ) -> Result<()> {
        let l2 = self
            .best_l2(topology, producer)
            .ok_or_else(|| Error::exhausted("no L2 reachable from producer"))?;
        let center = self
            .best_center(topology, l2)
            .ok_or_else(|| Error::exhausted("no center reachable"))?;
        self.streams.insert(stream, producer);
        self.uplink.insert(stream, l2);
        self.center.insert(stream, center);
        self.l2_load.entry(l2).or_default().streams += 1;
        Ok(())
    }

    /// Remove a finished stream.
    pub fn unregister_stream(&mut self, stream: StreamId) {
        self.streams.remove(&stream);
        if let Some(l2) = self.uplink.remove(&stream) {
            if let Some(load) = self.l2_load.get_mut(&l2) {
                load.streams = load.streams.saturating_sub(1);
            }
        }
        self.center.remove(&stream);
    }

    /// Producer of a stream.
    pub fn producer_of(&self, stream: StreamId) -> Option<NodeId> {
        self.streams.get(&stream).copied()
    }

    /// Compute the 4-hop path for a viewer attached to L1 `consumer`.
    ///
    /// When producer == consumer the content still climbs to the center and
    /// back (the rigidity the paper criticizes): L1 → L2 → C → L2 → L1.
    pub fn path_for(
        &mut self,
        topology: &Topology,
        stream: StreamId,
        consumer: NodeId,
    ) -> Result<HierPath> {
        let producer = self
            .producer_of(stream)
            .ok_or_else(|| Error::not_found(format!("stream {stream}")))?;
        let up_l2 = self.uplink[&stream];
        let center = self.center[&stream];
        let down_l2 = self
            .best_l2(topology, consumer)
            .ok_or_else(|| Error::exhausted("no L2 reachable from consumer"))?;
        self.l2_load.entry(down_l2).or_default().streams += 1;
        Ok(HierPath {
            nodes: vec![producer, up_l2, center, down_l2, consumer],
        })
    }

    /// The VDN-like utility: minimize RTT × (1 + load-pressure).
    fn best_l2(&self, topology: &Topology, l1: NodeId) -> Option<NodeId> {
        self.roles
            .l2_nodes()
            .iter()
            .filter_map(|&l2| {
                let rtt = topology.link(l1, l2)?.rtt.as_millis_f64();
                let load = self
                    .l2_load
                    .get(&l2)
                    .map(|l| f64::from(l.streams))
                    .unwrap_or(0.0);
                // Each pinned stream adds pressure; 50 streams double cost.
                Some((l2, rtt * (1.0 + load / 50.0)))
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(l2, _)| l2)
    }

    fn best_center(&self, topology: &Topology, l2: NodeId) -> Option<NodeId> {
        self.roles
            .centers()
            .iter()
            .filter_map(|&c| {
                let rtt = topology.link(l2, c)?.rtt.as_millis_f64();
                Some((c, rtt))
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(c, _)| c)
    }

    /// Current number of streams pinned through an L2 (load telemetry —
    /// the hot-spot effect of §2.3).
    pub fn l2_stream_load(&self, l2: NodeId) -> u32 {
        self.l2_load.get(&l2).map(|l| l.streams).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roles::HierRoles;
    use livenet_topology::{GeoConfig, GeoTopology};

    fn setup(seed: u64) -> (Topology, HierController, Vec<NodeId>) {
        let g = GeoTopology::generate(&GeoConfig::paper_scale(seed));
        let roles = HierRoles::assign(&g.topology, 2);
        let l1: Vec<NodeId> = roles.l1_nodes().collect();
        (g.topology, HierController::new(roles), l1)
    }

    #[test]
    fn path_is_always_four_hops() {
        let (topo, mut ctl, l1) = setup(1);
        let s = StreamId::new(1);
        ctl.register_stream(&topo, s, l1[0]).unwrap();
        let p = ctl.path_for(&topo, s, l1[5]).unwrap();
        assert_eq!(p.hops(), 4);
        assert_eq!(p.nodes[0], l1[0]);
        assert_eq!(p.nodes[4], l1[5]);
        // Middle node is a center.
        assert!(ctl.roles().centers().contains(&p.nodes[2]));
        assert!(ctl.roles().l2_nodes().contains(&p.nodes[1]));
        assert!(ctl.roles().l2_nodes().contains(&p.nodes[3]));
    }

    #[test]
    fn same_node_viewer_still_climbs_the_tree() {
        let (topo, mut ctl, l1) = setup(2);
        let s = StreamId::new(1);
        ctl.register_stream(&topo, s, l1[0]).unwrap();
        let p = ctl.path_for(&topo, s, l1[0]).unwrap();
        assert_eq!(p.hops(), 4, "Hier has no zero-hop shortcut");
    }

    #[test]
    fn unknown_stream_errors() {
        let (topo, mut ctl, l1) = setup(3);
        assert!(ctl.path_for(&topo, StreamId::new(9), l1[0]).is_err());
    }

    #[test]
    fn load_spreads_across_l2s() {
        let (topo, mut ctl, l1) = setup(4);
        // Pin many streams from the same producer; the load-aware utility
        // must not put them all on one L2.
        for i in 0..200 {
            ctl.register_stream(&topo, StreamId::new(i), l1[0]).unwrap();
        }
        let loads: Vec<u32> = ctl
            .roles()
            .l2_nodes()
            .to_vec()
            .iter()
            .map(|&l2| ctl.l2_stream_load(l2))
            .collect();
        let used = loads.iter().filter(|&&l| l > 0).count();
        assert!(used >= 2, "all streams pinned to one L2: {loads:?}");
    }

    #[test]
    fn unregister_releases_load() {
        let (topo, mut ctl, l1) = setup(5);
        let s = StreamId::new(1);
        ctl.register_stream(&topo, s, l1[0]).unwrap();
        let l2 = ctl.uplink[&s];
        assert_eq!(ctl.l2_stream_load(l2), 1);
        ctl.unregister_stream(s);
        assert_eq!(ctl.l2_stream_load(l2), 0);
        assert!(ctl.producer_of(s).is_none());
    }
}
