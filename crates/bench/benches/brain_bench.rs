//! Control-plane micro-benchmarks.
//!
//! Validates the paper's §4.4 claim that "the path lookup takes only a few
//! milliseconds" (ours is sub-microsecond for the hash lookups plus the
//! constraint filter), and measures the Global Routing recompute that runs
//! every 10 minutes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use livenet_brain::{yen_ksp, link_weight, WeightParams};
use livenet_brain::{BrainConfig, GlobalRouting, RoutingConfig, StreamingBrain};
use livenet_topology::{GeoConfig, GeoTopology};
use livenet_types::{NodeId, SimDuration, SimTime, StreamId};

fn bench_path_lookup(c: &mut Criterion) {
    let geo = GeoTopology::generate(&GeoConfig::paper_scale(1));
    let nodes: Vec<NodeId> = geo.topology.routable_node_ids().collect();
    let mut brain = StreamingBrain::new(geo.topology, BrainConfig::default());
    for (i, &n) in nodes.iter().enumerate() {
        brain.register_stream(StreamId::new(i as u64), n);
    }
    let mut i = 0usize;
    c.bench_function("brain/path_request (PIB+SIB lookup; paper: 'a few ms')", |b| {
        b.iter(|| {
            let stream = StreamId::new((i % nodes.len()) as u64);
            let consumer = nodes[(i * 7 + 3) % nodes.len()];
            i += 1;
            brain
                .path_request(stream, consumer, SimTime::ZERO)
                .expect("path")
        })
    });
}

fn bench_global_routing(c: &mut Criterion) {
    let geo = GeoTopology::generate(&GeoConfig::paper_scale(2));
    let routing = GlobalRouting::new(RoutingConfig::default());
    c.bench_function("brain/compute_all 63-node mesh (the 10-minute job)", |b| {
        b.iter(|| routing.compute_all(&geo.topology, SimTime::ZERO))
    });

    let graph = routing.build_graph(&geo.topology);
    c.bench_function("brain/yen_ksp single pair (k=3, hops<=3)", |b| {
        b.iter(|| yen_ksp(&graph, 0, graph.len() - 1, 3, 3))
    });
}

fn bench_weight(c: &mut Criterion) {
    c.bench_function("brain/link_weight (Eq. 2-3)", |b| {
        b.iter(|| {
            link_weight(
                SimDuration::from_millis(40),
                0.001,
                0.55,
                WeightParams::default(),
            )
        })
    });
}

fn bench_overload_invalidation(c: &mut Criterion) {
    let geo = GeoTopology::generate(&GeoConfig::paper_scale(3));
    let nodes: Vec<NodeId> = geo.topology.routable_node_ids().collect();
    let brain = StreamingBrain::new(geo.topology.clone(), BrainConfig::default());
    let victim = nodes[5];
    c.bench_function("brain/PIB invalidate_node (overload alarm)", |b| {
        b.iter_batched(
            || brain.decision().pib.clone(),
            |mut pib| pib.invalidate_node(victim),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_path_lookup, bench_global_routing, bench_weight, bench_overload_invalidation
}
criterion_main!(benches);
