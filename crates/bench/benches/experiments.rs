//! Figure/table regeneration harness, run by `cargo bench`.
//!
//! This "bench" (harness = false) regenerates a compact version of every
//! table and figure in the paper's evaluation at reduced scale, printing
//! measured-vs-paper values. The full-resolution per-figure output comes
//! from the `exp_*` binaries (see EXPERIMENTS.md):
//!
//! ```sh
//! cargo run --release -p livenet-bench --bin exp_table1_overall
//! ```

use livenet_bench::{median, paper_config, ratio_pct, run};
use livenet_sim::packetsim::{PacketSim, PacketSimConfig};
use livenet_sim::{FleetReport, SessionRecord};
use livenet_types::Ecdf;

fn check(label: &str, measured: f64, paper: f64, tolerance_pct: f64) {
    let err = 100.0 * (measured - paper).abs() / paper.abs().max(1e-9);
    let ok = if err <= tolerance_pct { "OK  " } else { "WARN" };
    println!("  [{ok}] {label:<48} measured {measured:>9.2}   paper {paper:>9.2}   ({err:.0}% off)");
}

fn dist(sessions: &[SessionRecord], f: impl Fn(&SessionRecord) -> bool) -> [f64; 4] {
    let mut counts = [0u64; 4];
    let mut total = 0u64;
    for s in sessions.iter().filter(|s| f(s)) {
        counts[usize::from(s.path_len).min(3)] += 1;
        total += 1;
    }
    let mut pct = [0.0; 4];
    for (i, c) in counts.iter().enumerate() {
        pct[i] = 100.0 * *c as f64 / total.max(1) as f64;
    }
    pct
}

fn fleet_checks(report: &FleetReport) {
    let ln = &report.livenet;
    let h = &report.hier;

    println!("\nTable 1 (§6.2) — overall performance:");
    check("LiveNet median CDN delay (ms)", median(ln, |s| f64::from(s.cdn_delay_ms)), 188.0, 15.0);
    check("Hier median CDN delay (ms)", median(h, |s| f64::from(s.cdn_delay_ms)), 393.0, 15.0);
    check("LiveNet median path length", median(ln, |s| f64::from(s.path_len)), 2.0, 0.0);
    check("Hier median path length", median(h, |s| f64::from(s.path_len)), 4.0, 0.0);
    check("LiveNet median streaming delay (ms)", median(ln, |s| f64::from(s.streaming_delay_ms)), 948.0, 10.0);
    check("Hier median streaming delay (ms)", median(h, |s| f64::from(s.streaming_delay_ms)), 1151.0, 10.0);
    check("LiveNet 0-stall ratio (%)", ratio_pct(ln, |s| s.zero_stall()), 98.0, 2.0);
    check("Hier 0-stall ratio (%)", ratio_pct(h, |s| s.zero_stall()), 95.0, 3.0);
    check("LiveNet fast-startup ratio (%)", ratio_pct(ln, |s| s.fast_startup()), 95.0, 3.0);
    check("Hier fast-startup ratio (%)", ratio_pct(h, |s| s.fast_startup()), 92.0, 4.0);

    println!("\nFig. 8(a) (§6.3) — paired streaming-delay improvement:");
    let mut deltas = Ecdf::new();
    for (a, b) in ln.iter().zip(h.iter()) {
        deltas.push(f64::from(b.streaming_delay_ms - a.streaming_delay_ms));
    }
    check("views improved ≥200 ms (%)", 100.0 * (1.0 - deltas.cdf_at(200.0)), 60.0, 30.0);
    check("views improved ≥100 ms (%)", 100.0 * (1.0 - deltas.cdf_at(100.0)), 80.0, 20.0);

    println!("\nFig. 8(b) (§6.3) — stall distribution:");
    check("LiveNet views with ≥1 stall (%)", 100.0 - ratio_pct(ln, |s| s.zero_stall()), 2.0, 50.0);
    check("Hier views with ≥1 stall (%)", 100.0 - ratio_pct(h, |s| s.zero_stall()), 5.0, 40.0);

    println!("\nTable 2 (§6.4) — LiveNet path-length distribution (%):");
    let all = dist(ln, |_| true);
    check("len=0 share", all[0], 0.13, 400.0);
    check("len=1 share", all[1], 7.0, 60.0);
    check("len=2 share", all[2], 92.06, 10.0);
    check("len>=3 share", all[3], 0.81, 100.0);
    let inter = dist(ln, |s| s.international);
    check("inter-national len=2 share", inter[2], 73.83, 15.0);
    check("inter-national len>=3 share", inter[3], 26.16, 40.0);

    println!("\nFig. 11/12 (§6.4) — delay vs length and locality (medians, ms):");
    let med_len = |want: u8| {
        let subset: Vec<SessionRecord> =
            ln.iter().filter(|s| s.path_len == want).copied().collect();
        median(&subset, |s| f64::from(s.cdn_delay_ms))
    };
    check("LiveNet len=2 median", med_len(2), 190.0, 15.0);
    let intra: Vec<SessionRecord> = ln.iter().filter(|s| !s.international).copied().collect();
    let inter_s: Vec<SessionRecord> = ln.iter().filter(|s| s.international).copied().collect();
    check("LiveNet intra-national median", median(&intra, |s| f64::from(s.cdn_delay_ms)), 190.0, 15.0);
    check("LiveNet inter-national median", median(&inter_s, |s| f64::from(s.cdn_delay_ms)), 330.0, 25.0);

    println!("\nFig. 10 (§6.4) — control plane:");
    let mut resp = Ecdf::new();
    for s in ln.iter().filter_map(|s| s.outcome.response_ms()) {
        resp.push(f64::from(s));
    }
    check("Brain response median (ms)", resp.median(), 30.0, 60.0);
    check("local hit ratio (%)", ratio_pct(ln, |s| s.outcome.is_local_hit()), 55.0, 40.0);
    let mut fp = 0.0;
    for s in ln {
        fp += f64::from(s.first_packet_ms);
    }
    check("mean first-packet delay (ms)", fp / ln.len() as f64, 100.0, 50.0);

    println!("\nFig. 13 (§6.4) — link loss stays under the cap:");
    let max_loss = report
        .hourly_loss
        .iter()
        .filter(|l| !l.is_nan())
        .fold(0.0f64, |a, &b| a.max(b));
    check("peak hourly loss (%)", 100.0 * max_loss, 0.15, 30.0);
}

fn festival_checks(report: &FleetReport) {
    println!("\nFig. 14 + Table 3 (§6.5) — Double-12 festival:");
    let t = &report.daily_peak_throughput;
    if t.len() >= 13 {
        let festival = (t[10] + t[11]) / 2.0;
        let regular = t
            .iter()
            .enumerate()
            .filter(|(d, _)| *d != 10 && *d != 11)
            .map(|(_, v)| v)
            .sum::<f64>()
            / (t.len() - 2) as f64;
        check("festival/regular peak throughput", festival / regular.max(1.0), 2.0, 25.0);
    }
    let fest: Vec<SessionRecord> = report
        .livenet
        .iter()
        .filter(|s| s.day == 10 || s.day == 11)
        .copied()
        .collect();
    check(
        "festival median CDN delay (ms)",
        median(&fest, |s| f64::from(s.cdn_delay_ms)),
        192.0,
        15.0,
    );
    check(
        "festival 0-stall ratio (%)",
        ratio_pct(&fest, |s| s.zero_stall()),
        97.0,
        3.0,
    );
    let u = &report.daily_unique_paths;
    if u.len() >= 13 {
        let festival = (u[10] + u[11]) as f64 / 2.0;
        let around = (u[9] + u[12]) as f64 / 2.0;
        check("festival unique-path growth (x)", festival / around.max(1.0), 1.2, 25.0);
    }
}

fn packet_level_checks() {
    println!("\n§3/§5 — fast/slow path recovery (packet level, A→B→C):");
    let with = PacketSim::new(PacketSimConfig::three_node_chain(0.02, 42)).run();
    let mut without_cfg = PacketSimConfig::three_node_chain(0.02, 42);
    without_cfg.nack_retry_limit = 0;
    let without = PacketSim::new(without_cfg).run();
    let full = with.viewers[0].1.frames_rendered as f64;
    let degraded = without.viewers[0].1.frames_rendered as f64;
    check("frames rendered with slow path", full, 150.0, 3.0);
    println!(
        "  [info] without slow path: {degraded:.0} frames, {} stalls (design ablation)",
        without.viewers[0].1.stalls
    );
    let mean_rec = with.recovery_latencies_ms.iter().sum::<f64>()
        / with.recovery_latencies_ms.len().max(1) as f64;
    check("mean recovery latency (ms) ≈ scan/2 + RTT", mean_rec, 65.0, 40.0);
}

fn main() {
    // `cargo bench` passes --bench; tolerate any args.
    println!("==================================================================");
    println!("LiveNet reproduction — evaluation shape checks (reduced scale)");
    println!("Full-resolution figures: cargo run --release -p livenet-bench --bin exp_*");
    println!("==================================================================");

    // Regular-week run (Figs 2, 8, 9, 10, 11, 12, 13; Tables 1, 2).
    let mut cfg = paper_config(0.6);
    cfg.workload.days = 7;
    cfg.workload.festival_days = vec![];
    let report = run(cfg);
    println!(
        "\nregular-week run: {} sessions over 7 days",
        report.livenet.len()
    );
    fleet_checks(&report);

    // Festival run (Fig 14, Table 3) — needs the 20-day window.
    let mut cfg = paper_config(0.4);
    cfg.workload.days = 14;
    let report = run(cfg);
    println!(
        "\nfestival run: {} sessions over 14 days (Double-12 on days 11-12)",
        report.livenet.len()
    );
    festival_checks(&report);

    packet_level_checks();
    println!("\nAll shape checks complete.");
}
