//! Data-plane micro-benchmarks: the per-packet hot path.
//!
//! The fast path's whole point is minimal per-packet work (§5.1); these
//! benchmarks quantify it — wire codecs, FIB lookup + fan-out, pacer,
//! cache insertion, and the full `OverlayNode::on_datagram` hot path.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use livenet_cc::{DelayBasedEstimator, PacedPacket, Pacer, PacerConfig, SendPriority};
use livenet_media::FrameKind;
use livenet_node::{NodeConfig, OverlayMsg, OverlayNode, StreamCache, StreamFib, Subscriber};
use livenet_packet::rtp::ssrc_for_stream;
use livenet_packet::{MediaKind, Packetizer, RtpPacket};
use livenet_types::{Bandwidth, ClientId, NodeId, SeqNo, SimDuration, SimTime, StreamId};

const STREAM: StreamId = StreamId(7);

fn sample_packets(n: usize) -> Vec<RtpPacket> {
    let mut p = Packetizer::new(ssrc_for_stream(STREAM), SeqNo::ZERO);
    let mut out = Vec::new();
    let mut ts = 0u32;
    while out.len() < n {
        let kind = if ts.is_multiple_of(18000) { FrameKind::I } else { FrameKind::P };
        let size = if kind == FrameKind::I { 8000 } else { 1000 };
        out.extend(p.packetize_with_meta(
            MediaKind::Video,
            ts,
            &Bytes::from(vec![0u8; size]),
            None,
            kind.to_nibble(),
        ));
        ts += 6000;
    }
    out.truncate(n);
    out
}

fn bench_codecs(c: &mut Criterion) {
    let pkt = sample_packets(1)[0].clone();
    let encoded = pkt.encode();
    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("rtp_encode", |b| b.iter(|| pkt.encode()));
    g.bench_function("rtp_decode", |b| {
        b.iter(|| RtpPacket::decode(encoded.clone()).expect("valid"))
    });
    let msg = OverlayMsg::Rtp {
        stream: STREAM,
        sent_at: SimTime::from_millis(5),
        packet: encoded.clone(),
        retransmit: false,
    };
    let msg_bytes = msg.encode();
    g.bench_function("overlay_msg_roundtrip", |b| {
        b.iter(|| OverlayMsg::decode(msg.encode()).expect("valid"))
    });
    let _ = msg_bytes;
    g.finish();
}

fn bench_fib(c: &mut Criterion) {
    let mut fib = StreamFib::new();
    for s in 0..1000u64 {
        for n in 0..8u64 {
            fib.subscribe(StreamId::new(s), Subscriber::Node(NodeId::new(n)));
        }
    }
    c.bench_function("fib/lookup+fanout (1000 streams, 8 subscribers)", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1000;
            fib.subscribers(StreamId::new(i)).count()
        })
    });
}

fn bench_pacer(c: &mut Criterion) {
    c.bench_function("pacer/enqueue+poll cycle", |b| {
        b.iter_batched(
            || Pacer::<u32>::new(PacerConfig::default(), Bandwidth::from_mbps(100)),
            |mut pacer| {
                for i in 0..64 {
                    pacer.enqueue(PacedPacket {
                        priority: SendPriority::Video,
                        bytes: 1200,
                        is_iframe: i % 16 == 0,
                        payload: i,
                    });
                }
                let mut t = SimTime::ZERO;
                let mut sent = 0;
                while sent < 64 {
                    sent += pacer.poll(t).len();
                    t += SimDuration::from_millis(1);
                }
                sent
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cache(c: &mut Criterion) {
    let packets = sample_packets(512);
    c.bench_function("cache/insert 512 + startup_burst", |b| {
        b.iter_batched(
            || StreamCache::new(2048),
            |mut cache| {
                for p in &packets {
                    cache.insert(p.clone());
                }
                cache.startup_burst().len()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_gcc(c: &mut Criterion) {
    c.bench_function("gcc/delay_estimator 1000 packets", |b| {
        b.iter_batched(
            || {
                DelayBasedEstimator::new(
                    Bandwidth::from_mbps(2),
                    Bandwidth::from_kbps(100),
                    Bandwidth::from_mbps(50),
                )
            },
            |mut est| {
                for i in 0..1000u64 {
                    let dep = SimTime::from_millis(i);
                    est.on_packet(dep, dep + SimDuration::from_millis(20), 1200);
                }
                est.estimate()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_node_hot_path(c: &mut Criterion) {
    // A relay node with 4 downstream subscribers: the full fast+slow path
    // per arriving RTP datagram.
    let build = || {
        let mut node = OverlayNode::new(NodeConfig::new(NodeId::new(2)));
        // Producing the stream makes downstream Subscribes stick (cache hit).
        node.register_producer(STREAM, None);
        for i in 0..2u64 {
            node.set_neighbor_rtt(NodeId::new(10 + i), SimDuration::from_millis(20));
            // Downstream node subscribers via the wire protocol.
            let sub = OverlayMsg::Subscribe {
                stream: STREAM,
                remainder: vec![],
            };
            let acts = node.on_datagram(SimTime::ZERO, NodeId::new(10 + i), sub.encode());
            drop(acts);
        }
        node
    };
    let packets: Vec<Bytes> = sample_packets(256)
        .into_iter()
        .map(|p| {
            OverlayMsg::Rtp {
                stream: STREAM,
                sent_at: SimTime::ZERO,
                packet: p.encode(),
                retransmit: false,
            }
            .encode()
        })
        .collect();
    let mut g = c.benchmark_group("node");
    g.throughput(Throughput::Elements(packets.len() as u64));
    g.bench_function("on_datagram fast+slow path, 256 pkts, fanout 2", |b| {
        b.iter_batched(
            build,
            |mut node| {
                let mut t = SimTime::from_millis(1);
                for p in &packets {
                    let _ = node.on_datagram(t, NodeId::new(1), p.clone());
                    t += SimDuration::from_micros(500);
                }
                node.stats.forwarded
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
    // Quiet the unused-import warning for ClientId in some cfgs.
    let _ = ClientId::new(0);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_codecs, bench_fib, bench_pacer, bench_cache, bench_gcc, bench_node_hot_path
}
criterion_main!(benches);
