//! Structured experiment output: one builder, one JSON emitter.
//!
//! Every `exp_*` binary assembles a [`Report`] — headings, aligned tables,
//! free-form notes — instead of printing piecemeal. The builder is the
//! single place bench output touches stdout ([`Report::print`]), which is
//! what lets the library crates deny `clippy::print_stdout` wholesale, and
//! it doubles as the JSON emitter ([`Report::to_json`]) so any experiment
//! can be persisted next to the `BENCH_*.json` artifacts without a second
//! serialization path.

use livenet_sim::FleetReport;

/// One renderable block of an experiment report, kept in emit order.
#[derive(Debug, Clone)]
enum Section {
    /// A sub-experiment divider (exp_all's per-figure rules).
    Heading(String),
    /// An aligned table.
    Table {
        headers: Vec<String>,
        rows: Vec<Vec<String>>,
    },
    /// A free-form commentary line (paper comparisons, caveats).
    Note(String),
}

/// Builder for one experiment's complete output.
#[derive(Debug, Clone)]
pub struct Report {
    experiment: String,
    paper_ref: String,
    meta: Vec<(String, String)>,
    sections: Vec<Section>,
    /// Attached telemetry snapshot, pre-rendered as JSON.
    telemetry_json: Option<String>,
}

impl Report {
    /// Start a report for one experiment against one paper reference.
    pub fn new(experiment: impl Into<String>, paper_ref: impl Into<String>) -> Report {
        Report {
            experiment: experiment.into(),
            paper_ref: paper_ref.into(),
            meta: Vec::new(),
            sections: Vec::new(),
            telemetry_json: None,
        }
    }

    /// Start a report and stamp the fleet run's headline meta (session
    /// count, days) — the old `banner` contents.
    pub fn fleet(
        experiment: impl Into<String>,
        paper_ref: impl Into<String>,
        report: &FleetReport,
    ) -> Report {
        let mut r = Report::new(experiment, paper_ref);
        r.meta("sessions_per_system", report.livenet.len().to_string());
        r.meta("days", report.daily_peak_throughput.len().to_string());
        r
    }

    /// Attach a key/value annotation shown in the banner and the JSON.
    pub fn meta(&mut self, key: impl Into<String>, value: impl Into<String>) -> &mut Report {
        self.meta.push((key.into(), value.into()));
        self
    }

    /// Start a titled sub-section (used by multi-figure binaries).
    pub fn heading(&mut self, title: impl Into<String>) -> &mut Report {
        self.sections.push(Section::Heading(title.into()));
        self
    }

    /// Append an aligned table.
    pub fn table(&mut self, headers: &[&str], rows: &[Vec<String>]) -> &mut Report {
        self.sections.push(Section::Table {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: rows.to_vec(),
        });
        self
    }

    /// Append one commentary line.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Report {
        self.sections.push(Section::Note(text.into()));
        self
    }

    /// Attach a telemetry snapshot. It is embedded verbatim under the
    /// `"telemetry"` key of [`Report::to_json`] (the snapshot's own JSON
    /// form is canonical) and summarized as one line in the text render.
    pub fn telemetry(&mut self, snapshot: &livenet_telemetry::Snapshot) -> &mut Report {
        self.telemetry_json = Some(snapshot.to_json());
        self
    }

    /// Render the whole report to a string exactly as `print` shows it.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let rule = "=".repeat(66);
        out.push_str(&rule);
        out.push('\n');
        out.push_str(&format!("LiveNet reproduction — {}\n", self.experiment));
        if !self.paper_ref.is_empty() {
            out.push_str(&format!("Paper reference: {}\n", self.paper_ref));
        }
        for (k, v) in &self.meta {
            out.push_str(&format!("{k}: {v}\n"));
        }
        if self.telemetry_json.is_some() {
            out.push_str("telemetry: attached (see JSON artifact)\n");
        }
        out.push_str(&rule);
        out.push('\n');
        for section in &self.sections {
            match section {
                Section::Heading(t) => {
                    let thin = "─".repeat(66);
                    out.push_str(&format!("\n{thin}\n{t}\n{thin}\n"));
                }
                Section::Table { headers, rows } => {
                    out.push_str(&render_table(headers, rows));
                }
                Section::Note(t) => {
                    out.push_str(t);
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Print the report to stdout — the one sanctioned print site in the
    /// bench stack.
    #[allow(clippy::print_stdout)]
    pub fn print(&self) {
        print!("{}", self.to_text());
    }

    /// Serialize the report deterministically as JSON (hand-formatted; the
    /// workspace has no JSON dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"experiment\": {},\n",
            json_str(&self.experiment)
        ));
        s.push_str(&format!("  \"paper_ref\": {},\n", json_str(&self.paper_ref)));
        s.push_str("  \"meta\": {");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    {}: {}", json_str(k), json_str(v)));
        }
        if !self.meta.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n  \"sections\": [");
        for (i, section) in self.sections.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            match section {
                Section::Heading(t) => {
                    s.push_str(&format!(
                        "{{\"type\": \"heading\", \"text\": {}}}",
                        json_str(t)
                    ));
                }
                Section::Note(t) => {
                    s.push_str(&format!("{{\"type\": \"note\", \"text\": {}}}", json_str(t)));
                }
                Section::Table { headers, rows } => {
                    s.push_str("{\"type\": \"table\", \"headers\": ");
                    s.push_str(&json_str_array(headers));
                    s.push_str(", \"rows\": [");
                    for (j, row) in rows.iter().enumerate() {
                        if j > 0 {
                            s.push_str(", ");
                        }
                        s.push_str(&json_str_array(row));
                    }
                    s.push_str("]}");
                }
            }
        }
        if !self.sections.is_empty() {
            s.push_str("\n  ");
        }
        s.push(']');
        if let Some(telemetry) = &self.telemetry_json {
            s.push_str(",\n  \"telemetry\": ");
            s.push_str(telemetry.trim_end());
        }
        s.push_str("\n}\n");
        s
    }

    /// Write the JSON form to `path`.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Render one aligned table (shared by `print` and the deprecated
/// `print_table` shim).
pub(crate) fn render_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let mut out = String::new();
    let mut line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            let pad = widths.get(i).copied().unwrap_or(0).saturating_sub(c.chars().count());
            s.push_str(c);
            s.push_str(&" ".repeat(pad + 2));
        }
        out.push_str(s.trim_end());
        out.push('\n');
    };
    line(headers);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&rule);
    for row in rows {
        line(row);
    }
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_array(items: &[String]) -> String {
    let mut s = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&json_str(item));
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_tables_and_notes_in_order() {
        let mut r = Report::new("unit test", "§0");
        r.meta("sessions_per_system", "2");
        r.table(&["a", "b"], &[vec!["1".into(), "22".into()]]);
        r.note("done");
        let text = r.to_text();
        assert!(text.contains("LiveNet reproduction — unit test"));
        assert!(text.contains("sessions_per_system: 2"));
        let table_pos = text.find("a  b").unwrap();
        let note_pos = text.find("done").unwrap();
        assert!(table_pos < note_pos);
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let mut r = Report::new("quote \" test", "");
        r.note("line\nbreak");
        r.table(&["h"], &[vec!["v".into()]]);
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.contains("quote \\\" test"));
        assert!(a.contains("line\\nbreak"));
        assert!(a.contains("\"headers\": [\"h\"]"));
        assert!(a.contains("\"rows\": [[\"v\"]]"));
    }

    #[test]
    fn telemetry_snapshot_embeds_in_json() {
        use livenet_telemetry::{ids, MetricSink, TelemetryHub};
        let mut hub = TelemetryHub::new();
        hub.incr(ids::TRANSPORT_RX_DATAGRAMS);
        let mut r = Report::new("telemetry test", "");
        r.telemetry(&hub.snapshot());
        let json = r.to_json();
        assert!(json.contains("\"telemetry\": "));
        assert!(json.contains("transport.rx_datagrams"));
        assert!(r.to_text().contains("telemetry: attached"));
    }

    #[test]
    fn table_alignment_pads_by_char_count() {
        let text = render_table(
            &["col".into(), "x".into()],
            &[vec!["a".into(), "b".into()]],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "col  x");
        assert_eq!(lines[1], "---  -");
        assert_eq!(lines[2], "a    b");
    }
}
