//! Ablation — the GoP cache's fast-startup effect (§5.1, Fig. 9's
//! mechanism).
//!
//! A viewer joins a long-running stream mid-GoP. With GoP caching, the
//! consumer bursts the most recent complete GoP and playback starts in a
//! few hundred milliseconds; without it, the viewer waits for the next
//! keyframe — on average half a GoP (1 s for 2 s GoPs), blowing the 1 s
//! fast-startup budget.

use livenet_bench::Report;
use livenet_sim::packetsim::{PacketSim, PacketSimConfig, ViewerSpec};
use livenet_types::{Bandwidth, SimTime};

fn startup_ms(burst: bool, join_offset_ms: u64, seed: u64) -> Option<f64> {
    let mut cfg = PacketSimConfig::three_node_chain(0.0, seed);
    cfg.startup_burst = burst;
    // The late viewer joins mid-GoP (GoP = 2 s at 15 fps).
    cfg.viewers.push(ViewerSpec {
        node_index: 2,
        join_at: SimTime::from_millis(4000 + join_offset_ms),
        downlink: Bandwidth::from_mbps(50),
    });
    let report = PacketSim::new(cfg).run();
    report.viewers[1].1.startup.map(|d| d.as_millis_f64())
}

fn main() {
    let mut out = Report::new("ablation: GoP-cache startup burst (§5.1)", "§5.1, Fig. 9");
    let mut rows = Vec::new();
    for burst in [true, false] {
        let mut startups = Vec::new();
        for (i, off) in [100u64, 500, 900, 1300, 1700].iter().enumerate() {
            if let Some(ms) = startup_ms(burst, *off, 10 + i as u64) {
                startups.push(ms);
            }
        }
        let mean = startups.iter().sum::<f64>() / startups.len().max(1) as f64;
        let max = startups.iter().cloned().fold(0.0f64, f64::max);
        let fast = startups.iter().filter(|&&s| s < 1000.0).count();
        rows.push(vec![
            if burst { "GoP cache burst (LiveNet)".into() } else { "no burst (wait for next I)".to_string() },
            format!("{mean:.0} ms"),
            format!("{max:.0} ms"),
            format!("{fast}/{}", startups.len()),
        ]);
    }
    out.table(
        &["variant", "mean startup", "worst startup", "fast (<1s)"],
        &rows,
    );
    out.note("");
    out.note("Paper connection: the GoP cache is why Fig. 9's fast-startup ratio");
    out.note("stays ≈95% regardless of streaming delay, and why 95% of views");
    out.note("start within 1 s (Table 1) despite 2 s GoPs.");
    out.print();
}
