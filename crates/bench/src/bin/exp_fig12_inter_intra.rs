//! Figure 12: intra vs inter-national delay — thin wrapper over [`livenet_bench::render::fig12`].
//!
//! Runs the canonical fleet configuration (tunable via `--days`,
//! `--scale`, `--seed`) and prints the table/figure with the paper's
//! values alongside. To print EVERY figure from one run, use `exp_all`.

use livenet_bench::{cli_config, render, run, Report};

fn main() {
    let report = run(cli_config());
    let mut out = Report::fleet("Figure 12: intra vs inter-national delay", "§6.4, Fig. 12", &report);
    render::fig12(&report, &mut out);
    out.print();
}
