//! Ablation — the I-frame pacing gain (§5.2 "Priority-Aware Data Sending").
//!
//! The paper sends I frames with a pacing gain of 1.5 "to quickly empty
//! the sending queue to avoid queuing delays". This ablation measures
//! capture→render frame delay percentiles with gain 1.0 vs 1.5 on a
//! bandwidth-constrained chain, where the big I frames actually queue.

use livenet_bench::Report;
use livenet_sim::packetsim::{ChainLink, PacketSim, PacketSimConfig};
use livenet_types::{Bandwidth, Ecdf, SimTime};

fn run_with_gain(gain: f64) -> (f64, f64, f64) {
    let mut cfg = PacketSimConfig::three_node_chain(0.0, 7);
    cfg.iframe_gain = gain;
    // Make the PACER the bottleneck (the knob under test): generous links,
    // pacing rate ~1.75× the stream bitrate, so I-frame bursts queue in
    // the pacer and the gain controls how fast they drain.
    cfg.pacer_rate = Some(Bandwidth::from_kbps(3_500));
    cfg.links = vec![ChainLink::healthy(10), ChainLink::healthy(10)];
    cfg.viewers[0].downlink = Bandwidth::from_mbps(50);
    cfg.viewers[0].join_at = SimTime::from_millis(100);
    let report = PacketSim::new(cfg).run();
    let mut e = Ecdf::new();
    e.extend(report.frame_delays_ms.iter().copied());
    (e.quantile(0.5), e.quantile(0.9), e.quantile(0.99))
}

fn main() {
    let mut out = Report::new("ablation: I-frame pacing gain (§5.2)", "§5.2");
    let mut rows = Vec::new();
    for gain in [1.0, 1.25, 1.5, 2.0] {
        let (p50, p90, p99) = run_with_gain(gain);
        rows.push(vec![
            format!("{gain:.2}"),
            format!("{p50:.0} ms"),
            format!("{p90:.0} ms"),
            format!("{p99:.0} ms"),
        ]);
    }
    out.table(&["pacing gain", "p50 frame delay", "p90", "p99"], &rows);
    out.note("");
    out.note("Expected shape: higher gain drains I-frame bursts faster, cutting");
    out.note("the tail (p90/p99) of frame delay on constrained links.");
    out.print();
}
