//! §5.3 multi-supplier RTX recovery — alternate-supplier chase vs the
//! single-supplier park-and-wait baseline.
//!
//! Runs the AutoRec diamond ([`livenet_sim::autorec`]) — a degraded
//! primary leg (long RTT + loss) with a warm backup relay — in both modes
//! over several seeds and emits the detection-to-recovery latency
//! distributions. The multi-supplier mode chases the backup relay the
//! moment the primary answers a NACK with an RTX-miss; the baseline parks
//! on the primary and waits out its fat recovery round trip.
//!
//! Writes `BENCH_autorec.json`. Every (mode, seed) cell is an independent
//! simulation, so the cell set is fanned across worker threads; the run
//! repeats at 1, 2, and `--shards N` workers and asserts the outcomes are
//! bit-identical ([`AutorecOutcome::bit_identical`]) — the same
//! determinism contract the fleet benches enforce.
//!
//! `--smoke` shrinks the broadcast for CI and still asserts the headline
//! result: alternate median strictly below the baseline median, zero
//! determinism divergence.
//!
//! ```sh
//! cargo run --release --bin exp_autorec [-- --shards 4] [-- --smoke]
//! ```
//!
//! [`AutorecOutcome::bit_identical`]: livenet_sim::AutorecOutcome::bit_identical

use livenet_bench::{Report, SEED};
use livenet_sim::{run_autorec, AutorecOutcome, AutorecScenario};
use livenet_types::SimDuration;

fn percentile(sorted: &[f32], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    f64::from(sorted[idx])
}

/// Latency distribution plus headline counters over a set of outcomes
/// (one mode, all seeds pooled).
struct ModeSummary {
    n: usize,
    p50: f64,
    p90: f64,
    p99: f64,
    alternate_recovered: u64,
    alternate_requests: u64,
    alternate_exhausted: u64,
    primary_misses: u64,
    frames_rendered: u64,
}

impl ModeSummary {
    fn pool(outcomes: &[&AutorecOutcome]) -> Self {
        let mut v: Vec<f32> = outcomes
            .iter()
            .flat_map(|o| o.records.iter().map(|r| r.recover_ms))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ModeSummary {
            n: v.len(),
            p50: percentile(&v, 0.5),
            p90: percentile(&v, 0.9),
            p99: percentile(&v, 0.99),
            alternate_recovered: outcomes.iter().map(|o| o.alternate_recovered).sum(),
            alternate_requests: outcomes.iter().map(|o| o.alternate_requests).sum(),
            alternate_exhausted: outcomes.iter().map(|o| o.alternate_exhausted).sum(),
            primary_misses: outcomes.iter().map(|o| o.primary_misses).sum(),
            frames_rendered: outcomes.iter().map(|o| o.frames_rendered).sum(),
        }
    }

    fn json(&self) -> String {
        let p = |x: f64| {
            if x.is_nan() {
                "null".to_string()
            } else {
                format!("{x:.2}")
            }
        };
        format!(
            "{{\"n\": {}, \"p50_ms\": {}, \"p90_ms\": {}, \"p99_ms\": {}, \
             \"alternate_recovered\": {}, \"alternate_requests\": {}, \
             \"alternate_exhausted\": {}, \"primary_misses\": {}, \
             \"frames_rendered\": {}}}",
            self.n,
            p(self.p50),
            p(self.p90),
            p(self.p99),
            self.alternate_recovered,
            self.alternate_requests,
            self.alternate_exhausted,
            self.primary_misses,
            self.frames_rendered,
        )
    }
}

/// Run every cell at the given worker-thread count, preserving cell order.
fn run_cells(cells: &[AutorecScenario], workers: usize) -> Vec<AutorecOutcome> {
    let workers = workers.max(1);
    let mut out: Vec<Option<AutorecOutcome>> = vec![None; cells.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for tid in 0..workers {
            let cells = &cells;
            handles.push(scope.spawn(move || {
                let mut mine = Vec::new();
                let mut i = tid;
                while i < cells.len() {
                    mine.push((i, run_autorec(&cells[i])));
                    i += workers;
                }
                mine
            }));
        }
        for h in handles {
            for (i, o) in h.join().expect("autorec worker panicked") {
                out[i] = Some(o);
            }
        }
    });
    out.into_iter()
        .map(|o| o.expect("every cell assigned to exactly one worker"))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut threads = 4usize;
    let mut smoke = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--shards" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    threads = v;
                    i += 1;
                }
            }
            "--smoke" => smoke = true,
            _ => {}
        }
        i += 1;
    }

    let seeds: &[u64] = if smoke {
        &[SEED]
    } else {
        &[SEED, SEED + 1, SEED + 2]
    };
    let modes = [1usize, 0];
    let mut cells = Vec::new();
    for &alts in &modes {
        for &seed in seeds {
            let mut sc = AutorecScenario::new(alts, seed);
            if smoke {
                sc.duration = SimDuration::from_secs(6);
            }
            cells.push(sc);
        }
    }

    let mut out = Report::new("multi-supplier RTX recovery (§5.3)", "§5.3");
    out.heading("AutoRec diamond: degraded primary leg, warm backup relay");

    // The determinism contract this binary's JSON relies on: the cell
    // fan-out must not change a single bit of any outcome.
    let outcomes = run_cells(&cells, threads);
    for workers in [1usize, 2] {
        if workers == threads {
            continue;
        }
        let again = run_cells(&cells, workers);
        for (idx, (a, b)) in outcomes.iter().zip(&again).enumerate() {
            assert!(
                a.bit_identical(b),
                "cell {idx} diverged between {threads} and {workers} workers"
            );
        }
    }
    out.note(format!(
        "{} cells × worker widths {{1, 2, {threads}}}: bit-identical",
        cells.len()
    ));

    let mut rows = Vec::new();
    for (sc, o) in cells.iter().zip(&outcomes) {
        rows.push(vec![
            if sc.alt_suppliers > 0 {
                format!("alternate ({})", sc.alt_suppliers)
            } else {
                "baseline".to_string()
            },
            format!("{}", sc.seed),
            format!("{}", o.records.len()),
            format!("{:.2} ms", o.median_recover_ms()),
            format!("{}", o.alternate_recovered),
            format!("{}", o.primary_misses),
            format!("{}", o.frames_rendered),
        ]);
    }
    out.table(
        &[
            "mode",
            "seed",
            "holes",
            "median recover",
            "alt recovered",
            "B misses",
            "frames",
        ],
        &rows,
    );

    let per_mode: Vec<ModeSummary> = modes
        .iter()
        .map(|&alts| {
            let sel: Vec<&AutorecOutcome> = cells
                .iter()
                .zip(&outcomes)
                .filter(|(sc, _)| sc.alt_suppliers == alts)
                .map(|(_, o)| o)
                .collect();
            ModeSummary::pool(&sel)
        })
        .collect();
    let (alt_sum, base_sum) = (&per_mode[0], &per_mode[1]);
    out.note("");
    out.note(format!("alternate: {}", alt_sum.json()));
    out.note(format!("baseline:  {}", base_sum.json()));
    out.note("");
    out.note("Expected shape: the alternate chase closes holes over short");
    out.note("clean hops while the baseline waits out the degraded leg's");
    out.note("recovery round trip, so the alternate median sits far below.");

    // The headline acceptance gate, enforced in CI via --smoke.
    assert!(
        alt_sum.p50 < base_sum.p50,
        "alternate median {} !< baseline median {}",
        alt_sum.p50,
        base_sum.p50
    );

    let json = format!(
        "{{\n  \"experiment\": \"autorec\",\n  \"seed\": {SEED},\n  \"smoke\": {smoke},\n  \"seeds\": {},\n  \"workers\": {threads},\n  \"alternate\": {},\n  \"baseline\": {}\n}}\n",
        seeds.len(),
        alt_sum.json(),
        base_sum.json(),
    );
    std::fs::write("BENCH_autorec.json", &json).expect("write BENCH_autorec.json");
    out.note("wrote BENCH_autorec.json");
    out.print();
}
