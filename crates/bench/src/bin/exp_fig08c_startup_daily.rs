//! Figure 8(c): daily fast-startup ratio — thin wrapper over [`livenet_bench::render::fig08c`].
//!
//! Runs the canonical fleet configuration (tunable via `--days`,
//! `--scale`, `--seed`) and prints the table/figure with the paper's
//! values alongside. To print EVERY figure from one run, use `exp_all`.

use livenet_bench::{banner, cli_config, render, run};

fn main() {
    #[allow(unused_mut)]
    let mut cfg = cli_config();
    let report = run(cfg);
    banner("Figure 8(c): daily fast-startup ratio", "§6.3, Fig. 8(c)", &report);
    render::fig08c(&report);
}
