//! Figure 8(c): daily fast-startup ratio — thin wrapper over [`livenet_bench::render::fig08c`].
//!
//! Runs the canonical fleet configuration (tunable via `--days`,
//! `--scale`, `--seed`) and prints the table/figure with the paper's
//! values alongside. To print EVERY figure from one run, use `exp_all`.

use livenet_bench::{cli_config, render, run, Report};

fn main() {
    let report = run(cli_config());
    let mut out = Report::fleet("Figure 8(c): daily fast-startup ratio", "§6.3, Fig. 8(c)", &report);
    render::fig08c(&report, &mut out);
    out.print();
}
