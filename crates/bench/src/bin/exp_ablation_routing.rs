//! Ablation — Global Routing design choices (§4.3, §7.3).
//!
//! Sweeps the three routing knobs DESIGN.md calls out:
//! * K (candidate paths per pair; paper K = 3),
//! * the hop limit (paper 3),
//! * the sigmoid load-adjustment in the link weight (Eq. 3) vs plain
//!   expected-RTT weights (α = 0 flattens f to a constant).
//!
//! Reported per variant: median CDN delay, median path length, last-resort
//! share, and the share of realized paths over 3 hops (long chains).

use livenet_bench::{cli_config, median, ratio_pct, run, Report};
use livenet_brain::WeightParams;
use livenet_sim::FleetConfigBuilder;

struct Variant {
    name: &'static str,
    k: usize,
    max_hops: usize,
    alpha: f64,
}

fn main() {
    let mut out = Report::new("ablation: routing parameters (§4.3)", "§4.3, §7.3");
    let variants = [
        Variant { name: "paper (K=3, hops<=3, sigmoid)", k: 3, max_hops: 3, alpha: 0.5 },
        Variant { name: "K=1", k: 1, max_hops: 3, alpha: 0.5 },
        Variant { name: "hops<=2", k: 3, max_hops: 2, alpha: 0.5 },
        Variant { name: "hops<=4", k: 3, max_hops: 4, alpha: 0.5 },
        Variant { name: "no load term (alpha=0)", k: 3, max_hops: 3, alpha: 0.0 },
    ];
    let mut rows = Vec::new();
    for v in &variants {
        let cfg = FleetConfigBuilder::from_config(cli_config())
            .tweak(|c| {
                c.workload.days = c.workload.days.min(3);
                c.workload.festival_days = vec![];
                c.brain.routing.k = v.k;
                c.brain.routing.max_hops = v.max_hops;
                if v.max_hops > 3 {
                    // Hop limits above 3 leave the O(n³) mesh enumerator and
                    // fall back to per-pair Yen KSP; recompute hourly to keep
                    // the ablation tractable (the PIB barely changes at low
                    // load).
                    c.brain.routing.period_secs = 3600;
                }
                c.brain.routing.weight = WeightParams {
                    alpha: v.alpha,
                    ..WeightParams::default()
                };
            })
            .build()
            .expect("ablation variant config is valid");
        let report = run(cfg);
        let ln = &report.livenet;
        let inter: Vec<livenet_sim::SessionRecord> =
            ln.iter().filter(|s| s.international).copied().collect();
        rows.push(vec![
            v.name.to_string(),
            format!("{:.0}", median(ln, |s| f64::from(s.cdn_delay_ms))),
            format!("{:.0}", median(&inter, |s| f64::from(s.cdn_delay_ms))),
            format!(
                "{:.1}%",
                ratio_pct(&inter, |s| s.path_len >= 3)
            ),
            format!("{:.2}%", ratio_pct(ln, |s| s.outcome.is_last_resort())),
            format!("{:.1}%", ratio_pct(ln, |s| s.zero_stall())),
        ]);
    }
    out.table(
        &[
            "variant",
            "median CDN (ms)",
            "inter median (ms)",
            "inter len>=3",
            "last-resort",
            "0-stall",
        ],
        &rows,
    );
    out.note("");
    out.note("Observed shape: at normal load the headline metrics are insensitive");
    out.note("to K and the hop limit — 92% of best paths are 2 hops anyway (Table");
    out.note("2), which is itself the paper's point. hops<=2 eliminates the");
    out.note("3-hop paths inter-national sessions otherwise use ~23% of the time");
    out.note("(chosen for loss/load-adjusted weight, roughly delay-neutral in");
    out.note("this topology); hops<=4 adds only computation (the O(n^3) mesh");
    out.note("enumerator no longer applies); the Eq.3 load term and K>1 pay off");
    out.note("under overload, where invalidation forces last-resort paths.");
    out.print();
}
