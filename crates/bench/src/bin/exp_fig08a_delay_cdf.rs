//! Figure 8(a): streaming delay CDF — thin wrapper over [`livenet_bench::render::fig08a`].
//!
//! Runs the canonical fleet configuration (tunable via `--days`,
//! `--scale`, `--seed`) and prints the table/figure with the paper's
//! values alongside. To print EVERY figure from one run, use `exp_all`.

use livenet_bench::{cli_config, render, run, Report};

fn main() {
    let report = run(cli_config());
    let mut out = Report::fleet("Figure 8(a): streaming delay CDF", "§6.3, Fig. 8(a)", &report);
    render::fig08a(&report, &mut out);
    out.print();
}
