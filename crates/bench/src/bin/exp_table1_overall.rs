//! Table 1: overall performance — thin wrapper over [`livenet_bench::render::table1`].
//!
//! Runs the canonical fleet configuration (tunable via `--days`,
//! `--scale`, `--seed`) and prints the table/figure with the paper's
//! values alongside. To print EVERY figure from one run, use `exp_all`.

use livenet_bench::{cli_config, render, run, Report};

fn main() {
    let report = run(cli_config());
    let mut out = Report::fleet("Table 1: overall performance", "§6.2, Table 1", &report);
    render::table1(&report, &mut out);
    out.print();
}
