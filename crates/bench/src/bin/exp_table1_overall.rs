//! Table 1: overall performance — thin wrapper over [`livenet_bench::render::table1`].
//!
//! Runs the canonical fleet configuration (tunable via `--days`,
//! `--scale`, `--seed`) and prints the table/figure with the paper's
//! values alongside. To print EVERY figure from one run, use `exp_all`.

use livenet_bench::{banner, cli_config, render, run};

fn main() {
    #[allow(unused_mut)]
    let mut cfg = cli_config();
    let report = run(cfg);
    banner("Table 1: overall performance", "§6.2, Table 1", &report);
    render::table1(&report);
}
