//! Figure 10(a): Brain path-request response time — thin wrapper over [`livenet_bench::render::fig10a`].
//!
//! Runs the canonical fleet configuration (tunable via `--days`,
//! `--scale`, `--seed`) and prints the table/figure with the paper's
//! values alongside. To print EVERY figure from one run, use `exp_all`.

use livenet_bench::{cli_config, render, run, Report};

fn main() {
    let report = run(cli_config());
    let mut out = Report::fleet("Figure 10(a): Brain path-request response time", "§6.4, Fig. 10(a)", &report);
    render::fig10a(&report, &mut out);
    out.print();
}
