//! §3/§5 validation — the fast-slow path transmission architecture on the
//! paper's A→B→C example, at packet level.
//!
//! Demonstrates (and quantifies) the design claim: when A→B loses packets,
//! B's slow path NACKs A and recovers them; the fast path keeps forwarding
//! around the hole; when C detects the same loss, B has usually already
//! recovered the packet, so C's recovery takes only one B↔C RTT. With the
//! slow path disabled (ablation), lost packets are never recovered and
//! viewers stall or skip frames.

use livenet_bench::Report;
use livenet_sim::packetsim::{PacketSim, PacketSimConfig};

fn main() {
    let mut out = Report::new("fast/slow path recovery (A→B→C, §3 & §5)", "§3 & §5");

    let mut rows = Vec::new();
    for (loss_pct, bursty) in [
        (0.0, false),
        (0.5, false),
        (1.0, false),
        (2.0, false),
        (5.0, false),
        (2.0, true), // Gilbert–Elliott bursts, same mean
    ] {
        for recovery in [true, false] {
            let mut cfg = PacketSimConfig::three_node_chain(loss_pct / 100.0, 42);
            if bursty {
                cfg.links[0] = livenet_sim::packetsim::ChainLink::healthy(10)
                    .with_bursty_loss(loss_pct / 100.0);
            }
            if !recovery {
                cfg.nack_retry_limit = 0;
            }
            let report = PacketSim::new(cfg).run();
            let (_, qoe) = report.viewers[0];
            let mean_recovery = if report.recovery_latencies_ms.is_empty() {
                f64::NAN
            } else {
                report.recovery_latencies_ms.iter().sum::<f64>()
                    / report.recovery_latencies_ms.len() as f64
            };
            rows.push(vec![
                format!("{loss_pct:.1}%{}", if bursty { " bursty" } else { "" }),
                if recovery { "fast+slow".into() } else { "fast only".into() },
                format!("{}", qoe.frames_rendered),
                format!("{}", qoe.stalls),
                format!("{}", report.node_stats[0].rtx_served),
                if mean_recovery.is_nan() {
                    "-".into()
                } else {
                    format!("{mean_recovery:.0} ms")
                },
            ]);
        }
    }
    out.table(
        &[
            "A→B loss",
            "pipeline",
            "frames rendered",
            "stalls",
            "RTX served by A",
            "mean recovery",
        ],
        &rows,
    );
    out.note("");
    out.note("Expected shape: with the slow path, frames rendered stays near the");
    out.note("lossless count and recovery completes in ~(scan/2 + RTT) ≈ 45 ms;");
    out.note("without it, rendered frames fall and stalls appear as loss grows.");
    out.print();
}
