//! Table 3: Double-12 festival — thin wrapper over [`livenet_bench::render::table3`].
//!
//! Runs the canonical fleet configuration (tunable via `--days`,
//! `--scale`, `--seed`) and prints the table/figure with the paper's
//! values alongside. To print EVERY figure from one run, use `exp_all`.

use livenet_bench::{cli_config, render, run, Report};

fn main() {
    let report = run(cli_config());
    let mut out = Report::fleet("Table 3: Double-12 festival", "§6.5, Table 3", &report);
    render::table3(&report, &mut out);
    out.print();
}
