//! Figure 11: delay vs path length — thin wrapper over [`livenet_bench::render::fig11`].
//!
//! Runs the canonical fleet configuration (tunable via `--days`,
//! `--scale`, `--seed`) and prints the table/figure with the paper's
//! values alongside. To print EVERY figure from one run, use `exp_all`.

use livenet_bench::{cli_config, render, run, Report};

fn main() {
    let report = run(cli_config());
    let mut out = Report::fleet("Figure 11: delay vs path length", "§6.4, Fig. 11", &report);
    render::fig11(&report, &mut out);
    out.print();
}
