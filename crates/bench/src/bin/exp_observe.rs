//! Telemetry demonstration — per-stage latency attribution on the
//! Double-12 surge, with the determinism contract checked end to end.
//!
//! Runs a Double-12-style scenario (festival surge + region outage at the
//! surge peak) through [`FleetRunner`] at several shard widths. At each
//! width the merged per-shard [`livenet_telemetry::Snapshot`] from
//! `run_serial` is asserted **bit-identical** to `run_parallel` — the
//! unified metric hub obeys the same determinism contract as the session
//! records (DESIGN.md §9). The widest run's snapshot is rendered as the
//! per-stage latency attribution table (brain lookup → first packet →
//! startup → streaming → recovery) and written to `BENCH_observe.json`.
//!
//! ```sh
//! cargo run --release --bin exp_observe [-- --threads 8]
//! ```

use livenet_bench::{render, Report, SEED};
use livenet_sim::{FleetConfigBuilder, FleetFault, FleetReport, FleetRunner};

/// Shard widths the determinism self-check runs at.
const WIDTHS: [usize; 2] = [2, 4];

fn double12_config(shards: usize) -> livenet_sim::FleetConfig {
    FleetConfigBuilder::smoke(SEED)
        .shards(shards)
        .tweak(|c| {
            // Two days with the Double-12 surge on day 1 (2× demand), plus
            // a region outage at the surge peak — the §6.5 stress shape.
            c.workload.days = 2;
            c.workload.festival_days = vec![1];
            c.workload.festival_factor = 2.0;
        })
        .fault(FleetFault::RegionOutage {
            at_secs: 44 * 3600, // hour 20 of the festival day
            down_for_secs: 1800,
            country: 0,
        })
        .build()
        .expect("observe preset is valid")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut threads = 8usize;
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--threads" {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                threads = v;
                i += 1;
            }
        }
        i += 1;
    }

    let mut out = Report::new(
        "per-stage latency attribution (Double-12 surge, §6.1 telemetry)",
        "§6.1, §6.5; DESIGN.md §9",
    );
    out.meta("threads", threads.to_string());

    let mut last: Option<FleetReport> = None;
    for width in WIDTHS {
        let runner = FleetRunner::new(double12_config(width)).expect("config validated");
        let serial = runner.run_serial();
        let parallel = runner.run_parallel(threads);
        // The contract exp_observe exists to demonstrate: the merged
        // per-shard telemetry snapshot is bit-identical however the
        // shards are scheduled.
        assert!(
            serial.telemetry.bit_identical(&parallel.telemetry),
            "telemetry snapshot diverged between serial and parallel at {width} shards"
        );
        assert!(
            serial.bit_identical(&parallel),
            "fleet report diverged between serial and parallel at {width} shards"
        );
        out.note(format!(
            "shards={width}: serial ≡ parallel (telemetry bit-identical; \
             {} sessions, {} counters, {} histograms)",
            parallel.livenet.len(),
            parallel.telemetry.counters.len(),
            parallel.telemetry.hists.len(),
        ));
        last = Some(parallel);
    }
    let report = last.expect("at least one width ran");

    out.heading("Per-stage latency attribution (widest run)");
    render::telemetry(&report, &mut out);

    // Persist the snapshot next to the other BENCH_*.json artifacts.
    let snap_json = report.telemetry.to_json();
    let json = format!(
        "{{\n  \"experiment\": \"observe\",\n  \"seed\": {SEED},\n  \"widths\": [{}],\n  \"serial_parallel_bit_identical\": true,\n  \"sessions\": {},\n  \"telemetry\": {}}}\n",
        WIDTHS.map(|w| w.to_string()).join(", "),
        report.livenet.len(),
        snap_json.trim_end(),
    );
    std::fs::write("BENCH_observe.json", &json).expect("write BENCH_observe.json");
    out.note("wrote BENCH_observe.json");
    out.print();
}
