//! §7.1 Brain high availability — Paxos leader failover under load.
//!
//! Deploys the Streaming Brain as a Paxos-replicated cluster per shard
//! and crashes the leader in the middle of a Double-12-style festival
//! surge. The run measures:
//!
//! * **Failover latency** — last decree decided before the crash → first
//!   lease decree won by a live replica (per shard cluster).
//! * **Session impact** — startup delay and local-hit mix in the window
//!   right after the crash, against an identical no-crash baseline run.
//! * **Consistency** — the post-run audit replays every replica's log
//!   against the canonical chosen sequence and cross-checks sampled
//!   `PathAssignment`s across replicas; any divergence fails the run.
//!
//! Writes `BENCH_brainha.json`. `--shards N` sets only the *worker
//! thread* count; the shard partition is fixed by the config, so the
//! JSON is bit-identical for `--shards 1` and `--shards 8` (asserted via
//! [`FleetReport::bit_identical`]). `--smoke` shrinks the run for CI.
//!
//! ```sh
//! cargo run --release --bin exp_brainha [-- --shards 8] [--smoke]
//! ```
//!
//! [`FleetReport::bit_identical`]: livenet_sim::FleetReport::bit_identical

use livenet_bench::{ratio_pct, Report, SEED};
use livenet_sim::{
    DecisionOutcome, FleetConfig, FleetConfigBuilder, FleetFault, FleetReport, FleetRunner,
    ReplicationConfig, SessionRecord,
};

/// Hard gate: a 3-replica cluster with a 3 s lease must re-elect well
/// inside this bound (lease expiry + per-rank backoff + one Paxos round).
const FAILOVER_BOUND_MS: f64 = 15_000.0;

/// Post-crash observation window for the session-impact deltas.
const IMPACT_WINDOW_SECS: u64 = 300;

struct Scenario {
    days: u32,
    crash_at_secs: u64,
    crash_down_secs: u64,
    peak_arrivals_per_sec: f64,
    festival: Vec<u32>,
}

fn scenario(smoke: bool) -> Scenario {
    if smoke {
        // CI-sized: one quiet day, crash at noon.
        Scenario {
            days: 1,
            crash_at_secs: 12 * 3600 + 1800,
            crash_down_secs: 300,
            peak_arrivals_per_sec: 0.2,
            festival: vec![],
        }
    } else {
        // Two days; day 1 is the festival, the leader dies mid-evening
        // surge (20:30) and stays down for ten minutes.
        Scenario {
            days: 2,
            crash_at_secs: 86_400 + 20 * 3600 + 1800,
            crash_down_secs: 600,
            peak_arrivals_per_sec: 0.5,
            festival: vec![1],
        }
    }
}

fn config(sc: &Scenario, crash: bool) -> FleetConfig {
    let mut b = FleetConfigBuilder::smoke(SEED)
        .days(sc.days)
        .peak_arrivals_per_sec(sc.peak_arrivals_per_sec)
        .festival(sc.festival.clone(), 2.5)
        .replication(ReplicationConfig::default());
    if sc.days == 1 {
        // Smoke: fewer shards → fewer per-shard clusters to simulate.
        b = b.shards(4);
    }
    if crash {
        b = b.fault(FleetFault::BrainLeaderCrash {
            at_secs: sc.crash_at_secs,
            down_for_secs: sc.crash_down_secs,
        });
    }
    b.build().expect("brainha preset is valid")
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Sessions whose start falls in `[from_secs, from_secs + len_secs)`.
fn window(sessions: &[SessionRecord], from_secs: u64, len_secs: u64) -> Vec<SessionRecord> {
    sessions
        .iter()
        .filter(|s| {
            let t = s.start.as_secs_f64();
            t >= from_secs as f64 && t < (from_secs + len_secs) as f64
        })
        .copied()
        .collect()
}

fn mean_startup(sessions: &[SessionRecord]) -> f64 {
    if sessions.is_empty() {
        return f64::NAN;
    }
    sessions.iter().map(|s| f64::from(s.startup_ms)).sum::<f64>() / sessions.len() as f64
}

fn json_or_null(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut threads = 8usize;
    let mut smoke = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--shards" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    threads = v;
                    i += 1;
                }
            }
            "--smoke" => smoke = true,
            _ => {}
        }
        i += 1;
    }

    let sc = scenario(smoke);
    let mut out = Report::new("Brain HA: Paxos leader failover (§7.1)", "§7.1");

    // Baseline: replicated control plane, no crash.
    let baseline = FleetRunner::new(config(&sc, false))
        .expect("validated")
        .run_parallel(threads);
    // Crash run, parallel + serial (the determinism gate).
    let crash_cfg = config(&sc, true);
    let shards = crash_cfg.shards;
    let runner = FleetRunner::new(crash_cfg).expect("validated");
    let report: FleetReport = runner.run_parallel(threads);
    assert!(
        report.bit_identical(&runner.run_serial()),
        "parallel replicated fleet run diverged from serial"
    );

    let rep = report
        .replication
        .as_ref()
        .expect("replicated run carries a summary");
    let base_rep = baseline
        .replication
        .as_ref()
        .expect("baseline is replicated too");

    // ---------- Gates ----------
    assert_eq!(rep.log_divergences, 0, "replica decided log diverged");
    assert_eq!(rep.assignment_mismatches, 0, "replica path decisions diverged");
    assert_eq!(rep.give_ups, 0, "a control-plane client gave up");
    assert_eq!(rep.leader_crashes, shards as u64, "crash missed a shard");
    assert_eq!(rep.restarts, shards as u64, "a crashed replica never restarted");
    assert!(
        !rep.failover_ms.is_empty(),
        "leader crash produced no failover measurement"
    );
    let mut fo = rep.failover_ms.clone();
    fo.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let fo_max = *fo.last().unwrap();
    assert!(
        fo_max.is_finite() && fo_max < FAILOVER_BOUND_MS,
        "failover latency {fo_max:.0} ms exceeds the {FAILOVER_BOUND_MS:.0} ms bound"
    );

    // ---------- Failover latency ----------
    out.heading("Leader failover latency (per shard cluster)");
    out.table(
        &["samples", "p50", "p99", "max", "bound"],
        &[vec![
            format!("{}", fo.len()),
            format!("{:.0} ms", percentile(&fo, 0.5)),
            format!("{:.0} ms", percentile(&fo, 0.99)),
            format!("{fo_max:.0} ms"),
            format!("{FAILOVER_BOUND_MS:.0} ms"),
        ]],
    );
    out.note(format!(
        "replicas/cluster: {}, clusters (shards): {shards}, decrees: {} (+{} lease)",
        rep.replicas,
        rep.ops_committed,
        rep.lease_grants + rep.lease_renewals,
    ));
    out.note(format!(
        "cluster traffic: {} msgs sent, {} dropped; client: {} retries, {} redirects",
        rep.msgs_sent, rep.msgs_dropped, rep.client_retries, rep.redirects,
    ));

    // ---------- Session impact in the post-crash window ----------
    out.heading("Session impact in the post-crash window");
    let win_c = window(&report.livenet, sc.crash_at_secs, IMPACT_WINDOW_SECS);
    let win_b = window(&baseline.livenet, sc.crash_at_secs, IMPACT_WINDOW_SECS);
    let startup_c = mean_startup(&win_c);
    let startup_b = mean_startup(&win_b);
    let hit_c = ratio_pct(&win_c, |s| s.outcome.is_local_hit());
    let hit_b = ratio_pct(&win_b, |s| s.outcome.is_local_hit());
    let pre_c = ratio_pct(&win_c, |s| matches!(s.outcome, DecisionOutcome::Prefetched));
    out.table(
        &["metric", "baseline", "crash run", "delta"],
        &[
            vec![
                format!("sessions in window ({IMPACT_WINDOW_SECS} s)"),
                format!("{}", win_b.len()),
                format!("{}", win_c.len()),
                String::new(),
            ],
            vec![
                "mean startup".to_string(),
                format!("{startup_b:.0} ms"),
                format!("{startup_c:.0} ms"),
                format!("{:+.0} ms", startup_c - startup_b),
            ],
            vec![
                "local-hit ratio".to_string(),
                format!("{hit_b:.1}%"),
                format!("{hit_c:.1}%"),
                format!("{:+.1} pp", hit_c - hit_b),
            ],
        ],
    );
    out.note(format!(
        "prefetched share in crash window: {pre_c:.1}% (prefetched paths ride out the failover)"
    ));
    out.note("");
    out.note("Expected shape: startup inflates while path requests wait out the");
    out.note("lease takeover; prefetched/local-hit sessions are unaffected (§4.4).");

    // ---------- JSON ----------
    let json = format!(
        "{{\n  \"experiment\": \"brainha\",\n  \"seed\": {SEED},\n  \"smoke\": {smoke},\n  \"shards\": {shards},\n  \"replicas\": {},\n  \"crash_at_secs\": {},\n  \"crash_down_secs\": {},\n  \"failover\": {{\"n\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \"max_ms\": {}, \"bound_ms\": {FAILOVER_BOUND_MS}}},\n  \"consistency\": {{\"decided_slots\": {}, \"log_divergences\": {}, \"assignment_mismatches\": {}}},\n  \"cluster\": {{\"ops_committed\": {}, \"lease_grants\": {}, \"lease_renewals\": {}, \"msgs_sent\": {}, \"msgs_dropped\": {}, \"client_retries\": {}, \"redirects\": {}, \"give_ups\": {}}},\n  \"impact\": {{\"window_secs\": {IMPACT_WINDOW_SECS}, \"sessions_baseline\": {}, \"sessions_crash\": {}, \"mean_startup_baseline_ms\": {}, \"mean_startup_crash_ms\": {}, \"hit_ratio_baseline_pct\": {}, \"hit_ratio_crash_pct\": {}}},\n  \"baseline_cluster\": {{\"ops_committed\": {}, \"leader_crashes\": {}}}\n}}\n",
        rep.replicas,
        sc.crash_at_secs,
        sc.crash_down_secs,
        fo.len(),
        json_or_null(percentile(&fo, 0.5)),
        json_or_null(percentile(&fo, 0.99)),
        json_or_null(fo_max),
        rep.decided_slots,
        rep.log_divergences,
        rep.assignment_mismatches,
        rep.ops_committed,
        rep.lease_grants,
        rep.lease_renewals,
        rep.msgs_sent,
        rep.msgs_dropped,
        rep.client_retries,
        rep.redirects,
        rep.give_ups,
        win_b.len(),
        win_c.len(),
        json_or_null(startup_b),
        json_or_null(startup_c),
        json_or_null(hit_b),
        json_or_null(hit_c),
        base_rep.ops_committed,
        base_rep.leader_crashes,
    );
    std::fs::write("BENCH_brainha.json", &json).expect("write BENCH_brainha.json");
    out.note("wrote BENCH_brainha.json");
    out.print();
}
