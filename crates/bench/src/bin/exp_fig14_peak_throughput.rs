//! Figure 14: daily peak throughput — thin wrapper over [`livenet_bench::render::fig14`].
//!
//! Runs the canonical fleet configuration (tunable via `--days`,
//! `--scale`, `--seed`) and prints the table/figure with the paper's
//! values alongside. To print EVERY figure from one run, use `exp_all`.

use livenet_bench::{banner, cli_config, render, run};

fn main() {
    #[allow(unused_mut)]
    let mut cfg = cli_config();
    let report = run(cfg);
    banner("Figure 14: daily peak throughput", "§6.5, Fig. 14", &report);
    render::fig14(&report);
}
