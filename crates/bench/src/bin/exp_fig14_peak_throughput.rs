//! Figure 14: daily peak throughput — thin wrapper over [`livenet_bench::render::fig14`].
//!
//! Runs the canonical fleet configuration (tunable via `--days`,
//! `--scale`, `--seed`) and prints the table/figure with the paper's
//! values alongside. To print EVERY figure from one run, use `exp_all`.

use livenet_bench::{cli_config, render, run, Report};

fn main() {
    let report = run(cli_config());
    let mut out = Report::fleet("Figure 14: daily peak throughput", "§6.5, Fig. 14", &report);
    render::fig14(&report, &mut out);
    out.print();
}
