//! Fleet-runner throughput bench: serial vs parallel sharded execution.
//!
//! Default mode runs the paper-scale workload serial and parallel
//! (asserting the two reports are bit-identical), then the ≥1M-session
//! `mega_scale` stress preset parallel-only, and writes `BENCH_fleet.json`
//! (sessions/sec, speedup, host core count, peak RSS) to the current
//! directory:
//!
//! ```sh
//! cargo run --release -p livenet-bench --bin bench_fleet [-- --threads 8]
//! ```
//!
//! `--smoke` is the CI gate: the smoke workload serial vs parallel,
//! asserting bit-identity always, and asserting parallel is no slower
//! than serial *only when the host has ≥ 2 cores* — wall-clock speedup on
//! a single-core runner is physically impossible, and pretending
//! otherwise would just make the gate flaky. No JSON is written.
//!
//! ```sh
//! cargo run --release -p livenet-bench --bin bench_fleet -- --smoke --threads 4
//! ```

use livenet_bench::{Report, SEED};
use livenet_sim::{FleetConfigBuilder, FleetRunner};
use std::time::Instant;

fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

struct Timed {
    sessions: usize,
    secs: f64,
    report: livenet_sim::FleetReport,
}

fn timed(label: &str, out: &mut Report, run: impl FnOnce() -> livenet_sim::FleetReport) -> Timed {
    let t0 = Instant::now();
    let report = run();
    let secs = t0.elapsed().as_secs_f64();
    let sessions = report.livenet.len();
    out.note(format!(
        "{label}: {sessions} sessions in {secs:.3}s ({:.0}/s)",
        sessions as f64 / secs
    ));
    Timed {
        sessions,
        secs,
        report,
    }
}

fn smoke_gate(threads: usize, out: &mut Report) {
    let cfg = FleetConfigBuilder::smoke(SEED)
        .build()
        .expect("smoke preset is valid");
    let runner = FleetRunner::new(cfg).expect("config already validated");
    let serial = timed("smoke serial", out, || runner.run_serial());
    let parallel = timed("smoke parallel", out, || runner.run_parallel(threads));
    assert!(
        serial.report.bit_identical(&parallel.report),
        "parallel run diverged from serial"
    );
    let speedup = serial.secs / parallel.secs;
    let ncores = cores();
    out.note(format!(
        "speedup: {speedup:.2}x on {ncores} core(s), bit-identical: true"
    ));
    if ncores >= 2 {
        assert!(
            speedup >= 1.0,
            "parallel ({:.3}s) slower than serial ({:.3}s) on {ncores} cores",
            parallel.secs,
            serial.secs
        );
    } else {
        out.note("single-core host: speedup gate skipped (only bit-identity checked)");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut threads = 8usize;
    let mut smoke = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    threads = v;
                    i += 1;
                }
            }
            "--smoke" => smoke = true,
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
        i += 1;
    }

    let mut out = Report::new("fleet-runner throughput (serial vs parallel)", "");
    out.meta("threads", threads.to_string());
    out.meta("cores", cores().to_string());

    if smoke {
        out.meta("workload", "smoke");
        smoke_gate(threads, &mut out);
        out.print();
        return;
    }

    // Paper-scale: serial vs parallel, the bit-identity + speedup headline.
    let cfg = FleetConfigBuilder::paper_scale(SEED)
        .build()
        .expect("paper_scale preset is valid");
    let shards = cfg.shards;
    out.meta("workload", "paper_scale + mega_scale");
    let runner = FleetRunner::new(cfg).expect("config already validated");
    let serial = timed("paper_scale serial", &mut out, || runner.run_serial());
    let parallel = timed("paper_scale parallel", &mut out, || {
        runner.run_parallel(threads)
    });
    let identical = serial.report.bit_identical(&parallel.report);
    assert!(identical, "parallel run diverged from serial");
    let speedup = serial.secs / parallel.secs;
    out.note(format!(
        "paper_scale speedup: {speedup:.2}x on {} core(s), bit-identical: {identical}",
        cores()
    ));

    // Mega-scale: ≥1M sessions with a Double-12 surge, parallel only.
    let mega_cfg = FleetConfigBuilder::mega_scale(SEED)
        .build()
        .expect("mega_scale preset is valid");
    let mega_shards = mega_cfg.shards;
    let mega_runner = FleetRunner::new(mega_cfg).expect("config already validated");
    let mega = timed("mega_scale parallel", &mut out, || {
        mega_runner.run_parallel(threads)
    });
    assert!(
        mega.sessions >= 1_000_000,
        "mega_scale produced only {} sessions",
        mega.sessions
    );

    let rss_kb = peak_rss_kb().unwrap_or(0);
    out.note(format!("peak RSS: {rss_kb} kB"));

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"fleet_sharded\",\n",
            "  \"seed\": {seed},\n",
            "  \"cores\": {cores},\n",
            "  \"threads\": {threads},\n",
            "  \"paper_scale\": {{\n",
            "    \"shards\": {shards},\n",
            "    \"sessions\": {sessions},\n",
            "    \"serial_secs\": {serial_secs:.4},\n",
            "    \"parallel_secs\": {parallel_secs:.4},\n",
            "    \"serial_sessions_per_sec\": {serial_rate:.1},\n",
            "    \"parallel_sessions_per_sec\": {parallel_rate:.1},\n",
            "    \"speedup\": {speedup:.3},\n",
            "    \"bit_identical\": {identical}\n",
            "  }},\n",
            "  \"mega_scale\": {{\n",
            "    \"shards\": {mega_shards},\n",
            "    \"sessions\": {mega_sessions},\n",
            "    \"secs\": {mega_secs:.4},\n",
            "    \"sessions_per_sec\": {mega_rate:.1}\n",
            "  }},\n",
            "  \"peak_rss_kb\": {rss_kb}\n",
            "}}\n",
        ),
        seed = SEED,
        cores = cores(),
        threads = threads,
        shards = shards,
        sessions = serial.sessions,
        serial_secs = serial.secs,
        parallel_secs = parallel.secs,
        serial_rate = serial.sessions as f64 / serial.secs,
        parallel_rate = parallel.sessions as f64 / parallel.secs,
        speedup = speedup,
        identical = identical,
        mega_shards = mega_shards,
        mega_sessions = mega.sessions,
        mega_secs = mega.secs,
        mega_rate = mega.sessions as f64 / mega.secs,
        rss_kb = rss_kb,
    );
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    out.note("wrote BENCH_fleet.json");
    out.print();
}
