//! Fleet-runner throughput bench: serial vs parallel sharded execution.
//!
//! Runs the smoke workload through [`FleetRunner::run_serial`] and
//! [`FleetRunner::run_parallel`], verifies the two reports are
//! bit-identical, and writes `BENCH_fleet.json` (sessions/sec for both
//! modes, speedup, peak RSS) to the current directory.
//!
//! ```sh
//! cargo run --release --bin bench_fleet [-- --threads 8]
//! ```

use livenet_bench::{Report, SEED};
use livenet_sim::{FleetConfigBuilder, FleetRunner};
use std::time::Instant;

fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut threads = 8usize;
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--threads" {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                threads = v;
                i += 1;
            }
        }
        i += 1;
    }

    let cfg = FleetConfigBuilder::smoke(SEED)
        .build()
        .expect("smoke preset is valid");
    let shards = cfg.shards;
    let runner = FleetRunner::new(cfg).expect("config already validated");

    let mut out = Report::new("fleet-runner throughput (serial vs parallel)", "");
    out.meta("workload", "smoke");
    out.meta("shards", shards.to_string());
    out.meta("threads", threads.to_string());

    let t0 = Instant::now();
    let serial = runner.run_serial();
    let serial_secs = t0.elapsed().as_secs_f64();
    let sessions = serial.livenet.len();
    out.note(format!(
        "serial:   {sessions} sessions in {serial_secs:.3}s ({:.0}/s)",
        sessions as f64 / serial_secs
    ));

    let t1 = Instant::now();
    let parallel = runner.run_parallel(threads);
    let parallel_secs = t1.elapsed().as_secs_f64();
    out.note(format!(
        "parallel: {} sessions in {parallel_secs:.3}s ({:.0}/s)",
        parallel.livenet.len(),
        parallel.livenet.len() as f64 / parallel_secs
    ));

    let identical = serial.bit_identical(&parallel);
    let speedup = serial_secs / parallel_secs;
    let rss_kb = peak_rss_kb().unwrap_or(0);
    out.note(format!(
        "speedup: {speedup:.2}x, bit-identical: {identical}, peak RSS: {rss_kb} kB"
    ));
    assert!(identical, "parallel run diverged from serial");

    let json = format!(
        "{{\n  \"bench\": \"fleet_sharded\",\n  \"seed\": {SEED},\n  \"shards\": {shards},\n  \"threads\": {threads},\n  \"sessions\": {sessions},\n  \"serial_secs\": {serial_secs:.4},\n  \"parallel_secs\": {parallel_secs:.4},\n  \"serial_sessions_per_sec\": {:.1},\n  \"parallel_sessions_per_sec\": {:.1},\n  \"speedup\": {speedup:.3},\n  \"bit_identical\": {identical},\n  \"peak_rss_kb\": {rss_kb}\n}}\n",
        sessions as f64 / serial_secs,
        sessions as f64 / parallel_secs,
    );
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    out.note("wrote BENCH_fleet.json");
    out.print();
}
