//! Run the canonical 20-day evaluation ONCE and print every table and
//! figure of the paper's §6 from it, plus the packet-level experiments
//! and the telemetry snapshot that backs them.
//!
//! ```sh
//! cargo run --release -p livenet-bench --bin exp_all              # full
//! cargo run --release -p livenet-bench --bin exp_all -- --scale 0.5
//! ```

use livenet_bench::{cli_config, render, run, Report};
use livenet_sim::packetsim::{PacketSim, PacketSimConfig};

fn main() {
    let report = run(cli_config());
    let mut out = Report::fleet(
        "full evaluation (every table & figure from one 20-day run)",
        "§6",
        &report,
    );

    out.heading("Table 1 — overall performance (§6.2)");
    render::table1(&report, &mut out);
    out.heading("Figure 2 — CDN path delay per day, first week (§2.3)");
    render::fig02(&report, &mut out);
    out.heading("Figure 8(a) — streaming delay CDF (§6.3)");
    render::fig08a(&report, &mut out);
    out.heading("Figure 8(b) — stall distribution (§6.3)");
    render::fig08b(&report, &mut out);
    out.heading("Figure 8(c) — daily fast-startup ratio (§6.3)");
    render::fig08c(&report, &mut out);
    out.heading("Figure 9 — fast startup vs streaming delay (§6.3)");
    render::fig09(&report, &mut out);
    out.heading("Figure 10(a) — Brain response time (§6.4)");
    render::fig10a(&report, &mut out);
    out.heading("Figure 10(b) — local hit ratio (§6.4)");
    render::fig10b(&report, &mut out);
    out.heading("Figure 10(c) — first-packet delay (§6.4)");
    render::fig10c(&report, &mut out);
    out.heading("Table 2 — path-length distribution (§6.4)");
    render::table2(&report, &mut out);
    out.heading("Figure 11 — delay vs path length (§6.4)");
    render::fig11(&report, &mut out);
    out.heading("Figure 12 — intra vs inter-national delay (§6.4)");
    render::fig12(&report, &mut out);
    out.heading("Figure 13 — diurnal link loss (§6.4)");
    render::fig13(&report, &mut out);
    out.heading("Figure 14 — daily peak throughput (§6.5)");
    render::fig14(&report, &mut out);
    out.heading("Table 3 — Double-12 festival (§6.5)");
    render::table3(&report, &mut out);

    out.heading("§3/§5 — fast/slow-path recovery (packet level)");
    for loss_pct in [0.5, 2.0] {
        for recovery in [true, false] {
            let mut cfg = PacketSimConfig::three_node_chain(loss_pct / 100.0, 42);
            if !recovery {
                cfg.nack_retry_limit = 0;
            }
            let r = PacketSim::new(cfg).run();
            let (_, qoe) = r.viewers[0];
            out.note(format!(
                "loss {loss_pct:.1}% {}: {} frames, {} stalls, {} RTX served",
                if recovery { "fast+slow" } else { "fast only" },
                qoe.frames_rendered,
                qoe.stalls,
                r.node_stats[0].rtx_served,
            ));
        }
    }

    out.heading("Telemetry — unified metric snapshot (§6.1 log pipelines)");
    render::telemetry(&report, &mut out);

    out.note("");
    out.note("Done. Per-figure binaries: exp_table1_overall, exp_fig02_…, exp_ablation_….");
    out.print();
}
