//! Figure 10(c): hourly first-packet delay — thin wrapper over [`livenet_bench::render::fig10c`].
//!
//! Runs the canonical fleet configuration (tunable via `--days`,
//! `--scale`, `--seed`) and prints the table/figure with the paper's
//! values alongside. To print EVERY figure from one run, use `exp_all`.

use livenet_bench::{cli_config, render, run, Report};

fn main() {
    let mut cfg = cli_config();
    cfg.workload.days = cfg.workload.days.min(7);
    cfg.workload.festival_days.retain(|d| *d < cfg.workload.days);
    let report = run(cfg);
    let mut out = Report::fleet("Figure 10(c): hourly first-packet delay", "§6.4, Fig. 10(c)", &report);
    render::fig10c(&report, &mut out);
    out.print();
}
