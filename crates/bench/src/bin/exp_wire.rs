//! Real-socket wire experiment: a 50+ node geo edge fleet on 127.0.0.1.
//!
//! Builds the [`TestbedBuilder::geo_fleet`] overlay — per-country hub
//! backbone, region-clustered edge nodes, last-resort relays, edges and
//! RTTs from `livenet-topology`'s generator — and drives hundreds of
//! concurrent real-socket viewers whose staggered arrivals come from
//! `livenet-sim`'s Taobao-shaped workload. Three result sections land in
//! `BENCH_wire.json`:
//!
//! 1. **Wire run** — startup / E2E-delay distributions, streaming-phase
//!    delivery, and the RTCP-feedback→cc demonstration (every viewer in
//!    the busiest country turns synthetically lossy mid-run).
//! 2. **Agreement gate** — the same media parameters through the packet
//!    emulator over the fleet's modal path shape (producer hub → home
//!    hub → edge node, chain delays = the median wired RTT per hop, the
//!    same convention the diamond experiment used), with emulator viewers
//!    joining at the wire join-time quantiles. The run asserts the wire
//!    and emulator startup/E2E medians agree within tolerance.
//! 3. **Load generator** — achievable datagrams/sec per core through
//!    [`BatchSocket`], batched (`sendmmsg`/`recvmmsg`) vs the portable
//!    sequential fallback.
//!
//! ```sh
//! cargo run --release --bin exp_wire            # full: ≥200 viewers
//! cargo run --release --bin exp_wire -- --smoke # CI gate: capped run
//! ```

use bytes::Bytes;
use livenet_bench::{Report, SEED};
use livenet_sim::packetsim::{ChainLink, ViewerSpec};
use livenet_sim::{PacketSim, PacketSimConfig};
use livenet_topology::GeoConfig;
use livenet_transport::{
    testbed, BatchBackend, BatchSocket, RecvBatch, SendDatagram, TestbedBuilder, TestbedConfig,
    MAX_BATCH,
};
use livenet_types::{Bandwidth, SimDuration, SimTime, StreamId};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const STREAM: StreamId = StreamId(900);

/// Spoke fan-out of every edge node (home hub + closest foreign hub).
const FANOUT: usize = 2;

/// Agreement tolerances: the wire median must sit within these of the
/// emulator median. Generous by design — the wire measures wall-clock
/// startup through a busy single-core executor while the emulator is an
/// idealized event loop — but tight enough to catch a broken datapath
/// (an unserved GoP-cache burst or a mis-accumulated delay field blows
/// straight through them).
const STARTUP_TOL_ABS_MS: f64 = 150.0;
const STARTUP_TOL_REL: f64 = 0.8;
const E2E_TOL_ABS_MS: f64 = 50.0;
const E2E_TOL_REL: f64 = 0.6;

fn local() -> SocketAddr {
    "127.0.0.1:0".parse().expect("loopback addr")
}

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

fn fmt_opt_ms(v: Option<f64>) -> String {
    v.map(|ms| format!("{ms:.1}")).unwrap_or_else(|| "—".into())
}

fn median(sorted: &[f64]) -> Option<f64> {
    testbed::percentile(sorted, 0.5)
}

/// Wired hop delays (ms) from the producer to one viewer node, following
/// the hub-and-spoke shape: direct edge if one exists, else the cheapest
/// two-hop relay. Chain-link delay == wired edge RTT value, the same
/// convention the diamond experiment established.
fn hops_to(cfg: &TestbedConfig, rtt: &HashMap<(usize, usize), f64>, node: usize) -> Vec<f64> {
    if node == cfg.producer {
        return Vec::new();
    }
    if let Some(&ms) = rtt.get(&(cfg.producer, node)) {
        return vec![ms];
    }
    let mut best: Option<(f64, f64)> = None;
    for mid in 0..cfg.nodes {
        if let (Some(&a), Some(&b)) =
            (rtt.get(&(cfg.producer, mid)), rtt.get(&(mid, node)))
        {
            if best.is_none_or(|(x, y)| a + b < x + y) {
                best = Some((a, b));
            }
        }
    }
    let (a, b) = best.expect("geo wiring reaches every node within two hops");
    vec![a, b]
}

/// The emulator counterpart: a chain over the fleet's modal path shape,
/// per-hop delay = median wired RTT of that hop across all viewers, with
/// emulator viewers joining at the wire join-time quantiles.
fn emulator_config(cfg: &TestbedConfig) -> PacketSimConfig {
    let mut rtt: HashMap<(usize, usize), f64> = HashMap::new();
    for &(a, b, r) in &cfg.edges {
        rtt.insert((a, b), r.as_millis_f64());
        rtt.insert((b, a), r.as_millis_f64());
    }
    let paths: Vec<Vec<f64>> = cfg
        .viewers
        .iter()
        .map(|v| hops_to(cfg, &rtt, v.node))
        .filter(|h| !h.is_empty())
        .collect();
    // Modal shape: the hop count most viewers share (2 on the geo fleet).
    let modal_len = (1..=2)
        .max_by_key(|&l| paths.iter().filter(|p| p.len() == l).count())
        .expect("nonempty hop-count range");
    let modal: Vec<&Vec<f64>> = paths.iter().filter(|p| p.len() == modal_len).collect();
    let links: Vec<ChainLink> = (0..modal_len)
        .map(|k| {
            let mut hop: Vec<f64> = modal.iter().map(|p| p[k]).collect();
            hop.sort_by(f64::total_cmp);
            ChainLink::healthy(median(&hop).unwrap_or(10.0).round() as u64)
        })
        .collect();

    let mut joins: Vec<f64> = cfg
        .viewers
        .iter()
        .map(|v| v.join_after.as_secs_f64() * 1000.0)
        .collect();
    joins.sort_by(f64::total_cmp);
    let viewers: Vec<ViewerSpec> = (1..=9)
        .map(|d| {
            let at = testbed::percentile(&joins, d as f64 / 10.0).unwrap_or(0.0);
            ViewerSpec {
                node_index: links.len(),
                join_at: SimTime::from_millis((at as u64).max(50)),
                downlink: Bandwidth::from_mbps(50),
            }
        })
        .collect();

    let mut emu = PacketSimConfig::three_node_chain(0.0, SEED);
    emu.links = links;
    emu.gop = cfg.gop;
    emu.bitrate = cfg.bitrate;
    emu.duration = SimDuration::from_nanos(cfg.broadcast.as_nanos() as u64);
    emu.drain = SimDuration::from_nanos(cfg.drain.as_nanos() as u64);
    emu.viewers = viewers;
    emu
}

struct LoadgenResult {
    sent: u64,
    received: u64,
    secs: f64,
}

/// Blast 1200-byte datagrams through one loopback socket pair for `dur`,
/// send and receive interleaved on this core, and count what arrives —
/// the achievable full-duplex datagram rate of one backend on one core.
fn loadgen(backend: BatchBackend, dur: Duration) -> LoadgenResult {
    let tx = BatchSocket::bind(local(), backend).expect("bind loadgen tx");
    let rx = BatchSocket::bind(local(), backend).expect("bind loadgen rx");
    let payload = Bytes::from(vec![0u8; 1200]);
    let msgs: Vec<SendDatagram> = (0..MAX_BATCH)
        .map(|_| SendDatagram { to: rx.local_addr(), payload: payload.clone() })
        .collect();
    let mut batch = RecvBatch::new(MAX_BATCH, 2048);
    let (mut sent, mut received) = (0u64, 0u64);
    let start = Instant::now();
    while start.elapsed() < dur {
        if let Ok(n) = tx.try_send_batch(&msgs) {
            sent += n as u64;
        }
        while let Ok(k) = rx.try_recv_batch(&mut batch) {
            if k == 0 {
                break;
            }
            received += k as u64;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    // Drain stragglers still sitting in the loopback receive buffer.
    let drain_until = Instant::now() + Duration::from_millis(50);
    while Instant::now() < drain_until {
        match rx.try_recv_batch(&mut batch) {
            Ok(k) if k > 0 => received += k as u64,
            _ => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    LoadgenResult { sent, received, secs }
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (viewer_count, broadcast, drain, loadgen_dur) = if smoke {
        (72, Duration::from_secs(4), Duration::from_millis(1200), Duration::from_millis(400))
    } else {
        (220, Duration::from_secs(6), Duration::from_millis(1500), Duration::from_millis(1500))
    };

    let geo = GeoConfig::paper_scale(SEED);
    let mut cfg = TestbedBuilder::geo_fleet(STREAM, &geo, viewer_count, FANOUT, SEED)
        .broadcast(broadcast)
        .drain(drain)
        .build()
        .expect("geo_fleet preset is valid");

    // Congest the busiest viewer country: every viewer there reports 30%
    // loss from a third of the way in, so the consumer cores' GCC loops
    // must react region-wide.
    let mut per_country = vec![0usize; cfg.countries.iter().map(|&c| c as usize + 1).max().unwrap_or(1)];
    for v in &cfg.viewers {
        per_country[cfg.country_of(v.node) as usize] += 1;
    }
    let congested = per_country
        .iter()
        .enumerate()
        .max_by_key(|&(_, n)| *n)
        .map(|(c, _)| c as u32)
        .expect("at least one country");
    let lossy_from = broadcast / 3;
    let mut lossy_viewers = 0u64;
    for v in &mut cfg.viewers {
        if cfg.countries[v.node] == congested {
            v.lossy_rr = Some((lossy_from, 0.3));
            lossy_viewers += 1;
        }
    }

    let mut out = Report::new(
        "real-socket wire datapath (geo edge fleet on 127.0.0.1)",
        "§2.2, §4.4, §5.1; DESIGN.md §13",
    );
    out.meta("seed", SEED.to_string());
    out.meta("mode", if smoke { "smoke" } else { "full" });
    out.meta("cores", cores().to_string());
    out.meta("nodes", cfg.nodes.to_string());
    out.meta("viewers", cfg.viewers.len().to_string());
    out.meta("fanout", FANOUT.to_string());
    out.meta("congested_country", congested.to_string());
    out.meta(
        "broadcast",
        format!("{:.1}s @ {} kbps", cfg.broadcast.as_secs_f64(), cfg.bitrate.as_bps() / 1000),
    );

    assert!(cfg.nodes >= 50, "geo fleet too small: {} nodes", cfg.nodes);
    if !smoke {
        assert!(cfg.viewers.len() >= 200, "full mode drives ≥200 viewers");
    }

    let emu_cfg = emulator_config(&cfg);
    let wire = testbed::run(cfg.clone()).await.expect("validated config runs");

    // ---- Wire distributions -------------------------------------------
    let startup = wire.startup_ms_sorted();
    let e2e = wire.e2e_ms_sorted();
    let wire_startup_med = median(&startup).expect("viewers measured startup");
    let wire_startup_p90 = testbed::percentile(&startup, 0.9).expect("startup p90");
    let wire_e2e_med = median(&e2e).expect("viewers measured E2E delay");

    out.heading("Wire run: geo fleet viewer distributions");
    out.table(
        &["metric", "median", "p90", "viewers measured"],
        &[
            vec![
                "startup delay (ms)".into(),
                format!("{wire_startup_med:.1}"),
                format!("{wire_startup_p90:.1}"),
                startup.len().to_string(),
            ],
            vec![
                "mean E2E delay field (ms)".into(),
                format!("{wire_e2e_med:.1}"),
                fmt_opt_ms(testbed::percentile(&e2e, 0.9)),
                e2e.len().to_string(),
            ],
        ],
    );
    out.note(format!(
        "broadcast {} frames over {} nodes; worst streaming-phase delivery {:.1}%; \
         {} staggered arrivals from the workload replay",
        wire.frames_broadcast,
        cfg.nodes,
        100.0 * wire.worst_delivery(),
        cfg.viewers.iter().filter(|v| !v.join_after.is_zero()).count(),
    ));

    // ---- Emulator agreement gate --------------------------------------
    let emu = PacketSim::new(emu_cfg).run();
    let mut emu_startup: Vec<f64> = emu
        .viewers
        .iter()
        .filter_map(|(_, q)| q.startup.map(|d| d.as_millis_f64()))
        .collect();
    emu_startup.sort_by(f64::total_cmp);
    let mut emu_e2e: Vec<f64> = emu
        .client_frames
        .iter()
        .filter_map(|frames| {
            let d: Vec<f64> = frames
                .iter()
                .filter_map(|(_, _, d)| d.map(|d| d.as_millis_f64()))
                .collect();
            (!d.is_empty()).then(|| d.iter().sum::<f64>() / d.len() as f64)
        })
        .collect();
    emu_e2e.sort_by(f64::total_cmp);
    let emu_startup_med = median(&emu_startup).expect("emulator viewers started");
    let emu_e2e_med = median(&emu_e2e).expect("emulator viewers measured delay");

    let startup_delta = (wire_startup_med - emu_startup_med).abs();
    let e2e_delta = (wire_e2e_med - emu_e2e_med).abs();
    let startup_tol = STARTUP_TOL_ABS_MS.max(STARTUP_TOL_REL * emu_startup_med);
    let e2e_tol = E2E_TOL_ABS_MS.max(E2E_TOL_REL * emu_e2e_med);

    out.heading("Agreement: wire vs packet emulator, modal path shape");
    out.table(
        &["metric", "wire median", "emulator median", "|delta|", "tolerance"],
        &[
            vec![
                "startup delay (ms)".into(),
                format!("{wire_startup_med:.1}"),
                format!("{emu_startup_med:.1}"),
                format!("{startup_delta:.1}"),
                format!("{startup_tol:.1}"),
            ],
            vec![
                "mean E2E delay field (ms)".into(),
                format!("{wire_e2e_med:.1}"),
                format!("{emu_e2e_med:.1}"),
                format!("{e2e_delta:.1}"),
                format!("{e2e_tol:.1}"),
            ],
        ],
    );
    out.note(
        "emulator chain = modal wired path (median RTT per hop), emulator \
         viewers join at the wire join-time quantiles; same GoP, bitrate, \
         duration, and drain as the wire run.",
    );

    // ---- RTCP feedback → cc over the congested region ------------------
    let cc_decreases_congested = wire.cc_decreases_in_country(congested);
    out.heading("Client RTCP feedback → sender-side cc (congested region)");
    out.table(
        &["quantity", "value"],
        &[
            vec!["lossy viewers (busiest country)".into(), lossy_viewers.to_string()],
            vec![
                "cc decreases in congested country".into(),
                cc_decreases_congested.to_string(),
            ],
            vec!["cc decreases fleet-wide".into(), wire.cc.decreases.to_string()],
            vec!["cc increases fleet-wide".into(), wire.cc.increases.to_string()],
        ],
    );

    // ---- Load generator ------------------------------------------------
    let mmsg = loadgen(BatchBackend::auto(), loadgen_dur);
    let seq = loadgen(BatchBackend::Sequential, loadgen_dur);
    let n_cores = cores() as f64;
    let mmsg_dps = mmsg.received as f64 / mmsg.secs;
    let seq_dps = seq.received as f64 / seq.secs;
    out.heading("Load generator: datagrams/sec per core (1200 B, full duplex)");
    out.table(
        &["backend", "sent", "delivered", "datagrams/s", "datagrams/s/core"],
        &[
            vec![
                format!("{:?}", BatchBackend::auto()),
                mmsg.sent.to_string(),
                mmsg.received.to_string(),
                format!("{mmsg_dps:.0}"),
                format!("{:.0}", mmsg_dps / n_cores),
            ],
            vec![
                "Sequential".into(),
                seq.sent.to_string(),
                seq.received.to_string(),
                format!("{seq_dps:.0}"),
                format!("{:.0}", seq_dps / n_cores),
            ],
        ],
    );

    // ---- Machine-readable summary + gates ------------------------------
    out.meta("wire_startup_median_ms", format!("{wire_startup_med:.1}"));
    out.meta("wire_startup_p90_ms", format!("{wire_startup_p90:.1}"));
    out.meta("wire_e2e_median_ms", format!("{wire_e2e_med:.1}"));
    out.meta("emu_startup_median_ms", format!("{emu_startup_med:.1}"));
    out.meta("emu_e2e_median_ms", format!("{emu_e2e_med:.1}"));
    out.meta("startup_delta_ms", format!("{startup_delta:.1}"));
    out.meta("startup_tolerance_ms", format!("{startup_tol:.1}"));
    out.meta("e2e_delta_ms", format!("{e2e_delta:.1}"));
    out.meta("e2e_tolerance_ms", format!("{e2e_tol:.1}"));
    out.meta("worst_delivery", format!("{:.4}", wire.worst_delivery()));
    out.meta("frames_broadcast", wire.frames_broadcast.to_string());
    out.meta("loadgen_auto_dps", format!("{mmsg_dps:.0}"));
    out.meta("loadgen_sequential_dps", format!("{seq_dps:.0}"));
    out.meta("loadgen_dps_per_core", format!("{:.0}", mmsg_dps / n_cores));

    let worst = wire.worst_delivery();
    assert!(worst >= 0.99, "delivery below 99%: {worst:.3}");
    assert!(
        cc_decreases_congested >= 1,
        "congested-region feedback drove no cc decrease: {:?}",
        wire.cc
    );
    assert!(
        startup_delta <= startup_tol,
        "wire startup diverged from emulator: {startup_delta:.1}ms > {startup_tol:.1}ms"
    );
    assert!(
        e2e_delta <= e2e_tol,
        "wire E2E diverged from emulator: {e2e_delta:.1}ms > {e2e_tol:.1}ms"
    );
    assert!(
        wire.telemetry.counter("transport.batch_rx_syscalls") > 0,
        "batched receive path never exercised"
    );

    out.telemetry(&wire.telemetry);
    out.write_json("BENCH_wire.json").expect("write BENCH_wire.json");
    out.note("wrote BENCH_wire.json");
    out.print();
}
