//! Real-socket wire experiment: the 4-node diamond on 127.0.0.1.
//!
//! Runs the full LiveNet overlay — brain, 4 `UdpOverlayNode`s, a paced
//! broadcaster, and two feedback-sending viewers — over real loopback UDP
//! via `livenet_transport::testbed`, then runs the emulator's packet-level
//! simulation of the same active path (producer → relay → consumer at the
//! diamond's best-weight route) with the same GoP, bitrate, and duration.
//! The two result columns land side by side in `BENCH_wire.json`, with
//! the run's telemetry snapshot attached — the wall-clock counterpart of
//! the paper's emulated experiments (DESIGN.md §10).
//!
//! One viewer turns synthetically lossy mid-run to demonstrate client
//! RTCP receiver reports driving the sender-side cc loop over the wire.
//!
//! ```sh
//! cargo run --release --bin exp_wire
//! ```

use livenet_bench::{Report, SEED};
use livenet_sim::packetsim::ChainLink;
use livenet_sim::{PacketSim, PacketSimConfig};
use livenet_transport::{testbed, TestbedConfig};
use livenet_types::{SimDuration, SimTime, StreamId};
use std::time::Duration;

const STREAM: StreamId = StreamId(900);

fn fmt_opt_ms(v: Option<f64>) -> String {
    v.map(|ms| format!("{ms:.1}")).unwrap_or_else(|| "—".into())
}

/// Emulator run over the diamond's active path (0→1→3: 8 ms + 8 ms), with
/// media parameters matching the wire run.
fn emulator_config(wire: &TestbedConfig) -> PacketSimConfig {
    let mut cfg = PacketSimConfig::three_node_chain(0.0, SEED);
    cfg.links = vec![ChainLink::healthy(8), ChainLink::healthy(8)];
    cfg.gop = wire.gop;
    cfg.bitrate = wire.bitrate;
    cfg.duration = SimDuration::from_nanos(wire.broadcast.as_nanos() as u64);
    cfg.drain = SimDuration::from_nanos(wire.drain.as_nanos() as u64);
    cfg.viewers[0].join_at = SimTime::from_millis(100);
    cfg
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let mut cfg = TestbedConfig::diamond(STREAM);
    // Viewer 1 reports 30% loss after 2 s: the cc demonstration.
    cfg.viewers[1].lossy_rr = Some((Duration::from_secs(2), 0.3));

    let mut out = Report::new(
        "real-socket wire datapath (4-node diamond on 127.0.0.1)",
        "§4.4, §5.1; DESIGN.md §10",
    );
    out.meta("seed", SEED.to_string());
    out.meta("topology", "diamond 0→{1,2}→3, producer 0, 2 viewers at 3");
    out.meta(
        "broadcast",
        format!("{:.1}s @ {} kbps", cfg.broadcast.as_secs_f64(), cfg.bitrate.as_bps() / 1000),
    );

    let wire = testbed::run(cfg.clone()).await;

    let emu = PacketSim::new(emulator_config(&cfg)).run();
    let emu_frames: &Vec<(SimTime, u32, Option<SimDuration>)> =
        emu.client_frames.first().expect("emulator viewer log");
    let emu_startup_ms = emu
        .viewers
        .first()
        .and_then(|(_, q)| q.startup)
        .map(|d| d.as_millis_f64());
    let emu_delays: Vec<f64> = emu_frames
        .iter()
        .filter_map(|(_, _, d)| d.map(|d| d.as_millis_f64()))
        .collect();
    let emu_mean_e2e = (!emu_delays.is_empty())
        .then(|| emu_delays.iter().sum::<f64>() / emu_delays.len() as f64);
    let emu_total = (cfg.broadcast.as_nanos() as u64
        / cfg.gop.frame_interval().as_nanos().max(1)) as f64;
    let emu_delivery = emu_frames.len() as f64 / emu_total.max(1.0);

    out.heading("Wire (loopback UDP) vs emulator, same active path");
    let wire_v0 = &wire.viewers[0];
    out.table(
        &["metric", "wire viewer 0", "wire viewer 1", "emulator viewer"],
        &[
            vec![
                "startup delay (ms)".into(),
                fmt_opt_ms(wire_v0.startup_ms),
                fmt_opt_ms(wire.viewers[1].startup_ms),
                fmt_opt_ms(emu_startup_ms),
            ],
            vec![
                "first packet (ms)".into(),
                fmt_opt_ms(wire_v0.first_packet_ms),
                fmt_opt_ms(wire.viewers[1].first_packet_ms),
                "—".into(),
            ],
            vec![
                "mean E2E delay field (ms)".into(),
                fmt_opt_ms(wire_v0.mean_e2e_ms),
                fmt_opt_ms(wire.viewers[1].mean_e2e_ms),
                fmt_opt_ms(emu_mean_e2e),
            ],
            vec![
                "frames completed".into(),
                wire_v0.frames_completed.to_string(),
                wire.viewers[1].frames_completed.to_string(),
                emu_frames.len().to_string(),
            ],
            vec![
                "delivery completeness".into(),
                format!("{:.1}%", 100.0 * wire_v0.frames_completed as f64
                    / wire.frames_broadcast.max(1) as f64),
                format!("{:.1}%", 100.0 * wire.viewers[1].frames_completed as f64
                    / wire.frames_broadcast.max(1) as f64),
                format!("{:.1}%", 100.0 * emu_delivery),
            ],
        ],
    );
    out.note(format!(
        "wire broadcast {} frames; worst-viewer delivery {:.1}%",
        wire.frames_broadcast,
        100.0 * wire.worst_delivery(),
    ));

    out.heading("Client RTCP feedback → sender-side cc (over real UDP)");
    let lossy = wire.viewers[1].client;
    let lossy_rate = wire
        .client_rates
        .iter()
        .find(|(c, _)| *c == lossy)
        .and_then(|(_, r)| *r);
    out.table(
        &["quantity", "value"],
        &[
            vec!["rate increases".into(), wire.cc.increases.to_string()],
            vec!["rate holds".into(), wire.cc.holds.to_string()],
            vec!["rate decreases".into(), wire.cc.decreases.to_string()],
            vec![
                "lossy viewer final pacing rate (kbps)".into(),
                lossy_rate
                    .map(|r| (r.as_bps() / 1000).to_string())
                    .unwrap_or_else(|| "—".into()),
            ],
            vec![
                "lossy viewer RRs sent".into(),
                wire.viewers[1].rr_sent.to_string(),
            ],
        ],
    );
    out.note(
        "viewer 1's receiver reports claim 30% loss after t=2s; the consumer's \
         GCC sender reacts and the client pacer rate drops — feedback that was \
         silently discarded before the client-datagram routing fix.",
    );

    // Acceptance gates: ≥99% delivery, feedback-driven rate change.
    assert!(
        wire.worst_delivery() >= 0.99,
        "delivery below 99%: {:.3}",
        wire.worst_delivery()
    );
    assert!(
        wire.cc.decreases >= 1,
        "client feedback drove no cc rate decrease: {:?}",
        wire.cc
    );

    out.telemetry(&wire.telemetry);
    out.write_json("BENCH_wire.json").expect("write BENCH_wire.json");
    out.note("wrote BENCH_wire.json");
    out.print();
}
