//! Figure 9: fast startup vs streaming delay — thin wrapper over [`livenet_bench::render::fig09`].
//!
//! Runs the canonical fleet configuration (tunable via `--days`,
//! `--scale`, `--seed`) and prints the table/figure with the paper's
//! values alongside. To print EVERY figure from one run, use `exp_all`.

use livenet_bench::{cli_config, render, run, Report};

fn main() {
    let report = run(cli_config());
    let mut out = Report::fleet("Figure 9: fast startup vs streaming delay", "§6.3, Fig. 9", &report);
    render::fig09(&report, &mut out);
    out.print();
}
