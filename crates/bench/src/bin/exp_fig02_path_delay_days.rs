//! Figure 2: CDN path delay per day — thin wrapper over [`livenet_bench::render::fig02`].
//!
//! Runs the canonical fleet configuration (tunable via `--days`,
//! `--scale`, `--seed`) and prints the table/figure with the paper's
//! values alongside. To print EVERY figure from one run, use `exp_all`.

use livenet_bench::{cli_config, render, run, Report};

fn main() {
    let mut cfg = cli_config();
    cfg.workload.days = cfg.workload.days.min(7);
    cfg.workload.festival_days.retain(|d| *d < cfg.workload.days);
    let report = run(cfg);
    let mut out = Report::fleet("Figure 2: CDN path delay per day", "§2.3, Fig. 2", &report);
    render::fig02(&report, &mut out);
    out.print();
}
