//! §6.5 failure recovery — fast vs slow path, packet level and fleet level.
//!
//! Two experiments in one binary:
//!
//! 1. **Packet level**: the diamond-overlay crash scenario
//!    ([`livenet_sim::recovery`]) run in both modes over several seeds —
//!    LiveNet's fast path (cached backup, ≈1 subscribe RTT after
//!    detection) against the slow path (full Brain round trip,
//!    multi-second), with frames lost per failover.
//! 2. **Fleet level**: the Double-12-style region outage injected into the
//!    sharded fleet simulation; emits the fast/slow recovery distributions
//!    for LiveNet and the Hier baseline.
//!
//! Writes `BENCH_recovery.json`. `--shards N` sets only the *worker
//! thread* count; the shard partition itself is fixed by the config, so
//! the JSON is bit-identical for `--shards 1` and `--shards 8` (asserted
//! here via [`FleetReport::bit_identical`]).
//!
//! ```sh
//! cargo run --release --bin exp_recovery [-- --shards 8]
//! ```
//!
//! [`FleetReport::bit_identical`]: livenet_sim::FleetReport::bit_identical

use livenet_bench::{Report, SEED};
use livenet_sim::recovery::{run_recovery, RecoveryMode, RecoveryScenario};
use livenet_sim::{FleetConfigBuilder, FleetFault, FleetRunner, RecoveryRecord};

fn percentile(sorted: &[f32], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    f64::from(sorted[idx])
}

fn dist_json(recs: &[&RecoveryRecord]) -> String {
    let mut v: Vec<f32> = recs.iter().map(|r| r.recover_ms).collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let frames: u64 = recs.iter().map(|r| u64::from(r.frames_lost)).sum();
    let p = |q: f64| {
        let x = percentile(&v, q);
        if x.is_nan() {
            "null".to_string()
        } else {
            format!("{x:.1}")
        }
    };
    format!(
        "{{\"n\": {}, \"p50_ms\": {}, \"p90_ms\": {}, \"p99_ms\": {}, \"frames_lost_total\": {}}}",
        v.len(),
        p(0.5),
        p(0.9),
        p(0.99),
        frames,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut threads = 8usize;
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--shards" {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                threads = v;
                i += 1;
            }
        }
        i += 1;
    }

    let mut out = Report::new("failure recovery (§6.5)", "§6.5");

    // ---------- Packet level: diamond-overlay relay crash ----------
    out.heading("Packet level: diamond-overlay relay crash");
    let seeds = [SEED, SEED + 1, SEED + 2];
    let mut rows = Vec::new();
    let mut packet_json = Vec::new();
    for mode in [RecoveryMode::Fast, RecoveryMode::Slow] {
        for &seed in &seeds {
            let rec = run_recovery(&RecoveryScenario::new(mode, seed));
            rows.push(vec![
                format!("{mode:?}"),
                format!("{seed}"),
                format!("{:.0} ms", rec.detect_ms),
                format!("{:.0} ms", rec.restore_ms),
                format!("{:.0} ms", rec.restore_ms - rec.detect_ms),
                format!("{}", rec.frames_lost),
            ]);
            packet_json.push(format!(
                "    {{\"mode\": \"{mode:?}\", \"seed\": {seed}, \"detect_ms\": {:.2}, \"restore_ms\": {:.2}, \"frames_lost\": {}}}",
                rec.detect_ms, rec.restore_ms, rec.frames_lost,
            ));
        }
    }
    out.table(
        &["mode", "seed", "detect", "restore", "post-detect gap", "frames lost"],
        &rows,
    );
    out.note("");
    out.note("Expected shape: Fast restores ~1 subscribe RTT after detection;");
    out.note("Slow waits out the Brain round trip (multi-second).");

    // ---------- Fleet level: region outage over the sharded fleet ----------
    out.heading("Fleet level: region outage over the sharded fleet");
    let cfg = FleetConfigBuilder::smoke(SEED)
        .fault(FleetFault::RegionOutage {
            at_secs: 20 * 3600, // diurnal peak — many sessions in flight
            down_for_secs: 1800,
            country: 0,
        })
        .random_faults(3.0, (300, 1200))
        .build()
        .expect("recovery preset is valid");
    let shards = cfg.shards;
    let runner = FleetRunner::new(cfg).expect("config already validated");
    let report = runner.run_parallel(threads);
    // The determinism contract this binary's JSON relies on.
    assert!(
        report.bit_identical(&runner.run_serial()),
        "parallel fleet run diverged from serial"
    );

    let ln_fast: Vec<&RecoveryRecord> =
        report.recoveries_livenet.iter().filter(|r| r.fast).collect();
    let ln_slow: Vec<&RecoveryRecord> =
        report.recoveries_livenet.iter().filter(|r| !r.fast).collect();
    let hier: Vec<&RecoveryRecord> = report.recoveries_hier.iter().collect();
    out.note(format!(
        "fleet: {} faults injected, {} producers rehomed",
        report.faults_injected, report.producers_rehomed
    ));
    out.note(format!(
        "LiveNet failovers: {} fast / {} slow; Hier failovers: {}",
        ln_fast.len(),
        ln_slow.len(),
        hier.len()
    ));
    out.note(format!("LiveNet fast: {}", dist_json(&ln_fast)));
    out.note(format!("LiveNet slow: {}", dist_json(&ln_slow)));
    out.note(format!("Hier:         {}", dist_json(&hier)));

    let json = format!(
        "{{\n  \"experiment\": \"recovery\",\n  \"seed\": {SEED},\n  \"shards\": {shards},\n  \"packet_level\": [\n{}\n  ],\n  \"fleet\": {{\n    \"faults_injected\": {},\n    \"producers_rehomed\": {},\n    \"livenet_fast\": {},\n    \"livenet_slow\": {},\n    \"hier\": {}\n  }}\n}}\n",
        packet_json.join(",\n"),
        report.faults_injected,
        report.producers_rehomed,
        dist_json(&ln_fast),
        dist_json(&ln_slow),
        dist_json(&hier),
    );
    std::fs::write("BENCH_recovery.json", &json).expect("write BENCH_recovery.json");
    out.note("wrote BENCH_recovery.json");
    out.print();
}
