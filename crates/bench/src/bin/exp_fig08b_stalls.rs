//! Figure 8(b): stall-count distribution — thin wrapper over [`livenet_bench::render::fig08b`].
//!
//! Runs the canonical fleet configuration (tunable via `--days`,
//! `--scale`, `--seed`) and prints the table/figure with the paper's
//! values alongside. To print EVERY figure from one run, use `exp_all`.

use livenet_bench::{cli_config, render, run, Report};

fn main() {
    let report = run(cli_config());
    let mut out = Report::fleet("Figure 8(b): stall-count distribution", "§6.3, Fig. 8(b)", &report);
    render::fig08b(&report, &mut out);
    out.print();
}
