//! Table 2: CDN path length distribution — thin wrapper over [`livenet_bench::render::table2`].
//!
//! Runs the canonical fleet configuration (tunable via `--days`,
//! `--scale`, `--seed`) and prints the table/figure with the paper's
//! values alongside. To print EVERY figure from one run, use `exp_all`.

use livenet_bench::{cli_config, render, run, Report};

fn main() {
    let report = run(cli_config());
    let mut out = Report::fleet("Table 2: CDN path length distribution", "§6.4, Table 2", &report);
    render::table2(&report, &mut out);
    out.print();
}
