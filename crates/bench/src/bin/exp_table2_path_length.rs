//! Table 2: CDN path length distribution — thin wrapper over [`livenet_bench::render::table2`].
//!
//! Runs the canonical fleet configuration (tunable via `--days`,
//! `--scale`, `--seed`) and prints the table/figure with the paper's
//! values alongside. To print EVERY figure from one run, use `exp_all`.

use livenet_bench::{banner, cli_config, render, run};

fn main() {
    #[allow(unused_mut)]
    let mut cfg = cli_config();
    let report = run(cfg);
    banner("Table 2: CDN path length distribution", "§6.4, Table 2", &report);
    render::table2(&report);
}
