//! Figure 10(b): local hit ratio — thin wrapper over [`livenet_bench::render::fig10b`].
//!
//! Runs the canonical fleet configuration (tunable via `--days`,
//! `--scale`, `--seed`) and prints the table/figure with the paper's
//! values alongside. To print EVERY figure from one run, use `exp_all`.

use livenet_bench::{banner, cli_config, render, run};

fn main() {
    #[allow(unused_mut)]
    let mut cfg = cli_config();
    cfg.workload.days = cfg.workload.days.min(7);
    cfg.workload.festival_days.retain(|d| *d < cfg.workload.days);
    let report = run(cfg);
    banner("Figure 10(b): local hit ratio", "§6.4, Fig. 10(b)", &report);
    render::fig10b(&report);
}
