//! Table/figure renderers over a [`FleetReport`].
//!
//! Each function appends one of the paper's tables or figures (with the
//! paper's values alongside) to a [`Report`]. The `exp_*` binaries build a
//! report from one renderer each and print it; `exp_all` runs the 20-day
//! fleet once and chains all of them. Keeping renderers print-free is what
//! lets the bench library deny `clippy::print_stdout`.

use crate::{median, ratio_pct, Report};
use livenet_sim::{FleetReport, SessionRecord};
use livenet_types::{welch_t, Ecdf, OnlineStats};

/// Sessions from the first `days` days (the week-scale figures exclude the
/// festival, which starts on day 10).
pub fn first_days(sessions: &[SessionRecord], days: u32) -> Vec<SessionRecord> {
    sessions.iter().filter(|s| s.day < days).copied().collect()
}

/// Table 1 — overall performance comparison.
pub fn table1(report: &FleetReport, out: &mut Report) {
    let ln = &report.livenet;
    let h = &report.hier;
    let rows = [(
            "CDN path delay (ms)",
            median(ln, |s| f64::from(s.cdn_delay_ms)),
            median(h, |s| f64::from(s.cdn_delay_ms)),
            "188 / 393",
        ),
        (
            "CDN path length",
            median(ln, |s| f64::from(s.path_len)),
            median(h, |s| f64::from(s.path_len)),
            "2 / 4",
        ),
        (
            "Streaming delay (ms)",
            median(ln, |s| f64::from(s.streaming_delay_ms)),
            median(h, |s| f64::from(s.streaming_delay_ms)),
            "948 / 1,151",
        ),
        (
            "0-stall ratio (%)",
            ratio_pct(ln, |s| s.zero_stall()),
            ratio_pct(h, |s| s.zero_stall()),
            "98 / 95",
        ),
        (
            "Fast startup ratio (%)",
            ratio_pct(ln, |s| s.fast_startup()),
            ratio_pct(h, |s| s.fast_startup()),
            "95 / 92",
        )];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, l, hh, paper)| {
            let impr = 100.0 * (hh - l).abs() / hh.max(1e-9);
            vec![
                name.to_string(),
                format!("{l:.1}"),
                format!("{hh:.1}"),
                format!("{impr:.1}%"),
                paper.to_string(),
            ]
        })
        .collect();
    out.table(
        &["Metric", "LiveNet", "Hier", "impr.", "paper (LN/Hier)"],
        &table,
    );
    let mut a = OnlineStats::new();
    let mut b = OnlineStats::new();
    for s in ln {
        a.push(f64::from(s.cdn_delay_ms));
    }
    for s in h {
        b.push(f64::from(s.cdn_delay_ms));
    }
    let (t, significant) = welch_t(&b, &a);
    out.note(format!(
        "Welch t (Hier − LiveNet CDN delay): t = {t:.1}, p < 0.001: {}",
        if significant { "yes" } else { "no" }
    ));
    out.note(format!(
        "Last-resort sessions: {:.2}% (paper: ~2%)",
        ratio_pct(ln, |s| s.outcome.is_last_resort())
    ));
}

/// Figure 2 — daily CDN path delay for both systems (first week).
pub fn fig02(report: &FleetReport, out: &mut Report) {
    let ln = first_days(&report.livenet, 7);
    let h = first_days(&report.hier, 7);
    let days = ln.iter().map(|s| s.day).max().unwrap_or(0);
    let mut rows = Vec::new();
    for day in 0..=days {
        let mut le = Ecdf::new();
        let mut he = Ecdf::new();
        for s in ln.iter().filter(|s| s.day == day) {
            le.push(f64::from(s.cdn_delay_ms));
        }
        for s in h.iter().filter(|s| s.day == day) {
            he.push(f64::from(s.cdn_delay_ms));
        }
        rows.push(vec![
            format!("{}", day + 1),
            format!("{:.0}", le.median()),
            format!("{:.0}", he.median()),
        ]);
    }
    out.table(&["Day", "LiveNet (ms)", "Hier (ms)"], &rows);
    out.note("Paper: LiveNet 150–250 ms, Hier ≈ 390–420 ms across the week.");
}

/// Figure 8(a) — streaming-delay CDF + paired improvements.
pub fn fig08a(report: &FleetReport, out: &mut Report) {
    let mut ln = Ecdf::new();
    let mut h = Ecdf::new();
    for s in &report.livenet {
        ln.push(f64::from(s.streaming_delay_ms));
    }
    for s in &report.hier {
        h.push(f64::from(s.streaming_delay_ms));
    }
    let points: Vec<f64> = (4..=20).map(|i| 100.0 * f64::from(i)).collect();
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|&x| {
            vec![
                format!("{x:.0}"),
                format!("{:.3}", ln.cdf_at(x)),
                format!("{:.3}", h.cdf_at(x)),
            ]
        })
        .collect();
    out.table(&["delay (ms)", "LiveNet CDF", "Hier CDF"], &rows);
    let mut deltas = Ecdf::new();
    for (a, b) in report.livenet.iter().zip(&report.hier) {
        deltas.push(f64::from(b.streaming_delay_ms - a.streaming_delay_ms));
    }
    out.note(format!(
        "Views improved ≥200 ms: {:.1}% (paper: 60%) | ≥100 ms: {:.1}% (paper: 80%)",
        100.0 * (1.0 - deltas.cdf_at(200.0)),
        100.0 * (1.0 - deltas.cdf_at(100.0)),
    ));
}

fn stall_histogram(sessions: &[SessionRecord]) -> [f64; 6] {
    let mut counts = [0u64; 6];
    for s in sessions {
        counts[usize::from(s.stalls).min(5)] += 1;
    }
    let total = sessions.len().max(1) as f64;
    let mut pct = [0.0; 6];
    for (i, c) in counts.iter().enumerate() {
        pct[i] = 100.0 * *c as f64 / total;
    }
    pct
}

/// Figure 8(b) — stall-count distribution.
pub fn fig08b(report: &FleetReport, out: &mut Report) {
    let ln = stall_histogram(&report.livenet);
    let h = stall_histogram(&report.hier);
    let rows: Vec<Vec<String>> = (1..=5)
        .map(|i| {
            vec![
                if i == 5 { "≥5".into() } else { format!("{i}") },
                format!("{:.2}%", ln[i]),
                format!("{:.2}%", h[i]),
            ]
        })
        .collect();
    out.table(&["stalls/view", "LiveNet", "Hier"], &rows);
    let ln_any = 100.0 - ln[0];
    let h_any = 100.0 - h[0];
    out.note(format!(
        "≥1 stall: LiveNet {ln_any:.2}% (paper 2%), Hier {h_any:.2}% (paper 5%); \
         exactly-1 among stalled: {:.0}% (paper ~60%); 5+ ratio {:.1}x (paper ~2x)",
        100.0 * ln[1] / ln_any.max(1e-9),
        h[5] / ln[5].max(1e-9),
    ));
}

/// Figure 8(c) — daily fast-startup ratio.
pub fn fig08c(report: &FleetReport, out: &mut Report) {
    let days = report.livenet.iter().map(|s| s.day).max().unwrap_or(0);
    let per_day = |sessions: &[SessionRecord], day: u32| {
        let subset: Vec<SessionRecord> =
            sessions.iter().filter(|s| s.day == day).copied().collect();
        ratio_pct(&subset, |s| s.fast_startup())
    };
    let mut rows = Vec::new();
    let (mut ls, mut hs) = (0.0, 0.0);
    for day in 0..=days {
        let l = per_day(&report.livenet, day);
        let h = per_day(&report.hier, day);
        ls += l;
        hs += h;
        rows.push(vec![
            format!("{}", day + 1),
            format!("{l:.1}%"),
            format!("{h:.1}%"),
        ]);
    }
    out.table(&["Day", "LiveNet", "Hier"], &rows);
    let n = f64::from(days + 1);
    out.note(format!(
        "Average: LiveNet {:.1}% vs Hier {:.1}% (paper: 95% vs 92%)",
        ls / n,
        hs / n
    ));
}

/// Figure 9 — fast startup vs streaming-delay bucket.
pub fn fig09(report: &FleetReport, out: &mut Report) {
    let buckets: [(f64, f64, &str); 5] = [
        (0.0, 500.0, "(0, 500]"),
        (500.0, 700.0, "(500, 700]"),
        (700.0, 1000.0, "(700, 1000]"),
        (1000.0, 1500.0, "(1000, 1500]"),
        (1500.0, f64::INFINITY, "(1500, inf]"),
    ];
    let mut rows = Vec::new();
    for (lo, hi, label) in buckets {
        let (mut fast, mut total) = (0u64, 0u64);
        for s in &report.livenet {
            let d = f64::from(s.streaming_delay_ms);
            if d > lo && d <= hi {
                total += 1;
                fast += u64::from(s.fast_startup());
            }
        }
        let pct = if total == 0 {
            f64::NAN
        } else {
            100.0 * fast as f64 / total as f64
        };
        rows.push(vec![
            label.to_string(),
            format!("{total}"),
            format!("{pct:.1}%"),
        ]);
    }
    out.table(&["streaming delay (ms)", "views", "fast startup"], &rows);
    out.note("Paper: ≈95% even at 1–1.5 s; ≥87% above 1.5 s (the GoP-cache effect).");
}

/// Figure 10(a) — Brain response time per hour of day.
pub fn fig10a(report: &FleetReport, out: &mut Report) {
    let mut per_hour: Vec<Ecdf> = (0..24).map(|_| Ecdf::new()).collect();
    let mut all = Ecdf::new();
    for s in &report.livenet {
        if let Some(ms) = s.outcome.response_ms() {
            per_hour[s.hour as usize].push(f64::from(ms));
            all.push(f64::from(ms));
        }
    }
    let rows: Vec<Vec<String>> = (0..24)
        .map(|h| {
            let e = &mut per_hour[h];
            if e.is_empty() {
                vec![format!("{h}"), "-".into(), "-".into(), "-".into()]
            } else {
                vec![
                    format!("{h}"),
                    format!("{:.1}", e.quantile(0.25)),
                    format!("{:.1}", e.quantile(0.50)),
                    format!("{:.1}", e.quantile(0.75)),
                ]
            }
        })
        .collect();
    out.table(&["hour", "p25 (ms)", "median (ms)", "p75 (ms)"], &rows);
    out.note(format!(
        "Overall: p25 {:.1} ms, median {:.1} ms (paper: ~5 ms / ~30 ms)",
        all.quantile(0.25),
        all.median()
    ));
}

/// Figure 10(b) — local hit ratio by hour of day (first week).
pub fn fig10b(report: &FleetReport, out: &mut Report) {
    let week = first_days(&report.livenet, 7);
    let mut hits = [0u64; 24];
    let mut total = [0u64; 24];
    for s in &week {
        total[s.hour as usize] += 1;
        hits[s.hour as usize] += u64::from(s.outcome.is_local_hit());
    }
    let rows: Vec<Vec<String>> = (0..24)
        .map(|h| {
            let pct = 100.0 * hits[h] as f64 / total[h].max(1) as f64;
            let bar = "#".repeat((pct / 2.5) as usize);
            vec![format!("{h:02}:00"), format!("{pct:.1}%"), bar]
        })
        .collect();
    out.table(&["hour", "hit ratio", ""], &rows);
    let peak: f64 = (20..23)
        .map(|h| 100.0 * hits[h] as f64 / total[h].max(1) as f64)
        .sum::<f64>()
        / 3.0;
    let trough: f64 = (3..6)
        .map(|h| 100.0 * hits[h] as f64 / total[h].max(1) as f64)
        .sum::<f64>()
        / 3.0;
    out.note(format!(
        "Peak (20–23h): {peak:.1}% (paper ≈70%) | trough (3–6h): {trough:.1}% (paper ≈40–50%)"
    ));
}

/// Figure 10(c) — hourly mean first-packet delay (first week).
pub fn fig10c(report: &FleetReport, out: &mut Report) {
    let week = first_days(&report.livenet, 7);
    let mut sum = [0.0f64; 24];
    let mut n = [0u64; 24];
    for s in &week {
        sum[s.hour as usize] += f64::from(s.first_packet_ms);
        n[s.hour as usize] += 1;
    }
    let rows: Vec<Vec<String>> = (0..24)
        .map(|h| {
            let mean = sum[h] / n[h].max(1) as f64;
            let bar = "#".repeat((mean / 5.0) as usize);
            vec![format!("{h:02}:00"), format!("{mean:.0} ms"), bar]
        })
        .collect();
    out.table(&["hour", "first-packet", ""], &rows);
    let peak = (20..23).map(|h| sum[h] / n[h].max(1) as f64).sum::<f64>() / 3.0;
    let trough = (3..6).map(|h| sum[h] / n[h].max(1) as f64).sum::<f64>() / 3.0;
    out.note(format!(
        "Evening (20–23h): {peak:.0} ms (paper ≈70) | 3–6h: {trough:.0} ms \
         (paper: the only >100 ms period)"
    ));
}

fn length_dist(sessions: impl Iterator<Item = SessionRecord>) -> [f64; 4] {
    let mut counts = [0u64; 4];
    let mut total = 0u64;
    for s in sessions {
        counts[usize::from(s.path_len).min(3)] += 1;
        total += 1;
    }
    let mut pct = [0.0; 4];
    for (i, c) in counts.iter().enumerate() {
        pct[i] = 100.0 * *c as f64 / total.max(1) as f64;
    }
    pct
}

/// Table 2 — path-length distribution.
pub fn table2(report: &FleetReport, out: &mut Report) {
    let all = length_dist(report.livenet.iter().copied());
    let inter = length_dist(report.livenet.iter().filter(|s| s.international).copied());
    let intra = length_dist(report.livenet.iter().filter(|s| !s.international).copied());
    let fmt = |d: [f64; 4]| {
        d.iter().map(|v| format!("{v:.2}%")).collect::<Vec<String>>()
    };
    let mut rows = Vec::new();
    for (name, d) in [("All", all), ("Inter-nation.", inter), ("Intra-nation.", intra)] {
        let mut row = vec![name.to_string()];
        row.extend(fmt(d));
        rows.push(row);
    }
    out.table(&["", "0", "1", "2", "≥3"], &rows);
    out.note(
        "Paper: All 0.13/7.00/92.06/0.81 | inter ~0/~0/73.83/26.16 | intra 0.13/7.16/92.48/0.23",
    );
}

/// Figure 11 — delay percentiles per path length (+ Hier len=4).
pub fn fig11(report: &FleetReport, out: &mut Report) {
    let mut boxes: Vec<(String, Ecdf, usize)> = vec![
        ("len=0".into(), Ecdf::new(), 0),
        ("len=1".into(), Ecdf::new(), 0),
        ("len=2".into(), Ecdf::new(), 0),
        ("len>=3".into(), Ecdf::new(), 0),
    ];
    for s in &report.livenet {
        let idx = usize::from(s.path_len).min(3);
        boxes[idx].1.push(f64::from(s.cdn_delay_ms));
        boxes[idx].2 += 1;
    }
    let mut hier = Ecdf::new();
    for s in &report.hier {
        hier.push(f64::from(s.cdn_delay_ms));
    }
    let total = report.livenet.len().max(1);
    let mut rows = Vec::new();
    for (label, e, n) in &mut boxes {
        if e.is_empty() {
            continue;
        }
        let b = e.box5();
        rows.push(vec![
            format!("{label} ({:.2}%)", 100.0 * *n as f64 / total as f64),
            format!("{:.0}", b.p20),
            format!("{:.0}", b.p25),
            format!("{:.0}", b.p50),
            format!("{:.0}", b.p75),
            format!("{:.0}", b.p80),
        ]);
    }
    let hb = hier.box5();
    rows.push(vec![
        "Hier len=4 (100%)".into(),
        format!("{:.0}", hb.p20),
        format!("{:.0}", hb.p25),
        format!("{:.0}", hb.p50),
        format!("{:.0}", hb.p75),
        format!("{:.0}", hb.p80),
    ]);
    out.table(&["path length", "p20", "p25", "p50", "p75", "p80"], &rows);
    out.note("Paper shape: delay grows with hops; Hier's fixed len-4 sits far above.");
}

/// Figure 12 — intra vs inter-national delay boxes.
pub fn fig12(report: &FleetReport, out: &mut Report) {
    let box_of = |sessions: &[SessionRecord], international: bool| {
        let mut e = Ecdf::new();
        for s in sessions.iter().filter(|s| s.international == international) {
            e.push(f64::from(s.cdn_delay_ms));
        }
        if e.is_empty() {
            None
        } else {
            Some(e.box5())
        }
    };
    let mut rows = Vec::new();
    for (label, sessions, inter) in [
        ("LiveNet intra", &report.livenet, false),
        ("LiveNet inter", &report.livenet, true),
        ("Hier intra", &report.hier, false),
        ("Hier inter", &report.hier, true),
    ] {
        if let Some(b) = box_of(sessions, inter) {
            rows.push(vec![
                label.to_string(),
                format!("{:.0}", b.p20),
                format!("{:.0}", b.p25),
                format!("{:.0}", b.p50),
                format!("{:.0}", b.p75),
                format!("{:.0}", b.p80),
            ]);
        }
    }
    out.table(&["case", "p20", "p25", "p50 (ms)", "p75", "p80"], &rows);
    out.note("Paper medians: LiveNet <200 / 330 ms; Hier 400 / 450 ms.");
}

/// Figure 13 — diurnal loss profile (first week's hours).
pub fn fig13(report: &FleetReport, out: &mut Report) {
    let mut sum = [0.0f64; 24];
    let mut n = [0u64; 24];
    for (i, &l) in report.hourly_loss.iter().enumerate().take(7 * 24) {
        if !l.is_nan() {
            sum[i % 24] += l;
            n[i % 24] += 1;
        }
    }
    let mut max_pct = 0.0f64;
    let rows: Vec<Vec<String>> = (0..24)
        .map(|h| {
            let pct = 100.0 * sum[h] / n[h].max(1) as f64;
            max_pct = max_pct.max(pct);
            let bar = "#".repeat((pct * 400.0) as usize);
            vec![format!("{h:02}:00"), format!("{pct:.4}%"), bar]
        })
        .collect();
    out.table(&["hour", "avg loss", ""], &rows);
    out.note(format!(
        "Peak loss: {max_pct:.4}% (paper: <0.175%, <0.1% most of the time)"
    ));
}

/// Figure 14 — normalized daily peak throughput.
pub fn fig14(report: &FleetReport, out: &mut Report) {
    let max = report
        .daily_peak_throughput
        .iter()
        .copied()
        .fold(0.0f64, f64::max)
        .max(1.0);
    let rows: Vec<Vec<String>> = report
        .daily_peak_throughput
        .iter()
        .enumerate()
        .map(|(day, &bps)| {
            let norm = bps / max;
            let bar = "#".repeat((norm * 40.0) as usize);
            vec![format!("Dec {}", day + 1), format!("{norm:.2}"), bar]
        })
        .collect();
    out.table(&["day", "norm. peak", ""], &rows);
    let t = &report.daily_peak_throughput;
    if t.len() >= 13 {
        let festival = (t[10] + t[11]) / 2.0;
        let regular: f64 = t
            .iter()
            .enumerate()
            .filter(|(d, _)| *d != 10 && *d != 11)
            .map(|(_, v)| v)
            .sum::<f64>()
            / (t.len() - 2) as f64;
        out.note(format!(
            "Festival/regular peak ratio: {:.2}x (paper: ~2x)",
            festival / regular.max(1.0)
        ));
    }
}

/// Table 3 — the Double-12 festival days.
pub fn table3(report: &FleetReport, out: &mut Report) {
    let group = |days: &[u32]| -> Vec<SessionRecord> {
        report
            .livenet
            .iter()
            .filter(|s| days.contains(&s.day))
            .copied()
            .collect()
    };
    let groups = [
        ("Dec 10", group(&[9])),
        ("Dec 11-12", group(&[10, 11])),
        ("Dec 13", group(&[12])),
    ];
    type Metric = Box<dyn Fn(&[SessionRecord]) -> f64>;
    let metric_rows: Vec<(&str, Metric, &str)> = vec![
        (
            "CDN path delay (ms)",
            Box::new(|s: &[SessionRecord]| median(s, |r| f64::from(r.cdn_delay_ms))),
            "188 / 192 / 180",
        ),
        (
            "CDN path length",
            Box::new(|s: &[SessionRecord]| median(s, |r| f64::from(r.path_len))),
            "2 / 2 / 2",
        ),
        (
            "Streaming delay (ms)",
            Box::new(|s: &[SessionRecord]| median(s, |r| f64::from(r.streaming_delay_ms))),
            "954 / 988 / 944",
        ),
        (
            "0-stall ratio (%)",
            Box::new(|s: &[SessionRecord]| ratio_pct(s, |r| r.zero_stall())),
            "97 / 97 / 97",
        ),
        (
            "Fast startup ratio (%)",
            Box::new(|s: &[SessionRecord]| ratio_pct(s, |r| r.fast_startup())),
            "94 / 94 / 95",
        ),
    ];
    let rows: Vec<Vec<String>> = metric_rows
        .iter()
        .map(|(name, f, paper)| {
            let mut row = vec![name.to_string()];
            for (_, sessions) in &groups {
                row.push(format!("{:.1}", f(sessions)));
            }
            row.push(paper.to_string());
            row
        })
        .collect();
    out.table(&["Metric", "Dec 10", "Dec 11-12", "Dec 13", "paper"], &rows);
    let u = &report.daily_unique_paths;
    if u.len() >= 13 {
        let festival = (u[10] + u[11]) as f64 / 2.0;
        let around = (u[9] + u[12]) as f64 / 2.0;
        out.note(format!(
            "Unique overlay paths: festival {festival:.0}/day vs neighbors {around:.0}/day \
             (+{:.0}%; paper: +20%)",
            100.0 * (festival / around.max(1.0) - 1.0)
        ));
    }
}

/// Telemetry appendix — render the fleet's merged metric snapshot as a
/// per-stage latency attribution table plus the counter set (the
/// `BENCH_observe.json` content, human-readable).
pub fn telemetry(report: &FleetReport, out: &mut Report) {
    let snap = &report.telemetry;
    let mut rows = Vec::new();
    for (name, h) in &snap.hists {
        rows.push(vec![
            name.clone(),
            format!("{}", h.count),
            h.mean().map_or("-".into(), |v| format!("{v:.1}")),
            h.approx_quantile(0.5).map_or("-".into(), |v| format!("{v:.1}")),
            h.approx_quantile(0.9).map_or("-".into(), |v| format!("{v:.1}")),
            h.approx_quantile(0.99).map_or("-".into(), |v| format!("{v:.1}")),
            h.max().map_or("-".into(), |v| format!("{v:.1}")),
        ]);
    }
    out.table(
        &["histogram", "n", "mean", "~p50", "~p90", "~p99", "max"],
        &rows,
    );
    let counter_rows: Vec<Vec<String>> = snap
        .counters
        .iter()
        .map(|(name, v)| vec![name.clone(), format!("{v}")])
        .collect();
    out.table(&["counter", "value"], &counter_rows);
    let gauge_rows: Vec<Vec<String>> = snap
        .gauges
        .iter()
        .map(|(name, v)| vec![name.clone(), format!("{v:.1}")])
        .collect();
    out.table(&["gauge", "value"], &gauge_rows);
    out.note(
        "Quantiles are upper bucket bounds of the fixed-bucket histograms \
         (exact merge across shards; see DESIGN.md §9).",
    );
}
