//! Shared experiment plumbing: canonical configurations, the cached
//! 20-day fleet run, and table/figure formatting helpers.
//!
//! Every `exp_*` binary regenerates one table or figure of the paper
//! (DESIGN.md §3 maps them). Binaries accept an optional `--scale <f>`
//! argument to shrink the workload for quick runs; the default reproduces
//! the full 20-day evaluation in a few minutes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod render;
pub mod report;

pub use report::Report;

use livenet_sim::{
    FleetConfig, FleetConfigBuilder, FleetReport, FleetRunner, FleetSim, SessionRecord,
};
use livenet_types::Ecdf;

/// The canonical experiment seed.
pub const SEED: u64 = 20221122;

/// Build the canonical paper-scale fleet configuration.
///
/// 20 days, Double-12 festival on days 10–11, 60 nodes / 12 countries
/// (the paper's 600+ nodes / 70+ countries scaled ~10×; DESIGN.md §1).
pub fn paper_config(scale: f64) -> FleetConfig {
    FleetConfigBuilder::paper_scale(SEED)
        .tweak(|c| c.workload.peak_arrivals_per_sec *= scale)
        .build()
        .expect("paper-scale preset is valid")
}

/// Parse `--scale <f>`, `--days <n>`, `--seed <s>` and `--shards <n>`
/// from argv, validating the result.
pub fn cli_config() -> FleetConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut b = FleetConfigBuilder::paper_scale(SEED);
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
                    b = b.tweak(|c| c.workload.peak_arrivals_per_sec *= v);
                    i += 1;
                }
            }
            "--days" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u32>().ok()) {
                    b = b.days(v);
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                    b = b.seed(v);
                    i += 1;
                }
            }
            "--shards" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    b = b.shards(v);
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.build().expect("invalid command-line configuration")
}

/// Run the fleet simulation for a config (the legacy monolith path — the
/// canonical sample path the `exp_*` tables are quoted against).
pub fn run(cfg: FleetConfig) -> FleetReport {
    FleetSim::new(cfg).run()
}

/// Run the fleet simulation sharded across `threads` worker threads.
///
/// The result depends on `cfg.shards` but not on `threads` — see
/// [`FleetRunner`].
pub fn run_sharded(cfg: FleetConfig, threads: usize) -> FleetReport {
    FleetRunner::new(cfg)
        .expect("config validated by the builder")
        .run_parallel(threads)
}

/// Print a header shared by all experiment binaries.
#[deprecated(since = "0.1.0", note = "build a `Report` with `Report::fleet` instead")]
#[allow(clippy::print_stdout)]
pub fn banner(exp: &str, paper_ref: &str, report: &FleetReport) {
    Report::fleet(exp, paper_ref, report).print();
}

/// Median of a session metric.
pub fn median(sessions: &[SessionRecord], f: impl Fn(&SessionRecord) -> f64) -> f64 {
    let mut e = Ecdf::new();
    for s in sessions {
        e.push(f(s));
    }
    e.median()
}

/// Ratio of sessions satisfying a predicate, in percent.
pub fn ratio_pct(sessions: &[SessionRecord], f: impl Fn(&SessionRecord) -> bool) -> f64 {
    if sessions.is_empty() {
        return f64::NAN;
    }
    100.0 * sessions.iter().filter(|s| f(s)).count() as f64 / sessions.len() as f64
}

/// Render a simple aligned table.
#[deprecated(since = "0.1.0", note = "use `Report::table` instead")]
#[allow(clippy::print_stdout)]
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let headers: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    print!("{}", report::render_table(&headers, rows));
}

/// An ASCII sparkline-style series printer for figure reproductions.
#[deprecated(since = "0.1.0", note = "use `Report::table` with a bar column instead")]
#[allow(clippy::print_stdout)]
pub fn print_series(label: &str, xs: &[String], ys: &[f64], unit: &str) {
    println!("{label} ({unit}):");
    for (x, y) in xs.iter().zip(ys) {
        if y.is_nan() {
            println!("  {x:>8}  -");
        } else {
            println!("  {x:>8}  {y:.3}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livenet_types::SimTime;

    fn rec(cdn: f32, fast: bool) -> SessionRecord {
        SessionRecord {
            start: SimTime::ZERO,
            day: 0,
            hour: 0,
            path_len: 2,
            international: false,
            cdn_delay_ms: cdn,
            streaming_delay_ms: 900.0,
            first_packet_ms: 50.0,
            startup_ms: if fast { 500.0 } else { 1500.0 },
            stalls: 0,
            outcome: livenet_sim::DecisionOutcome::Prefetched,
        }
    }

    #[test]
    fn median_and_ratio_helpers() {
        let sessions = vec![rec(100.0, true), rec(200.0, true), rec(300.0, false)];
        assert_eq!(median(&sessions, |s| f64::from(s.cdn_delay_ms)), 200.0);
        let pct = ratio_pct(&sessions, |s| s.fast_startup());
        assert!((pct - 66.666).abs() < 0.01);
    }

    #[test]
    fn paper_config_scales_arrivals() {
        let base = paper_config(1.0);
        let half = paper_config(0.5);
        assert!(
            (half.workload.peak_arrivals_per_sec - base.workload.peak_arrivals_per_sec / 2.0)
                .abs()
                < 1e-12
        );
    }
}
