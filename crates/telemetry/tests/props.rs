//! Property-based tests for the telemetry determinism contract: histogram
//! merge is associative and commutative, and a stream of recordings split
//! across any shard width merges back to one bit-identical snapshot.

use livenet_telemetry::{
    FixedHistogram, MetricId, MetricSink, Snapshot, TelemetryHub, DEFAULT_MS_BOUNDS,
};
use proptest::prelude::*;

const H_A: MetricId = MetricId("test.hist_a");
const H_B: MetricId = MetricId("test.hist_b");
const C_A: MetricId = MetricId("test.counter_a");
const G_A: MetricId = MetricId("test.gauge_a");

/// Millisecond-scale observations spanning every bucket, including
/// negatives and values past the top bound (both clamp).
fn arb_values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..50_000.0, 0..200)
}

fn hist_of(values: &[f64]) -> FixedHistogram {
    let mut h = FixedHistogram::default_ms();
    for &v in values {
        h.observe(v);
    }
    h
}

fn bit_identical_hist(a: &FixedHistogram, b: &FixedHistogram) -> bool {
    a.count() == b.count()
        && a.bucket_counts() == b.bucket_counts()
        && a.sum_fixed_point() == b.sum_fixed_point()
        && a.min_fixed_point() == b.min_fixed_point()
        && a.max_fixed_point() == b.max_fixed_point()
}

/// Replay one recording stream into a hub. Each value feeds two
/// histograms, a counter, and a gauge so the shard-split test exercises
/// all three metric shapes. Derived metrics depend only on the value, so
/// any partition of the stream records the same multiset.
fn record(hub: &mut TelemetryHub, values: &[f64]) {
    for &v in values {
        hub.observe(H_A, v);
        if v.to_bits() % 3 == 0 {
            hub.observe_with(H_B, DEFAULT_MS_BOUNDS, v * 0.5);
        }
        hub.add(C_A, 1 + (v.to_bits() % 4));
        hub.gauge_max(G_A, v);
    }
}

proptest! {
    /// (a ⊕ b) ⊕ c is bit-identical to a ⊕ (b ⊕ c).
    #[test]
    fn hist_merge_is_associative(
        a in arb_values(),
        b in arb_values(),
        c in arb_values(),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);

        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);

        prop_assert!(bit_identical_hist(&left, &right));
    }

    /// a ⊕ b is bit-identical to b ⊕ a, and ⊕ matches observing the
    /// concatenated stream directly.
    #[test]
    fn hist_merge_is_commutative_and_lossless(
        a in arb_values(),
        b in arb_values(),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));

        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert!(bit_identical_hist(&ab, &ba));

        let mut concat: Vec<f64> = a.clone();
        concat.extend_from_slice(&b);
        prop_assert!(bit_identical_hist(&ab, &hist_of(&concat)));
    }

    /// Round-robin the same recording stream across 1, 2, 4 and 8 shard
    /// hubs: the merged snapshot is bit-identical at every width.
    #[test]
    fn snapshot_is_identical_across_shard_widths(values in arb_values()) {
        let merged_at = |shards: usize| -> Snapshot {
            let mut hubs: Vec<TelemetryHub> =
                (0..shards).map(|_| TelemetryHub::new()).collect();
            // Contiguous chunks, like the fleet runner's shard partition.
            for (i, chunk) in values.chunks(values.len() / shards + 1).enumerate() {
                record(&mut hubs[i % shards], chunk);
            }
            let mut merged = Snapshot::default();
            for hub in &hubs {
                merged.merge(&hub.snapshot());
            }
            merged
        };

        let reference = merged_at(1);
        for shards in [2usize, 4, 8] {
            let snap = merged_at(shards);
            prop_assert!(
                reference.bit_identical(&snap),
                "snapshot diverged at {} shards", shards
            );
        }
        // The JSON export is a pure function of the snapshot, so it is
        // deterministic too.
        prop_assert_eq!(reference.to_json(), merged_at(8).to_json());
    }
}
