//! The canonical, serializable, mergeable form of a [`TelemetryHub`].

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::hist::FixedHistogram;
use crate::id::MetricId;

/// Frozen histogram state inside a [`Snapshot`].
///
/// All aggregate fields are integers (fixed-point where the source was a
/// float), so equality, merging and serialization are exact.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistSnapshot {
    /// Bucket upper bounds the histogram was built with.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; the final entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Exact sum in fixed-point (observation units × 1000).
    pub sum_fp: i128,
    /// Smallest observation in fixed-point; `i64::MAX` when empty.
    pub min_fp: i64,
    /// Largest observation in fixed-point; `i64::MIN` when empty.
    pub max_fp: i64,
}

impl HistSnapshot {
    fn from_hist(h: &FixedHistogram) -> Self {
        HistSnapshot {
            bounds: h.bounds().to_vec(),
            counts: h.bucket_counts().to_vec(),
            count: h.count(),
            sum_fp: h.sum_fixed_point(),
            min_fp: h.min_fixed_point(),
            max_fp: h.max_fixed_point(),
        }
    }

    /// Mean observation, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        Some(self.sum_fp as f64 / 1000.0 / self.count as f64)
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then(|| self.min_fp as f64 / 1000.0)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then(|| self.max_fp as f64 / 1000.0)
    }

    /// Approximate quantile read off the bucket bounds (the upper bound of
    /// the bucket holding the q-th observation; overflow hits report the
    /// recorded maximum).  `None` when empty.
    pub fn approx_quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max_fp as f64 / 1000.0
                });
            }
        }
        Some(self.max_fp as f64 / 1000.0)
    }

    fn merge(&mut self, other: &HistSnapshot) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histogram snapshots with different bucket bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_fp += other.sum_fp;
        self.min_fp = self.min_fp.min(other.min_fp);
        self.max_fp = self.max_fp.max(other.max_fp);
    }

    fn bit_identical(&self, other: &HistSnapshot) -> bool {
        self.counts == other.counts
            && self.count == other.count
            && self.sum_fp == other.sum_fp
            && self.min_fp == other.min_fp
            && self.max_fp == other.max_fp
            && self.bounds.len() == other.bounds.len()
            && self
                .bounds
                .iter()
                .zip(&other.bounds)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

/// A frozen, canonical view of a [`TelemetryHub`]: every metric sorted by
/// name, every aggregate exact.
///
/// Snapshots follow the same determinism discipline as `FleetReport`:
/// [`Snapshot::merge`] is associative and commutative, and
/// [`Snapshot::bit_identical`] compares floats by `to_bits`, so a serial
/// fleet run and a sharded parallel run must produce byte-for-byte the same
/// snapshot or the determinism contract is broken.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Counter values, sorted by metric name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values (high-water marks), sorted by metric name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by metric name.
    pub hists: Vec<(String, HistSnapshot)>,
}

impl Snapshot {
    pub(crate) fn from_parts(
        counters: &BTreeMap<MetricId, u64>,
        gauges: &BTreeMap<MetricId, f64>,
        hists: &BTreeMap<MetricId, FixedHistogram>,
    ) -> Self {
        Snapshot {
            counters: counters
                .iter()
                .map(|(id, &v)| (id.name().to_string(), v))
                .collect(),
            gauges: gauges
                .iter()
                .map(|(id, &v)| (id.name().to_string(), v))
                .collect(),
            hists: hists
                .iter()
                .map(|(id, h)| (id.name().to_string(), HistSnapshot::from_hist(h)))
                .collect(),
        }
    }

    /// True when no metric was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Look up a counter by name (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .map(|i| self.counters[i].1)
            .unwrap_or(0)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// Look up a histogram by name.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.hists[i].1)
    }

    /// Fold `other` into `self` by metric name: counters add, gauges take
    /// the max under `f64::total_cmp`, histograms merge exactly.  The
    /// operation is associative and commutative, so any merge order over any
    /// sharding of the same recordings yields bit-identical results.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            match self.counters.binary_search_by(|(n, _)| n.cmp(name)) {
                Ok(i) => self.counters[i].1 += v,
                Err(i) => self.counters.insert(i, (name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.binary_search_by(|(n, _)| n.cmp(name)) {
                Ok(i) => {
                    if v.total_cmp(&self.gauges[i].1).is_gt() {
                        self.gauges[i].1 = *v;
                    }
                }
                Err(i) => self.gauges.insert(i, (name.clone(), *v)),
            }
        }
        for (name, h) in &other.hists {
            match self.hists.binary_search_by(|(n, _)| n.cmp(name)) {
                Ok(i) => self.hists[i].1.merge(h),
                Err(i) => self.hists.insert(i, (name.clone(), h.clone())),
            }
        }
    }

    /// Exact equality with floats compared by `to_bits` — the determinism
    /// assertion used by the fleet runner and `exp_observe`.
    pub fn bit_identical(&self, other: &Snapshot) -> bool {
        self.counters == other.counters
            && self.gauges.len() == other.gauges.len()
            && self
                .gauges
                .iter()
                .zip(&other.gauges)
                .all(|((an, av), (bn, bv))| an == bn && av.to_bits() == bv.to_bits())
            && self.hists.len() == other.hists.len()
            && self
                .hists
                .iter()
                .zip(&other.hists)
                .all(|((an, ah), (bn, bh))| an == bn && ah.bit_identical(bh))
    }

    /// Serialize to a deterministic JSON string (2-space indent, metrics in
    /// sorted name order, histogram aggregates as exact integers).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{name}\": {v}"));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{name}\": {}", json_f64(*v)));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"hists\": {");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{name}\": {{\"bounds\": [{}], \"counts\": [{}], \"count\": {}, \"sum_fp\": {}, \"min_fp\": {}, \"max_fp\": {}}}",
                h.bounds
                    .iter()
                    .map(|b| json_f64(*b))
                    .collect::<Vec<_>>()
                    .join(", "),
                h.counts
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                h.count,
                h.sum_fp,
                h.min_fp,
                h.max_fp,
            ));
        }
        if !self.hists.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}");
        out
    }
}

/// Format an `f64` as a JSON number (non-finite values become `null`; Rust's
/// shortest-roundtrip formatting keeps the output deterministic).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains("inf") {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::{MetricSink, TelemetryHub};
    use crate::id::ids;

    fn sample(offset: u64) -> Snapshot {
        let mut hub = TelemetryHub::new();
        hub.add(ids::FLEET_SESSIONS, 3 + offset);
        hub.gauge_max(ids::FLEET_PEAK_VIEWERS, 5.0 + offset as f64);
        for i in 0..5 {
            hub.observe(ids::STAGE_STARTUP_MS, (offset + i) as f64 * 40.0);
        }
        hub.snapshot()
    }

    #[test]
    fn merge_is_commutative_and_matches_lookup() {
        let a = sample(0);
        let b = sample(7);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert!(ab.bit_identical(&ba));
        assert_eq!(ab.counter("fleet.sessions"), 13);
        assert_eq!(ab.gauge("fleet.peak_viewers"), Some(12.0));
        assert_eq!(ab.hist("stage.startup_ms").unwrap().count, 10);
        assert_eq!(ab.counter("no.such.metric"), 0);
    }

    #[test]
    fn disjoint_merge_inserts_sorted() {
        let mut hub_a = TelemetryHub::new();
        hub_a.incr(ids::NODE_FORWARDED);
        let mut hub_b = TelemetryHub::new();
        hub_b.incr(ids::BRAIN_REQUESTS);
        let mut merged = hub_a.snapshot();
        merged.merge(&hub_b.snapshot());
        let names: Vec<_> = merged.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["brain.requests_served", "node.forwarded"]);
    }

    #[test]
    fn json_is_deterministic_and_shaped() {
        let a = sample(0);
        let b = sample(0);
        assert_eq!(a.to_json(), b.to_json());
        let j = a.to_json();
        assert!(j.contains("\"fleet.sessions\": 3"));
        assert!(j.contains("\"fleet.peak_viewers\": 5.0"));
        assert!(j.contains("\"stage.startup_ms\""));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn empty_snapshot_serializes() {
        let s = Snapshot::default();
        assert!(s.is_empty());
        assert_eq!(s.to_json(), "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"hists\": {}\n}");
    }
}
