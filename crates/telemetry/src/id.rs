//! Typed metric identifiers.
//!
//! A [`MetricId`] is a newtype over a `&'static str` so call sites can't mix
//! up a metric name with any other string, and so the set of metrics the
//! stack emits is enumerable in one place ([`ids`]).  Names are dotted paths
//! namespaced by the layer that owns them (`emu.*`, `node.*`, `brain.*`,
//! `cc.*`, `fleet.*`) plus `stage.*` for the per-stage latency attribution
//! the paper's client logs support (§6.1).

use core::fmt;

/// A typed metric identifier: a static dotted name such as
/// `"stage.first_packet_ms"`.
///
/// Ordering and equality are by name, so `MetricId` can key the hub's
/// `BTreeMap`s and snapshots sort identically everywhere.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId(pub &'static str);

impl MetricId {
    /// The metric name.
    pub fn name(self) -> &'static str {
        self.0
    }
}

impl fmt::Debug for MetricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MetricId({})", self.0)
    }
}

impl fmt::Display for MetricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// Canonical metric ids emitted by the stack.
///
/// Grouped by owning layer.  Everything here maps onto one of the paper's
/// three log pipelines; see DESIGN.md §9 for the full mapping.
pub mod ids {
    use super::MetricId;

    // ---- emu: the packet-level event loop (consumer-node log analogue) ----

    /// Packets delivered across any link.
    pub const EMU_DELIVERED: MetricId = MetricId("emu.delivered");
    /// Packets lost to the random / Gilbert-Elliott loss model.
    pub const EMU_LOST_RANDOM: MetricId = MetricId("emu.lost_random");
    /// Packets dropped because a link's queue was full.
    pub const EMU_LOST_QUEUE: MetricId = MetricId("emu.lost_queue");
    /// Packets dropped on links that were administratively down.
    pub const EMU_LOST_DOWN: MetricId = MetricId("emu.lost_down");
    /// Packets dropped because no link existed for the requested hop.
    pub const EMU_NO_ROUTE: MetricId = MetricId("emu.no_route_drops");
    /// Packets blackholed by injected faults (crashed hosts, dead links).
    pub const EMU_FAULT_DROPS: MetricId = MetricId("emu.fault_drops");
    /// Fault episodes applied, by kind.
    pub const EMU_FAULT_NODE_CRASH: MetricId = MetricId("emu.fault.node_crash");
    /// Node restarts applied.
    pub const EMU_FAULT_NODE_RESTART: MetricId = MetricId("emu.fault.node_restart");
    /// Links taken down by fault injection.
    pub const EMU_FAULT_LINK_DOWN: MetricId = MetricId("emu.fault.link_down");
    /// Links restored by fault injection.
    pub const EMU_FAULT_LINK_UP: MetricId = MetricId("emu.fault.link_up");
    /// Loss-burst episodes started.
    pub const EMU_FAULT_LOSS_BURST: MetricId = MetricId("emu.fault.loss_burst");
    /// Per-send snapshot of the chosen link's queue backlog, in packets.
    pub const EMU_QUEUE_DEPTH: MetricId = MetricId("emu.queue_depth_pkts");

    // ---- node: overlay forwarding (consumer-node log analogue) ----

    /// Media packets forwarded downstream.
    pub const NODE_FORWARDED: MetricId = MetricId("node.forwarded");
    /// Media packets ingested from upstream.
    pub const NODE_INGESTED: MetricId = MetricId("node.ingested");
    /// Retransmissions served from the local packet cache.
    pub const NODE_RTX_SERVED: MetricId = MetricId("node.rtx_served");
    /// NACKs that missed the local cache.
    pub const NODE_RTX_UNAVAILABLE: MetricId = MetricId("node.rtx_unavailable");
    /// Lost sequence numbers NACKed upstream (per seq, comparable with
    /// `node.rtx_served` / `node.rtx_unavailable`).
    pub const NODE_NACKS_SENT: MetricId = MetricId("node.nacks_sent");
    /// NACK messages sent upstream (each batches one scan's seqs).
    pub const NODE_NACK_BATCHES: MetricId = MetricId("node.nack_batches");
    /// Parked downstream RTX waiters evicted unserved (reset purge + TTL).
    pub const NODE_RTX_PENDING_EXPIRED: MetricId = MetricId("node.rtx_pending_expired");
    /// Sequences re-NACKed to an alternate supplier after a cache miss.
    pub const NODE_RTX_ALTERNATE_REQUESTS: MetricId =
        MetricId("node.rtx_alternate_requests");
    /// Holes recovered by an alternate supplier's retransmission.
    pub const NODE_RTX_ALTERNATE_RECOVERED: MetricId =
        MetricId("node.rtx_alternate_recovered");
    /// Cache-missed sequences with no live alternate supplier to chase.
    pub const NODE_RTX_ALTERNATE_EXHAUSTED: MetricId =
        MetricId("node.rtx_alternate_exhausted");
    /// Duplicate packets suppressed.
    pub const NODE_DUPLICATES: MetricId = MetricId("node.duplicates");
    /// Subscriptions received from downstream.
    pub const NODE_SUBS_RECEIVED: MetricId = MetricId("node.subs_received");
    /// Subscriptions answered from warm local state.
    pub const NODE_LOCAL_HITS: MetricId = MetricId("node.local_hits");
    /// Upstream failovers performed.
    pub const NODE_FAILOVERS: MetricId = MetricId("node.upstream_failovers");

    // ---- brain: centralized path decisions (Path Decision log analogue) ----

    /// Path requests served by the decision module.
    pub const BRAIN_REQUESTS: MetricId = MetricId("brain.requests_served");
    /// Path requests that fell back to the last-resort path.
    pub const BRAIN_LAST_RESORT: MetricId = MetricId("brain.last_resort_served");
    /// Full recompute rounds run by the brain.
    pub const BRAIN_RECOMPUTE_ROUNDS: MetricId = MetricId("brain.recompute_rounds");
    /// Producer rehome operations.
    pub const BRAIN_REHOMES: MetricId = MetricId("brain.rehomes");
    /// Node-failed notifications processed.
    pub const BRAIN_NODE_FAILED: MetricId = MetricId("brain.node_failed");
    /// Node-recovered notifications processed.
    pub const BRAIN_NODE_RECOVERED: MetricId = MetricId("brain.node_recovered");
    /// Brain-side path request service latency (simulated RPC), ms.
    pub const BRAIN_RESPONSE_MS: MetricId = MetricId("brain.response_ms");
    /// KSP path entries computed across all recompute rounds (work proxy).
    pub const BRAIN_KSP_PATHS: MetricId = MetricId("brain.ksp_paths_computed");
    /// Leader failover latency (last decree before the crash → first
    /// lease granted to a live holder), ms.
    pub const BRAIN_FAILOVER_MS: MetricId = MetricId("brain.failover_ms");

    // ---- replication: the Paxos-backed Brain cluster (§7.1) ----

    /// State (non-lease) decrees chosen in the replicated log.
    pub const REPLICATION_OPS_COMMITTED: MetricId = MetricId("replication.ops_committed");
    /// Lease decrees that moved leadership (includes initial election).
    pub const REPLICATION_LEASE_GRANTS: MetricId = MetricId("replication.lease_grants");
    /// Lease decrees that renewed the incumbent leader.
    pub const REPLICATION_LEASE_RENEWALS: MetricId = MetricId("replication.lease_renewals");
    /// Ballots started (fresh proposals plus backoff retries).
    pub const REPLICATION_PROPOSALS: MetricId = MetricId("replication.proposals");
    /// Inter-replica Paxos messages put on the wire.
    pub const REPLICATION_MSGS_SENT: MetricId = MetricId("replication.msgs_sent");
    /// Inter-replica Paxos messages lost in flight.
    pub const REPLICATION_MSGS_DROPPED: MetricId = MetricId("replication.msgs_dropped");
    /// Client retries against the cluster (leader waits, ballot timeouts).
    pub const REPLICATION_CLIENT_RETRIES: MetricId = MetricId("replication.client_retries");
    /// Client redirects to a leader other than its cached hint.
    pub const REPLICATION_REDIRECTS: MetricId = MetricId("replication.redirects");
    /// Brain leader crashes injected by the fault plan.
    pub const REPLICATION_LEADER_CRASHES: MetricId = MetricId("replication.leader_crashes");
    /// Length of the canonical chosen log at end of run.
    pub const REPLICATION_DECIDED_SLOTS: MetricId = MetricId("replication.decided_slots");

    // ---- cc: congestion control (client log analogue) ----

    /// Rate decisions that increased the pacing rate.
    pub const CC_RATE_INCREASES: MetricId = MetricId("cc.rate_increases");
    /// Rate decisions that held the pacing rate.
    pub const CC_RATE_HOLDS: MetricId = MetricId("cc.rate_holds");
    /// Rate decisions that decreased the pacing rate.
    pub const CC_RATE_DECREASES: MetricId = MetricId("cc.rate_decreases");

    // ---- fleet: session-level aggregation (client log analogue) ----

    /// Sessions attached, all systems.
    pub const FLEET_SESSIONS: MetricId = MetricId("fleet.sessions");
    /// Sessions whose path decision was a local (edge) hit.
    pub const FLEET_LOCAL_HITS: MetricId = MetricId("fleet.local_hits");
    /// Sessions served by a prefetched path (no brain round trip).
    pub const FLEET_PREFETCHED: MetricId = MetricId("fleet.prefetched");
    /// Sessions served by a live brain round trip.
    pub const FLEET_BRAIN_SERVED: MetricId = MetricId("fleet.brain_served");
    /// Sessions that fell back to the last-resort path.
    pub const FLEET_LAST_RESORT: MetricId = MetricId("fleet.last_resort");
    /// Sessions skipped because the chosen edge raced offline.
    pub const FLEET_RACED_OFFLINE: MetricId = MetricId("fleet.raced_offline");
    /// Fault episodes injected by the fleet fault plan.
    pub const FLEET_FAULTS_INJECTED: MetricId = MetricId("fleet.faults_injected");
    /// Recovery episodes recorded (detect→recover cycles).
    pub const FLEET_RECOVERIES: MetricId = MetricId("fleet.recoveries");
    /// Peak concurrent viewers observed across all days (gauge).
    pub const FLEET_PEAK_VIEWERS: MetricId = MetricId("fleet.peak_viewers");

    // ---- stage: per-stage latency attribution (client logs, Fig. 10) ----

    /// Brain lookup latency, ms (zero for local hits / prefetched paths).
    pub const STAGE_BRAIN_LOOKUP_MS: MetricId = MetricId("stage.brain_lookup_ms");
    /// First-packet latency, ms.
    pub const STAGE_FIRST_PACKET_MS: MetricId = MetricId("stage.first_packet_ms");
    /// End-to-end startup latency, ms.
    pub const STAGE_STARTUP_MS: MetricId = MetricId("stage.startup_ms");
    /// In-network CDN path delay, ms.
    pub const STAGE_CDN_PATH_MS: MetricId = MetricId("stage.cdn_path_ms");
    /// Steady-state streaming delay, ms.
    pub const STAGE_STREAMING_MS: MetricId = MetricId("stage.streaming_ms");
    /// Recovery detect→reroute latency, ms.
    pub const STAGE_RECOVERY_MS: MetricId = MetricId("stage.recovery_ms");

    // ---- transport: the real-socket (tokio UDP) driver ----

    /// Datagrams received and dispatched into the sans-I/O core.
    pub const TRANSPORT_RX_DATAGRAMS: MetricId = MetricId("transport.rx_datagrams");
    /// Datagrams sent on the socket.
    pub const TRANSPORT_TX_DATAGRAMS: MetricId = MetricId("transport.tx_datagrams");
    /// Bytes sent on the socket.
    pub const TRANSPORT_TX_BYTES: MetricId = MetricId("transport.tx_bytes");
    /// Datagrams dropped because the source address is neither a known
    /// peer nor an attached client.
    pub const TRANSPORT_UNKNOWN_SOURCE_DROPS: MetricId =
        MetricId("transport.unknown_source_drops");
    /// Datagrams dropped because they exceeded the configured receive
    /// buffer (`NodeConfig::max_datagram_bytes`) and were truncated.
    pub const TRANSPORT_RECV_TRUNCATED: MetricId = MetricId("transport.recv_truncated");
    /// Stale timer keys skipped because their generation was cancelled.
    pub const TRANSPORT_TIMERS_CANCELLED: MetricId = MetricId("transport.timers_cancelled");
    /// Socket send errors (best-effort datapath; counted, not retried).
    pub const TRANSPORT_SEND_ERRORS: MetricId = MetricId("transport.send_errors");
    /// Wall-clock time spent dispatching one received datagram through
    /// the core and applying its actions, ms.
    pub const TRANSPORT_RX_DISPATCH_MS: MetricId = MetricId("transport.rx_dispatch_ms");

    // ---- transport.batch: batched datagram I/O (sendmmsg/recvmmsg) ----

    /// Send-side batch syscalls issued (`sendmmsg`, or one per datagram on
    /// the portable fallback backend).
    pub const TRANSPORT_BATCH_TX_SYSCALLS: MetricId = MetricId("transport.batch_tx_syscalls");
    /// Receive-side batch syscalls that returned at least one datagram.
    pub const TRANSPORT_BATCH_RX_SYSCALLS: MetricId = MetricId("transport.batch_rx_syscalls");
    /// Datagrams handed to the kernel per send-side batch syscall.
    pub const TRANSPORT_BATCH_TX_FILL: MetricId = MetricId("transport.batch_tx_fill");
    /// Datagrams returned per non-empty receive-side batch syscall.
    pub const TRANSPORT_BATCH_RX_FILL: MetricId = MetricId("transport.batch_rx_fill");
    /// Sends deferred because the socket buffer was full mid-batch (the
    /// flush loop yielded and retried).
    pub const TRANSPORT_BATCH_TX_RETRIES: MetricId = MetricId("transport.batch_tx_retries");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_orders_by_name() {
        let a = MetricId("a.one");
        let b = MetricId("b.two");
        assert!(a < b);
        assert_eq!(a, MetricId("a.one"));
        assert_eq!(format!("{a}"), "a.one");
    }
}
