//! Fixed-bucket, exactly-mergeable histograms.
//!
//! The merge of two histograms must be associative and commutative *bit for
//! bit*, because fleet shards record into private histograms that the runner
//! merges in canonical order and the result is asserted identical to a
//! serial run.  Bucket counts are `u64` (integer addition is exact) and the
//! running sum is kept in fixed-point microseconds as an `i128` — floating
//! point addition is commutative but **not** associative, so an `f64` sum
//! would break `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)` by a few ulps.

/// Default bucket upper bounds for latency-style observations, in
/// milliseconds.  Spans sub-millisecond link hops up to the 30 s session
/// timeout; anything above the last bound lands in the overflow bucket.
pub const DEFAULT_MS_BOUNDS: &[f64] = &[
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0,
    30000.0,
];

/// Bucket upper bounds for queue-depth observations, in packets.
pub const QUEUE_DEPTH_BOUNDS: &[f64] = &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// Scale factor between observed values and the fixed-point sum: one
/// observation unit (a millisecond, a packet) is stored as 1000 ticks.
const FIXED_POINT_SCALE: f64 = 1000.0;

/// A histogram with a static set of bucket bounds and an exact fixed-point
/// sum, so that merging is associative and commutative at the bit level.
#[derive(Clone, Debug, PartialEq)]
pub struct FixedHistogram {
    bounds: &'static [f64],
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    /// Sum of observations in fixed-point (value × 1000), exact under merge.
    sum_fp: i128,
    /// Smallest observation in fixed-point; `i64::MAX` when empty.
    min_fp: i64,
    /// Largest observation in fixed-point; `i64::MIN` when empty.
    max_fp: i64,
}

impl FixedHistogram {
    /// An empty histogram over the given bucket upper bounds.
    ///
    /// `bounds` must be non-empty, finite and strictly increasing.
    pub fn new(bounds: &'static [f64]) -> Self {
        debug_assert!(!bounds.is_empty());
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        FixedHistogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum_fp: 0,
            min_fp: i64::MAX,
            max_fp: i64::MIN,
        }
    }

    /// An empty histogram over [`DEFAULT_MS_BOUNDS`].
    pub fn default_ms() -> Self {
        FixedHistogram::new(DEFAULT_MS_BOUNDS)
    }

    /// The bucket upper bounds this histogram was built with.
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Record one observation.  Non-finite values are coerced to zero so a
    /// stray NaN cannot poison determinism.
    pub fn observe(&mut self, value: f64) {
        let v = if value.is_finite() { value } else { 0.0 };
        let fp = (v * FIXED_POINT_SCALE).round().clamp(i64::MIN as f64, i64::MAX as f64) as i64;
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum_fp += i128::from(fp);
        self.min_fp = self.min_fp.min(fp);
        self.max_fp = self.max_fp.max(fp);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Exact fixed-point sum (observation units × 1000).
    pub fn sum_fixed_point(&self) -> i128 {
        self.sum_fp
    }

    /// Smallest observation in fixed-point; `i64::MAX` when empty.
    pub fn min_fixed_point(&self) -> i64 {
        self.min_fp
    }

    /// Largest observation in fixed-point; `i64::MIN` when empty.
    pub fn max_fixed_point(&self) -> i64 {
        self.max_fp
    }

    /// Mean observation, or `None` when empty.  Derived from the exact
    /// fixed-point sum, so it is identical however the histogram was merged.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        Some(self.sum_fp as f64 / FIXED_POINT_SCALE / self.count as f64)
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then(|| self.min_fp as f64 / FIXED_POINT_SCALE)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then(|| self.max_fp as f64 / FIXED_POINT_SCALE)
    }

    /// Approximate quantile (0.0 ≤ q ≤ 1.0) read off the bucket bounds: the
    /// upper bound of the bucket containing the q-th observation.  Returns
    /// `None` when empty.  Overflow-bucket hits report the recorded maximum.
    pub fn approx_quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max_fp as f64 / FIXED_POINT_SCALE
                });
            }
        }
        Some(self.max_fp as f64 / FIXED_POINT_SCALE)
    }

    /// Fold `other` into `self`.  Both histograms must share the same bucket
    /// bounds; merging is exact, associative and commutative.
    ///
    /// # Panics
    /// If the bucket bounds differ.
    pub fn merge(&mut self, other: &FixedHistogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_fp += other.sum_fp;
        self.min_fp = self.min_fp.min(other.min_fp);
        self.max_fp = self.max_fp.max(other.max_fp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_buckets_and_stats() {
        let mut h = FixedHistogram::default_ms();
        h.observe(0.3);
        h.observe(1.0); // boundary lands in its own bucket (v <= bound)
        h.observe(150.0);
        h.observe(99999.0); // overflow
        assert_eq!(h.count(), 4);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.bucket_counts()[1], 1);
        let overflow = h.bucket_counts().len() - 1;
        assert_eq!(h.bucket_counts()[overflow], 1);
        assert_eq!(h.min(), Some(0.3));
        assert_eq!(h.max(), Some(99999.0));
        let mean = h.mean().unwrap();
        assert!((mean - (0.3 + 1.0 + 150.0 + 99999.0) / 4.0).abs() < 1e-9);
    }

    #[test]
    fn nan_is_coerced_to_zero() {
        let mut h = FixedHistogram::default_ms();
        h.observe(f64::NAN);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), Some(0.0));
    }

    #[test]
    fn merge_is_exact() {
        let mut a = FixedHistogram::default_ms();
        let mut b = FixedHistogram::default_ms();
        for i in 0..100 {
            a.observe(i as f64 * 0.7);
            b.observe(i as f64 * 1.3);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 200);
    }

    #[test]
    fn quantile_reads_bucket_bound() {
        let mut h = FixedHistogram::default_ms();
        for _ in 0..99 {
            h.observe(3.0);
        }
        h.observe(400.0);
        assert_eq!(h.approx_quantile(0.5), Some(5.0));
        assert_eq!(h.approx_quantile(1.0), Some(500.0));
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = FixedHistogram::default_ms();
        let b = FixedHistogram::new(QUEUE_DEPTH_BOUNDS);
        a.merge(&b);
    }
}
