//! The recording API ([`MetricSink`]) and the in-memory aggregator
//! ([`TelemetryHub`]).

use livenet_types::time::SimTime;
use std::collections::BTreeMap;

use crate::hist::{FixedHistogram, DEFAULT_MS_BOUNDS};
use crate::id::MetricId;
use crate::snapshot::Snapshot;

/// The unified metric-recording trait every layer instruments against.
///
/// Three primitive shapes cover the stack: monotonic counters (`add`),
/// high-water gauges (`gauge_max`) and fixed-bucket histograms (`observe`).
/// All three merge associatively and commutatively, which is what lets
/// per-shard recordings collapse into one deterministic [`Snapshot`].
pub trait MetricSink {
    /// Add `delta` to the counter `id`.
    fn add(&mut self, id: MetricId, delta: u64);

    /// Raise the gauge `id` to `value` if `value` is higher (by
    /// `f64::total_cmp`, so the operation is exact and order-free).
    fn gauge_max(&mut self, id: MetricId, value: f64);

    /// Record `value` into the histogram `id` using the given static bucket
    /// bounds.  All observations of one `id` must use the same bounds.
    fn observe_with(&mut self, id: MetricId, bounds: &'static [f64], value: f64);

    /// Increment the counter `id` by one.
    fn incr(&mut self, id: MetricId) {
        self.add(id, 1);
    }

    /// Record a latency-style `value` (milliseconds) into the histogram
    /// `id` with the default millisecond bounds.
    fn observe(&mut self, id: MetricId, value: f64) {
        self.observe_with(id, DEFAULT_MS_BOUNDS, value);
    }
}

/// A sink that discards everything.  Lets instrumented code run un-measured
/// with zero overhead and no `Option<&mut dyn MetricSink>` plumbing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl MetricSink for NullSink {
    fn add(&mut self, _id: MetricId, _delta: u64) {}
    fn gauge_max(&mut self, _id: MetricId, _value: f64) {}
    fn observe_with(&mut self, _id: MetricId, _bounds: &'static [f64], _value: f64) {}
}

/// In-memory aggregation of everything recorded through [`MetricSink`].
///
/// Keys are `BTreeMap`s so iteration — and therefore [`Snapshot`] layout —
/// is sorted by metric name with no hashing nondeterminism.
#[derive(Clone, Debug, Default)]
pub struct TelemetryHub {
    counters: BTreeMap<MetricId, u64>,
    gauges: BTreeMap<MetricId, f64>,
    hists: BTreeMap<MetricId, FixedHistogram>,
}

impl TelemetryHub {
    /// An empty hub.
    pub fn new() -> Self {
        TelemetryHub::default()
    }

    /// Current value of a counter (zero if never recorded).
    pub fn counter(&self, id: MetricId) -> u64 {
        self.counters.get(&id).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if ever recorded.
    pub fn gauge(&self, id: MetricId) -> Option<f64> {
        self.gauges.get(&id).copied()
    }

    /// The histogram recorded under `id`, if any.
    pub fn histogram(&self, id: MetricId) -> Option<&FixedHistogram> {
        self.hists.get(&id)
    }

    /// Fold every metric from `other` into `self`: counters add, gauges take
    /// the max, histograms merge exactly.
    pub fn merge(&mut self, other: &TelemetryHub) {
        for (&id, &v) in &other.counters {
            *self.counters.entry(id).or_insert(0) += v;
        }
        for (&id, &v) in &other.gauges {
            merge_gauge(&mut self.gauges, id, v);
        }
        for (&id, h) in &other.hists {
            self.hists
                .entry(id)
                .or_insert_with(|| FixedHistogram::new(h.bounds()))
                .merge(h);
        }
    }

    /// Freeze the hub into its canonical serialized form.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::from_parts(&self.counters, &self.gauges, &self.hists)
    }
}

fn merge_gauge(gauges: &mut BTreeMap<MetricId, f64>, id: MetricId, value: f64) {
    gauges
        .entry(id)
        .and_modify(|g| {
            if value.total_cmp(g).is_gt() {
                *g = value;
            }
        })
        .or_insert(value);
}

impl MetricSink for TelemetryHub {
    fn add(&mut self, id: MetricId, delta: u64) {
        *self.counters.entry(id).or_insert(0) += delta;
    }

    fn gauge_max(&mut self, id: MetricId, value: f64) {
        merge_gauge(&mut self.gauges, id, value);
    }

    fn observe_with(&mut self, id: MetricId, bounds: &'static [f64], value: f64) {
        self.hists
            .entry(id)
            .or_insert_with(|| FixedHistogram::new(bounds))
            .observe(value);
    }
}

/// A virtual-time interval that records its duration into a histogram when
/// closed.  There is no wall-clock involved: both endpoints are `SimTime`,
/// so spans are as deterministic as the event loop driving them.
///
/// ```
/// use livenet_telemetry::{ids, Span, TelemetryHub};
/// use livenet_types::time::SimTime;
///
/// let mut hub = TelemetryHub::new();
/// let span = Span::begin(ids::STAGE_STARTUP_MS, SimTime::from_millis(1000));
/// // ... simulated work ...
/// span.end(&mut hub, SimTime::from_millis(1250));
/// assert_eq!(hub.histogram(ids::STAGE_STARTUP_MS).unwrap().count(), 1);
/// ```
#[derive(Clone, Copy, Debug)]
#[must_use = "a span records nothing until `end` is called"]
pub struct Span {
    id: MetricId,
    start: SimTime,
}

impl Span {
    /// Open a span for `id` starting at virtual time `now`.
    pub fn begin(id: MetricId, now: SimTime) -> Self {
        Span { id, start: now }
    }

    /// The span's metric id.
    pub fn id(&self) -> MetricId {
        self.id
    }

    /// The span's start time.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Close the span at virtual time `now`, recording the elapsed
    /// milliseconds into `sink` under the span's id.
    pub fn end(self, sink: &mut impl MetricSink, now: SimTime) {
        sink.observe(self.id, now.saturating_since(self.start).as_millis_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ids;

    #[test]
    fn hub_records_all_shapes() {
        let mut hub = TelemetryHub::new();
        hub.incr(ids::FLEET_SESSIONS);
        hub.add(ids::FLEET_SESSIONS, 4);
        hub.gauge_max(ids::FLEET_PEAK_VIEWERS, 10.0);
        hub.gauge_max(ids::FLEET_PEAK_VIEWERS, 7.0);
        hub.observe(ids::STAGE_STARTUP_MS, 123.0);
        assert_eq!(hub.counter(ids::FLEET_SESSIONS), 5);
        assert_eq!(hub.gauge(ids::FLEET_PEAK_VIEWERS), Some(10.0));
        assert_eq!(hub.histogram(ids::STAGE_STARTUP_MS).unwrap().count(), 1);
    }

    #[test]
    fn hub_merge_matches_single_recording() {
        let mut a = TelemetryHub::new();
        let mut b = TelemetryHub::new();
        let mut whole = TelemetryHub::new();
        for i in 0..50 {
            let (shard, v) = if i % 2 == 0 { (&mut a, i) } else { (&mut b, i) };
            shard.incr(ids::FLEET_SESSIONS);
            shard.observe(ids::STAGE_STARTUP_MS, v as f64);
            whole.incr(ids::FLEET_SESSIONS);
            whole.observe(ids::STAGE_STARTUP_MS, i as f64);
        }
        let mut merged = TelemetryHub::new();
        merged.merge(&a);
        merged.merge(&b);
        assert!(merged.snapshot().bit_identical(&whole.snapshot()));
    }

    #[test]
    fn span_records_elapsed_virtual_time() {
        let mut hub = TelemetryHub::new();
        let span = Span::begin(ids::STAGE_RECOVERY_MS, SimTime::from_millis(2000));
        span.end(&mut hub, SimTime::from_millis(2500));
        let h = hub.histogram(ids::STAGE_RECOVERY_MS).unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), Some(500.0));
    }

    #[test]
    fn null_sink_discards() {
        let mut sink = NullSink;
        sink.incr(ids::FLEET_SESSIONS);
        sink.observe(ids::STAGE_STARTUP_MS, 1.0);
        sink.gauge_max(ids::FLEET_PEAK_VIEWERS, 1.0);
    }
}
