//! Deterministic telemetry for the LiveNet reproduction.
//!
//! The paper's evaluation (§6.1) is read off three log pipelines — consumer
//! node logs, client logs and Path Decision logs.  This crate is the
//! reproduction's equivalent: one recording API (`MetricSink`), one in-memory
//! aggregator (`TelemetryHub`) and one canonical output format (`Snapshot`)
//! shared by every layer of the stack (emu, node, brain, cc, fleet).
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** A `Snapshot` must be bit-identical between a serial
//!    fleet run and a sharded parallel run, the same discipline as
//!    `FleetReport::bit_identical`.  Counters are integers, histogram sums
//!    are fixed-point integers, and gauges merge via `max` under
//!    `f64::total_cmp` — every merge operation is associative and
//!    commutative *exactly*, not just approximately, so shard scheduling
//!    order can never leak into the output bits.
//! 2. **Cheap on the hot path.** Recording a counter is a `BTreeMap` lookup
//!    plus an integer add; recording a latency is the same plus a linear
//!    scan over ≤ 16 bucket bounds.  No allocation after first touch of a
//!    metric id, no locking, no wall-clock reads.
//! 3. **Mergeable.** Each fleet shard owns a private hub; the runner merges
//!    snapshots in canonical shard-index order.
//!
//! Entry points: [`TelemetryHub`] (aggregation), [`MetricSink`] (the trait
//! layers record against), [`Snapshot`] (serialized form), [`Span`]
//! (virtual-time interval → histogram observation), [`ids`] (canonical
//! metric names).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod hub;
mod id;
mod snapshot;

pub use hist::{FixedHistogram, DEFAULT_MS_BOUNDS, QUEUE_DEPTH_BOUNDS};
pub use hub::{MetricSink, NullSink, Span, TelemetryHub};
pub use id::{ids, MetricId};
pub use snapshot::{HistSnapshot, Snapshot};
