//! Sharded fleet execution with a deterministic merge.
//!
//! [`FleetRunner`] partitions a fleet run by channel into independent
//! shards, runs them serially or on a thread pool, and merges the per-shard
//! outputs in a canonical order. Because every shard is a fully independent
//! [`FleetSim`] — its own topology copy, its own Brain, its own RNG
//! sub-stream ([`DetRng::split`]) — and the merge never looks at wall-clock
//! completion order, `run_parallel(n)` is **bit-identical** to
//! `run_serial()` for every seed and every thread count.
//!
//! The partition balances the workload's Zipf skew:
//!
//! * channels are placed heaviest-first on the lightest shard so far (the
//!   LPT greedy), so the Zipf head spreads across shards instead of
//!   piling onto shard 0 — no shard exceeds the ideal mass share by more
//!   than the single heaviest channel;
//! * each shard's arrival rate and session capacities are scaled by its
//!   mass share, so per-shard utilization — and therefore routing,
//!   queueing and the long-chain dynamics — matches the monolith's.
//!
//! Sharded runs are a *new semantics*, not a replay of the legacy
//! [`FleetSim::run`] monolith: the union of the shards' thinned Poisson
//! streams is distributed like the monolith stream but is not the same
//! sample path. The determinism contract is serial-sharded ≡
//! parallel-sharded, checked by [`FleetReport::bit_identical`].
//!
//! [`DetRng::split`]: livenet_types::DetRng::split

use crate::fleet::{FleetConfig, FleetReport, FleetSim, RecoveryRecord, ShardOutput};
use livenet_types::{Result, SimTime, ZipfTable};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// One shard's slice of the fleet: which channels it simulates and the
/// fraction of the total Zipf mass (≈ viewer arrivals) they carry.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// Shard index; doubles as the `DetRng::split` label, so a shard's
    /// random stream does not depend on how many siblings run.
    pub index: usize,
    /// Member channel indices (== Zipf ranks), ascending.
    pub channels: Vec<usize>,
    /// The members' share of the total channel popularity mass, in (0, 1].
    pub mass_share: f64,
}

/// Partition the channel universe into at most `config.shards` plans.
///
/// Channels are placed heaviest-first (Zipf mass is monotone in rank)
/// onto the lightest shard so far, ties to the lowest index — the LPT
/// greedy. That spreads the Zipf head across shards instead of
/// co-locating it on shard 0 (the old head-group rule capped parallel
/// speedup at roughly `1 / head_mass` regardless of shard count), and
/// bounds every shard's mass share by `ideal + pmf(0)`. Shards that end
/// up empty are dropped — surviving plans keep their original indices, so
/// the partition (and every shard's RNG stream) is a pure function of the
/// config, never of the thread count.
pub fn partition_channels(config: &FleetConfig) -> Vec<ShardPlan> {
    let channels = config.workload.channels;
    let shards = config.shards.clamp(1, channels.max(1));
    let zipf = ZipfTable::new(channels, config.workload.zipf_s);
    let mass: Vec<f64> = (0..channels).map(|k| zipf.pmf(k)).collect();
    let total: f64 = mass.iter().sum();

    let mut members: Vec<Vec<usize>> = vec![Vec::new(); shards];
    let mut load = vec![0.0f64; shards];
    for (c, &m) in mass.iter().enumerate() {
        let mut best = 0;
        for s in 1..shards {
            if load[s] < load[best] {
                best = s;
            }
        }
        members[best].push(c);
        load[best] += m;
    }
    members
        .into_iter()
        .zip(load)
        .enumerate()
        .filter(|(_, (m, _))| !m.is_empty())
        .map(|(index, (channels, l))| ShardPlan {
            index,
            channels,
            mass_share: l / total,
        })
        .collect()
}

/// Facade for sharded fleet runs: validate once, then run the same
/// partition serially or in parallel with bit-identical results.
#[derive(Debug, Clone)]
pub struct FleetRunner {
    config: FleetConfig,
}

impl FleetRunner {
    /// Wrap a validated configuration.
    ///
    /// Rejects configurations [`FleetConfig::validate`] rejects — the same
    /// checks [`crate::FleetConfigBuilder::build`] runs, repeated here so
    /// hand-built configs cannot bypass them.
    pub fn new(config: FleetConfig) -> Result<FleetRunner> {
        config.validate()?;
        Ok(FleetRunner { config })
    }

    /// The validated configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The shard partition this runner executes.
    pub fn plans(&self) -> Vec<ShardPlan> {
        partition_channels(&self.config)
    }

    /// Run every shard on the calling thread, in index order.
    pub fn run_serial(&self) -> FleetReport {
        let outputs: Vec<ShardOutput> = self
            .plans()
            .iter()
            .map(|p| FleetSim::new_shard(self.config.clone(), p).run_collect())
            .collect();
        merge(outputs, self.config.workload.days as usize)
    }

    /// Run the shards on up to `threads` worker threads.
    ///
    /// Workers pull shard indices from a shared counter and send results
    /// back tagged with their index; the merge consumes them in index
    /// order, so scheduling jitter cannot reach the output bits.
    pub fn run_parallel(&self, threads: usize) -> FleetReport {
        let plans = self.plans();
        let workers = threads.clamp(1, plans.len());
        if workers == 1 {
            return self.run_serial();
        }
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, ShardOutput)>();
        let mut slots: Vec<Option<ShardOutput>> = Vec::new();
        slots.resize_with(plans.len(), || None);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let plans = &plans;
                let config = &self.config;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= plans.len() {
                        break;
                    }
                    let out = FleetSim::new_shard(config.clone(), &plans[i]).run_collect();
                    if tx.send((i, out)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (i, out) in rx {
                slots[i] = Some(out);
            }
        });
        let outputs: Vec<ShardOutput> = slots
            .into_iter()
            .map(|o| o.expect("shard worker exited without a result"))
            .collect();
        merge(outputs, self.config.workload.days as usize)
    }
}

/// Merge per-shard outputs into one fleet report, canonically.
///
/// * Sessions: k-way merge by `(start, shard index, position)` — a total
///   order independent of execution interleaving. The LiveNet/Hier pairing
///   survives because both vectors share the per-shard order.
/// * `hourly_loss`: shard 0's copy. Link loss depends only on the hour,
///   the link IDs and the diurnal factor — never on sessions — and the
///   topology iterates its `BTreeMap`s in key order, so every shard
///   computes the exact same hourly means.
/// * `daily_peak_throughput`: element-wise sum in shard-index order (each
///   shard carries a disjoint slice of concurrent sessions).
/// * `daily_unique_paths`: per-day set union of realized-path hashes.
/// * Recovery records: k-way merge by `(at, shard index, position)`, like
///   sessions.
/// * `faults_injected`: shard 0's count — the fault schedule is derived
///   from the workload seed alone, so every shard injects the identical
///   episodes and summing would multiply-count them.
/// * `telemetry`: snapshot merge in shard-index order — counters sum,
///   gauges keep the max, histograms add bucket counts and fixed-point
///   sums, so the merged bits never depend on completion order.
/// * `replication`: per-shard cluster summaries sum; failover-latency
///   samples concatenate in shard-index order.
/// * Other counters: summed.
fn merge(mut outputs: Vec<ShardOutput>, days: usize) -> FleetReport {
    let mut merged = FleetReport::default();
    // Per-shard session vectors are already time-ordered, so a heap of one
    // cursor per shard streams out the exact `(start, shard, position)`
    // order the old global index sort produced, without materializing an
    // O(sessions) order vector first.
    let total: usize = outputs.iter().map(|o| o.report.livenet.len()).sum();
    merged.livenet.reserve_exact(total);
    merged.hier.reserve_exact(total);
    let mut heads: BinaryHeap<Reverse<(SimTime, usize, usize)>> = outputs
        .iter()
        .enumerate()
        .filter(|(_, o)| !o.report.livenet.is_empty())
        .map(|(s, o)| Reverse((o.report.livenet[0].start, s, 0)))
        .collect();
    while let Some(Reverse((_, s, i))) = heads.pop() {
        merged.livenet.push(outputs[s].report.livenet[i]);
        merged.hier.push(outputs[s].report.hier[i]);
        if let Some(next) = outputs[s].report.livenet.get(i + 1) {
            heads.push(Reverse((next.start, s, i + 1)));
        }
    }

    merged.hourly_loss = std::mem::take(&mut outputs[0].report.hourly_loss);
    merged.faults_injected = outputs[0].report.faults_injected;
    merged.recoveries_livenet = merge_recoveries(&outputs, |r| &r.recoveries_livenet);
    merged.recoveries_hier = merge_recoveries(&outputs, |r| &r.recoveries_hier);

    merged.daily_peak_throughput = vec![0.0; days];
    let mut day_sets: Vec<HashSet<u64>> = vec![HashSet::new(); days];
    for out in &outputs {
        for (d, v) in out.report.daily_peak_throughput.iter().enumerate() {
            merged.daily_peak_throughput[d] += v;
        }
        for (d, set) in out.day_path_sets.iter().enumerate() {
            day_sets[d].extend(set);
        }
        merged.skipped_offline += out.report.skipped_offline;
        merged.chain_switches += out.report.chain_switches;
        merged.recompute_rounds += out.report.recompute_rounds;
        merged.producers_rehomed += out.report.producers_rehomed;
        merged.telemetry.merge(&out.report.telemetry);
        // Replicated-Brain summaries: each shard runs its own cluster, so
        // counters sum and failover samples concatenate in shard-index
        // order (the loop order), keeping the merged bits deterministic.
        if let Some(r) = &out.report.replication {
            merged
                .replication
                .get_or_insert_with(Default::default)
                .absorb(r);
        }
    }
    merged.daily_unique_paths = day_sets.iter().map(HashSet::len).collect();
    merged
}

/// K-way merge of per-shard recovery records by `(at, shard, position)`.
fn merge_recoveries(
    outputs: &[ShardOutput],
    pick: impl Fn(&FleetReport) -> &Vec<RecoveryRecord>,
) -> Vec<RecoveryRecord> {
    let total: usize = outputs.iter().map(|o| pick(&o.report).len()).sum();
    let mut merged = Vec::with_capacity(total);
    let mut heads: BinaryHeap<Reverse<(SimTime, usize, usize)>> = outputs
        .iter()
        .enumerate()
        .filter(|(_, o)| !pick(&o.report).is_empty())
        .map(|(s, o)| Reverse((pick(&o.report)[0].at, s, 0)))
        .collect();
    while let Some(Reverse((_, s, i))) = heads.pop() {
        let recs = pick(&outputs[s].report);
        merged.push(recs[i]);
        if let Some(next) = recs.get(i + 1) {
            heads.push(Reverse((next.at, s, i + 1)));
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfigBuilder;

    fn tiny_config(seed: u64) -> FleetConfig {
        // Small enough for unit tests: fewer ticks and arrivals than the
        // smoke preset, but still several shards' worth of channels.
        FleetConfigBuilder::smoke(seed)
            .peak_arrivals_per_sec(0.2)
            .shards(4)
            .build()
            .unwrap()
    }

    #[test]
    fn partition_covers_every_channel_exactly_once() {
        let cfg = tiny_config(1);
        let plans = partition_channels(&cfg);
        let mut seen = vec![0u32; cfg.workload.channels];
        for p in &plans {
            for &c in &p.channels {
                seen[c] += 1;
            }
        }
        assert!(seen.iter().all(|&n| n == 1), "{seen:?}");
        let total: f64 = plans.iter().map(|p| p.mass_share).sum();
        assert!((total - 1.0).abs() < 1e-9, "mass shares sum to {total}");
    }

    #[test]
    fn partition_balances_zipf_head_load() {
        let cfg = tiny_config(2);
        let plans = partition_channels(&cfg);
        let zipf = ZipfTable::new(cfg.workload.channels, cfg.workload.zipf_s);
        let total: f64 = (0..cfg.workload.channels).map(|k| zipf.pmf(k)).sum();
        let heaviest = zipf.pmf(0) / total;
        let ideal = 1.0 / plans.len() as f64;
        // LPT guarantee: a channel only lands on the lightest shard, so no
        // shard's share exceeds the ideal by more than the heaviest single
        // channel — the Zipf head cannot pile up on shard 0 anymore.
        for p in &plans {
            assert!(
                p.mass_share <= ideal + heaviest + 1e-9,
                "shard {} carries {:.4} > ideal {:.4} + head {:.4}",
                p.index,
                p.mass_share,
                ideal,
                heaviest
            );
        }
        // And the head channels really are spread out: ranks 0..shards sit
        // on pairwise distinct shards (each was placed on an empty shard).
        let mut head_homes = HashSet::new();
        for rank in 0..plans.len() {
            let home = plans
                .iter()
                .position(|p| p.channels.contains(&rank))
                .unwrap();
            assert!(head_homes.insert(home), "rank {rank} co-sharded");
        }
    }

    #[test]
    fn partition_is_deterministic_and_thread_free() {
        let cfg = tiny_config(3);
        assert_eq!(partition_channels(&cfg), partition_channels(&cfg));
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let runner = FleetRunner::new(tiny_config(4)).unwrap();
        let serial = runner.run_serial();
        let parallel = runner.run_parallel(2);
        assert!(serial.bit_identical(&parallel));
        assert!(!serial.livenet.is_empty());
    }

    #[test]
    fn merged_sessions_are_time_ordered_and_paired() {
        let runner = FleetRunner::new(tiny_config(5)).unwrap();
        let r = runner.run_serial();
        assert_eq!(r.livenet.len(), r.hier.len());
        for w in r.livenet.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        for (ln, h) in r.livenet.iter().zip(&r.hier) {
            assert_eq!(ln.start, h.start);
        }
    }

    #[test]
    fn faulted_parallel_is_bit_identical_to_serial() {
        use crate::fleet::FleetFault;
        let cfg = FleetConfigBuilder::from_config(tiny_config(6))
            .fault(FleetFault::RegionOutage {
                at_secs: 8 * 3600,
                down_for_secs: 1800,
                country: 0,
            })
            .random_faults(2.0, (300, 900))
            .build()
            .unwrap();
        let runner = FleetRunner::new(cfg).unwrap();
        let serial = runner.run_serial();
        let parallel = runner.run_parallel(4);
        assert!(serial.bit_identical(&parallel));
        assert_eq!(serial.faults_injected, parallel.faults_injected);
        assert!(serial.faults_injected >= 3);
        assert!(!serial.recoveries_livenet.is_empty());
    }

    #[test]
    fn merged_telemetry_is_bit_identical_across_shard_widths() {
        // The contract exp_observe relies on: at every shard width the
        // merged telemetry snapshot is bit-identical between serial and
        // parallel execution, and consistent with the merged sessions.
        for shards in [1usize, 2, 4, 8] {
            let cfg = FleetConfigBuilder::from_config(tiny_config(21))
                .shards(shards)
                .build()
                .unwrap();
            let runner = FleetRunner::new(cfg).unwrap();
            let serial = runner.run_serial();
            let parallel = runner.run_parallel(shards.max(2));
            assert!(
                serial.telemetry.bit_identical(&parallel.telemetry),
                "telemetry diverged at {shards} shards"
            );
            assert_eq!(
                serial.telemetry.counter("fleet.sessions"),
                serial.livenet.len() as u64,
                "session counter mismatch at {shards} shards"
            );
            assert!(!serial.telemetry.to_json().is_empty());
        }
    }

    #[test]
    fn shard_width_regression_reports_bit_identical() {
        // Regression for the streaming merge rewrite: at widths 1/2/4/8,
        // with and without a replicated Brain, serial and parallel runs
        // must still produce byte-equal FleetReports.
        use crate::control::ReplicationConfig;
        for replicated in [false, true] {
            for shards in [1usize, 2, 4, 8] {
                let mut b = FleetConfigBuilder::from_config(tiny_config(31)).shards(shards);
                if replicated {
                    b = b.replication(ReplicationConfig::default());
                }
                let runner = FleetRunner::new(b.build().unwrap()).unwrap();
                let serial = runner.run_serial();
                let parallel = runner.run_parallel(shards.max(2));
                assert!(
                    serial.bit_identical(&parallel),
                    "report diverged at {shards} shards (replicated: {replicated})"
                );
                assert!(!serial.livenet.is_empty());
            }
        }
    }

    #[test]
    fn opt_in_idle_lease_stretch_amortizes_decrees_and_stays_deterministic() {
        use crate::control::ReplicationConfig;
        let run = |stretch: f64| {
            let cfg = FleetConfigBuilder::from_config(tiny_config(41))
                .shards(2)
                .replication(ReplicationConfig {
                    idle_lease_stretch: stretch,
                    ..ReplicationConfig::default()
                })
                .build()
                .unwrap();
            let runner = FleetRunner::new(cfg).unwrap();
            let serial = runner.run_serial();
            let parallel = runner.run_parallel(2);
            assert!(
                serial.bit_identical(&parallel),
                "stretch {stretch} broke serial/parallel bit-identity"
            );
            serial.replication.clone().expect("replicated run")
        };
        let plain = run(1.0);
        let stretched = run(20.0);
        assert_eq!(stretched.give_ups, 0);
        assert!(
            stretched.lease_renewals * 2 < plain.lease_renewals,
            "stretch did not amortize: {} vs {} renewals",
            stretched.lease_renewals,
            plain.lease_renewals
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn prop_partition_load_skew_is_bounded(
            channels in 8usize..400,
            shards in 1usize..16,
            zipf_s in 0.5f64..1.6,
        ) {
            let mut cfg = FleetConfig::smoke(1);
            cfg.workload.channels = channels;
            cfg.workload.zipf_s = zipf_s;
            cfg.shards = shards;
            let plans = partition_channels(&cfg);
            // Every channel appears exactly once.
            let mut seen = vec![0u32; channels];
            for p in &plans {
                for &c in &p.channels {
                    seen[c] += 1;
                }
            }
            proptest::prop_assert!(seen.iter().all(|&n| n == 1));
            let total_share: f64 = plans.iter().map(|p| p.mass_share).sum();
            proptest::prop_assert!((total_share - 1.0).abs() < 1e-9);
            // Bounded skew even under Zipf-head workloads: no shard may
            // exceed the ideal share by more than the heaviest channel.
            let zipf = ZipfTable::new(channels, zipf_s);
            let total: f64 = (0..channels).map(|k| zipf.pmf(k)).sum();
            let heaviest = zipf.pmf(0) / total;
            let ideal = 1.0 / shards.clamp(1, channels) as f64;
            for p in &plans {
                proptest::prop_assert!(
                    p.mass_share <= ideal + heaviest + 1e-9,
                    "shard {} share {:.4} ideal {:.4} head {:.4}",
                    p.index, p.mass_share, ideal, heaviest
                );
            }
        }
    }

    #[test]
    fn runner_rejects_invalid_configs() {
        let bad = FleetConfigBuilder::smoke(1)
            .tweak(|c| c.node_capacity_sessions = 0.0)
            .build();
        assert!(matches!(
            bad,
            Err(livenet_types::Error::InvalidConfig(_))
        ));
        let mut cfg = FleetConfig::smoke(1);
        cfg.shards = 0;
        assert!(FleetRunner::new(cfg).is_err());
    }
}
