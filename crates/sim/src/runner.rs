//! Sharded fleet execution with a deterministic merge.
//!
//! [`FleetRunner`] partitions a fleet run by channel into independent
//! shards, runs them serially or on a thread pool, and merges the per-shard
//! outputs in a canonical order. Because every shard is a fully independent
//! [`FleetSim`] — its own topology copy, its own Brain, its own RNG
//! sub-stream ([`DetRng::split`]) — and the merge never looks at wall-clock
//! completion order, `run_parallel(n)` is **bit-identical** to
//! `run_serial()` for every seed and every thread count.
//!
//! The partition respects the workload's Zipf skew:
//!
//! * the popular head channels (the prefetch set) are co-sharded as one
//!   group on shard 0, so head viewers share GoP caches and realized paths
//!   the way they do in the monolith;
//! * tail channels are greedily balanced by their Zipf mass `1/(rank+1)^s`;
//! * each shard's arrival rate and session capacities are scaled by its
//!   mass share, so per-shard utilization — and therefore routing,
//!   queueing and the long-chain dynamics — matches the monolith's.
//!
//! Sharded runs are a *new semantics*, not a replay of the legacy
//! [`FleetSim::run`] monolith: the union of the shards' thinned Poisson
//! streams is distributed like the monolith stream but is not the same
//! sample path. The determinism contract is serial-sharded ≡
//! parallel-sharded, checked by [`FleetReport::bit_identical`].
//!
//! [`DetRng::split`]: livenet_types::DetRng::split

use crate::fleet::{FleetConfig, FleetReport, FleetSim, RecoveryRecord, ShardOutput};
use livenet_types::{Result, SimTime, ZipfTable};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// One shard's slice of the fleet: which channels it simulates and the
/// fraction of the total Zipf mass (≈ viewer arrivals) they carry.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// Shard index; doubles as the `DetRng::split` label, so a shard's
    /// random stream does not depend on how many siblings run.
    pub index: usize,
    /// Member channel indices (== Zipf ranks), ascending.
    pub channels: Vec<usize>,
    /// The members' share of the total channel popularity mass, in (0, 1].
    pub mass_share: f64,
}

/// Partition the channel universe into at most `config.shards` plans.
///
/// The popular head (`popular_fraction`) stays together on shard 0; tail
/// channels go to the lightest shard so far (ties to the lowest index).
/// Shards that end up empty are dropped — surviving plans keep their
/// original indices, so the partition (and every shard's RNG stream) is a
/// pure function of the config, never of the thread count.
pub fn partition_channels(config: &FleetConfig) -> Vec<ShardPlan> {
    let channels = config.workload.channels;
    let shards = config.shards.clamp(1, channels.max(1));
    let zipf = ZipfTable::new(channels, config.workload.zipf_s);
    let mass: Vec<f64> = (0..channels).map(|k| zipf.pmf(k)).collect();
    let total: f64 = mass.iter().sum();
    let popular_cut = ((channels as f64 * config.workload.popular_fraction).ceil() as usize)
        .min(channels);

    let mut members: Vec<Vec<usize>> = vec![Vec::new(); shards];
    let mut load = vec![0.0f64; shards];
    // Head group: co-sharded, always on shard 0.
    for (c, &m) in mass.iter().enumerate().take(popular_cut) {
        members[0].push(c);
        load[0] += m;
    }
    // Tail: greedy balance by Zipf mass.
    for (c, &m) in mass.iter().enumerate().skip(popular_cut) {
        let mut best = 0;
        for s in 1..shards {
            if load[s] < load[best] {
                best = s;
            }
        }
        members[best].push(c);
        load[best] += m;
    }
    members
        .into_iter()
        .zip(load)
        .enumerate()
        .filter(|(_, (m, _))| !m.is_empty())
        .map(|(index, (channels, l))| ShardPlan {
            index,
            channels,
            mass_share: l / total,
        })
        .collect()
}

/// Facade for sharded fleet runs: validate once, then run the same
/// partition serially or in parallel with bit-identical results.
#[derive(Debug, Clone)]
pub struct FleetRunner {
    config: FleetConfig,
}

impl FleetRunner {
    /// Wrap a validated configuration.
    ///
    /// Rejects configurations [`FleetConfig::validate`] rejects — the same
    /// checks [`crate::FleetConfigBuilder::build`] runs, repeated here so
    /// hand-built configs cannot bypass them.
    pub fn new(config: FleetConfig) -> Result<FleetRunner> {
        config.validate()?;
        Ok(FleetRunner { config })
    }

    /// The validated configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The shard partition this runner executes.
    pub fn plans(&self) -> Vec<ShardPlan> {
        partition_channels(&self.config)
    }

    /// Run every shard on the calling thread, in index order.
    pub fn run_serial(&self) -> FleetReport {
        let outputs: Vec<ShardOutput> = self
            .plans()
            .iter()
            .map(|p| FleetSim::new_shard(self.config.clone(), p).run_collect())
            .collect();
        merge(outputs, self.config.workload.days as usize)
    }

    /// Run the shards on up to `threads` worker threads.
    ///
    /// Workers pull shard indices from a shared counter and send results
    /// back tagged with their index; the merge consumes them in index
    /// order, so scheduling jitter cannot reach the output bits.
    pub fn run_parallel(&self, threads: usize) -> FleetReport {
        let plans = self.plans();
        let workers = threads.clamp(1, plans.len());
        if workers == 1 {
            return self.run_serial();
        }
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, ShardOutput)>();
        let mut slots: Vec<Option<ShardOutput>> = Vec::new();
        slots.resize_with(plans.len(), || None);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let plans = &plans;
                let config = &self.config;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= plans.len() {
                        break;
                    }
                    let out = FleetSim::new_shard(config.clone(), &plans[i]).run_collect();
                    if tx.send((i, out)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (i, out) in rx {
                slots[i] = Some(out);
            }
        });
        let outputs: Vec<ShardOutput> = slots
            .into_iter()
            .map(|o| o.expect("shard worker exited without a result"))
            .collect();
        merge(outputs, self.config.workload.days as usize)
    }
}

/// Merge per-shard outputs into one fleet report, canonically.
///
/// * Sessions: k-way merge by `(start, shard index, position)` — a total
///   order independent of execution interleaving. The LiveNet/Hier pairing
///   survives because both vectors share the per-shard order.
/// * `hourly_loss`: shard 0's copy. Link loss depends only on the hour,
///   the link IDs and the diurnal factor — never on sessions — and the
///   topology iterates its `BTreeMap`s in key order, so every shard
///   computes the exact same hourly means.
/// * `daily_peak_throughput`: element-wise sum in shard-index order (each
///   shard carries a disjoint slice of concurrent sessions).
/// * `daily_unique_paths`: per-day set union of realized-path hashes.
/// * Recovery records: k-way merge by `(at, shard index, position)`, like
///   sessions.
/// * `faults_injected`: shard 0's count — the fault schedule is derived
///   from the workload seed alone, so every shard injects the identical
///   episodes and summing would multiply-count them.
/// * `telemetry`: snapshot merge in shard-index order — counters sum,
///   gauges keep the max, histograms add bucket counts and fixed-point
///   sums, so the merged bits never depend on completion order.
/// * `replication`: per-shard cluster summaries sum; failover-latency
///   samples concatenate in shard-index order.
/// * Other counters: summed.
fn merge(outputs: Vec<ShardOutput>, days: usize) -> FleetReport {
    let mut merged = FleetReport::default();
    let mut order: Vec<(SimTime, usize, usize)> = Vec::new();
    for (s, out) in outputs.iter().enumerate() {
        for (i, rec) in out.report.livenet.iter().enumerate() {
            order.push((rec.start, s, i));
        }
    }
    order.sort_unstable();
    merged.livenet.reserve(order.len());
    merged.hier.reserve(order.len());
    for &(_, s, i) in &order {
        merged.livenet.push(outputs[s].report.livenet[i]);
        merged.hier.push(outputs[s].report.hier[i]);
    }

    merged.hourly_loss = outputs[0].report.hourly_loss.clone();
    merged.faults_injected = outputs[0].report.faults_injected;
    merged.recoveries_livenet = merge_recoveries(&outputs, |r| &r.recoveries_livenet);
    merged.recoveries_hier = merge_recoveries(&outputs, |r| &r.recoveries_hier);

    merged.daily_peak_throughput = vec![0.0; days];
    let mut day_sets: Vec<HashSet<u64>> = vec![HashSet::new(); days];
    for out in &outputs {
        for (d, v) in out.report.daily_peak_throughput.iter().enumerate() {
            merged.daily_peak_throughput[d] += v;
        }
        for (d, set) in out.day_path_sets.iter().enumerate() {
            day_sets[d].extend(set);
        }
        merged.skipped_offline += out.report.skipped_offline;
        merged.chain_switches += out.report.chain_switches;
        merged.recompute_rounds += out.report.recompute_rounds;
        merged.producers_rehomed += out.report.producers_rehomed;
        merged.telemetry.merge(&out.report.telemetry);
        // Replicated-Brain summaries: each shard runs its own cluster, so
        // counters sum and failover samples concatenate in shard-index
        // order (the loop order), keeping the merged bits deterministic.
        if let Some(r) = &out.report.replication {
            merged
                .replication
                .get_or_insert_with(Default::default)
                .absorb(r);
        }
    }
    merged.daily_unique_paths = day_sets.iter().map(HashSet::len).collect();
    merged
}

/// K-way merge of per-shard recovery records by `(at, shard, position)`.
fn merge_recoveries(
    outputs: &[ShardOutput],
    pick: impl Fn(&FleetReport) -> &Vec<RecoveryRecord>,
) -> Vec<RecoveryRecord> {
    let mut order: Vec<(SimTime, usize, usize)> = Vec::new();
    for (s, out) in outputs.iter().enumerate() {
        for (i, rec) in pick(&out.report).iter().enumerate() {
            order.push((rec.at, s, i));
        }
    }
    order.sort_unstable();
    order
        .iter()
        .map(|&(_, s, i)| pick(&outputs[s].report)[i])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfigBuilder;

    fn tiny_config(seed: u64) -> FleetConfig {
        // Small enough for unit tests: fewer ticks and arrivals than the
        // smoke preset, but still several shards' worth of channels.
        FleetConfigBuilder::smoke(seed)
            .peak_arrivals_per_sec(0.2)
            .shards(4)
            .build()
            .unwrap()
    }

    #[test]
    fn partition_covers_every_channel_exactly_once() {
        let cfg = tiny_config(1);
        let plans = partition_channels(&cfg);
        let mut seen = vec![0u32; cfg.workload.channels];
        for p in &plans {
            for &c in &p.channels {
                seen[c] += 1;
            }
        }
        assert!(seen.iter().all(|&n| n == 1), "{seen:?}");
        let total: f64 = plans.iter().map(|p| p.mass_share).sum();
        assert!((total - 1.0).abs() < 1e-9, "mass shares sum to {total}");
    }

    #[test]
    fn popular_head_is_co_sharded() {
        let cfg = tiny_config(2);
        let plans = partition_channels(&cfg);
        let cut = (cfg.workload.channels as f64 * cfg.workload.popular_fraction).ceil() as usize;
        let head = &plans[0];
        assert_eq!(head.index, 0);
        for c in 0..cut {
            assert!(head.channels.contains(&c), "head channel {c} not on shard 0");
        }
    }

    #[test]
    fn partition_is_deterministic_and_thread_free() {
        let cfg = tiny_config(3);
        assert_eq!(partition_channels(&cfg), partition_channels(&cfg));
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let runner = FleetRunner::new(tiny_config(4)).unwrap();
        let serial = runner.run_serial();
        let parallel = runner.run_parallel(2);
        assert!(serial.bit_identical(&parallel));
        assert!(!serial.livenet.is_empty());
    }

    #[test]
    fn merged_sessions_are_time_ordered_and_paired() {
        let runner = FleetRunner::new(tiny_config(5)).unwrap();
        let r = runner.run_serial();
        assert_eq!(r.livenet.len(), r.hier.len());
        for w in r.livenet.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        for (ln, h) in r.livenet.iter().zip(&r.hier) {
            assert_eq!(ln.start, h.start);
        }
    }

    #[test]
    fn faulted_parallel_is_bit_identical_to_serial() {
        use crate::fleet::FleetFault;
        let cfg = FleetConfigBuilder::from_config(tiny_config(6))
            .fault(FleetFault::RegionOutage {
                at_secs: 8 * 3600,
                down_for_secs: 1800,
                country: 0,
            })
            .random_faults(2.0, (300, 900))
            .build()
            .unwrap();
        let runner = FleetRunner::new(cfg).unwrap();
        let serial = runner.run_serial();
        let parallel = runner.run_parallel(4);
        assert!(serial.bit_identical(&parallel));
        assert_eq!(serial.faults_injected, parallel.faults_injected);
        assert!(serial.faults_injected >= 3);
        assert!(!serial.recoveries_livenet.is_empty());
    }

    #[test]
    fn merged_telemetry_is_bit_identical_across_shard_widths() {
        // The contract exp_observe relies on: at every shard width the
        // merged telemetry snapshot is bit-identical between serial and
        // parallel execution, and consistent with the merged sessions.
        for shards in [1usize, 2, 4, 8] {
            let cfg = FleetConfigBuilder::from_config(tiny_config(21))
                .shards(shards)
                .build()
                .unwrap();
            let runner = FleetRunner::new(cfg).unwrap();
            let serial = runner.run_serial();
            let parallel = runner.run_parallel(shards.max(2));
            assert!(
                serial.telemetry.bit_identical(&parallel.telemetry),
                "telemetry diverged at {shards} shards"
            );
            assert_eq!(
                serial.telemetry.counter("fleet.sessions"),
                serial.livenet.len() as u64,
                "session counter mismatch at {shards} shards"
            );
            assert!(!serial.telemetry.to_json().is_empty());
        }
    }

    #[test]
    fn runner_rejects_invalid_configs() {
        let bad = FleetConfigBuilder::smoke(1)
            .tweak(|c| c.node_capacity_sessions = 0.0)
            .build();
        assert!(matches!(
            bad,
            Err(livenet_types::Error::InvalidConfig(_))
        ));
        let mut cfg = FleetConfig::smoke(1);
        cfg.shards = 0;
        assert!(FleetRunner::new(cfg).is_err());
    }
}
