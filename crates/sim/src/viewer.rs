//! Viewer playback model.
//!
//! Models the client side of the paper's QoE metrics: a playback buffer
//! (300 ms in Taobao Live, §7.1), startup (first frame rendered within
//! 1 s = "fast startup"), and stalls (the playing buffer running empty).

use livenet_types::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Final QoE statistics of one view.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ViewerQoe {
    /// Request → playback start; `None` when playback never started.
    pub startup: Option<SimDuration>,
    /// Number of stalls after startup.
    pub stalls: u32,
    /// Total time spent stalled.
    pub stall_time: SimDuration,
    /// Frames rendered.
    pub frames_rendered: u64,
}

impl ViewerQoe {
    /// The paper's fast-startup predicate.
    pub fn fast_startup(&self) -> bool {
        self.startup
            .is_some_and(|s| s < SimDuration::from_secs(1))
    }
}

/// Playback-buffer state machine driven by frame arrivals and time.
///
/// Media time is measured in RTP video ticks (90 kHz). Playback starts
/// once `initial_buffer` of contiguous media is buffered; it then consumes
/// media in real time, stalling whenever the next frame has not arrived.
#[derive(Debug)]
pub struct PlaybackSim {
    request_at: SimTime,
    ticks_per_frame: u64,
    initial_buffer: SimDuration,
    /// Buffered frame timestamps not yet rendered.
    buffered: BTreeSet<u32>,
    /// Next media timestamp to render (set at startup).
    next_ts: Option<u32>,
    playing: bool,
    started_at: Option<SimTime>,
    last_advance: SimTime,
    stalled_since: Option<SimTime>,
    stalls: u32,
    stall_time: SimDuration,
    frames_rendered: u64,
    /// Media accumulated toward the next frame boundary while playing.
    media_debt: SimDuration,
}

impl PlaybackSim {
    /// New viewer that pressed play at `request_at`.
    pub fn new(request_at: SimTime, fps: u32, initial_buffer: SimDuration) -> Self {
        PlaybackSim {
            request_at,
            ticks_per_frame: 90_000 / u64::from(fps),
            initial_buffer,
            buffered: BTreeSet::new(),
            next_ts: None,
            playing: false,
            started_at: None,
            last_advance: request_at,
            stalled_since: None,
            stalls: 0,
            stall_time: SimDuration::ZERO,
            frames_rendered: 0,
            media_debt: SimDuration::ZERO,
        }
    }

    /// Frame duration in wall time.
    fn frame_interval(&self) -> SimDuration {
        SimDuration::from_nanos(self.ticks_per_frame * 1_000_000_000 / 90_000)
    }

    /// Buffered contiguous media ahead of the playhead.
    fn buffered_ahead(&self) -> SimDuration {
        let Some(start) = self.next_ts.or_else(|| self.buffered.first().copied()) else {
            return SimDuration::ZERO;
        };
        let mut ts = start;
        let mut frames = 0u64;
        while self.buffered.contains(&ts) {
            frames += 1;
            ts = ts.wrapping_add(self.ticks_per_frame as u32);
        }
        self.frame_interval() * frames
    }

    /// A complete video frame arrived (from the depacketizer).
    pub fn on_frame(&mut self, now: SimTime, rtp_timestamp: u32) {
        self.advance(now);
        // Late frames behind the playhead are useless — unless they are a
        // timeline discontinuity (a seamless stream switch, §5.2: the new
        // stream's RTP timeline restarts). A discontinuity resets the
        // playhead without a stall: the consumer only flips the client
        // once a full GoP is ready, so the buffer refills immediately.
        if let Some(next) = self.next_ts {
            let behind = next.wrapping_sub(rtp_timestamp);
            if behind < 0x8000_0000 && behind != 0 {
                let media_secs = behind as f64 / 90_000.0;
                if media_secs > 1.5 {
                    self.buffered.clear();
                    self.next_ts = Some(rtp_timestamp);
                    self.media_debt = SimDuration::ZERO;
                    self.last_advance = now;
                } else {
                    return;
                }
            }
        }
        self.buffered.insert(rtp_timestamp);
        self.maybe_start_or_resume(now);
    }

    fn maybe_start_or_resume(&mut self, now: SimTime) {
        if self.playing {
            return;
        }
        if self.buffered_ahead() >= self.initial_buffer {
            if self.started_at.is_none() {
                self.started_at = Some(now);
                self.next_ts = self.buffered.first().copied();
            }
            if let Some(since) = self.stalled_since.take() {
                self.stall_time += now.saturating_since(since);
            }
            self.playing = true;
            self.last_advance = now;
            self.media_debt = SimDuration::ZERO;
        }
    }

    /// Advance wall time: consume frames, detect stalls.
    pub fn advance(&mut self, now: SimTime) {
        self.advance_inner(now, true);
    }

    fn advance_inner(&mut self, now: SimTime, count_stall: bool) {
        if !self.playing {
            self.last_advance = now;
            return;
        }
        let mut budget = now.saturating_since(self.last_advance) + self.media_debt;
        self.last_advance = now;
        let interval = self.frame_interval();
        while budget >= interval {
            let Some(next) = self.next_ts else { break };
            if self.buffered.remove(&next) {
                self.frames_rendered += 1;
                self.next_ts = Some(next.wrapping_add(self.ticks_per_frame as u32));
                budget -= interval;
            } else {
                // Underrun: stall. The buffer actually ran dry when the
                // remaining wall-time budget could no longer be consumed,
                // which may be well before this call — backdate it.
                self.playing = false;
                if count_stall {
                    self.stalls += 1;
                    self.stalled_since = Some(now - budget);
                }
                self.media_debt = SimDuration::ZERO;
                return;
            }
        }
        self.media_debt = budget;
    }

    /// Allow playback to skip over permanently-missing frames (the
    /// depacketizer gave up on them). If the playhead sits on a hole, it
    /// jumps to the next buffered frame; playback resumes either when the
    /// normal rebuffer target is met or when frames already exist *beyond*
    /// the next hole — the hole is then known to be permanent (later data
    /// overtook it), so a real player skips rather than waits.
    pub fn skip_missing(&mut self, now: SimTime) {
        self.advance(now);
        if self.playing {
            return;
        }
        // Anchor: the playhead, or (before startup) the earliest frame.
        let Some(anchor) = self.next_ts.or_else(|| self.buffered.first().copied()) else {
            return;
        };
        // Jump off a missing frame onto buffered data.
        let anchor = if self.buffered.contains(&anchor) {
            anchor
        } else {
            match self.buffered.range(anchor..).next() {
                Some(&jump) => jump,
                None => return,
            }
        };
        if self.started_at.is_some() {
            self.next_ts = Some(anchor);
        }
        self.maybe_start_or_resume(now);
        if self.playing {
            return;
        }
        // Relaxed start/resume: if data exists beyond the contiguous run
        // ahead, the hole bounding that run is permanent (later data has
        // already overtaken it) — play the run out rather than wait.
        let mut run_end = anchor;
        while self.buffered.contains(&run_end) {
            run_end = run_end.wrapping_add(self.ticks_per_frame as u32);
        }
        if self.buffered.range(run_end..).next().is_some() {
            if self.started_at.is_none() {
                self.started_at = Some(now);
            }
            self.next_ts = Some(anchor);
            if let Some(since) = self.stalled_since.take() {
                self.stall_time += now.saturating_since(since);
            }
            self.playing = true;
            self.last_advance = now;
            self.media_debt = SimDuration::ZERO;
        }
    }

    /// Snapshot the QoE counters at view end.
    ///
    /// The final buffer drain at end-of-stream is NOT a stall: a real view
    /// ends when the broadcast (or the viewer) stops, and an empty buffer
    /// at that point is the natural terminal state.
    pub fn finish(mut self, now: SimTime) -> ViewerQoe {
        self.advance_inner(now, false);
        if let Some(since) = self.stalled_since.take() {
            // A terminal stall only counts as a stall if playback had begun
            // (it already incremented); accumulate its duration.
            self.stall_time += now.saturating_since(since);
        }
        ViewerQoe {
            startup: self
                .started_at
                .map(|s| s.saturating_since(self.request_at)),
            stalls: self.stalls,
            stall_time: self.stall_time,
            frames_rendered: self.frames_rendered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FPS: u32 = 15;
    const TPF: u32 = 6000; // 90k / 15

    fn viewer() -> PlaybackSim {
        PlaybackSim::new(SimTime::ZERO, FPS, SimDuration::from_millis(300))
    }

    fn feed(v: &mut PlaybackSim, now_ms: u64, frame_index: u32) {
        v.on_frame(SimTime::from_millis(now_ms), frame_index * TPF);
    }

    #[test]
    fn playback_starts_after_initial_buffer() {
        let mut v = viewer();
        // 300 ms at 15 fps = 4.5 → needs 5 frames.
        for i in 0..4 {
            feed(&mut v, 100 + u64::from(i) * 10, i);
        }
        let q = |v: &PlaybackSim| v.started_at;
        assert!(q(&v).is_none());
        feed(&mut v, 150, 4);
        assert_eq!(v.started_at, Some(SimTime::from_millis(150)));
        let qoe = v.finish(SimTime::from_secs(1));
        assert_eq!(qoe.startup, Some(SimDuration::from_millis(150)));
        assert!(qoe.fast_startup());
    }

    #[test]
    fn steady_arrivals_mean_no_stalls() {
        let mut v = viewer();
        // Frames arrive exactly at capture pace, 66.6 ms apart.
        for i in 0..60u32 {
            let t = 100 + u64::from(i) * 1000 / 15;
            feed(&mut v, t, i);
        }
        let qoe = v.finish(SimTime::from_secs(6));
        assert_eq!(qoe.stalls, 0);
        assert!(qoe.frames_rendered > 50, "{}", qoe.frames_rendered);
    }

    #[test]
    fn delivery_gap_causes_one_stall_then_recovers() {
        let mut v = viewer();
        for i in 0..10u32 {
            feed(&mut v, 100 + u64::from(i) * 66, i);
        }
        // Gap: frames 10..20 arrive 2 s late, all at once.
        for i in 10..30u32 {
            feed(&mut v, 3500, i);
        }
        let qoe = v.finish(SimTime::from_secs(6));
        assert_eq!(qoe.stalls, 1);
        assert!(qoe.stall_time > SimDuration::from_secs(1));
        assert!(qoe.frames_rendered >= 29);
    }

    #[test]
    fn never_enough_buffer_means_no_startup() {
        let mut v = viewer();
        feed(&mut v, 100, 0);
        feed(&mut v, 200, 1);
        let qoe = v.finish(SimTime::from_secs(5));
        assert_eq!(qoe.startup, None);
        assert!(!qoe.fast_startup());
        assert_eq!(qoe.stalls, 0, "pre-start buffering is not a stall");
    }

    #[test]
    fn skip_missing_jumps_over_permanent_hole() {
        let mut v = viewer();
        for i in 0..6u32 {
            feed(&mut v, 100, i);
        }
        // Frame 6 never arrives; 7.. do.
        for i in 7..20u32 {
            feed(&mut v, 120, i);
        }
        // Play through the buffered prefix.
        v.advance(SimTime::from_millis(600));
        let before = v.stalls;
        assert!(before >= 1, "should stall at the hole");
        v.skip_missing(SimTime::from_millis(650));
        let qoe = v.finish(SimTime::from_secs(3));
        assert!(qoe.frames_rendered >= 18, "{}", qoe.frames_rendered);
    }

    #[test]
    fn late_frames_behind_playhead_are_dropped() {
        let mut v = viewer();
        for i in 0..10u32 {
            feed(&mut v, 100, i);
        }
        v.advance(SimTime::from_millis(500)); // rendered ~6 frames
        let rendered_before = v.frames_rendered;
        feed(&mut v, 510, 0); // stale duplicate of frame 0
        v.advance(SimTime::from_millis(520));
        assert!(v.frames_rendered >= rendered_before);
        let qoe = v.finish(SimTime::from_secs(2));
        // Frame 0 must not have been rendered twice: 10 frames max.
        assert!(qoe.frames_rendered <= 10);
    }
}
