//! Simulation harnesses reproducing the paper's evaluation (§6).
//!
//! Two fidelity levels (DESIGN.md §4):
//!
//! * [`packetsim`] — full packet-level emulation: real [`OverlayNode`]
//!   state machines over the discrete-event network emulator, with viewer
//!   playback-buffer models. Used for the transmission-architecture
//!   experiments (fast/slow-path recovery, pacing, frame dropping) and to
//!   calibrate the per-hop constants in [`calibrate`].
//! * [`fleet`] — session-granularity simulation of 20 days of Taobao-Live-
//!   like workload over the *real* control plane (Streaming Brain, PIB/SIB,
//!   FIB subscription state with cache-hit backtracking and the long-chain
//!   effect), composing per-session delay/startup/stall metrics from link
//!   state plus the packet-level-calibrated constants. Runs LiveNet and
//!   the Hier baseline side by side on identical sessions, mirroring the
//!   paper's parallel-deployment methodology (§6.1).
//!
//! Fleet runs scale out through [`runner`]: [`FleetRunner`] partitions the
//! channel universe into independent shards (DESIGN.md §7) and executes
//! them serially or on a thread pool with bit-identical results.
//!
//! [`OverlayNode`]: livenet_node::OverlayNode

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod autorec;
pub mod calibrate;
pub mod control;
pub mod fleet;
pub mod metrics;
pub mod packetsim;
pub mod recovery;
pub mod runner;
pub mod viewer;
pub mod workload;

pub use adapter::{EmuHost, HostEvent};
pub use autorec::{run_autorec, AutorecOutcome, AutorecRecord, AutorecScenario};
pub use calibrate::LatencyConstants;
pub use control::{ControlPlane, ReplicationConfig, ReplicationSummary};
pub use fleet::{
    FaultPlanConfig, FleetConfig, FleetConfigBuilder, FleetFault, FleetReport, FleetSim,
    RecoveryRecord, System,
};
#[allow(deprecated)]
pub use metrics::HourlySeries;
pub use metrics::{record_session, DecisionOutcome, SessionRecord, SessionSummary};
pub use runner::{partition_channels, FleetRunner, ShardPlan};
pub use packetsim::{PacketSim, PacketSimConfig, PacketSimReport};
pub use recovery::{run_recovery, RecoveryMode, RecoveryOutcome, RecoveryScenario};
pub use viewer::{PlaybackSim, ViewerQoe};
pub use workload::{diurnal_factor, Channel, WorkloadConfig};
