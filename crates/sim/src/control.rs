//! The fleet's control plane: a single in-process Brain or a
//! Paxos-replicated [`BrainCluster`].
//!
//! [`ControlPlane`] is the one surface [`crate::FleetSim`] talks to.  In
//! `Single` mode it delegates straight to a [`StreamingBrain`], preserving
//! the pre-replication behavior (and RNG draw sequence) bit-for-bit.  In
//! `Replicated` mode every PIB/SIB mutation is serialized as a
//! [`BrainOp`] through the Paxos log and every non-prefetched path request
//! is a leader read under the lease — so the fleet exercises the paper's
//! §7.1 deployment: geo-replicated Brains, leader failover, and client
//! retry/redirect when the leader dies mid-surge.
//!
//! Each shard owns an independent cluster seeded from the workload seed
//! and the shard index alone, so serial and parallel executions of the
//! same partition remain bit-identical.

use livenet_brain::{BrainConfig, PathAssignment, StreamingBrain};
use livenet_replication::{BrainCluster, BrainOp, ClusterConfig};
use livenet_telemetry::MetricSink;
use livenet_topology::{NodeReport, Topology};
use livenet_types::{Error, NodeId, Result, SimDuration, SimTime, StreamId};

/// Replicated-Brain deployment knobs, the sim-facing mirror of
/// [`ClusterConfig`] (durations in milliseconds for config ergonomics).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationConfig {
    /// Brain replicas (geo-replicated data centers).
    pub replicas: u32,
    /// One-way inter-replica delay, ms.
    pub one_way_delay_ms: f64,
    /// Multiplicative message-delay jitter (±fraction).
    pub delay_jitter: f64,
    /// Inter-replica message loss probability.
    pub msg_loss: f64,
    /// Leader lease duration, ms.
    pub lease_ms: u64,
    /// Renewal margin before lease expiry, ms.
    pub renew_margin_ms: u64,
    /// Per-rank election backoff after lease expiry, ms.
    pub takeover_backoff_ms: u64,
    /// Client retry timeout, ms.
    pub client_timeout_ms: u64,
    /// Client attempts before giving up.
    pub max_attempts: u32,
    /// Idle lease stretch cap (`>= 1.0`; the default `1.0` disables
    /// stretching).
    ///
    /// When no state decree has been chosen for a while, the leader
    /// grants itself a lease of up to `lease_ms × idle_lease_stretch`,
    /// amortizing the ~43k renewal decrees an otherwise-idle shard burns
    /// per simulated day (with the fleet's one-minute report cadence,
    /// `20.0` collapses renewals to roughly one per report). The lease
    /// IS the failure detector, so this is a real trade-off, which is
    /// why it is opt-in: a leader crash must wait out the stretched
    /// lease before failover, and the §7.1 15 s failover gate
    /// (`exp_brainha`) plus the default client retry budget
    /// (`client_timeout_ms × max_attempts` = 10 s) assume the
    /// unstretched 3 s lease. Turn it up only for throughput-oriented
    /// runs that don't gate on failover latency — and scale
    /// `max_attempts` with it so post-crash clients outlive the lease.
    pub idle_lease_stretch: f64,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            replicas: 3,
            one_way_delay_ms: 15.0,
            delay_jitter: 0.1,
            msg_loss: 0.01,
            lease_ms: 3000,
            renew_margin_ms: 1000,
            takeover_backoff_ms: 150,
            client_timeout_ms: 250,
            max_attempts: 40,
            idle_lease_stretch: 1.0,
        }
    }
}

impl ReplicationConfig {
    /// Basic sanity checks, surfaced through [`crate::FleetConfig::validate`].
    pub fn validate(&self) -> Result<()> {
        if self.replicas == 0 {
            return Err(Error::invalid_config("replication.replicas must be > 0"));
        }
        if !(0.0..1.0).contains(&self.msg_loss) {
            return Err(Error::invalid_config(
                "replication.msg_loss must be in [0, 1)",
            ));
        }
        if !(0.0..1.0).contains(&self.delay_jitter) {
            return Err(Error::invalid_config(
                "replication.delay_jitter must be in [0, 1)",
            ));
        }
        if self.lease_ms == 0 || self.client_timeout_ms == 0 {
            return Err(Error::invalid_config(
                "replication lease/client timeouts must be > 0",
            ));
        }
        if self.renew_margin_ms >= self.lease_ms {
            return Err(Error::invalid_config(
                "replication.renew_margin_ms must be < lease_ms",
            ));
        }
        if !self.idle_lease_stretch.is_finite() || self.idle_lease_stretch < 1.0 {
            return Err(Error::invalid_config(
                "replication.idle_lease_stretch must be >= 1.0",
            ));
        }
        Ok(())
    }

    fn to_cluster(&self, seed: u64) -> ClusterConfig {
        ClusterConfig {
            replicas: self.replicas,
            one_way_delay: SimDuration::from_millis_f64(self.one_way_delay_ms),
            delay_jitter: self.delay_jitter,
            msg_loss: self.msg_loss,
            lease: SimDuration::from_millis(self.lease_ms),
            renew_margin: SimDuration::from_millis(self.renew_margin_ms),
            takeover_backoff: SimDuration::from_millis(self.takeover_backoff_ms),
            client_timeout: SimDuration::from_millis(self.client_timeout_ms),
            max_attempts: self.max_attempts,
            idle_stretch_max: self.idle_lease_stretch,
            seed,
        }
    }
}

/// Replicated-control-plane outcomes of one fleet run, merged across
/// shards and compared bit-exactly by [`crate::FleetReport::bit_identical`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplicationSummary {
    /// Replicas per shard cluster.
    pub replicas: u32,
    /// State (non-lease) decrees chosen.
    pub ops_committed: u64,
    /// Lease decrees that moved leadership (incl. initial elections).
    pub lease_grants: u64,
    /// Lease decrees renewing incumbents.
    pub lease_renewals: u64,
    /// Leader crashes injected.
    pub leader_crashes: u64,
    /// Crashed replicas restarted.
    pub restarts: u64,
    /// Client retries (leader waits, ballot timeouts).
    pub client_retries: u64,
    /// Client leader redirects.
    pub redirects: u64,
    /// Client operations abandoned.
    pub give_ups: u64,
    /// Inter-replica messages sent.
    pub msgs_sent: u64,
    /// Inter-replica messages dropped.
    pub msgs_dropped: u64,
    /// Canonical chosen-log length (summed across shard clusters).
    pub decided_slots: u64,
    /// Slots where a replica's decided value diverged from the canon —
    /// any nonzero value is a safety violation.
    pub log_divergences: u64,
    /// Post-run sampled `PathAssignment` mismatches across replicas.
    pub assignment_mismatches: u64,
    /// Failover latencies (ms), shard-index order then crash order.
    pub failover_ms: Vec<f64>,
}

impl ReplicationSummary {
    /// Bit-exact equality (floats compared through their bit patterns).
    pub fn bit_identical(&self, other: &ReplicationSummary) -> bool {
        self.replicas == other.replicas
            && self.ops_committed == other.ops_committed
            && self.lease_grants == other.lease_grants
            && self.lease_renewals == other.lease_renewals
            && self.leader_crashes == other.leader_crashes
            && self.restarts == other.restarts
            && self.client_retries == other.client_retries
            && self.redirects == other.redirects
            && self.give_ups == other.give_ups
            && self.msgs_sent == other.msgs_sent
            && self.msgs_dropped == other.msgs_dropped
            && self.decided_slots == other.decided_slots
            && self.log_divergences == other.log_divergences
            && self.assignment_mismatches == other.assignment_mismatches
            && self.failover_ms.len() == other.failover_ms.len()
            && self
                .failover_ms
                .iter()
                .map(|f| f.to_bits())
                .eq(other.failover_ms.iter().map(|f| f.to_bits()))
    }

    /// Accumulate another shard's summary (shard-index order).
    pub fn absorb(&mut self, other: &ReplicationSummary) {
        self.replicas = self.replicas.max(other.replicas);
        self.ops_committed += other.ops_committed;
        self.lease_grants += other.lease_grants;
        self.lease_renewals += other.lease_renewals;
        self.leader_crashes += other.leader_crashes;
        self.restarts += other.restarts;
        self.client_retries += other.client_retries;
        self.redirects += other.redirects;
        self.give_ups += other.give_ups;
        self.msgs_sent += other.msgs_sent;
        self.msgs_dropped += other.msgs_dropped;
        self.decided_slots += other.decided_slots;
        self.log_divergences += other.log_divergences;
        self.assignment_mismatches += other.assignment_mismatches;
        self.failover_ms.extend_from_slice(&other.failover_ms);
    }
}

/// The control plane the fleet drives: one Brain, or N behind Paxos.
#[derive(Debug)]
pub enum ControlPlane {
    /// The pre-replication single in-process Brain.
    Single(Box<StreamingBrain>),
    /// A Paxos-replicated Brain cluster (paper §7.1).
    Replicated(Box<BrainCluster>),
}

impl ControlPlane {
    /// Build from the fleet config: replicated when `replication` is set.
    ///
    /// `seed` must be a pure function of the workload seed and shard
    /// index, so serial and parallel executions agree.
    pub fn new(
        topology: &Topology,
        brain_cfg: &BrainConfig,
        replication: Option<&ReplicationConfig>,
        seed: u64,
    ) -> ControlPlane {
        match replication {
            None => ControlPlane::Single(Box::new(StreamingBrain::new(topology.clone(), brain_cfg.clone()))),
            Some(r) => ControlPlane::Replicated(Box::new(BrainCluster::new(
                topology,
                brain_cfg,
                r.to_cluster(seed),
            ))),
        }
    }

    /// Stream Management: a producer registered a new upload.
    pub fn register_stream(&mut self, stream: StreamId, producer: NodeId, now: SimTime) {
        match self {
            ControlPlane::Single(b) => b.register_stream(stream, producer),
            ControlPlane::Replicated(c) => {
                let _ = c.replicate(&BrainOp::RegisterStream { stream, producer }, now);
            }
        }
    }

    /// Mark a stream popular (prefetch set member).
    pub fn mark_popular(&mut self, stream: StreamId, now: SimTime) {
        match self {
            ControlPlane::Single(b) => b.mark_popular(stream),
            ControlPlane::Replicated(c) => {
                let _ = c.replicate(&BrainOp::MarkPopular { stream }, now);
            }
        }
    }

    /// Stream Management: a stream ended.
    pub fn unregister_stream(&mut self, stream: StreamId, now: SimTime) {
        match self {
            ControlPlane::Single(b) => b.unregister_stream(stream),
            ControlPlane::Replicated(c) => {
                let _ = c.replicate(&BrainOp::UnregisterStream { stream }, now);
            }
        }
    }

    /// Serve a path request.  Returns the assignment plus, in replicated
    /// mode, the measured control-plane latency in ms (`None` in single
    /// mode, where the fleet applies its legacy RTT model; prefetched
    /// requests are free in both modes).
    pub fn path_request(
        &mut self,
        stream: StreamId,
        consumer: NodeId,
        now: SimTime,
        prefetched: bool,
    ) -> Result<(PathAssignment, Option<f64>)> {
        match self {
            ControlPlane::Single(b) => b.path_request(stream, consumer, now).map(|a| (a, None)),
            ControlPlane::Replicated(c) => c
                .path_request(stream, consumer, now, prefetched)
                .map(|(a, ms)| (a, Some(ms))),
        }
    }

    /// Broadcaster mobility: re-home a stream to a new producer.
    pub fn rehome_producer(
        &mut self,
        stream: StreamId,
        new_producer: NodeId,
        now: SimTime,
    ) -> Result<PathAssignment> {
        match self {
            ControlPlane::Single(b) => b.rehome_producer(stream, new_producer, now),
            ControlPlane::Replicated(c) => {
                let op = BrainOp::RehomeProducer {
                    stream,
                    new_producer,
                    now,
                };
                let (_, assignment) = c.replicate(&op, now)?;
                assignment
                    .ok_or_else(|| Error::not_found(format!("no bridge path for {stream}")))
            }
        }
    }

    /// A node was observed dead.
    pub fn node_failed(&mut self, node: NodeId, now: SimTime) {
        match self {
            ControlPlane::Single(b) => b.node_failed(node),
            ControlPlane::Replicated(c) => {
                let _ = c.replicate(&BrainOp::NodeFailed { node }, now);
            }
        }
    }

    /// A failed node came back.
    pub fn node_recovered(&mut self, node: NodeId, now: SimTime) {
        match self {
            ControlPlane::Single(b) => b.node_recovered(node),
            ControlPlane::Replicated(c) => {
                let _ = c.replicate(&BrainOp::NodeRecovered { node }, now);
            }
        }
    }

    /// Streams currently produced on `node`.
    pub fn streams_on(&mut self, node: NodeId) -> Vec<StreamId> {
        match self {
            ControlPlane::Single(b) => b.streams_on(node),
            ControlPlane::Replicated(c) => c.streams_on(node),
        }
    }

    /// Minute tick: absorb node reports and run the periodic recompute
    /// check.  In replicated mode the whole batch is ONE decree — reports
    /// are frequent, so batching keeps the log tractable (ROADMAP item 3's
    /// "batched mutations" note).
    pub fn minute_report(&mut self, reports: &[NodeReport], now: SimTime) {
        match self {
            ControlPlane::Single(b) => {
                for r in reports {
                    b.absorb_report(r);
                }
                b.maybe_recompute(now);
            }
            ControlPlane::Replicated(c) => {
                let op = BrainOp::Reports {
                    now,
                    reports: reports.to_vec(),
                };
                let _ = c.replicate(&op, now);
            }
        }
    }

    /// Crash the Paxos leader (no-op for a single Brain — there is no
    /// replica to lose; the fault still counts as injected).
    pub fn crash_leader(&mut self, now: SimTime) {
        if let ControlPlane::Replicated(c) = self {
            c.crash_leader(now);
        }
    }

    /// Restart the crashed leader replica (no-op for a single Brain).
    pub fn restart_crashed(&mut self, now: SimTime) {
        if let ControlPlane::Replicated(c) = self {
            c.restart_crashed(now);
        }
    }

    /// Completed PIB recompute rounds.
    pub fn recompute_rounds(&self) -> u64 {
        match self {
            ControlPlane::Single(b) => b.recompute_rounds,
            ControlPlane::Replicated(c) => c.recompute_rounds(),
        }
    }

    /// Settle the cluster, audit replica consistency and summarize.
    /// `None` in single mode.
    pub fn finalize(&mut self, horizon: SimTime) -> Option<ReplicationSummary> {
        match self {
            ControlPlane::Single(_) => None,
            ControlPlane::Replicated(c) => {
                let audit = c.finalize(horizon);
                let s = c.stats();
                Some(ReplicationSummary {
                    replicas: c.replicas(),
                    ops_committed: s.state_ops_committed,
                    lease_grants: s.lease_grants,
                    lease_renewals: s.lease_renewals,
                    leader_crashes: s.leader_crashes,
                    restarts: s.restarts,
                    client_retries: s.client_retries,
                    redirects: s.client_redirects,
                    give_ups: s.client_give_ups,
                    msgs_sent: s.msgs_sent,
                    msgs_dropped: s.msgs_dropped,
                    decided_slots: audit.decided_slots,
                    log_divergences: audit.log_divergences,
                    assignment_mismatches: audit.assignment_mismatches,
                    failover_ms: c.failover_ms().to_vec(),
                })
            }
        }
    }

    /// Export control-plane lifetime counters into a metric sink.
    pub fn record_telemetry(&self, sink: &mut impl MetricSink) {
        match self {
            ControlPlane::Single(b) => b.record_telemetry(sink),
            ControlPlane::Replicated(c) => c.record_telemetry(sink),
        }
    }
}
