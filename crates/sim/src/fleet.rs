//! Fleet-level (session-granularity) simulation of LiveNet and Hier.
//!
//! Runs the paper's 20-day evaluation: both systems process the *same*
//! viewing sessions over the same topology ground truth (mirroring §6.1's
//! parallel deployment on a shared node pool). The control planes are the
//! real ones — [`StreamingBrain`] with its PIB/SIB and overload handling
//! for LiveNet, the VDN-like [`HierController`] for Hier — and the data
//! plane is tracked at subscription granularity: per-(node, stream)
//! presence with reverse-path establishment, cache-hit backtracking and
//! the resulting long-chain effect, exactly as `livenet-node` implements
//! packet-by-packet.
//!
//! Per-session delay/startup/stall metrics are composed from link state
//! plus the packet-level-calibrated constants in [`crate::calibrate`]
//! (DESIGN.md §4 explains the two-fidelity approach).
//!
//! [`StreamingBrain`]: livenet_brain::StreamingBrain

use crate::calibrate::LatencyConstants;
use crate::control::{ControlPlane, ReplicationConfig, ReplicationSummary};
use crate::metrics::{record_session, DecisionOutcome, SessionRecord};
use crate::workload::{SessionSpec, Workload, WorkloadConfig};
use livenet_telemetry::{ids, MetricSink, Snapshot, TelemetryHub};
use livenet_emu::EventQueue;
use livenet_hier::{HierController, HierDelayModel, HierDelayParams, HierRoles};
use livenet_topology::{GeoConfig, GeoTopology, NodeReport, Topology};
use livenet_types::{DetRng, NodeId, SimDuration, SimTime, StreamId};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Which system a record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum System {
    /// The flat, centrally-controlled design.
    LiveNet,
    /// The hierarchical baseline.
    Hier,
}

/// A scripted fleet-level fault (§6.5 failure handling).
///
/// Node identity is expressed structurally — an index into the sorted
/// routable-node list or a country index — so plans are portable across
/// seeds (generated [`NodeId`]s differ per topology).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetFault {
    /// One node goes dark.
    NodeOutage {
        /// Outage start, seconds into the run.
        at_secs: u64,
        /// Outage duration in seconds.
        down_for_secs: u64,
        /// Index into the sorted routable-node list (wraps modulo its
        /// length).
        node_index: usize,
    },
    /// Every node in one country goes dark (the Double-12 region outage).
    RegionOutage {
        /// Outage start, seconds into the run.
        at_secs: u64,
        /// Outage duration in seconds.
        down_for_secs: u64,
        /// Country index.
        country: u32,
    },
    /// The replicated Brain's Paxos leader crashes (§7.1 failover drill).
    /// Requires [`FleetConfig::replication`] to be enabled — a single
    /// in-process Brain has no replica to lose.
    BrainLeaderCrash {
        /// Crash time, seconds into the run.
        at_secs: u64,
        /// Downtime before the replica restarts, in seconds.
        down_for_secs: u64,
    },
}

/// Fault schedule for a fleet run: scripted faults plus a seeded random
/// outage process. The schedule is derived from the workload seed alone
/// (`DetRng` fork `"faults"`), so every shard of a partitioned run agrees
/// on it bit-for-bit.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlanConfig {
    /// Scripted faults.
    pub scripted: Vec<FleetFault>,
    /// Expected random single-node outages per simulated day (0 = none).
    pub random_outages_per_day: f64,
    /// Duration range (seconds, inclusive-exclusive) of random outages.
    pub random_outage_secs: (u64, u64),
}

/// Fleet simulation parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Topology generator settings.
    pub geo: GeoConfig,
    /// Workload settings.
    pub workload: WorkloadConfig,
    /// Calibrated latency constants.
    pub latency: LatencyConstants,
    /// Hier delay-model parameters.
    pub hier: HierDelayParams,
    /// Sessions a node can forward before its load metric reads 1.0.
    pub node_capacity_sessions: f64,
    /// Stream-sessions a link carries before its utilization reads 1.0.
    pub link_capacity_sessions: f64,
    /// Extra capacity provisioned on festival days (§6.5 up-scaling).
    pub festival_upscale: f64,
    /// Realized-path hop count that triggers a quality-driven path switch
    /// (the long-chain mitigation of §4.4).
    pub long_chain_switch_hops: usize,
    /// Fraction of views on a degraded last mile (drives the stall mix).
    pub bad_last_mile_fraction: f64,
    /// Streaming Brain configuration (routing K, hop limit, weight params).
    pub brain: livenet_brain::BrainConfig,
    /// Replicated-Brain deployment: `Some` routes every control-plane
    /// mutation through a Paxos-backed [`crate::ControlPlane`] cluster
    /// (paper §7.1); `None` keeps the single in-process Brain.
    pub replication: Option<ReplicationConfig>,
    /// Shards the workload is partitioned into for [`crate::FleetRunner`]
    /// runs (1 = unsharded). The shard *count* fixes the partition — and
    /// therefore the result bits — independently of how many worker
    /// threads execute it.
    pub shards: usize,
    /// Fault schedule (default: fault-free).
    pub faults: FaultPlanConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            geo: GeoConfig::paper_scale(1),
            workload: WorkloadConfig::default(),
            latency: LatencyConstants::default(),
            hier: HierDelayParams::default(),
            node_capacity_sessions: 20.0,
            link_capacity_sessions: 120.0,
            festival_upscale: 1.5,
            long_chain_switch_hops: 5,
            bad_last_mile_fraction: 0.05,
            brain: livenet_brain::BrainConfig::default(),
            replication: None,
            shards: 1,
            faults: FaultPlanConfig::default(),
        }
    }
}

impl FleetConfig {
    /// Small/fast configuration for tests.
    pub fn smoke(seed: u64) -> Self {
        FleetConfig {
            geo: GeoConfig {
                nodes: 18,
                countries: 5,
                seed,
                ..GeoConfig::paper_scale(seed)
            },
            workload: WorkloadConfig {
                days: 1,
                peak_arrivals_per_sec: 0.5,
                ..WorkloadConfig::smoke(seed)
            },
            ..Default::default()
        }
    }

    /// Start building a validated configuration.
    pub fn builder() -> FleetConfigBuilder {
        FleetConfigBuilder {
            config: FleetConfig::default(),
        }
    }

    /// Check the configuration for values that would make a run meaningless
    /// or panic mid-simulation (zero capacities, empty topology, ...).
    pub fn validate(&self) -> livenet_types::Result<()> {
        use livenet_types::Error;
        if self.geo.nodes == 0 {
            return Err(Error::invalid_config("geo.nodes must be > 0"));
        }
        if self.geo.countries == 0 {
            return Err(Error::invalid_config("geo.countries must be > 0"));
        }
        if self.geo.nodes < self.geo.countries {
            return Err(Error::invalid_config(format!(
                "geo.nodes ({}) must cover every country ({})",
                self.geo.nodes, self.geo.countries
            )));
        }
        if self.workload.channels == 0 {
            return Err(Error::invalid_config("workload.channels must be > 0"));
        }
        if self.workload.days == 0 {
            return Err(Error::invalid_config("workload.days must be > 0"));
        }
        if self.workload.peak_arrivals_per_sec <= 0.0 {
            return Err(Error::invalid_config(
                "workload.peak_arrivals_per_sec must be > 0",
            ));
        }
        if self.workload.zipf_s <= 0.0 {
            return Err(Error::invalid_config("workload.zipf_s must be > 0"));
        }
        if self.node_capacity_sessions <= 0.0 {
            return Err(Error::invalid_config("node_capacity_sessions must be > 0"));
        }
        if self.link_capacity_sessions <= 0.0 {
            return Err(Error::invalid_config("link_capacity_sessions must be > 0"));
        }
        if self.long_chain_switch_hops == 0 {
            return Err(Error::invalid_config("long_chain_switch_hops must be > 0"));
        }
        if !(0.0..=1.0).contains(&self.bad_last_mile_fraction) {
            return Err(Error::invalid_config(
                "bad_last_mile_fraction must be in [0, 1]",
            ));
        }
        if self.brain.routing.k == 0 {
            return Err(Error::invalid_config("brain.routing.k must be > 0"));
        }
        if self.brain.routing.max_hops == 0 {
            return Err(Error::invalid_config("brain.routing.max_hops must be > 0"));
        }
        if self.shards == 0 {
            return Err(Error::invalid_config("shards must be > 0"));
        }
        if self.shards > self.workload.channels {
            return Err(Error::invalid_config(format!(
                "shards ({}) cannot exceed channels ({})",
                self.shards, self.workload.channels
            )));
        }
        if !self.faults.random_outages_per_day.is_finite()
            || self.faults.random_outages_per_day < 0.0
        {
            return Err(Error::invalid_config(
                "faults.random_outages_per_day must be finite and >= 0",
            ));
        }
        if self.faults.random_outages_per_day > 0.0
            && self.faults.random_outage_secs.0 >= self.faults.random_outage_secs.1
        {
            return Err(Error::invalid_config(
                "faults.random_outage_secs must be a non-empty (lo, hi) range",
            ));
        }
        if let Some(r) = &self.replication {
            r.validate()?;
        }
        for f in &self.faults.scripted {
            match f {
                FleetFault::RegionOutage { country, .. } => {
                    if *country >= self.geo.countries {
                        return Err(Error::invalid_config(format!(
                            "scripted region outage names country {country}, but only {} exist",
                            self.geo.countries
                        )));
                    }
                }
                FleetFault::BrainLeaderCrash { .. } => {
                    if self.replication.is_none() {
                        return Err(Error::invalid_config(
                            "BrainLeaderCrash requires replication to be enabled",
                        ));
                    }
                }
                FleetFault::NodeOutage { .. } => {}
            }
        }
        Ok(())
    }
}

/// Validated builder for [`FleetConfig`].
///
/// Start from a named preset ([`smoke`](Self::smoke) /
/// [`paper_scale`](Self::paper_scale)) or [`FleetConfig::builder`]
/// (paper-scale defaults), adjust the common knobs with setters (anything
/// else through [`tweak`](Self::tweak)), and finish with
/// [`build`](Self::build), which rejects invalid configurations with
/// [`livenet_types::Error::InvalidConfig`] instead of letting a run panic
/// halfway through a 20-day simulation.
#[derive(Debug, Clone)]
pub struct FleetConfigBuilder {
    config: FleetConfig,
}

impl FleetConfigBuilder {
    /// The small/fast test preset, pre-sharded for parallel runs.
    pub fn smoke(seed: u64) -> FleetConfigBuilder {
        FleetConfigBuilder {
            config: FleetConfig {
                shards: 8,
                ..FleetConfig::smoke(seed)
            },
        }
    }

    /// Continue building (and re-validate) from an existing configuration.
    pub fn from_config(config: FleetConfig) -> FleetConfigBuilder {
        FleetConfigBuilder { config }
    }

    /// The paper-scale evaluation preset (60 nodes, 200 channels, 20
    /// days), pre-sharded for parallel runs.
    pub fn paper_scale(seed: u64) -> FleetConfigBuilder {
        FleetConfigBuilder {
            config: FleetConfig {
                geo: GeoConfig::paper_scale(seed),
                workload: WorkloadConfig {
                    seed,
                    ..WorkloadConfig::default()
                },
                shards: 8,
                ..FleetConfig::default()
            },
        }
    }

    /// The ≥1M-session stress preset: paper-scale geography, a doubled
    /// channel universe, 12 arrivals/s at peak, and a two-day window with
    /// a Double-12-style surge (2× demand) on day 1. Capacities are
    /// scaled with the arrival rate so utilization — and therefore
    /// routing and queueing behavior — stays in the paper-scale regime.
    pub fn mega_scale(seed: u64) -> FleetConfigBuilder {
        FleetConfigBuilder {
            config: FleetConfig {
                geo: GeoConfig::paper_scale(seed),
                workload: WorkloadConfig {
                    seed,
                    channels: 400,
                    peak_arrivals_per_sec: 12.0,
                    days: 2,
                    festival_days: vec![1],
                    festival_factor: 2.0,
                    ..WorkloadConfig::default()
                },
                // 12/s vs the paper preset's 1.6/s → 7.5× the capacity.
                node_capacity_sessions: 150.0,
                link_capacity_sessions: 900.0,
                shards: 8,
                ..FleetConfig::default()
            },
        }
    }

    /// Set both RNG seeds (topology and workload).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.geo.seed = seed;
        self.config.workload.seed = seed;
        self
    }

    /// Simulated days.
    pub fn days(mut self, days: u32) -> Self {
        self.config.workload.days = days;
        self
    }

    /// Broadcaster channel count.
    pub fn channels(mut self, channels: usize) -> Self {
        self.config.workload.channels = channels;
        self
    }

    /// Fleet-wide peak viewer arrival rate (per second).
    pub fn peak_arrivals_per_sec(mut self, rate: f64) -> Self {
        self.config.workload.peak_arrivals_per_sec = rate;
        self
    }

    /// Festival schedule: boosted-demand days and the demand multiplier.
    pub fn festival(mut self, days: Vec<u32>, factor: f64) -> Self {
        self.config.workload.festival_days = days;
        self.config.workload.festival_factor = factor;
        self
    }

    /// CDN node count.
    pub fn nodes(mut self, nodes: u32) -> Self {
        self.config.geo.nodes = nodes;
        self
    }

    /// Country count.
    pub fn countries(mut self, countries: u32) -> Self {
        self.config.geo.countries = countries;
        self
    }

    /// Shard count for partitioned [`crate::FleetRunner`] runs.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Deploy the Brain as a Paxos-replicated cluster (paper §7.1).
    pub fn replication(mut self, replication: ReplicationConfig) -> Self {
        self.config.replication = Some(replication);
        self
    }

    /// Script a fleet-level fault.
    pub fn fault(mut self, fault: FleetFault) -> Self {
        self.config.faults.scripted.push(fault);
        self
    }

    /// Seeded random node outages: expected count per day and the outage
    /// duration range in seconds.
    pub fn random_faults(mut self, per_day: f64, secs: (u64, u64)) -> Self {
        self.config.faults.random_outages_per_day = per_day;
        self.config.faults.random_outage_secs = secs;
        self
    }

    /// Escape hatch for fields without a dedicated setter.
    pub fn tweak(mut self, f: impl FnOnce(&mut FleetConfig)) -> Self {
        f(&mut self.config);
        self
    }

    /// Validate and return the configuration.
    pub fn build(self) -> livenet_types::Result<FleetConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Per-(node, stream) LiveNet forwarding state.
///
/// All nodes on one establishment chain share a single path allocation:
/// each presence stores the chain's `Arc` buffer plus its own prefix
/// length. Cloning a presence's realized path is a refcount bump, not a
/// `Vec` copy — the per-session path clones used to dominate the fleet
/// hot loop.
#[derive(Debug, Clone)]
struct Presence {
    upstream: Option<NodeId>,
    /// Shared chain buffer (producer → chain tail).
    path: Arc<[NodeId]>,
    /// This node's realized path is `path[..len]`.
    len: u32,
    /// Direct downstream subscribers (nodes + viewers).
    downstreams: u32,
}

impl Presence {
    /// Realized path from producer to this node (inclusive).
    fn realized(&self) -> &[NodeId] {
        &self.path[..self.len as usize]
    }
}

/// A zero-hop presence for `node` (producers carry their own stream).
fn zero_hop(node: NodeId) -> Presence {
    Presence {
        upstream: None,
        path: Arc::from(vec![node]),
        len: 1,
        downstreams: 0,
    }
}

/// An active viewing session.
#[derive(Debug, Clone)]
struct Active {
    consumer: NodeId,
    stream: StreamId,
    channel: usize,
    hier_path: Vec<NodeId>,
}

/// A fault resolved against the generated topology: who goes dark, when.
#[derive(Debug, Clone)]
struct ResolvedFault {
    start: SimTime,
    end: SimTime,
    nodes: Vec<NodeId>,
    /// Crash the replicated Brain's leader instead of data-plane nodes.
    brain_crash: bool,
}

enum Ev {
    Departure(u64),
    StreamStart(usize),
    StreamEnd(usize),
    MinuteTick,
    FaultStart(usize),
    FaultEnd(usize),
}

/// One session's failover during a fault, as the §6.5 logs would record it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryRecord {
    /// Fault time.
    pub at: SimTime,
    /// Day index.
    pub day: u32,
    /// Fast path: a cached/prefetched alternate was available (LiveNet
    /// only; Hier records are always slow).
    pub fast: bool,
    /// Upstream-silence detection latency.
    pub detect_ms: f32,
    /// Detection → playback restored.
    pub recover_ms: f32,
    /// Frames lost to the failover window (15 fps nominal).
    pub frames_lost: u32,
}

/// Aggregate outputs of one fleet run.
#[derive(Debug, Default)]
pub struct FleetReport {
    /// Per-session records, LiveNet.
    pub livenet: Vec<SessionRecord>,
    /// Per-session records, Hier (same sessions, same order).
    pub hier: Vec<SessionRecord>,
    /// Mean link loss (fraction) per absolute hour — Fig. 13 input.
    pub hourly_loss: Vec<f64>,
    /// Peak concurrent-session throughput per day (bits/s) — Fig. 14.
    pub daily_peak_throughput: Vec<f64>,
    /// Unique realized LiveNet paths per day — §6.5's +20 % observation.
    pub daily_unique_paths: Vec<usize>,
    /// Sessions skipped because the channel was offline.
    pub skipped_offline: u64,
    /// Long-chain path switches performed.
    pub chain_switches: u64,
    /// Brain PIB recompute rounds executed.
    pub recompute_rounds: u64,
    /// Per-session failovers under injected faults, LiveNet.
    pub recoveries_livenet: Vec<RecoveryRecord>,
    /// Per-session failovers under injected faults, Hier.
    pub recoveries_hier: Vec<RecoveryRecord>,
    /// Fault episodes that fired within the horizon.
    pub faults_injected: u64,
    /// Broadcasters rehomed off dead ingest nodes.
    pub producers_rehomed: u64,
    /// Merged telemetry snapshot (counters, gauges, latency histograms)
    /// from the run's [`TelemetryHub`] — `fleet.*`, `stage.*`, `brain.*`.
    pub telemetry: Snapshot,
    /// Replicated-control-plane summary (`None` when the run used the
    /// single in-process Brain). Sharded runs sum the per-shard clusters.
    pub replication: Option<ReplicationSummary>,
}

impl FleetReport {
    /// Bit-exact equality, the determinism contract of
    /// [`crate::FleetRunner`]: every float is compared through its bit
    /// pattern (so identical NaNs in `hourly_loss` compare equal, and no
    /// epsilon can paper over a divergent run).
    pub fn bit_identical(&self, other: &FleetReport) -> bool {
        fn bits(v: &[f64]) -> impl Iterator<Item = u64> + '_ {
            v.iter().map(|x| x.to_bits())
        }
        self.livenet == other.livenet
            && self.hier == other.hier
            && self.hourly_loss.len() == other.hourly_loss.len()
            && bits(&self.hourly_loss).eq(bits(&other.hourly_loss))
            && self.daily_peak_throughput.len() == other.daily_peak_throughput.len()
            && bits(&self.daily_peak_throughput).eq(bits(&other.daily_peak_throughput))
            && self.daily_unique_paths == other.daily_unique_paths
            && self.skipped_offline == other.skipped_offline
            && self.chain_switches == other.chain_switches
            && self.recompute_rounds == other.recompute_rounds
            && self.recoveries_livenet == other.recoveries_livenet
            && self.recoveries_hier == other.recoveries_hier
            && self.faults_injected == other.faults_injected
            && self.producers_rehomed == other.producers_rehomed
            && self.telemetry.bit_identical(&other.telemetry)
            && match (&self.replication, &other.replication) {
                (None, None) => true,
                (Some(a), Some(b)) => a.bit_identical(b),
                _ => false,
            }
    }
}

/// Output of one shard's run: the report plus the per-day realized-path
/// hash sets, which the merge needs to union (`daily_unique_paths` is a
/// set cardinality, so per-shard counts cannot simply be summed).
pub(crate) struct ShardOutput {
    pub(crate) report: FleetReport,
    pub(crate) day_path_sets: Vec<HashSet<u64>>,
}

/// The fleet simulator.
pub struct FleetSim {
    config: FleetConfig,
    topology: Topology, // ground truth (shared by both systems)
    edges_by_country: Vec<Vec<NodeId>>,
    brain: ControlPlane,
    hier: HierController,
    hier_delay: HierDelayModel,
    workload: Workload,
    rng: DetRng,
    // LiveNet data-plane state.
    presence: HashMap<(NodeId, StreamId), Presence>,
    // Hier data-plane state: refcounts per (node, stream) (GoP caches).
    hier_presence: HashMap<(NodeId, StreamId), u32>,
    // Incremental per-node sum of `hier_presence` refcounts, so center
    // queueing is O(1) per arrival instead of a full presence scan.
    // Integer-valued, hence exact and order-independent.
    hier_node_load: HashMap<NodeId, i64>,
    // Loads.
    node_fanout: HashMap<NodeId, f64>,
    link_sessions: HashMap<(NodeId, NodeId), f64>,
    // Channel schedule: per channel, sorted (start, end) live blocks.
    live_blocks: Vec<Vec<(SimTime, SimTime)>>,
    producers: Vec<NodeId>, // per channel
    // Fault schedule, identical on every shard (seeded from the workload
    // seed alone).
    faults: Vec<ResolvedFault>,
    // Channels this instance simulates (all true in monolith runs; one
    // shard's membership in sharded runs).
    scheduled: Vec<bool>,
    queue: EventQueue<Ev>,
    // Ordered so fault handling iterates sessions in id order for free
    // (it used to collect-and-sort the whole id set per activation).
    active: BTreeMap<u64, Active>,
    next_session_id: u64,
    report: FleetReport,
    // Scratch aggregation.
    hour_loss_sum: f64,
    hour_loss_n: u64,
    current_hour: u64,
    day_paths: HashSet<u64>,
    day_path_log: Vec<HashSet<u64>>,
    current_day: u32,
    day_peak_bps: f64,
    bitrate_bps: f64,
    // Run-scoped metric hub; snapshotted into the report at the end.
    telemetry: TelemetryHub,
}

impl FleetSim {
    /// Build the simulator (generates topology, channels, schedules).
    pub fn new(config: FleetConfig) -> FleetSim {
        let geo = GeoTopology::generate(&config.geo);
        let topology = geo.topology.clone();
        let countries = config.geo.countries;
        let mut edges_by_country: Vec<Vec<NodeId>> = vec![Vec::new(); countries as usize];
        for n in topology.nodes() {
            if !n.last_resort && !n.well_peered {
                edges_by_country[n.country as usize].push(n.id);
            }
        }
        // Countries whose only nodes are hubs still need an edge pick.
        for (c, v) in edges_by_country.iter_mut().enumerate() {
            if v.is_empty() {
                v.extend(
                    topology
                        .nodes()
                        .filter(|n| n.country == c as u32 && !n.last_resort)
                        .map(|n| n.id),
                );
            }
        }

        let brain = ControlPlane::new(
            &topology,
            &config.brain,
            config.replication.as_ref(),
            config.workload.seed,
        );
        let roles = HierRoles::assign(&topology, 2);
        let hier = HierController::new(roles);
        let workload = Workload::new(config.workload.clone(), countries);
        let mut rng = DetRng::seed(config.workload.seed).fork("fleet");

        // Channel producers: a stable edge node in the channel's country.
        let producers: Vec<NodeId> = workload
            .channels
            .iter()
            .map(|ch| {
                let edges = &edges_by_country[ch.country as usize];
                edges[(ch.rank * 7 + 3) % edges.len()]
            })
            .collect();

        // Live schedule per channel: alternating live (mean 3 h) and off
        // (mean 40 min) periods — "live streams come and go often" (§3).
        let horizon = workload.horizon();
        let live_blocks: Vec<Vec<(SimTime, SimTime)>> = (0..workload.channels.len())
            .map(|_| {
                let mut blocks = Vec::new();
                let mut t = SimTime::from_secs(rng.range_u64(0, 1800));
                while t < horizon {
                    let live = SimDuration::from_secs_f64(
                        rng.exp(3.0 * 3600.0).clamp(600.0, 12.0 * 3600.0),
                    );
                    // Clamp to the horizon so every StreamEnd is processed.
                    let end = (t + live).max(t + SimDuration::from_secs(60)).min(horizon);
                    blocks.push((t, end));
                    let off =
                        SimDuration::from_secs_f64(rng.exp(2400.0).clamp(120.0, 3.0 * 3600.0));
                    t = end + off;
                }
                blocks
            })
            .collect();

        // Fault schedule: scripted entries plus the seeded random outage
        // process. Uses its own RNG stream (fork "faults") so the schedule
        // never perturbs — and is never perturbed by — traffic randomness,
        // and every shard derives the identical list.
        let routable: Vec<NodeId> = topology.routable_node_ids().collect();
        let mut faults: Vec<ResolvedFault> = Vec::new();
        for f in &config.faults.scripted {
            let (at, dur, nodes, brain_crash) = match *f {
                FleetFault::NodeOutage {
                    at_secs,
                    down_for_secs,
                    node_index,
                } => (
                    at_secs,
                    down_for_secs,
                    vec![routable[node_index % routable.len()]],
                    false,
                ),
                FleetFault::RegionOutage {
                    at_secs,
                    down_for_secs,
                    country,
                } => (
                    at_secs,
                    down_for_secs,
                    topology.nodes_in_country(country).collect(),
                    false,
                ),
                FleetFault::BrainLeaderCrash {
                    at_secs,
                    down_for_secs,
                } => (at_secs, down_for_secs, Vec::new(), true),
            };
            faults.push(ResolvedFault {
                start: SimTime::from_secs(at),
                end: SimTime::from_secs(at + dur.max(1)),
                nodes,
                brain_crash,
            });
        }
        if config.faults.random_outages_per_day > 0.0 {
            let mut frng = DetRng::seed(config.workload.seed).fork("faults");
            let per_day = config.faults.random_outages_per_day;
            let (lo, hi) = config.faults.random_outage_secs;
            for day in 0..u64::from(config.workload.days) {
                // floor(λ) outages plus one more with probability frac(λ):
                // a fixed-length draw sequence, unlike Poisson sampling.
                let mut n = per_day as u64;
                if frng.chance(per_day.fract()) {
                    n += 1;
                }
                for _ in 0..n {
                    let node = routable[frng.range_u64(0, routable.len() as u64) as usize];
                    let at = day * 86_400 + frng.range_u64(0, 86_400);
                    let dur = frng.range_u64(lo, hi);
                    faults.push(ResolvedFault {
                        start: SimTime::from_secs(at),
                        end: SimTime::from_secs(at + dur.max(1)),
                        nodes: vec![node],
                        brain_crash: false,
                    });
                }
            }
        }
        faults.retain(|f| f.start < horizon);
        for f in &mut faults {
            f.end = f.end.min(horizon);
        }
        faults.sort_by_key(|f| (f.start, f.end));

        let scheduled = vec![true; workload.channels.len()];
        FleetSim {
            bitrate_bps: 2_500_000.0,
            config,
            topology,
            edges_by_country,
            brain,
            hier,
            hier_delay: HierDelayModel::default(),
            workload,
            rng,
            presence: HashMap::new(),
            hier_presence: HashMap::new(),
            hier_node_load: HashMap::new(),
            node_fanout: HashMap::new(),
            link_sessions: HashMap::new(),
            live_blocks,
            producers,
            faults,
            scheduled,
            queue: EventQueue::new(),
            active: BTreeMap::new(),
            next_session_id: 0,
            report: FleetReport::default(),
            hour_loss_sum: 0.0,
            hour_loss_n: 0,
            current_hour: 0,
            day_paths: HashSet::new(),
            day_path_log: Vec::new(),
            current_day: 0,
            day_peak_bps: 0.0,
            telemetry: TelemetryHub::new(),
        }
    }

    /// Build the simulator for one shard of a partitioned run.
    ///
    /// The topology, channel universe and live schedule are generated
    /// exactly as in [`FleetSim::new`] — every shard agrees on the shared
    /// ground truth because the same RNG streams are consumed to build it.
    /// Only then does the shard diverge: arrivals come from the plan's
    /// channel slice at its Zipf mass share of the fleet rate, per-session
    /// noise draws from `split(index)` of the fleet stream, and session
    /// capacities are scaled by the mass share so per-shard utilization
    /// (and therefore routing and queueing) matches the monolith's.
    pub fn new_shard(config: FleetConfig, plan: &crate::runner::ShardPlan) -> FleetSim {
        let countries = config.geo.countries;
        let mut sim = FleetSim::new(config);
        sim.workload = Workload::for_shard(
            sim.config.workload.clone(),
            countries,
            &plan.channels,
            plan.mass_share,
            plan.index as u64,
        );
        sim.rng = sim.rng.split(plan.index as u64);
        // Each shard runs its own Brain cluster; the seed is a pure
        // function of (workload seed, shard index) so serial and parallel
        // executions of the same partition agree bit-for-bit.
        if sim.config.replication.is_some() {
            let seed = sim
                .config
                .workload
                .seed
                .wrapping_add((plan.index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            sim.brain = ControlPlane::new(
                &sim.topology,
                &sim.config.brain,
                sim.config.replication.as_ref(),
                seed,
            );
        }
        sim.scheduled = vec![false; sim.workload.channels.len()];
        for &c in &plan.channels {
            sim.scheduled[c] = true;
        }
        let share = plan.mass_share.max(1e-9);
        sim.config.node_capacity_sessions *= share;
        sim.config.link_capacity_sessions *= share;
        sim
    }

    /// Ground-truth topology access (tests).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Run the whole configured period and return the report.
    pub fn run(self) -> FleetReport {
        self.run_collect().report
    }

    /// Run and keep the shard-merge bookkeeping alongside the report.
    pub(crate) fn run_collect(mut self) -> ShardOutput {
        self.seed_events();
        self.drive();
        self.flush_hour();
        self.flush_day();
        // The trailing flush can emit a phantom partial day/hour at the
        // horizon boundary; clamp to the configured window.
        let days = self.config.workload.days as usize;
        self.report.daily_peak_throughput.truncate(days);
        self.report.daily_unique_paths.truncate(days);
        self.report.hourly_loss.truncate(days * 24);
        self.day_path_log.truncate(days);
        // Settle and audit the replicated control plane (no-op in single
        // mode) BEFORE the telemetry export so the exported counters cover
        // the post-settle cluster state.
        self.report.replication = self.brain.finalize(self.workload.horizon());
        self.report.recompute_rounds = self.brain.recompute_rounds();
        self.brain.record_telemetry(&mut self.telemetry);
        self.report.telemetry = self.telemetry.snapshot();
        ShardOutput {
            report: self.report,
            day_path_sets: self.day_path_log,
        }
    }

    /// Seed the event queue (stream schedule, minute tick, faults) and
    /// pre-size every per-session buffer from the workload's expected
    /// volume, so the hot loop never grows a `Vec` mid-run.
    fn seed_events(&mut self) {
        self.hier_delay = HierDelayModel::new(self.config.hier);
        // Stream start/end events for the channels this instance owns —
        // scheduled by reference; the schedule itself is immutable for the
        // whole run (asserted in `drive`).
        for (ch, blocks) in self.live_blocks.iter().enumerate() {
            if !self.scheduled[ch] {
                continue;
            }
            for &(start, end) in blocks {
                self.queue.schedule(start, Ev::StreamStart(ch));
                self.queue.schedule(end, Ev::StreamEnd(ch));
            }
        }
        self.queue.schedule(SimTime::from_secs(60), Ev::MinuteTick);
        for (i, f) in self.faults.iter().enumerate() {
            self.queue.schedule(f.start, Ev::FaultStart(i));
            self.queue.schedule(f.end, Ev::FaultEnd(i));
        }
        let expect = self.workload.expected_sessions();
        // Headroom over the Poisson mean so the tail almost never spills.
        let cap = expect + expect / 8 + 64;
        self.report.livenet.reserve(cap);
        self.report.hier.reserve(cap);
        let days = self.config.workload.days as usize;
        self.report.hourly_loss.reserve(days * 24 + 2);
        self.report.daily_peak_throughput.reserve(days + 2);
        self.report.daily_unique_paths.reserve(days + 2);
        self.day_path_log.reserve(days + 2);
    }

    /// Drive the event loop to the horizon.
    ///
    /// Arrivals bypass the event queue entirely: the workload generator
    /// already emits a time-sorted stream, so pushing every session
    /// through the binary heap cost two O(log n) operations for nothing.
    /// The next arrival is held in a register and interleaved with queue
    /// events by timestamp (arrival first on the measure-zero exact tie,
    /// consistently in both serial and parallel execution).
    fn drive(&mut self) {
        #[cfg(debug_assertions)]
        let schedule_fingerprint = {
            let mut h = DefaultHasher::new();
            self.live_blocks.hash(&mut h);
            h.finish()
        };
        let horizon = self.workload.horizon();
        let mut next_arrival = self.workload.next_session();
        loop {
            let take_arrival = match (&next_arrival, self.queue.peek_time()) {
                (Some(a), Some(t)) => a.at <= t,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_arrival {
                let spec = next_arrival.take().expect("checked above");
                self.queue.advance_to(spec.at);
                next_arrival = self.workload.next_session();
                self.on_arrival(spec.at, spec);
                continue;
            }
            let Some((now, ev)) = self.queue.pop_until(horizon) else {
                break;
            };
            match ev {
                Ev::Departure(id) => self.on_departure(now, id),
                Ev::StreamStart(ch) => self.on_stream_start(now, ch),
                Ev::StreamEnd(ch) => self.on_stream_end(now, ch),
                Ev::MinuteTick => {
                    self.on_minute(now);
                    self.queue
                        .schedule(now + SimDuration::from_secs(60), Ev::MinuteTick);
                }
                Ev::FaultStart(i) => self.on_fault_start(now, i),
                Ev::FaultEnd(i) => self.on_fault_end(now, i),
            }
        }
        #[cfg(debug_assertions)]
        {
            let mut h = DefaultHasher::new();
            self.live_blocks.hash(&mut h);
            debug_assert_eq!(
                schedule_fingerprint,
                h.finish(),
                "live-block schedule mutated mid-run"
            );
        }
    }

    // ------------------------------------------------------------------
    // Stream lifecycle
    // ------------------------------------------------------------------

    fn on_stream_start(&mut self, now: SimTime, ch: usize) {
        let stream = self.workload.channels[ch].stream;
        // A broadcaster cannot push to a dark ingest node; it lands on
        // another edge in its country (sticky — kept after the outage).
        if !self.topology.node_is_up(self.producers[ch]) {
            let country = self.workload.channels[ch].country;
            if let Some(&alt) = self.edges_by_country[country as usize]
                .iter()
                .find(|&&e| self.topology.node_is_up(e))
            {
                self.producers[ch] = alt;
                self.report.producers_rehomed += 1;
            }
        }
        let producer = self.producers[ch];
        self.brain.register_stream(stream, producer, now);
        if self.workload.channels[ch].popular {
            self.brain.mark_popular(stream, now);
        }
        let _ = self.hier.register_stream(&self.topology, stream, producer);
        // The producer itself carries the stream (zero-hop presence).
        self.presence
            .entry((producer, stream))
            .or_insert_with(|| zero_hop(producer));
        *self.hier_presence.entry((producer, stream)).or_insert(0) += 1;
        *self.hier_node_load.entry(producer).or_insert(0) += 1;
    }

    fn on_stream_end(&mut self, now: SimTime, ch: usize) {
        let stream = self.workload.channels[ch].stream;
        self.brain.unregister_stream(stream, now);
        self.hier.unregister_stream(stream);
        // Sessions were truncated to the block end, so refcounts should be
        // drained; sweep any leftovers (e.g. the producer's own entry).
        self.presence.retain(|&(_, s), _| s != stream);
        let load = &mut self.hier_node_load;
        self.hier_presence.retain(|&(n, s), c| {
            if s != stream {
                return true;
            }
            if let Some(l) = load.get_mut(&n) {
                *l -= i64::from(*c);
            }
            false
        });
    }

    fn channel_live_until(&self, ch: usize, now: SimTime) -> Option<SimTime> {
        // Blocks are sorted and disjoint; binary-search the last block
        // starting at or before `now` instead of scanning the whole
        // schedule per arrival.
        let blocks = &self.live_blocks[ch];
        let i = blocks.partition_point(|&(s, _)| s <= now);
        if i == 0 {
            return None;
        }
        let (_, end) = blocks[i - 1];
        (now < end).then_some(end)
    }

    // ------------------------------------------------------------------
    // Session arrival / departure
    // ------------------------------------------------------------------

    fn on_arrival(&mut self, now: SimTime, spec: SessionSpec) {
        let Some(live_until) = self.channel_live_until(spec.channel, now) else {
            self.report.skipped_offline += 1;
            self.telemetry.incr(ids::FLEET_RACED_OFFLINE);
            return;
        };
        let stream = self.workload.channels[spec.channel].stream;
        let producer = self.producers[spec.channel];
        let Some(mut consumer) = self
            .workload
            .pick_edge(&self.edges_by_country, spec.viewer_country)
        else {
            return;
        };
        // Producers are mapped to ingest-optimized clusters; a viewer lands
        // on the broadcaster's own node only rarely (the paper's 0.13 %
        // len-0 share). At our ~10× reduced node count a uniform pick
        // would collide far too often, so re-draw unless a rare collision
        // is sampled (DESIGN.md §1 notes this substitution).
        if consumer == producer && !self.rng.chance(0.005) {
            for _ in 0..8 {
                if consumer != producer {
                    break;
                }
                if let Some(c) = self
                    .workload
                    .pick_edge(&self.edges_by_country, spec.viewer_country)
                {
                    consumer = c;
                }
            }
            if consumer == producer {
                // Country with a single edge: accept the zero-hop session.
            }
        }
        // A dark edge (node outage) cannot serve; the client retries the
        // next edge in its country or gives up. Consumes no RNG, so
        // fault-free runs are bit-identical to the pre-fault behavior.
        if !self.topology.node_is_up(consumer) {
            match self.edges_by_country[spec.viewer_country as usize]
                .iter()
                .find(|&&e| self.topology.node_is_up(e))
            {
                Some(&alt) => consumer = alt,
                None => {
                    self.report.skipped_offline += 1;
                    self.telemetry.incr(ids::FLEET_RACED_OFFLINE);
                    return;
                }
            }
        }
        let international = self
            .topology
            .is_international(producer, consumer)
            .unwrap_or(false);

        // Shared client-side conditions (identical for both systems —
        // the paired-methodology trick that gives Fig. 8a its clean gap).
        // Last-mile LATENCY (distance to the nearest edge) and last-mile
        // BANDWIDTH (access technology) are drawn independently: remote
        // viewers have high streaming delay but can still start fast,
        // which is exactly the Fig. 9 GoP-cache observation.
        let bad_last_mile = self.rng.chance(self.config.bad_last_mile_fraction);
        let awful_last_mile = bad_last_mile && self.rng.chance(0.12);
        let downlink_mbps = if bad_last_mile {
            self.rng.log_normal(-0.1, 0.7) // ~0.9 Mbps median, heavy tail
        } else {
            self.rng.log_normal(2.1, 0.75) // ~8 Mbps median, slow tail
        };
        let last_mile_ms = self.config.latency.last_mile_ms * self.rng.log_normal(0.0, 0.6);
        let buffer_fill_ms = self.config.latency.player_buffer_ms * (self.bitrate_bps / 1e6)
            / downlink_mbps.max(0.3);
        let duration = spec.duration.min(live_until.saturating_since(now));
        let view_minutes = duration.as_secs_f64() / 60.0;

        // ---------------- LiveNet ----------------
        let (shared, plen, outcome, first_packet_ms) =
            self.livenet_attach(now, consumer, stream, spec.channel);
        let path = &shared[..plen as usize];
        let path_loss: f64 = path
            .windows(2)
            .map(|w| self.topology.link(w[0], w[1]).map(|l| l.loss).unwrap_or(0.0))
            .sum();
        let cdn_ms = self.livenet_cdn_delay(path);
        let streaming_ms = cdn_ms
            + self.config.latency.first_mile_ms * self.rng.log_normal(0.0, 0.25)
            + last_mile_ms
            + self.config.latency.player_buffer_ms
            + 130.0; // encode + decode
        // Startup sees one-way last-mile latency; playback delay sees the
        // full round trip plus de-jitter margin.
        let startup_ms = first_packet_ms + 0.5 * last_mile_ms + buffer_fill_ms;
        // Stall mix: a degraded last mile dominates; CDN-induced stalls
        // scale with residual loss after per-hop recovery.
        let lambda_ln = if awful_last_mile {
            2.3
        } else if bad_last_mile {
            0.45
        } else {
            0.0035
        } + path_loss * 0.05 * view_minutes.min(30.0);
        let stalls_ln = self.poisson(lambda_ln);
        let hour = (now.as_secs_f64() / 3600.0) as u64;
        let ln_record = SessionRecord {
            start: now,
            day: (hour / 24) as u32,
            hour: (hour % 24) as u32,
            path_len: (path.len().saturating_sub(1)) as u8,
            international,
            cdn_delay_ms: cdn_ms as f32,
            streaming_delay_ms: streaming_ms as f32,
            first_packet_ms: first_packet_ms as f32,
            startup_ms: startup_ms as f32,
            stalls: stalls_ln,
            outcome,
        };
        record_session(&mut self.telemetry, &ln_record);
        self.report.livenet.push(ln_record);
        // Unique-path bookkeeping.
        let mut h = DefaultHasher::new();
        path.hash(&mut h);
        self.day_paths.insert(h.finish());

        // ---------------- Hier ----------------
        let (hier_path, hier_hit, hier_first_packet) =
            self.hier_attach(now, consumer, stream);
        let hier_cdn_ms = if hier_path.len() >= 2 {
            let base = self
                .hier_delay
                .cdn_path_delay_nodes(&self.topology, &hier_path)
                .map(|d| d.as_millis_f64())
                .unwrap_or(450.0);
            // Center queueing under load (the §2.3 hot-spot effect).
            base + self.center_queueing_ms(&hier_path)
        } else {
            450.0
        };
        let hier_streaming_ms = hier_cdn_ms
            + self.config.latency.first_mile_ms * self.rng.log_normal(0.0, 0.25)
            + last_mile_ms
            + self.config.latency.player_buffer_ms
            + 130.0;
        // RTMP-over-TCP startup ramps through slow start from the cache
        // tier, unlike LiveNet's paced UDP GoP burst.
        let hier_startup_ms = hier_first_packet + 0.5 * last_mile_ms + buffer_fill_ms * 2.0;
        let hier_path_loss: f64 = hier_path
            .windows(2)
            .map(|w| self.topology.link(w[0], w[1]).map(|l| l.loss).unwrap_or(0.0))
            .sum();
        // TCP in-order delivery turns loss into visible stalls.
        let lambda_h = if awful_last_mile {
            4.0
        } else if bad_last_mile {
            0.95
        } else {
            0.014
        } + hier_path_loss * 2.6 * view_minutes.min(30.0);
        let stalls_h = self.poisson(lambda_h);
        self.report.hier.push(SessionRecord {
            start: now,
            day: (hour / 24) as u32,
            hour: (hour % 24) as u32,
            path_len: (hier_path.len().saturating_sub(1)) as u8,
            international,
            cdn_delay_ms: hier_cdn_ms as f32,
            streaming_delay_ms: hier_streaming_ms as f32,
            first_packet_ms: hier_first_packet as f32,
            startup_ms: hier_startup_ms as f32,
            stalls: stalls_h,
            outcome: if hier_hit {
                DecisionOutcome::LocalHit
            } else {
                DecisionOutcome::Prefetched
            },
        });

        // Register the active session and schedule departure.
        let id = self.next_session_id;
        self.next_session_id += 1;
        self.active.insert(
            id,
            Active {
                consumer,
                stream,
                channel: spec.channel,
                hier_path,
            },
        );
        self.queue.schedule(now + duration, Ev::Departure(id));
    }

    fn on_departure(&mut self, _now: SimTime, id: u64) {
        let Some(session) = self.active.remove(&id) else {
            return;
        };
        self.livenet_detach(session.consumer, session.stream);
        for &n in &session.hier_path {
            if let Some(c) = self.hier_presence.get_mut(&(n, session.stream)) {
                *c = c.saturating_sub(1);
                if let Some(l) = self.hier_node_load.get_mut(&n) {
                    *l -= 1;
                }
                if *c == 0 {
                    self.hier_presence.remove(&(n, session.stream));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // LiveNet attachment (the §4.4 establishment protocol, session level)
    // ------------------------------------------------------------------

    /// Returns `(chain_buffer, realized_len, decision_outcome,
    /// first_packet_ms)` — the session's realized path is
    /// `chain_buffer[..realized_len]`, a view into the chain's shared
    /// allocation (no per-session copy).
    fn livenet_attach(
        &mut self,
        now: SimTime,
        consumer: NodeId,
        stream: StreamId,
        channel: usize,
    ) -> (Arc<[NodeId]>, u32, DecisionOutcome, f64) {
        // Local hit: the consumer already forwards this stream.
        if let Some(p) = self.presence.get_mut(&(consumer, stream)) {
            p.downstreams += 1;
            let (buf, len) = (p.path.clone(), p.len);
            let first_packet =
                self.config.latency.local_serve_ms * self.rng.log_normal(0.0, 0.4);
            return (buf, len, DecisionOutcome::LocalHit, first_packet);
        }

        // Path lookup. Popular broadcasters' paths are prefetched to all
        // nodes (§4.4), so no Brain round trip is charged for them.
        let popular = self.workload.channels[channel].popular;
        let lookup = self.brain.path_request(stream, consumer, now, popular);
        let Ok((lookup, measured_ms)) = lookup else {
            // Stream raced offline; serve degenerate zero-hop with no
            // Brain round trip charged (same as a prefetched path).
            return (
                Arc::from(vec![consumer]),
                1,
                DecisionOutcome::Prefetched,
                400.0,
            );
        };
        let brain_ms = if popular {
            None
        } else {
            // Exactly one RNG draw on this arm in both control-plane
            // modes, so enabling replication never shifts the session
            // noise stream.
            match measured_ms {
                // Replicated Brain: the cluster measured the leader-read
                // wait (lease waits, redirects, retries) in virtual time;
                // add the hash-lookup service jitter on top.
                Some(ms) => {
                    Some(ms + self.config.latency.brain_lookup_ms * self.rng.log_normal(0.0, 0.5))
                }
                // Single Brain: legacy model — RTT to the nearest Path
                // Decision replica (replicated at well-peered sites,
                // §7.1) + RPC/queueing overhead + hash lookup.
                None => {
                    let rtt = self.nearest_replica_rtt(consumer);
                    Some(
                        rtt + 8.0
                            + self.config.latency.brain_lookup_ms * self.rng.log_normal(0.0, 0.5),
                    )
                }
            }
        };

        let last_resort = lookup.last_resort;
        // Take the best path by value — the lookup is ours, no clone.
        let path = lookup
            .paths
            .into_iter()
            .next()
            .expect("path lookup returned no paths")
            .nodes;

        // Reverse-path establishment with cache-hit backtracking: walk
        // upstream from the consumer; the deepest node already carrying
        // the stream anchors the chain (may create a long chain).
        let mut anchor_idx = 0;
        for i in (0..path.len().saturating_sub(1)).rev() {
            if self.presence.contains_key(&(path[i], stream)) {
                anchor_idx = i;
                break;
            }
        }
        let mut est_ms = 0.0;
        for w in path[anchor_idx..].windows(2) {
            if let Some(l) = self.topology.link(w[0], w[1]) {
                // Subscribe/ok round trip + per-hop FIB/subscription work.
                est_ms += l.rtt.as_millis_f64() + 10.0;
            }
        }
        let anchor = self.presence.get(&(path[anchor_idx], stream));
        let anchor_len = anchor.map_or(1, |p| p.len as usize);
        // Long-chain mitigation: if the realized chain would exceed the
        // threshold, re-establish the full computed path from the producer
        // (the consumer-driven switch of §4.4).
        let chained_hops = anchor_len - 1 + (path.len() - 1 - anchor_idx);
        let anchor_idx = if chained_hops + 1 > self.config.long_chain_switch_hops {
            self.report.chain_switches += 1;
            est_ms = 0.0;
            for w in path.windows(2) {
                if let Some(l) = self.topology.link(w[0], w[1]) {
                    est_ms += l.rtt.as_millis_f64() + 10.0;
                }
            }
            0
        } else {
            anchor_idx
        };
        // Build the chain's realized path ONCE; every presence entry on
        // the tail then shares this one allocation via `Arc` + prefix len.
        let mut realized: Vec<NodeId> =
            Vec::with_capacity(anchor_len + path.len() - anchor_idx);
        if anchor_idx == 0 {
            // Either no anchor was found or the chain switch reset to the
            // producer — when an anchor exists at index 0 its realized
            // prefix still applies.
            match self.presence.get(&(path[0], stream)) {
                Some(p) if chained_hops < self.config.long_chain_switch_hops => {
                    realized.extend_from_slice(p.realized());
                }
                _ => realized.push(path[0]),
            }
        } else {
            match self.presence.get(&(path[anchor_idx], stream)) {
                Some(p) => realized.extend_from_slice(p.realized()),
                None => realized.push(path[anchor_idx]),
            }
        }
        realized.extend_from_slice(&path[anchor_idx + 1..]);
        realized.dedup();
        let shared: Arc<[NodeId]> = Arc::from(realized);

        // Create presence entries along the new tail.
        for j in (anchor_idx + 1)..path.len() {
            let node = path[j];
            let upstream = path[j - 1];
            let prefix_len = shared
                .iter()
                .position(|&n| n == node)
                .map(|p| p + 1)
                .unwrap_or(shared.len());
            let entry = self
                .presence
                .entry((node, stream))
                .or_insert_with(|| Presence {
                    upstream: Some(upstream),
                    path: shared.clone(),
                    len: prefix_len as u32,
                    downstreams: 0,
                });
            if j + 1 < path.len() {
                entry.downstreams += 1; // its downstream chain node
            }
        }
        // The anchor gains the first new downstream.
        if let Some(a) = self.presence.get_mut(&(path[anchor_idx], stream)) {
            a.downstreams += 1;
        }
        // The viewer is the consumer's downstream.
        if let Some(c) = self.presence.get_mut(&(consumer, stream)) {
            c.downstreams += 1;
        }

        let first_packet = brain_ms.unwrap_or(0.0)
            + est_ms
            + self.config.latency.local_serve_ms * self.rng.log_normal(0.0, 0.3);
        let outcome = if last_resort {
            DecisionOutcome::LastResort {
                response_ms: brain_ms.map(|v| v as f32),
            }
        } else {
            match brain_ms {
                Some(ms) => DecisionOutcome::Brain {
                    response_ms: ms as f32,
                },
                None => DecisionOutcome::Prefetched,
            }
        };
        let len = shared.len() as u32;
        (shared, len, outcome, first_packet)
    }

    fn livenet_detach(&mut self, consumer: NodeId, stream: StreamId) {
        let mut node = consumer;
        while let Some(p) = self.presence.get_mut(&(node, stream)) {
            p.downstreams = p.downstreams.saturating_sub(1);
            if p.downstreams > 0 {
                break;
            }
            // Producers keep their zero-hop entry while the stream is live.
            let Some(up) = p.upstream else { break };
            self.presence.remove(&(node, stream));
            node = up;
        }
    }

    fn livenet_cdn_delay(&mut self, path: &[NodeId]) -> f64 {
        let c = &self.config.latency;
        let mut d = c.producer_processing_ms;
        for w in path.windows(2) {
            if let Some(l) = self.topology.link(w[0], w[1]) {
                d += l.rtt.as_millis_f64() / 2.0;
                d += c.recovery_penalty_ms(l.loss, l.rtt);
                // Queueing grows with link utilization.
                d += 6.0 * l.utilization;
            }
        }
        let intermediates = path.len().saturating_sub(2);
        d += c.relay_processing_ms * intermediates as f64;
        if path.len() > 1 {
            d += c.consumer_processing_ms;
        } else {
            d += c.consumer_processing_ms; // zero-hop: same node serves
        }
        d * self.rng.log_normal(0.0, 0.08)
    }

    fn nearest_replica_rtt(&self, consumer: NodeId) -> f64 {
        // Path Decision replicas sit at well-peered sites + last-resort
        // (IXP) nodes (§7.1).
        self.topology
            .nodes()
            .filter(|n| n.well_peered)
            .filter_map(|n| self.topology.link(consumer, n.id))
            .map(|l| l.rtt.as_millis_f64())
            .fold(f64::INFINITY, f64::min)
            .min(200.0)
    }

    // ------------------------------------------------------------------
    // Hier attachment
    // ------------------------------------------------------------------

    /// Returns `(path, local_hit, first_packet_ms)`.
    fn hier_attach(
        &mut self,
        _now: SimTime,
        consumer: NodeId,
        stream: StreamId,
    ) -> (Vec<NodeId>, bool, f64) {
        let hit = self
            .hier_presence
            .get(&(consumer, stream))
            .is_some_and(|&c| c > 0);
        let Ok(path) = self.hier.path_for(&self.topology, stream, consumer) else {
            return (vec![consumer], false, 600.0);
        };
        let nodes = path.nodes;
        for &n in &nodes {
            *self.hier_presence.entry((n, stream)).or_insert(0) += 1;
            *self.hier_node_load.entry(n).or_insert(0) += 1;
        }
        if hit {
            let fp = self.config.latency.local_serve_ms * 1.3 * self.rng.log_normal(0.0, 0.4);
            return (nodes, true, fp);
        }
        // Cache miss: climb the tree until a tier has the stream cached.
        // nodes = [producerL1, upL2, center, downL2, consumerL1].
        let mut fetch_ms = 0.0;
        let mut cur = consumer;
        for &tier in [nodes[3], nodes[2]].iter() {
            if let Some(l) = self.topology.link(cur, tier) {
                fetch_ms += l.rtt.as_millis_f64() * 1.5; // TCP request+slow start
            }
            cur = tier;
            if self
                .hier_presence
                .get(&(tier, stream))
                .is_some_and(|&c| c > 1)
            {
                break; // cached at this tier
            }
        }
        let fp = fetch_ms
            + self.config.latency.local_serve_ms * 1.3 * self.rng.log_normal(0.0, 0.3);
        (nodes, false, fp)
    }

    fn center_queueing_ms(&mut self, path: &[NodeId]) -> f64 {
        // All streams cross the center; queueing grows superlinearly with
        // the center's fan-in share of concurrent sessions. The per-node
        // refcount sum is maintained incrementally (integer arithmetic,
        // so it matches a fresh scan exactly) — scanning the whole
        // presence table here made every arrival O(active sessions).
        let center = path[2];
        let load = self.hier_node_load.get(&center).copied().unwrap_or(0).max(0) as f64
            / (self.config.node_capacity_sessions * 30.0);
        let u = load.min(1.5);
        if u > 0.5 {
            (u - 0.5) * 160.0 * self.rng.log_normal(0.0, 0.3)
        } else {
            0.0
        }
    }

    // ------------------------------------------------------------------
    // Fault execution (§6.5 failure handling)
    // ------------------------------------------------------------------

    fn on_fault_start(&mut self, now: SimTime, i: usize) {
        self.report.faults_injected += 1;
        self.telemetry.incr(ids::FLEET_FAULTS_INJECTED);
        if self.faults[i].brain_crash {
            // Control-plane fault: the Paxos leader dies mid-run. The data
            // plane keeps forwarding; new path requests ride the client
            // retry/redirect machinery until a follower takes the lease.
            self.brain.crash_leader(now);
            return;
        }
        // Borrow the node list by taking it (restored below) — activations
        // used to deep-copy it every time.
        let nodes = std::mem::take(&mut self.faults[i].nodes);
        let down: BTreeSet<NodeId> = nodes.iter().copied().collect();
        let day = (now.as_secs_f64() / 86_400.0) as u32;

        // Ground truth and the Brain's view go dark; the Brain recomputes
        // around the failed elements immediately (scoped update).
        for &n in &nodes {
            self.topology.set_node_up(n, false);
            self.brain.node_failed(n, now);
        }

        // Broadcasters whose ingest node died re-push to another edge in
        // their country; the Brain rehomes the stream in its SIB. Hier
        // cannot — its tree roles are static — which is the point of §6.5.
        for &n in &nodes {
            for stream in self.brain.streams_on(n) {
                let Some(ch) = self
                    .workload
                    .channels
                    .iter()
                    .position(|c| c.stream == stream)
                else {
                    continue;
                };
                let country = self.workload.channels[ch].country;
                let Some(&new_p) = self.edges_by_country[country as usize]
                    .iter()
                    .find(|&&e| e != n && self.topology.node_is_up(e))
                else {
                    continue;
                };
                let _ = self.brain.rehome_producer(stream, new_p, now);
                self.producers[ch] = new_p;
                self.presence.remove(&(n, stream));
                self.presence
                    .entry((new_p, stream))
                    .or_insert_with(|| zero_hop(new_p));
                self.report.producers_rehomed += 1;
            }
        }

        // Every active session whose delivery path crosses a dead node
        // fails over. LiveNet consumers detect upstream silence and either
        // switch to a cached alternate (fast, ≈1 RTT after detection) or
        // wait out a Brain round trip (slow); Hier clients reconnect
        // through the static tree over TCP — multi-second either way.
        //
        // Phase 1: record the failovers and tear every affected session's
        // subscription chain down while the refcounts are still coherent.
        // Phase 2: purge what the dead nodes carried. Phase 3: re-attach,
        // so shared chains are rebuilt fresh instead of local-hitting a
        // stale entry that still routes through the failure.
        // `active` is ordered, so a plain key snapshot is already sorted —
        // no per-activation sort.
        let ids: Vec<u64> = self.active.keys().copied().collect();
        let mut reattach: Vec<(u64, NodeId, StreamId, usize)> = Vec::new();
        for id in ids {
            let (consumer, stream, channel, hier_hit) = {
                let a = &self.active[&id];
                let hier_hit = a.hier_path.iter().any(|n| down.contains(n));
                (a.consumer, a.stream, a.channel, hier_hit)
            };
            let ln_hit = self
                .presence
                .get(&(consumer, stream))
                .is_some_and(|p| p.realized().iter().any(|n| down.contains(n)));
            if ln_hit {
                let popular = self.workload.channels[channel].popular;
                // Popular channels' alternates are prefetched everywhere
                // (§4.4); others hold Brain-provisioned backups most of
                // the time.
                let fast = popular || self.rng.chance(0.7);
                let detect = 2500.0 * self.rng.log_normal(0.0, 0.15);
                let recover = if fast {
                    // One subscribe round trip to the cached alternate.
                    30.0 * self.rng.log_normal(0.0, 0.4)
                } else {
                    // Ask the Brain, wait for the recompute, re-establish.
                    self.nearest_replica_rtt(consumer)
                        + 2400.0 * self.rng.log_normal(0.0, 0.3)
                };
                self.telemetry.incr(ids::FLEET_RECOVERIES);
                self.telemetry
                    .observe(ids::STAGE_RECOVERY_MS, detect + recover);
                self.report.recoveries_livenet.push(RecoveryRecord {
                    at: now,
                    day,
                    fast,
                    detect_ms: detect as f32,
                    recover_ms: recover as f32,
                    frames_lost: ((detect + recover) / 1000.0 * 15.0) as u32,
                });
                self.livenet_detach(consumer, stream);
                let mut consumer = consumer;
                if down.contains(&consumer) {
                    // The viewer's own edge died; the client retries
                    // against the next edge in its country, if any.
                    let country = self
                        .topology
                        .node(consumer)
                        .map(|n| n.country)
                        .unwrap_or(0);
                    if let Some(&alt) = self.edges_by_country[country as usize]
                        .iter()
                        .find(|&&e| self.topology.node_is_up(e))
                    {
                        consumer = alt;
                        if let Some(a) = self.active.get_mut(&id) {
                            a.consumer = alt;
                        }
                    }
                }
                reattach.push((id, consumer, stream, channel));
            }
            if hier_hit {
                let detect = 3000.0 * self.rng.log_normal(0.0, 0.2);
                let recover = 8000.0 * self.rng.log_normal(0.0, 0.35);
                self.report.recoveries_hier.push(RecoveryRecord {
                    at: now,
                    day,
                    fast: false,
                    detect_ms: detect as f32,
                    recover_ms: recover as f32,
                    frames_lost: ((detect + recover) / 1000.0 * 15.0) as u32,
                });
            }
        }
        // Whatever presence the dead nodes still carried is gone with them.
        self.presence.retain(|&(n, _), _| !down.contains(&n));
        let load = &mut self.hier_node_load;
        self.hier_presence.retain(|&(n, _), c| {
            if !down.contains(&n) {
                return true;
            }
            if let Some(l) = load.get_mut(&n) {
                *l -= i64::from(*c);
            }
            false
        });
        // Re-establish over paths the Brain already recomputed around the
        // failure.
        for (_, consumer, stream, channel) in reattach {
            if self.topology.node_is_up(consumer) {
                let _ = self.livenet_attach(now, consumer, stream, channel);
            }
        }
        self.faults[i].nodes = nodes;
    }

    fn on_fault_end(&mut self, now: SimTime, i: usize) {
        if self.faults[i].brain_crash {
            self.brain.restart_crashed(now);
            return;
        }
        let nodes = std::mem::take(&mut self.faults[i].nodes);
        for &n in &nodes {
            self.topology.set_node_up(n, true);
            self.brain.node_recovered(n, now);
        }
        self.faults[i].nodes = nodes;
    }

    // ------------------------------------------------------------------
    // Periodic work: reports, loads, loss, aggregation
    // ------------------------------------------------------------------

    fn on_minute(&mut self, now: SimTime) {
        // In sharded runs this is the per-shard peak; the merged snapshot
        // keeps the max across shards (gauges merge by max), which both
        // `run_serial` and `run_parallel` compute over the same partition.
        self.telemetry
            .gauge_max(ids::FLEET_PEAK_VIEWERS, self.active.len() as f64);
        let hour = (now.as_secs_f64() / 3600.0) as u64;
        let day = (hour / 24) as u32;
        // Plain hour-of-day load shape (loss follows *time of day*; the
        // festival adds sessions but capacity is up-scaled to match, §6.5).
        let diurnal = crate::workload::diurnal_factor(now.as_secs_f64() / 3600.0 % 24.0);
        let festival = self
            .config
            .workload
            .festival_days
            .contains(&day);
        let capacity_scale = if festival {
            self.config.festival_upscale
        } else {
            1.0
        };

        // Recompute loads from the presence map (the ground truth): a
        // node's fan-out is the sum of its direct downstream subscribers;
        // a link carries one unit per stream flowing over it.
        self.node_fanout.clear();
        self.link_sessions.clear();
        for (&(node, _), p) in &self.presence {
            *self.node_fanout.entry(node).or_insert(0.0) += f64::from(p.downstreams);
            if let Some(up) = p.upstream {
                *self.link_sessions.entry((up, node)).or_insert(0.0) += 1.0;
            }
        }
        // Update ground-truth loss (diurnal; Fig. 13) and utilization in
        // one pass over the link map — the old collect-then-apply shape
        // allocated a per-tick update vector for no semantic gain (the
        // load maps and the topology are disjoint fields).
        let mut loss_sum = 0.0;
        let mut loss_n = 0u64;
        let gen_base = self.config.geo.base_loss;
        let link_cap = self.config.link_capacity_sessions * capacity_scale;
        let link_sessions = &self.link_sessions;
        for (f, t, l) in self.topology.links_mut() {
            let sessions = link_sessions.get(&(f, t)).copied().unwrap_or(0.0);
            l.utilization = (sessions / link_cap).min(1.0);
            // Loss rises with the diurnal load (peaking < 0.175%).
            let jitter = 0.8 + 0.4 * ((f.raw() * 31 + t.raw() * 17 + hour) % 97) as f64 / 97.0;
            l.loss = (gen_base * (0.5 + 2.2 * diurnal) * jitter).min(0.00175);
            loss_sum += l.loss;
            loss_n += 1;
        }
        // Node loads, same single-pass shape.
        let node_cap = self.config.node_capacity_sessions * capacity_scale;
        let node_fanout = &self.node_fanout;
        for n in self.topology.nodes_mut() {
            let fanout = node_fanout.get(&n.id).copied().unwrap_or(0.0).max(0.0);
            n.utilization = (fanout / node_cap).min(1.0);
        }

        // 1-minute node reports into the Brain (overload alarms included).
        let reports: Vec<NodeReport> = self
            .topology
            .routable_node_ids()
            .filter_map(|n| livenet_topology::view::report_from_topology(&self.topology, n, now))
            .collect();
        // Single mode absorbs them directly and runs the 10-minute PIB
        // recompute check; replicated mode commits the whole batch as one
        // Paxos decree and every replica applies it (recompute included).
        self.brain.minute_report(&reports, now);

        // Aggregation: hour roll, day roll, throughput peak.
        if hour != self.current_hour {
            self.flush_hour();
            self.current_hour = hour;
        }
        self.hour_loss_sum += if loss_n > 0 { loss_sum / loss_n as f64 } else { 0.0 };
        self.hour_loss_n += 1;
        if day != self.current_day {
            self.flush_day();
            self.current_day = day;
        }
        let throughput = self.active.len() as f64 * self.bitrate_bps;
        self.day_peak_bps = self.day_peak_bps.max(throughput);
    }

    fn flush_hour(&mut self) {
        while self.report.hourly_loss.len() < self.current_hour as usize {
            self.report.hourly_loss.push(f64::NAN);
        }
        let mean = if self.hour_loss_n > 0 {
            self.hour_loss_sum / self.hour_loss_n as f64
        } else {
            f64::NAN
        };
        self.report.hourly_loss.push(mean);
        self.hour_loss_sum = 0.0;
        self.hour_loss_n = 0;
    }

    fn flush_day(&mut self) {
        while self.report.daily_peak_throughput.len() < self.current_day as usize {
            self.report.daily_peak_throughput.push(0.0);
            self.report.daily_unique_paths.push(0);
            self.day_path_log.push(HashSet::new());
        }
        self.report.daily_peak_throughput.push(self.day_peak_bps);
        self.report
            .daily_unique_paths
            .push(self.day_paths.len());
        self.day_path_log
            .push(std::mem::take(&mut self.day_paths));
        self.day_peak_bps = 0.0;
    }

    fn poisson(&mut self, lambda: f64) -> u16 {
        // Knuth's method; lambda is small (< ~3) in all our uses.
        let l = (-lambda).exp();
        let mut k = 0u16;
        let mut p = 1.0;
        loop {
            p *= self.rng.f64();
            if p <= l || k > 50 {
                return k;
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::summarize;

    fn smoke_report(seed: u64) -> FleetReport {
        FleetSim::new(FleetConfig::smoke(seed)).run()
    }

    #[test]
    fn smoke_run_produces_paired_sessions() {
        let r = smoke_report(1);
        assert!(r.livenet.len() > 500, "only {}", r.livenet.len());
        assert_eq!(r.livenet.len(), r.hier.len());
    }

    #[test]
    fn livenet_beats_hier_on_the_headline_metrics() {
        let r = smoke_report(2);
        let ln = summarize(&r.livenet);
        let h = summarize(&r.hier);
        assert!(
            ln.median_cdn_delay_ms < h.median_cdn_delay_ms * 0.7,
            "LiveNet {} vs Hier {}",
            ln.median_cdn_delay_ms,
            h.median_cdn_delay_ms
        );
        assert!(ln.median_path_len <= 2.0);
        assert_eq!(h.median_path_len, 4.0);
        assert!(ln.median_streaming_delay_ms < h.median_streaming_delay_ms);
        assert!(ln.zero_stall_ratio > h.zero_stall_ratio);
        assert!(ln.fast_startup_ratio >= h.fast_startup_ratio);
    }

    #[test]
    fn hier_paths_are_always_four_hops() {
        let r = smoke_report(3);
        assert!(r.hier.iter().all(|s| s.path_len == 4));
    }

    #[test]
    fn livenet_paths_respect_computed_bound_mostly() {
        let r = smoke_report(4);
        // Long chains can exceed 3 but are bounded by the switch threshold.
        let too_long = r
            .livenet
            .iter()
            .filter(|s| usize::from(s.path_len) > FleetConfig::smoke(4).long_chain_switch_hops)
            .count();
        assert_eq!(too_long, 0);
        let over3 = r.livenet.iter().filter(|s| s.path_len > 3).count() as f64
            / r.livenet.len() as f64;
        assert!(over3 < 0.05, "{over3}");
    }

    #[test]
    fn local_hits_happen_and_reduce_first_packet_delay() {
        let r = smoke_report(5);
        let hits: Vec<&SessionRecord> =
            r.livenet.iter().filter(|s| s.outcome.is_local_hit()).collect();
        let misses: Vec<&SessionRecord> =
            r.livenet.iter().filter(|s| !s.outcome.is_local_hit()).collect();
        assert!(!hits.is_empty());
        assert!(!misses.is_empty());
        let mean = |v: &[&SessionRecord]| {
            v.iter().map(|s| f64::from(s.first_packet_ms)).sum::<f64>() / v.len() as f64
        };
        assert!(mean(&hits) < mean(&misses) / 2.0);
        // Hits carry no brain response time.
        assert!(hits.iter().all(|s| s.outcome.response_ms().is_none()));
    }

    #[test]
    fn report_telemetry_mirrors_session_records() {
        let r = smoke_report(5);
        let snap = &r.telemetry;
        assert_eq!(snap.counter("fleet.sessions"), r.livenet.len() as u64);
        let hits = r.livenet.iter().filter(|s| s.outcome.is_local_hit()).count() as u64;
        assert_eq!(snap.counter("fleet.local_hits"), hits);
        let brain_served = r
            .livenet
            .iter()
            .filter(|s| matches!(s.outcome, DecisionOutcome::Brain { .. }))
            .count() as u64;
        assert_eq!(snap.counter("fleet.brain_served"), brain_served);
        assert_eq!(
            snap.hist("stage.startup_ms").unwrap().count,
            r.livenet.len() as u64
        );
        // Brain lifetime counters flow through record_telemetry.
        assert_eq!(snap.counter("brain.recompute_rounds"), r.recompute_rounds);
        assert!(snap.counter("brain.requests_served") > 0);
        assert!(snap.gauge("fleet.peak_viewers").unwrap() > 0.0);
    }

    #[test]
    fn outage_telemetry_counts_faults_and_recoveries() {
        let r = FleetSim::new(outage_config(11)).run();
        let snap = &r.telemetry;
        assert_eq!(snap.counter("fleet.faults_injected"), r.faults_injected);
        assert_eq!(
            snap.counter("fleet.recoveries"),
            r.recoveries_livenet.len() as u64
        );
        let rec = snap.hist("stage.recovery_ms").unwrap();
        assert_eq!(rec.count, r.recoveries_livenet.len() as u64);
        let mean = rec.mean().unwrap();
        assert!(mean > 1000.0, "recovery means {mean:.1} ms");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = smoke_report(7);
        let b = smoke_report(7);
        assert_eq!(a.livenet.len(), b.livenet.len());
        for (x, y) in a.livenet.iter().zip(&b.livenet) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn refcounts_drain_after_run() {
        let mut sim = FleetSim::new(FleetConfig::smoke(8));
        // Run through the shared driver (the same code `run_collect`
        // uses), keeping the sim alive to inspect internal state.
        sim.seed_events();
        sim.drive();
        // After all departures + stream ends, presence should be empty and
        // link session counts ≈ 0.
        assert!(sim.presence.is_empty(), "{} presences leak", sim.presence.len());
        for (&(f, t), &c) in &sim.link_sessions {
            assert!(
                c.abs() < 1e-6,
                "link ({f},{t}) leaked {c} sessions"
            );
        }
        // The incremental hier load must drain with the refcounts it
        // mirrors.
        for (&n, &l) in &sim.hier_node_load {
            assert_eq!(l, 0, "node {n} leaked hier load {l}");
        }
    }

    fn outage_config(seed: u64) -> FleetConfig {
        FleetConfigBuilder::from_config(FleetConfig::smoke(seed))
            .fault(FleetFault::RegionOutage {
                at_secs: 8 * 3600,
                down_for_secs: 1800,
                country: 0,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn region_outage_triggers_recoveries_and_rehoming() {
        let r = FleetSim::new(outage_config(11)).run();
        assert_eq!(r.faults_injected, 1);
        assert!(!r.recoveries_livenet.is_empty(), "no LiveNet failovers");
        assert!(!r.recoveries_hier.is_empty(), "no Hier failovers");
        // §6.5 shape: LiveNet's fast path dominates and restores playback
        // in about one RTT after detection; Hier is multi-second.
        let fast = r.recoveries_livenet.iter().filter(|x| x.fast).count();
        assert!(fast * 2 > r.recoveries_livenet.len(), "fast path rare");
        let median = |mut v: Vec<f32>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let ln_fast =
            median(r.recoveries_livenet.iter().filter(|x| x.fast).map(|x| x.recover_ms).collect());
        let h = median(r.recoveries_hier.iter().map(|x| x.recover_ms).collect());
        assert!(ln_fast < 200.0, "LiveNet fast recovery {ln_fast} ms");
        assert!(h > 2000.0, "Hier recovery {h} ms");
    }

    #[test]
    fn outage_runs_are_deterministic() {
        let a = FleetSim::new(outage_config(12)).run();
        let b = FleetSim::new(outage_config(12)).run();
        assert!(a.bit_identical(&b));
    }

    #[test]
    fn random_faults_fire_and_sessions_still_pair() {
        let cfg = FleetConfigBuilder::from_config(FleetConfig::smoke(13))
            .random_faults(3.0, (300, 1200))
            .build()
            .unwrap();
        let r = FleetSim::new(cfg).run();
        assert!(r.faults_injected >= 3, "{}", r.faults_injected);
        assert_eq!(r.livenet.len(), r.hier.len());
    }

    #[test]
    fn fault_free_default_reports_no_recoveries() {
        let r = smoke_report(14);
        assert_eq!(r.faults_injected, 0);
        assert!(r.recoveries_livenet.is_empty());
        assert!(r.recoveries_hier.is_empty());
    }

    #[test]
    fn hourly_loss_stays_under_paper_cap() {
        let r = smoke_report(9);
        for &l in r.hourly_loss.iter().filter(|l| !l.is_nan()) {
            assert!(l <= 0.00175, "loss {l}");
            assert!(l > 0.0);
        }
    }
}
