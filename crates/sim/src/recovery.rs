//! Packet-level failure-recovery scenario (§6.5).
//!
//! A diamond overlay — producer P, primary relay B, backup relay D and a
//! consumer C with one viewer — streams for a while, then B crashes (via
//! the emulator's fault layer). The consumer detects upstream silence and
//! recovers one of two ways:
//!
//! * **Fast path** — C holds a Brain-provisioned backup path `P→D→C` in
//!   its path cache ([`OverlayNode::install_paths`]); failover is a single
//!   subscribe RTT after detection, and the producer's GoP cache backfills
//!   the gap.
//! * **Slow path** — no cached backup: C raises
//!   [`NodeEvent::PathRequestNeeded`] and must wait a full control-plane
//!   round trip (Brain detects, recomputes around the dead node, replies)
//!   before switching — multi-second, the Hier-CDN-like baseline shape.
//!
//! [`OverlayNode::install_paths`]: livenet_node::OverlayNode::install_paths
//! [`NodeEvent::PathRequestNeeded`]: livenet_node::NodeEvent

use crate::adapter::{client_host_id, EmuHost};
use bytes::Bytes;
use livenet_emu::{FaultKind, LinkConfig, LossModel, NetSim};
use livenet_media::{GopConfig, VideoEncoder};
use livenet_node::{NodeConfig, NodeEvent, OverlayNode};
use livenet_types::{Bandwidth, ClientId, NodeId, SimDuration, SimTime, StreamId};

/// Stream id used by recovery runs.
pub const RECOVERY_STREAM: StreamId = StreamId(901);

/// Which recovery path the consumer exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Cached backup path: failover ≈ detection + one subscribe RTT.
    Fast,
    /// Brain round trip: failover waits out the control-plane latency.
    Slow,
}

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct RecoveryScenario {
    /// Fast (cached backup) or slow (Brain round trip) recovery.
    pub mode: RecoveryMode,
    /// RNG seed.
    pub seed: u64,
    /// When the primary relay crashes.
    pub crash_at: SimTime,
    /// Broadcast duration.
    pub duration: SimDuration,
    /// Control-plane round trip charged on the slow path (detect → new
    /// path installed). The paper reports multi-second Brain reaction.
    pub brain_rtt: SimDuration,
    /// One-way delay of each overlay link.
    pub link_delay: SimDuration,
}

impl RecoveryScenario {
    /// Default scenario for the given mode and seed.
    pub fn new(mode: RecoveryMode, seed: u64) -> Self {
        RecoveryScenario {
            mode,
            seed,
            crash_at: SimTime::from_secs(5),
            duration: SimDuration::from_secs(20),
            brain_rtt: SimDuration::from_millis(2500),
            link_delay: SimDuration::from_millis(10),
        }
    }
}

/// What happened during the failover.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryOutcome {
    /// Crash → consumer declares the upstream dead (liveness timeout).
    pub detect_ms: f64,
    /// Crash → first frame rendered over the new path.
    pub restore_ms: f64,
    /// Encoder frames never rendered at the viewer (lost to the outage).
    pub frames_lost: u64,
    /// Frames the viewer did render.
    pub frames_rendered: u64,
    /// The consumer re-requested a path from the Brain (slow path taken).
    pub asked_brain: bool,
}

/// Run the scenario to completion.
pub fn run_recovery(sc: &RecoveryScenario) -> RecoveryOutcome {
    // Host ids: 1 = producer P, 2 = primary relay B, 3 = consumer C,
    // 4 = backup relay D. Links: P–B, B–C (primary), P–D, D–C (backup).
    let p = NodeId::new(1);
    let b = NodeId::new(2);
    let c = NodeId::new(3);
    let d = NodeId::new(4);
    let mut sim: NetSim<EmuHost> = NetSim::new(sc.seed);

    let rtt = sc.link_delay * 2;
    for &id in &[p, b, c, d] {
        let mut ncfg = NodeConfig::new(id);
        ncfg.startup_burst = true;
        let mut node = OverlayNode::new(ncfg);
        for &peer in &[p, b, c, d] {
            if peer != id {
                node.set_neighbor_rtt(peer, rtt);
            }
        }
        sim.add_host(id, EmuHost::node(node));
    }
    let lc = LinkConfig {
        delay: sc.link_delay,
        bandwidth: Bandwidth::from_gbps(1),
        queue_bytes: 4 << 20,
        loss: LossModel::None,
        jitter: SimDuration::ZERO,
    };
    sim.add_duplex(p, b, lc);
    sim.add_duplex(b, c, lc);
    sim.add_duplex(p, d, lc);
    sim.add_duplex(d, c, lc);

    sim.with_host(p, |h, _| {
        if let Some(s) = h.as_node_mut() {
            s.node.register_producer(RECOVERY_STREAM, None);
        }
    });

    // Viewer at C, joining just before the stream starts.
    let client = ClientId::new(1);
    let chost = client_host_id(client);
    let gop = GopConfig::default();
    sim.add_host(
        chost,
        EmuHost::client(
            client,
            SimTime::from_millis(100),
            gop.fps,
            SimDuration::from_millis(300),
        ),
    );
    let access = LinkConfig {
        delay: SimDuration::from_millis(15),
        bandwidth: Bandwidth::from_mbps(50),
        queue_bytes: 1 << 20,
        loss: LossModel::None,
        jitter: SimDuration::ZERO,
    };
    sim.add_duplex(c, chost, access);

    let primary = vec![p, b, c];
    let backup = vec![p, d, c];
    sim.with_host(c, |h, ctx| {
        if let Some(s) = h.as_node_mut() {
            let mut actions = Vec::new();
            s.node.client_attach(
                ctx.now(),
                client,
                RECOVERY_STREAM,
                Some(Bandwidth::from_mbps(50)),
                Some(&primary),
                &mut actions,
            );
            crate::adapter::apply_node_actions(s, ctx, actions);
        }
    });
    if sc.mode == RecoveryMode::Fast {
        sim.with_host(c, |h, _| {
            if let Some(s) = h.as_node_mut() {
                s.node.install_paths(RECOVERY_STREAM, std::slice::from_ref(&backup));
            }
        });
    }

    sim.schedule_fault(sc.crash_at, FaultKind::NodeCrash { node: b });

    // Encoder-driven loop; in slow mode the driver plays the Brain,
    // installing the recomputed path one control RTT after the node asks.
    let start = SimTime::from_millis(50);
    let mut encoder = VideoEncoder::new(RECOVERY_STREAM, gop, Bandwidth::from_mbps(2), start);
    let end = start + sc.duration;
    let mut brain_reply_at: Option<SimTime> = None;
    let mut brain_replied = false;
    let mut asked_brain = false;
    let mut frames_sent: u64 = 0;
    loop {
        let mut next = encoder.next_capture_time();
        if let Some(at) = brain_reply_at {
            if !brain_replied && at < next {
                next = at;
            }
        }
        if next >= end {
            break;
        }
        sim.run_until(next);
        if brain_reply_at == Some(next) && !brain_replied {
            brain_replied = true;
            let new_path = backup.clone();
            sim.with_host(c, |h, ctx| {
                if let Some(s) = h.as_node_mut() {
                    let actions = s.node.switch_path(ctx.now(), RECOVERY_STREAM, &new_path);
                    crate::adapter::apply_node_actions(s, ctx, actions);
                }
            });
            continue;
        }
        let frame = encoder.next_frame();
        frames_sent += 1;
        let payload = Bytes::from(vec![0u8; frame.size_bytes as usize]);
        sim.with_host(p, |h, ctx| {
            if let Some(s) = h.as_node_mut() {
                let actions = s.node.ingest_frame(ctx.now(), &frame, &payload);
                crate::adapter::apply_node_actions(s, ctx, actions);
            }
        });
        // Poll C for a slow-path request; the "Brain" answers one control
        // RTT later with a path routed around the dead relay.
        if brain_reply_at.is_none() {
            if let Some(host) = sim.host(c) {
                if let Some(s) = host.as_node() {
                    if s.events
                        .iter()
                        .any(|(_, e)| matches!(e, NodeEvent::PathRequestNeeded { .. }))
                    {
                        asked_brain = true;
                        brain_reply_at = Some(sim.now() + sc.brain_rtt);
                    }
                }
            }
        }
    }
    sim.run_until(end + SimDuration::from_secs(2));

    // Harvest: detection time from C's UpstreamDead event, restoration
    // from the first client frame rendered after detection.
    let mut detect: Option<SimTime> = None;
    if let Some(host) = sim.host(c) {
        if let Some(s) = host.as_node() {
            for (at, e) in &s.events {
                if let NodeEvent::UpstreamDead { upstream, .. } = e {
                    if *upstream == b && detect.is_none() {
                        detect = Some(*at);
                    }
                }
            }
        }
    }
    let detect_at = detect.unwrap_or(sc.crash_at);
    let mut restore_at: Option<SimTime> = None;
    let mut rendered: u64 = 0;
    if let Some(host) = sim.host(chost) {
        if let Some(cs) = host.as_client() {
            rendered = cs.frames.len() as u64;
            for &(at, _, _) in &cs.frames {
                if at > detect_at && restore_at.is_none() {
                    restore_at = Some(at);
                }
            }
        }
    }
    let restore_at = restore_at.unwrap_or(end);
    RecoveryOutcome {
        detect_ms: (detect_at.as_secs_f64() - sc.crash_at.as_secs_f64()) * 1000.0,
        restore_ms: (restore_at.as_secs_f64() - sc.crash_at.as_secs_f64()) * 1000.0,
        frames_lost: frames_sent.saturating_sub(rendered),
        frames_rendered: rendered,
        asked_brain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_recovery_is_detection_plus_one_rtt() {
        let out = run_recovery(&RecoveryScenario::new(RecoveryMode::Fast, 7));
        assert!(!out.asked_brain, "fast path must not ask the Brain");
        // Detection is the liveness timeout (2.5 s ± one scan interval).
        assert!(out.detect_ms >= 2000.0 && out.detect_ms <= 3500.0, "{}", out.detect_ms);
        // Restoration trails detection by roughly one subscribe RTT plus
        // burst serving — well under half a second.
        assert!(
            out.restore_ms - out.detect_ms < 500.0,
            "fast gap {} ms",
            out.restore_ms - out.detect_ms
        );
        assert!(out.frames_rendered > 250, "{}", out.frames_rendered);
    }

    #[test]
    fn slow_recovery_waits_out_the_brain_round_trip() {
        let out = run_recovery(&RecoveryScenario::new(RecoveryMode::Slow, 7));
        assert!(out.asked_brain, "slow path must ask the Brain");
        // Restoration trails detection by at least the control RTT.
        assert!(
            out.restore_ms - out.detect_ms >= 2000.0,
            "slow gap {} ms",
            out.restore_ms - out.detect_ms
        );
        assert!(out.frames_rendered > 200, "{}", out.frames_rendered);
    }

    #[test]
    fn fast_loses_fewer_frames_than_slow() {
        let fast = run_recovery(&RecoveryScenario::new(RecoveryMode::Fast, 11));
        let slow = run_recovery(&RecoveryScenario::new(RecoveryMode::Slow, 11));
        assert!(
            fast.frames_lost < slow.frames_lost,
            "fast {} vs slow {}",
            fast.frames_lost,
            slow.frames_lost
        );
    }

    #[test]
    fn recovery_outcomes_are_deterministic() {
        let a = run_recovery(&RecoveryScenario::new(RecoveryMode::Fast, 3));
        let b = run_recovery(&RecoveryScenario::new(RecoveryMode::Fast, 3));
        assert_eq!(a.detect_ms.to_bits(), b.detect_ms.to_bits());
        assert_eq!(a.restore_ms.to_bits(), b.restore_ms.to_bits());
        assert_eq!(a.frames_lost, b.frames_lost);
    }
}
