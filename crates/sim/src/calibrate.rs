//! Latency constants shared by the fleet simulator.
//!
//! The per-node processing figures are calibrated against two anchors in
//! the paper: Fig. 11's length-0 paths (a single node acting as both
//! producer and consumer) show a median CDN path delay around 120–150 ms —
//! so single-node processing, dominated by the producer's media pipeline,
//! is on that order; and Table 1's LiveNet median of 188 ms over mostly
//! 2-hop paths pins the incremental relay/consumer cost. The packet-level
//! simulation ([`crate::packetsim`]) validates the recovery-latency terms.

use livenet_types::SimDuration;
use serde::{Deserialize, Serialize};

/// Calibrated latency constants (milliseconds unless noted).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyConstants {
    /// Producer-node media processing (ingest, validation, re-packetize).
    pub producer_processing_ms: f64,
    /// Relay-node fast-path processing + pacer queueing.
    pub relay_processing_ms: f64,
    /// Consumer-node processing (per-client control, queueing).
    pub consumer_processing_ms: f64,
    /// NACK-based recovery: expected extra delay contributed per unit of
    /// link loss (multiplied by `loss × (scan/2 + RTT)` per hop).
    pub recovery_scan_ms: f64,
    /// First-mile (broadcaster→producer incl. encoding) median.
    pub first_mile_ms: f64,
    /// Last-mile (consumer→viewer incl. decoding) median.
    pub last_mile_ms: f64,
    /// Fixed client playback buffer (Taobao Live: 300 ms, §7.1).
    pub player_buffer_ms: f64,
    /// Brain path-lookup hash-table cost (paper §4.4: "a few ms").
    pub brain_lookup_ms: f64,
    /// Consumer-local processing when serving a request from cache.
    pub local_serve_ms: f64,
}

impl Default for LatencyConstants {
    fn default() -> Self {
        LatencyConstants {
            producer_processing_ms: 118.0,
            relay_processing_ms: 28.0,
            consumer_processing_ms: 36.0,
            recovery_scan_ms: 25.0, // half the 50 ms scan interval
            first_mile_ms: 160.0,
            last_mile_ms: 150.0,
            player_buffer_ms: 300.0,
            brain_lookup_ms: 5.0,
            local_serve_ms: 33.0,
        }
    }
}

impl LatencyConstants {
    /// Expected recovery penalty for one hop with the given loss and RTT:
    /// `loss × (scan/2 + RTT)` — a lost packet waits on average half a
    /// scan interval to be detected, then one RTT for the retransmission.
    pub fn recovery_penalty_ms(&self, loss: f64, rtt: SimDuration) -> f64 {
        loss.clamp(0.0, 1.0) * (self.recovery_scan_ms + rtt.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_length_path_sits_in_fig11_band() {
        // len-0 path: producer + consumer on one node.
        let c = LatencyConstants::default();
        let d = c.producer_processing_ms + c.consumer_processing_ms;
        assert!((100.0..160.0).contains(&d), "{d}");
    }

    #[test]
    fn two_hop_intra_path_near_table1_median() {
        let c = LatencyConstants::default();
        // Typical intra-national 2-hop: 2 links × ~10 ms one-way.
        let d = c.producer_processing_ms
            + c.relay_processing_ms
            + c.consumer_processing_ms
            + 2.0 * 10.0;
        assert!((150.0..220.0).contains(&d), "{d}");
    }

    #[test]
    fn recovery_penalty_scales_with_loss() {
        let c = LatencyConstants::default();
        assert_eq!(c.recovery_penalty_ms(0.0, SimDuration::from_millis(40)), 0.0);
        let p = c.recovery_penalty_ms(0.01, SimDuration::from_millis(40));
        assert!((p - 0.65).abs() < 1e-9, "{p}");
    }
}
