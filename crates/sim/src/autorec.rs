//! Multi-supplier RTX recovery scenario ("AutoRec", DESIGN.md §14).
//!
//! A diamond overlay — producer P feeding primary relay B and backup relay
//! D, consumer C with one viewer — streams while the P–B leg is
//! *degraded*: long propagation delay (the reason a backup path exists at
//! all) plus random loss in both directions. Every hole C sees is also a
//! hole at B (the B–C link is clean), and B's own recovery inherently
//! costs the fat P–B round trip, so C's NACK to B always arrives while B
//! is still missing the packet:
//!
//! * **Multi-supplier** (`alt_suppliers > 0`) — on the cache miss B
//!   replies with an RTX-miss and C immediately re-NACKs D — warm thanks
//!   to its own viewer and reachable over short clean links — closing the
//!   hole in tens of ms. Parking on B stays armed as the backstop, so
//!   this mode is never slower than the baseline.
//! * **Single-supplier baseline** (`alt_suppliers == 0`) — C parks on B
//!   and waits out B's full recovery round trip; holes whose NACK or
//!   retransmission is lost on the degraded leg slip further, or are
//!   abandoned outright once the retry budget runs dry.

use crate::adapter::{client_host_id, EmuHost};
use bytes::Bytes;
use livenet_emu::{LinkConfig, LossModel, NetSim};
use livenet_media::{GopConfig, VideoEncoder};
use livenet_node::{NodeConfig, NodeEvent, OverlayNode};
use livenet_types::{Bandwidth, ClientId, NodeId, SimDuration, SimTime, StreamId};

/// Stream id used by AutoRec runs.
pub const AUTOREC_STREAM: StreamId = StreamId(902);

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct AutorecScenario {
    /// Alternate suppliers the consumer may chase on a primary cache miss
    /// (`NodeConfig::rtx_alt_suppliers`); `0` is the single-supplier
    /// baseline.
    pub alt_suppliers: usize,
    /// RNG seed.
    pub seed: u64,
    /// Broadcast duration.
    pub duration: SimDuration,
    /// One-way delay of the healthy overlay links (B–C, P–D, D–C).
    pub link_delay: SimDuration,
    /// One-way delay of the degraded P–B leg. The gap between this and
    /// `link_delay` is what the alternate supplier wins back: B's own
    /// recovery costs a P–B round trip, the chase via D costs short hops.
    pub primary_delay: SimDuration,
    /// Loss model of the P–B link (applied in both directions, so NACKs
    /// and retransmissions die there too).
    pub loss: LossModel,
}

impl AutorecScenario {
    /// Default scenario for the given supplier count and seed: 20 s of
    /// 2 Mbps video over an 80 ms / 3 %-loss primary leg with 10 ms
    /// healthy links.
    pub fn new(alt_suppliers: usize, seed: u64) -> Self {
        AutorecScenario {
            alt_suppliers,
            seed,
            duration: SimDuration::from_secs(20),
            link_delay: SimDuration::from_millis(10),
            primary_delay: SimDuration::from_millis(80),
            loss: LossModel::Bernoulli { p: 0.03 },
        }
    }
}

/// One hole recovery observed at the consumer.
#[derive(Debug, Clone, Copy)]
pub struct AutorecRecord {
    /// Sim time the hole closed, in ms.
    pub at_ms: f32,
    /// Detection-to-recovery latency, in ms.
    pub recover_ms: f32,
    /// The closing retransmission came from an alternate supplier.
    pub alternate: bool,
}

/// Everything harvested from one run.
#[derive(Debug, Clone, Default)]
pub struct AutorecOutcome {
    /// Hole recoveries at the consumer, in event order.
    pub records: Vec<AutorecRecord>,
    /// Consumer: sequences re-NACKed to alternates after an RTX-miss.
    pub alternate_requests: u64,
    /// Consumer: holes closed by an alternate's retransmission.
    pub alternate_recovered: u64,
    /// Consumer: cache-missed sequences with no live alternate.
    pub alternate_exhausted: u64,
    /// Primary relay: NACKed sequences it could not serve.
    pub primary_misses: u64,
    /// Primary relay: parked waiters evicted by reset purge or TTL sweep.
    pub primary_pending_expired: u64,
    /// Consumer: lost sequences NACKed (per seq).
    pub consumer_nack_seqs: u64,
    /// Consumer: NACK messages sent.
    pub consumer_nack_batches: u64,
    /// Frames the viewer at the consumer rendered.
    pub frames_rendered: u64,
}

impl AutorecOutcome {
    /// Median detection-to-recovery latency over every record, `NaN` when
    /// there are none.
    pub fn median_recover_ms(&self) -> f64 {
        let mut v: Vec<f32> = self.records.iter().map(|r| r.recover_ms).collect();
        if v.is_empty() {
            return f64::NAN;
        }
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        f64::from(v[(v.len() - 1) / 2])
    }

    /// Bit-exact equality — the determinism contract the bench asserts
    /// across worker-thread counts (floats compared via their bits).
    pub fn bit_identical(&self, other: &Self) -> bool {
        self.records.len() == other.records.len()
            && self
                .records
                .iter()
                .zip(&other.records)
                .all(|(a, b)| {
                    a.at_ms.to_bits() == b.at_ms.to_bits()
                        && a.recover_ms.to_bits() == b.recover_ms.to_bits()
                        && a.alternate == b.alternate
                })
            && self.alternate_requests == other.alternate_requests
            && self.alternate_recovered == other.alternate_recovered
            && self.alternate_exhausted == other.alternate_exhausted
            && self.primary_misses == other.primary_misses
            && self.primary_pending_expired == other.primary_pending_expired
            && self.consumer_nack_seqs == other.consumer_nack_seqs
            && self.consumer_nack_batches == other.consumer_nack_batches
            && self.frames_rendered == other.frames_rendered
    }
}

/// Run the scenario to completion.
pub fn run_autorec(sc: &AutorecScenario) -> AutorecOutcome {
    // Host ids: 1 = producer P, 2 = primary relay B, 3 = consumer C,
    // 4 = backup relay D. Links: P–B (bursty), B–C, P–D, D–C (clean).
    let p = NodeId::new(1);
    let b = NodeId::new(2);
    let c = NodeId::new(3);
    let d = NodeId::new(4);
    let mut sim: NetSim<EmuHost> = NetSim::new(sc.seed);

    let rtt = sc.link_delay * 2;
    for &id in &[p, b, c, d] {
        let mut ncfg = NodeConfig::new(id);
        ncfg.rtx_alt_suppliers = sc.alt_suppliers;
        let mut node = OverlayNode::new(ncfg);
        for &peer in &[p, b, c, d] {
            if peer != id {
                let peer_rtt = if (id, peer) == (p, b) || (id, peer) == (b, p) {
                    sc.primary_delay * 2
                } else {
                    rtt
                };
                node.set_neighbor_rtt(peer, peer_rtt);
            }
        }
        sim.add_host(id, EmuHost::node(node));
    }
    let clean = LinkConfig {
        delay: sc.link_delay,
        bandwidth: Bandwidth::from_gbps(1),
        queue_bytes: 4 << 20,
        loss: LossModel::None,
        jitter: SimDuration::ZERO,
    };
    let degraded = LinkConfig {
        delay: sc.primary_delay,
        loss: sc.loss,
        ..clean
    };
    sim.add_duplex(p, b, degraded);
    sim.add_duplex(b, c, clean);
    sim.add_duplex(p, d, clean);
    sim.add_duplex(d, c, clean);

    sim.with_host(p, |h, _| {
        if let Some(s) = h.as_node_mut() {
            s.node.register_producer(AUTOREC_STREAM, None);
        }
    });

    let gop = GopConfig::default();
    let access = LinkConfig {
        delay: SimDuration::from_millis(15),
        bandwidth: Bandwidth::from_mbps(50),
        queue_bytes: 1 << 20,
        loss: LossModel::None,
        jitter: SimDuration::ZERO,
    };
    // Viewer 1 at C over the primary path, with the backup path cached.
    let viewer = ClientId::new(1);
    let vhost = client_host_id(viewer);
    sim.add_host(
        vhost,
        EmuHost::client(
            viewer,
            SimTime::from_millis(100),
            gop.fps,
            SimDuration::from_millis(300),
        ),
    );
    sim.add_duplex(c, vhost, access);
    let primary = vec![p, b, c];
    let backup = vec![p, d, c];
    sim.with_host(c, |h, ctx| {
        if let Some(s) = h.as_node_mut() {
            let mut actions = Vec::new();
            s.node.client_attach(
                ctx.now(),
                viewer,
                AUTOREC_STREAM,
                Some(Bandwidth::from_mbps(50)),
                Some(&primary),
                &mut actions,
            );
            s.node
                .install_paths(AUTOREC_STREAM, std::slice::from_ref(&backup));
            crate::adapter::apply_node_actions(s, ctx, actions);
        }
    });
    // Viewer 2 at D keeps the alternate supplier's cache warm.
    let warmer = ClientId::new(2);
    let whost = client_host_id(warmer);
    sim.add_host(
        whost,
        EmuHost::client(
            warmer,
            SimTime::from_millis(100),
            gop.fps,
            SimDuration::from_millis(300),
        ),
    );
    sim.add_duplex(d, whost, access);
    let warm_path = vec![p, d];
    sim.with_host(d, |h, ctx| {
        if let Some(s) = h.as_node_mut() {
            let mut actions = Vec::new();
            s.node.client_attach(
                ctx.now(),
                warmer,
                AUTOREC_STREAM,
                Some(Bandwidth::from_mbps(50)),
                Some(&warm_path),
                &mut actions,
            );
            crate::adapter::apply_node_actions(s, ctx, actions);
        }
    });

    // Encoder-driven broadcast.
    let start = SimTime::from_millis(50);
    let mut encoder = VideoEncoder::new(AUTOREC_STREAM, gop, Bandwidth::from_mbps(2), start);
    let end = start + sc.duration;
    loop {
        let next = encoder.next_capture_time();
        if next >= end {
            break;
        }
        sim.run_until(next);
        let frame = encoder.next_frame();
        let payload = Bytes::from(vec![0u8; frame.size_bytes as usize]);
        sim.with_host(p, |h, ctx| {
            if let Some(s) = h.as_node_mut() {
                let actions = s.node.ingest_frame(ctx.now(), &frame, &payload);
                crate::adapter::apply_node_actions(s, ctx, actions);
            }
        });
    }
    sim.run_until(end + SimDuration::from_secs(2));

    // Harvest.
    let mut out = AutorecOutcome::default();
    if let Some(host) = sim.host(c) {
        if let Some(s) = host.as_node() {
            for (at, e) in &s.events {
                if let NodeEvent::HoleRecovered {
                    after, alternate, ..
                } = e
                {
                    out.records.push(AutorecRecord {
                        at_ms: (at.as_secs_f64() * 1000.0) as f32,
                        recover_ms: (after.as_secs_f64() * 1000.0) as f32,
                        alternate: *alternate,
                    });
                }
            }
            out.alternate_requests = s.node.stats.rtx_alternate_requests;
            out.alternate_recovered = s.node.stats.rtx_alternate_recovered;
            out.alternate_exhausted = s.node.stats.rtx_alternate_exhausted;
            out.consumer_nack_seqs = s.node.stats.nacks_sent;
            out.consumer_nack_batches = s.node.stats.nack_batches;
        }
    }
    if let Some(host) = sim.host(b) {
        if let Some(s) = host.as_node() {
            out.primary_misses = s.node.stats.rtx_unavailable;
            out.primary_pending_expired = s.node.stats.rtx_pending_expired;
        }
    }
    if let Some(host) = sim.host(vhost) {
        if let Some(cs) = host.as_client() {
            out.frames_rendered = cs.frames.len() as u64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_leg_produces_misses_and_recoveries() {
        let out = run_autorec(&AutorecScenario::new(1, 5));
        assert!(out.primary_misses > 0, "B never cache-missed");
        assert!(out.records.len() > 50, "too few recoveries at C");
        // 20 s at 15 fps = 300 frames; nearly all must survive the loss.
        assert!(out.frames_rendered > 290, "{}", out.frames_rendered);
    }

    #[test]
    fn alternate_supplier_beats_the_primary_round_trip() {
        let alt = run_autorec(&AutorecScenario::new(1, 5));
        let base = run_autorec(&AutorecScenario::new(0, 5));
        assert!(
            alt.alternate_recovered > 0,
            "multi-supplier mode never recovered via the alternate: {alt:?}"
        );
        assert_eq!(
            base.alternate_recovered, 0,
            "baseline must not chase alternates"
        );
        assert!(base.records.iter().all(|r| !r.alternate));
        // The chase over short clean links beats the primary's fat round
        // trip by a wide margin, not a hair.
        assert!(
            alt.median_recover_ms() < base.median_recover_ms() / 2.0,
            "alternate median {} !< half of baseline median {}",
            alt.median_recover_ms(),
            base.median_recover_ms()
        );
    }

    #[test]
    fn outcomes_are_deterministic() {
        for alts in [0usize, 1] {
            let a = run_autorec(&AutorecScenario::new(alts, 9));
            let b = run_autorec(&AutorecScenario::new(alts, 9));
            assert!(a.bit_identical(&b), "alts={alts} diverged");
        }
    }
}
