//! Taobao-Live-shaped synthetic workload (DESIGN.md §1 substitution).
//!
//! Reproduces the workload *shape* the evaluation depends on:
//!
//! * Zipf channel popularity ("flash sale" head, long tail),
//! * a diurnal arrival cycle peaking 20:00–23:00 (the pattern behind
//!   Fig. 10b/10c),
//! * short view durations ("views often last a short period", §3),
//! * mostly-domestic viewing with a small international share (Table 2),
//! * channel churn ("live streams come and go often"),
//! * festival spikes (Double 12: ~2× peak throughput, Fig. 14).

use livenet_types::{DetRng, NodeId, SimDuration, SimTime, StreamId, ZipfTable};
use serde::{Deserialize, Serialize};

/// Hour-of-day demand multiplier, peaking in the evening.
///
/// Shaped after Fig. 10b's diurnal hit-ratio curve: lowest 3–6 am,
/// highest 20:00–23:00.
pub fn diurnal_factor(hour_of_day: f64) -> f64 {
    // Two-phase cosine: deep night trough + evening peak.
    let h = hour_of_day.rem_euclid(24.0);
    // Base daily wave centred at 15:00 …
    let wave = ((h - 15.0) / 24.0 * std::f64::consts::TAU).cos();
    // … plus an evening bump centred at 21:00.
    let bump = (-((h - 21.0) * (h - 21.0)) / 8.0).exp();
    (0.42 + 0.18 * wave + 0.55 * bump).clamp(0.15, 1.0)
}

/// One broadcaster channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    /// Primary (highest-bitrate) stream ID; rendition IDs follow.
    pub stream: StreamId,
    /// Popularity rank (0 = most popular).
    pub rank: usize,
    /// Country of the broadcaster.
    pub country: u32,
    /// Whether the Brain treats this broadcaster as popular (prefetch).
    pub popular: bool,
}

/// Workload parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of broadcaster channels.
    pub channels: usize,
    /// Zipf popularity exponent.
    pub zipf_s: f64,
    /// Fleet-wide viewer arrival rate (per second) at diurnal factor 1.0.
    pub peak_arrivals_per_sec: f64,
    /// Mean view duration (exponential-ish mixture).
    pub mean_view: SimDuration,
    /// Fraction of views from a different country than the broadcaster.
    pub international_fraction: f64,
    /// Fraction of top channels flagged popular for path prefetch.
    pub popular_fraction: f64,
    /// Days the festival runs (0-based day indices) with boosted demand.
    pub festival_days: Vec<u32>,
    /// Demand multiplier on festival days (paper: peak ≈ 2×).
    pub festival_factor: f64,
    /// Simulation length in days.
    pub days: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            channels: 200,
            zipf_s: 1.02,
            peak_arrivals_per_sec: 1.6,
            mean_view: SimDuration::from_secs(120),
            international_fraction: 0.025,
            popular_fraction: 0.05,
            // Dec 1–20 with Double 12 on Dec 11–12 → 0-based days 10, 11.
            festival_days: vec![10, 11],
            festival_factor: 2.0,
            days: 20,
            seed: 1,
        }
    }
}

impl WorkloadConfig {
    /// A small/fast configuration for tests.
    pub fn smoke(seed: u64) -> Self {
        WorkloadConfig {
            channels: 40,
            peak_arrivals_per_sec: 0.8,
            days: 2,
            festival_days: vec![],
            seed,
            ..Default::default()
        }
    }

    /// Demand multiplier at absolute sim time `t` (diurnal × festival).
    pub fn demand_factor(&self, t: SimTime) -> f64 {
        let hour = t.as_secs_f64() / 3600.0;
        let day = (hour / 24.0) as u32;
        let festival = if self.festival_days.contains(&day) {
            self.festival_factor
        } else {
            1.0
        };
        diurnal_factor(hour % 24.0) * festival
    }
}

/// One generated viewing session (before system-specific processing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionSpec {
    /// Arrival time.
    pub at: SimTime,
    /// Channel index.
    pub channel: usize,
    /// View duration.
    pub duration: SimDuration,
    /// Viewer country.
    pub viewer_country: u32,
}

/// Restriction of the arrival stream to one shard's channels: the member
/// channel indices plus the Zipf CDF *conditional on* landing in the set.
struct ShardPool {
    channels: Vec<usize>,
    cdf: Vec<f64>,
}

/// The workload generator: channels + a Poisson arrival stream (by
/// thinning) with deterministic replay.
pub struct Workload {
    /// Configuration.
    pub config: WorkloadConfig,
    /// The channel universe.
    pub channels: Vec<Channel>,
    zipf: ZipfTable,
    rng: DetRng,
    next_arrival: SimTime,
    countries: u32,
    /// When sharded: only these channels arrive, at `rate_share` of the
    /// fleet rate. Thinning a Poisson process splits it exactly, so the
    /// union over shards is distributed like the monolith stream.
    pool: Option<ShardPool>,
    rate_share: f64,
}

impl Workload {
    /// Build the channel universe over `countries` countries. Channels are
    /// assigned countries round-robin weighted toward early countries (big
    /// markets host more broadcasters).
    pub fn new(config: WorkloadConfig, countries: u32) -> Workload {
        let mut rng = DetRng::seed(config.seed).fork("workload");
        let popular_cut = (config.channels as f64 * config.popular_fraction).ceil() as usize;
        let channels: Vec<Channel> = (0..config.channels)
            .map(|rank| {
                // Early (popular) channels concentrate in big markets.
                let country = if rank.is_multiple_of(3) {
                    rank as u32 % countries.min(4)
                } else {
                    rng.range_u64(0, u64::from(countries)) as u32
                };
                Channel {
                    stream: StreamId::new(1000 + 10 * rank as u64),
                    rank,
                    country,
                    popular: rank < popular_cut,
                }
            })
            .collect();
        let zipf = ZipfTable::new(config.channels, config.zipf_s);
        Workload {
            config,
            channels,
            zipf,
            rng,
            next_arrival: SimTime::ZERO,
            countries,
            pool: None,
            rate_share: 1.0,
        }
    }

    /// Build the generator for one shard of a partitioned fleet run.
    ///
    /// The channel universe is built exactly as in [`Workload::new`] (every
    /// shard sees the same channels), then arrivals are restricted to
    /// `members` (channel indices) at `mass_share` of the fleet rate, with
    /// channel choice drawn from the Zipf distribution conditioned on the
    /// member set. Per-shard noise comes from `split(shard)` of the shared
    /// workload stream, so shards are mutually independent but each is
    /// reproducible regardless of how many siblings run.
    pub fn for_shard(
        config: WorkloadConfig,
        countries: u32,
        members: &[usize],
        mass_share: f64,
        shard: u64,
    ) -> Workload {
        assert!(!members.is_empty(), "shard with no channels");
        let mut w = Workload::new(config, countries);
        w.rng = w.rng.split(shard);
        let mut cdf = Vec::with_capacity(members.len());
        let mut acc = 0.0;
        for &c in members {
            acc += w.zipf.pmf(c);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        w.pool = Some(ShardPool {
            channels: members.to_vec(),
            cdf,
        });
        w.rate_share = mass_share;
        w
    }

    /// End of the simulated period.
    pub fn horizon(&self) -> SimTime {
        SimTime::from_secs(u64::from(self.config.days) * 86_400)
    }

    /// Expected session count for this generator (shard-rate aware).
    ///
    /// Integrates the thinned Poisson rate numerically over the horizon;
    /// used to pre-size session and telemetry buffers so the hot loop
    /// never reallocates. The estimate only affects capacity, never
    /// results.
    pub fn expected_sessions(&self) -> usize {
        // Mean diurnal factor at minute resolution.
        let mean_diurnal: f64 = (0..1440)
            .map(|m| diurnal_factor(f64::from(m) / 60.0))
            .sum::<f64>()
            / 1440.0;
        let mut total = 0.0;
        for day in 0..self.config.days {
            let festival = if self.config.festival_days.contains(&day) {
                self.config.festival_factor
            } else {
                1.0
            };
            total += 86_400.0
                * self.config.peak_arrivals_per_sec
                * self.rate_share
                * mean_diurnal
                * festival;
        }
        total.ceil() as usize
    }

    /// Draw the next session, or `None` past the horizon.
    ///
    /// Uses Poisson thinning: candidate arrivals at the peak rate, kept
    /// with probability `demand_factor / max_factor`.
    pub fn next_session(&mut self) -> Option<SessionSpec> {
        let max_factor = self.config.festival_factor.max(1.0);
        // rate_share is exactly 1.0 in the monolith path, so the
        // multiplication leaves the legacy stream bit-identical.
        let peak = self.config.peak_arrivals_per_sec * max_factor * self.rate_share;
        loop {
            let gap = self.rng.exp(1.0 / peak);
            self.next_arrival += SimDuration::from_secs_f64(gap);
            if self.next_arrival >= self.horizon() {
                return None;
            }
            let keep = self.config.demand_factor(self.next_arrival) / max_factor;
            if !self.rng.chance(keep) {
                continue;
            }
            let channel = match &self.pool {
                Some(pool) => {
                    let u = self.rng.f64();
                    let i = pool.cdf.partition_point(|&c| c < u).min(pool.cdf.len() - 1);
                    pool.channels[i]
                }
                None => self.zipf.sample(&mut self.rng),
            };
            let broadcaster_country = self.channels[channel].country;
            let viewer_country = if self.rng.chance(self.config.international_fraction) {
                // Uniform over the *other* countries.
                let mut c = self.rng.range_u64(0, u64::from(self.countries - 1)) as u32;
                if c >= broadcaster_country {
                    c += 1;
                }
                c
            } else {
                broadcaster_country
            };
            // Duration: lognormal-ish mixture, mean ≈ config.mean_view.
            let base = self.config.mean_view.as_secs_f64();
            let duration = if self.rng.chance(0.15) {
                self.rng.exp(base * 3.0) // long-tail engaged viewers
            } else {
                self.rng.exp(base * 0.65)
            };
            return Some(SessionSpec {
                at: self.next_arrival,
                channel,
                duration: SimDuration::from_secs_f64(duration.clamp(2.0, 7200.0)),
                viewer_country,
            });
        }
    }

    /// Pick the consumer edge node for a viewer in `country` (DNS maps
    /// users to a nearby edge). `edges_by_country[c]` lists candidates.
    pub fn pick_edge(
        &mut self,
        edges_by_country: &[Vec<NodeId>],
        country: u32,
    ) -> Option<NodeId> {
        let edges = edges_by_country.get(country as usize)?;
        if edges.is_empty() {
            return None;
        }
        Some(*self.rng.choose(edges))
    }

    /// Deterministic per-session RNG fork for client-side noise.
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diurnal_peaks_in_the_evening() {
        let night = diurnal_factor(4.0);
        let evening = diurnal_factor(21.0);
        let noon = diurnal_factor(12.0);
        assert!(evening > noon, "evening {evening} vs noon {noon}");
        assert!(noon > night, "noon {noon} vs night {night}");
        assert!(evening > 0.9);
        assert!(night < 0.35);
    }

    #[test]
    fn sessions_are_within_horizon_and_ordered() {
        let mut w = Workload::new(WorkloadConfig::smoke(1), 12);
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some(s) = w.next_session() {
            assert!(s.at >= last);
            assert!(s.at < w.horizon());
            last = s.at;
            n += 1;
        }
        assert!(n > 1000, "only {n} sessions in 2 days");
    }

    #[test]
    fn popularity_is_zipf_skewed() {
        let mut w = Workload::new(WorkloadConfig::smoke(2), 12);
        let mut counts = vec![0u32; w.config.channels];
        while let Some(s) = w.next_session() {
            counts[s.channel] += 1;
        }
        assert!(counts[0] > counts[10] * 3, "{} vs {}", counts[0], counts[10]);
        assert!(counts[0] > counts[30] * 8);
    }

    #[test]
    fn international_share_close_to_config() {
        let cfg = WorkloadConfig::smoke(3);
        let frac = cfg.international_fraction;
        let mut w = Workload::new(cfg, 12);
        let mut total = 0.0;
        let mut inter = 0.0;
        while let Some(s) = w.next_session() {
            total += 1.0;
            if s.viewer_country != w.channels[s.channel].country {
                inter += 1.0;
            }
        }
        let measured = inter / total;
        assert!(
            (measured - frac).abs() < frac, // within 100% relative
            "measured {measured} vs {frac}"
        );
    }

    #[test]
    fn festival_days_have_more_arrivals() {
        let cfg = WorkloadConfig {
            days: 4,
            festival_days: vec![2],
            festival_factor: 2.0,
            ..WorkloadConfig::smoke(4)
        };
        let mut w = Workload::new(cfg, 12);
        let mut per_day = [0u32; 4];
        while let Some(s) = w.next_session() {
            per_day[(s.at.as_secs_f64() / 86_400.0) as usize] += 1;
        }
        // Day 2 ≈ 2× day 1 (same diurnal profile, doubled demand).
        let ratio = f64::from(per_day[2]) / f64::from(per_day[1]);
        assert!((1.6..2.4).contains(&ratio), "ratio {ratio}, {per_day:?}");
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed| {
            let mut w = Workload::new(WorkloadConfig::smoke(seed), 12);
            let mut v = Vec::new();
            for _ in 0..100 {
                v.push(w.next_session().unwrap());
            }
            v
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn shard_pool_restricts_channels_and_splits_rate() {
        let cfg = WorkloadConfig::smoke(6);
        let members: Vec<usize> = (0..10).collect();
        // Zipf mass of ranks 0..10 out of 40 with s≈1: a bit over half.
        let zipf = ZipfTable::new(cfg.channels, cfg.zipf_s);
        let mass: f64 = members.iter().map(|&c| zipf.pmf(c)).sum();
        let mut whole = Workload::new(cfg.clone(), 12);
        let mut shard = Workload::for_shard(cfg, 12, &members, mass, 0);
        // Shards agree on the channel universe built from the shared stream.
        assert_eq!(whole.channels, shard.channels);
        let mut whole_n = 0u32;
        while whole.next_session().is_some() {
            whole_n += 1;
        }
        let mut shard_n = 0u32;
        while let Some(s) = shard.next_session() {
            assert!(members.contains(&s.channel));
            shard_n += 1;
        }
        // Arrival volume scales with the shard's Zipf mass share.
        let ratio = f64::from(shard_n) / f64::from(whole_n);
        assert!(
            (ratio - mass).abs() < 0.1,
            "ratio {ratio} vs mass share {mass}"
        );
    }

    #[test]
    fn shard_replay_is_deterministic_and_label_dependent() {
        let members: Vec<usize> = (5..15).collect();
        let run = |shard| {
            let mut w = Workload::for_shard(WorkloadConfig::smoke(7), 12, &members, 0.3, shard);
            let mut v = Vec::new();
            for _ in 0..50 {
                v.push(w.next_session().unwrap());
            }
            v
        };
        assert_eq!(run(2), run(2));
        assert_ne!(run(2), run(3));
    }

    #[test]
    fn popular_flag_marks_head_channels() {
        let w = Workload::new(WorkloadConfig::smoke(5), 12);
        assert!(w.channels[0].popular);
        assert!(!w.channels.last().unwrap().popular);
        let popular = w.channels.iter().filter(|c| c.popular).count();
        assert_eq!(popular, 2); // ceil(40 * 0.05)
    }
}
