//! Adapters running the sans-I/O overlay node and a viewer client inside
//! the discrete-event emulator.
//!
//! Clients live in the same datagram namespace as nodes: client `c` is
//! emulator host `CLIENT_NODE_OFFSET + c`. The adapter translates between
//! [`NodeAction`]s and emulator [`Action`]s and harvests instrumentation
//! events for the experiment harness.

use crate::viewer::{PlaybackSim, ViewerQoe};
use bytes::Bytes;
use livenet_emu::{Ctx, Host};
use livenet_node::{NodeAction, NodeEvent, OverlayMsg, OverlayNode, Subscriber};
use livenet_packet::{Depacketizer, RtpPacket};
use livenet_types::{ClientId, NodeId, SimDuration, SimTime};

/// Offset separating client host IDs from overlay-node host IDs.
pub const CLIENT_NODE_OFFSET: u64 = 1_000_000;

/// Emulator host id for a client.
pub fn client_host_id(client: ClientId) -> NodeId {
    NodeId::new(CLIENT_NODE_OFFSET + client.raw())
}

/// Instrumentation record harvested from hosts.
#[derive(Debug, Clone)]
pub enum HostEvent {
    /// An overlay-node event.
    Node(NodeId, SimTime, NodeEvent),
    /// A client rendered its first frame / finished (via QoE snapshots).
    ClientFrame {
        /// The client.
        client: ClientId,
        /// Arrival time.
        at: SimTime,
        /// Media timestamp of the completed frame.
        rtp_timestamp: u32,
        /// Cumulative delay field if the frame carried one.
        delay_field: Option<SimDuration>,
    },
}

/// A host in the packet-level simulation: an overlay node or a viewer.
// Hosts live once per simulated machine in a Vec the emulator owns;
// boxing the node state would add a pointer chase on every packet.
#[allow(clippy::large_enum_variant)]
pub enum EmuHost {
    /// An overlay CDN node.
    Node(NodeHostState),
    /// A viewer client.
    Client(ClientHostState),
}

/// Overlay-node host state.
pub struct NodeHostState {
    /// The sans-I/O core.
    pub node: OverlayNode,
    /// Harvested events.
    pub events: Vec<(SimTime, NodeEvent)>,
}

/// Client host state.
pub struct ClientHostState {
    /// Who this is.
    pub client: ClientId,
    /// SSRC currently being decoded (a change = stream switch → reset).
    pub ssrc: Option<livenet_types::Ssrc>,
    /// The decoder has seen a keyframe and can render (I-frame sync).
    pub synced: bool,
    /// Frames completed before sync, held until the keyframe lands
    /// (out-of-order completion: a recovering I frame can finish after
    /// its successors).
    presync: Vec<(SimTime, u32, Option<SimDuration>)>,
    /// Reassembles frames from received RTP packets.
    pub depack: Depacketizer,
    /// Playback model.
    pub playback: PlaybackSim,
    /// Completed-frame log (time, rtp timestamp, delay field).
    pub frames: Vec<(SimTime, u32, Option<SimDuration>)>,
    /// Packets received.
    pub packets: u64,
}

impl EmuHost {
    /// Wrap an overlay node.
    pub fn node(node: OverlayNode) -> EmuHost {
        EmuHost::Node(NodeHostState {
            node,
            events: Vec::new(),
        })
    }

    /// Create a viewer client that pressed play at `request_at`.
    pub fn client(client: ClientId, request_at: SimTime, fps: u32, buffer: SimDuration) -> EmuHost {
        EmuHost::Client(ClientHostState {
            client,
            ssrc: None,
            synced: false,
            presync: Vec::new(),
            depack: Depacketizer::new(),
            playback: PlaybackSim::new(request_at, fps, buffer),
            frames: Vec::new(),
            packets: 0,
        })
    }

    /// Node accessor.
    pub fn as_node(&self) -> Option<&NodeHostState> {
        match self {
            EmuHost::Node(n) => Some(n),
            EmuHost::Client(_) => None,
        }
    }

    /// Mutable node accessor.
    pub fn as_node_mut(&mut self) -> Option<&mut NodeHostState> {
        match self {
            EmuHost::Node(n) => Some(n),
            EmuHost::Client(_) => None,
        }
    }

    /// Client accessor.
    pub fn as_client(&self) -> Option<&ClientHostState> {
        match self {
            EmuHost::Client(c) => Some(c),
            EmuHost::Node(_) => None,
        }
    }

    /// Finish a client's playback and return its QoE.
    pub fn finish_client(self, now: SimTime) -> Option<(ClientId, ViewerQoe)> {
        match self {
            EmuHost::Client(c) => Some((c.client, c.playback.finish(now))),
            EmuHost::Node(_) => None,
        }
    }
}

/// Apply a node's actions to the emulator context.
pub fn apply_node_actions(
    state: &mut NodeHostState,
    ctx: &mut Ctx,
    actions: Vec<NodeAction>,
) {
    let now = ctx.now();
    for a in actions {
        match a {
            NodeAction::Send { to, msg } => {
                let dest = match to {
                    Subscriber::Node(n) => n,
                    Subscriber::Client(c) => client_host_id(c),
                };
                ctx.send(dest, msg.encode());
            }
            NodeAction::SetTimer { at, key } => ctx.set_timer_at(at.max(now), key),
            NodeAction::Event(e) => state.events.push((now, e)),
        }
    }
}

impl Host for EmuHost {
    fn on_datagram(&mut self, ctx: &mut Ctx, from: NodeId, payload: Bytes) {
        match self {
            EmuHost::Node(state) => {
                let actions = state.node.on_datagram(ctx.now(), from, payload);
                apply_node_actions(state, ctx, actions);
            }
            EmuHost::Client(state) => {
                state.packets += 1;
                let Ok(msg) = OverlayMsg::decode(payload) else {
                    return;
                };
                if let OverlayMsg::Rtp { packet, .. } = msg {
                    if let Ok(rtp) = RtpPacket::decode(packet) {
                        // SSRC change = seamless stream switch (§5.2):
                        // reset reassembly state, like a WebRTC client
                        // re-keying its decoder on SSRC demux.
                        if state.ssrc != Some(rtp.header.ssrc) {
                            if state.ssrc.is_some() {
                                state.depack = Depacketizer::new();
                                state.synced = false; // re-sync on the new stream
                                state.presync.clear();
                            }
                            state.ssrc = Some(rtp.header.ssrc);
                        }
                        state.depack.push(rtp);
                        for frame in state.depack.drain() {
                            // A video decoder cannot render before its
                            // first keyframe (audio needs no sync). Frames
                            // completing before the keyframe are held: the
                            // I frame may still be in loss recovery while
                            // its successors finish.
                            let kind = livenet_media::FrameKind::from_nibble(frame.meta);
                            if !state.synced {
                                match kind {
                                    Some(livenet_media::FrameKind::I)
                                    | Some(livenet_media::FrameKind::Audio)
                                    | None => {
                                        state.synced = true;
                                        let sync_ts = frame.timestamp;
                                        for (at, ts, df) in std::mem::take(&mut state.presync) {
                                            // Keep held frames at/after the
                                            // keyframe (wrapping compare).
                                            if ts.wrapping_sub(sync_ts) < 0x8000_0000 {
                                                state.playback.on_frame(at, ts);
                                                state.frames.push((at, ts, df));
                                            }
                                        }
                                    }
                                    _ => {
                                        state.presync.push((
                                            ctx.now(),
                                            frame.timestamp,
                                            frame.delay_field,
                                        ));
                                        continue;
                                    }
                                }
                            }
                            state.playback.on_frame(ctx.now(), frame.timestamp);
                            state
                                .frames
                                .push((ctx.now(), frame.timestamp, frame.delay_field));
                        }
                        // Bound memory; skip permanently-lost frames.
                        if state.depack.gc(8) > 0 {
                            state.playback.skip_missing(ctx.now());
                        }
                    }
                }
                // Keep playback time moving with a 100 ms tick.
                ctx.set_timer_after(SimDuration::from_millis(100), 1);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, key: u64) {
        match self {
            EmuHost::Node(state) => {
                let actions = state.node.on_timer(ctx.now(), key);
                apply_node_actions(state, ctx, actions);
            }
            EmuHost::Client(state) => {
                state.playback.advance(ctx.now());
                state.playback.skip_missing(ctx.now());
            }
        }
    }

    fn on_start(&mut self, ctx: &mut Ctx) {
        if let EmuHost::Node(state) = self {
            let actions = state.node.start(ctx.now());
            apply_node_actions(state, ctx, actions);
        }
    }

    fn on_crash(&mut self) {
        // A crashed node loses all volatile state (FIB, reassembly, pacing,
        // congestion control); config and measured neighbor RTTs survive as
        // they would on-disk. Harvested events survive too — they belong to
        // the experiment harness, not the node.
        if let EmuHost::Node(state) = self {
            state.node.crash_reset();
        }
    }
}
