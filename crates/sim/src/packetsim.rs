//! Packet-level simulation: real overlay nodes over the emulator.
//!
//! Used for the transmission-architecture experiments (§5): fast/slow-path
//! recovery under injected loss, pacing behaviour, startup bursts, and to
//! calibrate the per-hop constants used by the fleet simulator.

use crate::adapter::{client_host_id, EmuHost};
use crate::viewer::ViewerQoe;
use bytes::Bytes;
use livenet_emu::{LinkConfig, LossModel, NetSim};
use livenet_media::{GopConfig, VideoEncoder};
use livenet_node::{NodeConfig, NodeEvent, NodeStats, OverlayNode};
use livenet_types::{Bandwidth, ClientId, NodeId, SimDuration, SimTime, StreamId};

/// One inter-node link in the simulated chain.
#[derive(Debug, Clone, Copy)]
pub struct ChainLink {
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Random loss probability (long-run mean).
    pub loss: f64,
    /// Bandwidth.
    pub bandwidth: Bandwidth,
    /// Bursty (Gilbert–Elliott) rather than independent loss.
    pub bursty: bool,
}

impl ChainLink {
    /// A healthy 10 ms / 1 Gbps link.
    pub fn healthy(delay_ms: u64) -> Self {
        ChainLink {
            delay: SimDuration::from_millis(delay_ms),
            loss: 0.0,
            bandwidth: Bandwidth::from_gbps(1),
            bursty: false,
        }
    }

    /// Same link with loss.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Same link with bursty (Gilbert–Elliott) loss of the same mean.
    pub fn with_bursty_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self.bursty = true;
        self
    }
}

/// A viewer to attach during the run.
#[derive(Debug, Clone, Copy)]
pub struct ViewerSpec {
    /// Chain node index the viewer attaches to (its consumer).
    pub node_index: usize,
    /// Join time.
    pub join_at: SimTime,
    /// Client downlink bandwidth.
    pub downlink: Bandwidth,
}

/// Packet-level simulation configuration.
#[derive(Debug, Clone)]
pub struct PacketSimConfig {
    /// Links of the chain: node 0 (producer) → 1 → … → n.
    pub links: Vec<ChainLink>,
    /// Video configuration.
    pub gop: GopConfig,
    /// Stream bitrate.
    pub bitrate: Bandwidth,
    /// Broadcast duration (frames stop after this).
    pub duration: SimDuration,
    /// Extra drain time after the last frame.
    pub drain: SimDuration,
    /// Viewers.
    pub viewers: Vec<ViewerSpec>,
    /// Client playback buffer.
    pub player_buffer: SimDuration,
    /// Seed for loss processes.
    pub seed: u64,
    /// NACK retry limit (0 disables slow-path recovery — ablation).
    pub nack_retry_limit: u32,
    /// Pacing gain applied while I frames drain (paper: 1.5; ablation: 1.0).
    pub iframe_gain: f64,
    /// Fixed pacing rate per peer (None = node default; GCC adjusts it).
    pub pacer_rate: Option<Bandwidth>,
    /// Serve GoP-cache startup bursts (ablation switch; default true).
    pub startup_burst: bool,
}

impl PacketSimConfig {
    /// The §3 example: a 3-node chain A→B→C with one viewer at C.
    pub fn three_node_chain(loss_on_first_hop: f64, seed: u64) -> Self {
        PacketSimConfig {
            links: vec![
                ChainLink::healthy(10).with_loss(loss_on_first_hop),
                ChainLink::healthy(10),
            ],
            gop: GopConfig::default(),
            bitrate: Bandwidth::from_mbps(2),
            duration: SimDuration::from_secs(10),
            drain: SimDuration::from_secs(2),
            viewers: vec![ViewerSpec {
                node_index: 2,
                join_at: SimTime::from_millis(100),
                downlink: Bandwidth::from_mbps(50),
            }],
            player_buffer: SimDuration::from_millis(300),
            seed,
            nack_retry_limit: 5,
            iframe_gain: 1.5,
            pacer_rate: None,
            startup_burst: true,
        }
    }
}

/// Results of a packet-level run.
#[derive(Debug)]
pub struct PacketSimReport {
    /// Per-viewer QoE.
    pub viewers: Vec<(ClientId, ViewerQoe)>,
    /// Detection→recovery latencies observed at any node (ms).
    pub recovery_latencies_ms: Vec<f64>,
    /// Capture→render frame delays at clients (ms).
    pub frame_delays_ms: Vec<f64>,
    /// Cumulative node stats, indexed by chain position.
    pub node_stats: Vec<NodeStats>,
    /// Startup bursts observed.
    pub startup_bursts: u64,
    /// Per-viewer completed-frame logs: (arrival, rtp timestamp, delay field).
    pub client_frames: Vec<Vec<(livenet_types::SimTime, u32, Option<SimDuration>)>>,
    /// Total RTP packets delivered on links (emulator counter).
    pub link_loss_rate: f64,
}

/// The packet-level simulator.
pub struct PacketSim {
    config: PacketSimConfig,
}

/// The stream used by packet-level runs.
pub const PACKET_SIM_STREAM: StreamId = StreamId(900);

impl PacketSim {
    /// New simulator.
    pub fn new(config: PacketSimConfig) -> Self {
        PacketSim { config }
    }

    /// Execute the run.
    pub fn run(self) -> PacketSimReport {
        let cfg = self.config;
        let n_nodes = cfg.links.len() + 1;
        let node_ids: Vec<NodeId> = (0..n_nodes as u64).map(|i| NodeId::new(i + 1)).collect();
        let mut sim: NetSim<EmuHost> = NetSim::new(cfg.seed);

        // Nodes + links.
        for (i, &id) in node_ids.iter().enumerate() {
            let mut ncfg = NodeConfig::new(id);
            ncfg.nack_retry_limit = cfg.nack_retry_limit;
            ncfg.pacer.iframe_gain = cfg.iframe_gain;
            ncfg.startup_burst = cfg.startup_burst;
            if let Some(rate) = cfg.pacer_rate {
                ncfg.initial_rate = rate;
            }
            let mut node = OverlayNode::new(ncfg);
            if i > 0 {
                node.set_neighbor_rtt(node_ids[i - 1], cfg.links[i - 1].delay * 2);
            }
            if i < cfg.links.len() {
                node.set_neighbor_rtt(node_ids[i + 1], cfg.links[i].delay * 2);
            }
            sim.add_host(id, EmuHost::node(node));
        }
        for (i, link) in cfg.links.iter().enumerate() {
            let lc = LinkConfig {
                delay: link.delay,
                bandwidth: link.bandwidth,
                queue_bytes: 4 << 20,
                loss: if link.loss <= 0.0 {
                    LossModel::None
                } else if link.bursty {
                    // p_bg = 0.25 → mean burst length 4 packets; solve
                    // p_gb for the requested long-run mean with
                    // loss_bad = 0.5: mean = pi_bad × 0.5.
                    let pi_bad = (2.0 * link.loss).min(0.9);
                    let p_bg = 0.25;
                    let p_gb = p_bg * pi_bad / (1.0 - pi_bad);
                    LossModel::GilbertElliott {
                        p_gb,
                        p_bg,
                        loss_good: 0.0,
                        loss_bad: 0.5,
                    }
                } else {
                    LossModel::Bernoulli { p: link.loss }
                },
                jitter: SimDuration::ZERO,
            };
            sim.add_duplex(node_ids[i], node_ids[i + 1], lc);
        }

        // Producer.
        let producer = node_ids[0];
        sim.with_host(producer, |h, _| {
            if let Some(s) = h.as_node_mut() {
                s.node.register_producer(PACKET_SIM_STREAM, None);
            }
        });

        // Clients + their access links.
        let fps = cfg.gop.fps;
        let mut client_ids = Vec::new();
        for (ci, v) in cfg.viewers.iter().enumerate() {
            let client = ClientId::new(ci as u64 + 1);
            let chost = client_host_id(client);
            client_ids.push((client, chost, *v));
            sim.add_host(
                chost,
                EmuHost::client(client, v.join_at, fps, cfg.player_buffer),
            );
            let access = LinkConfig {
                delay: SimDuration::from_millis(15),
                bandwidth: v.downlink,
                queue_bytes: 1 << 20,
                loss: LossModel::None,
                jitter: SimDuration::from_millis(2),
            };
            sim.add_duplex(node_ids[v.node_index], chost, access);
        }

        // Encoder-driven main loop: interleave frame ingest with sim time.
        let start = SimTime::from_millis(50);
        let mut encoder = VideoEncoder::new(PACKET_SIM_STREAM, cfg.gop, cfg.bitrate, start);
        let end = start + cfg.duration;
        let mut pending_viewers: Vec<(ClientId, NodeId, ViewerSpec)> = client_ids.clone();
        pending_viewers.sort_by_key(|(_, _, v)| v.join_at);
        let path: Vec<NodeId> = node_ids.clone();

        loop {
            let next_frame = encoder.next_capture_time();
            let next_join = pending_viewers.first().map(|(_, _, v)| v.join_at);
            let next = match next_join {
                Some(j) if j < next_frame => j,
                _ => next_frame,
            };
            if next >= end {
                break;
            }
            sim.run_until(next);
            if Some(next) == next_join {
                let (client, _, v) = pending_viewers.remove(0);
                let consumer = node_ids[v.node_index];
                let path = path[..=v.node_index].to_vec();
                sim.with_host(consumer, |h, ctx| {
                    if let Some(s) = h.as_node_mut() {
                        let mut actions = Vec::new();
                        s.node.client_attach(
                            ctx.now(),
                            client,
                            PACKET_SIM_STREAM,
                            Some(v.downlink),
                            Some(&path),
                            &mut actions,
                        );
                        crate::adapter::apply_node_actions(s, ctx, actions);
                    }
                });
            } else {
                let frame = encoder.next_frame();
                let payload = Bytes::from(vec![0u8; frame.size_bytes as usize]);
                sim.with_host(producer, |h, ctx| {
                    if let Some(s) = h.as_node_mut() {
                        let actions = s.node.ingest_frame(ctx.now(), &frame, &payload);
                        crate::adapter::apply_node_actions(s, ctx, actions);
                    }
                });
            }
        }
        let finish = end + cfg.drain;
        sim.run_until(finish);

        // Harvest.
        let mut recovery = Vec::new();
        let mut bursts = 0;
        let mut stats = Vec::new();
        for &id in &node_ids {
            let host = sim.host(id).expect("node host");
            let state = host.as_node().expect("is node");
            stats.push(state.node.stats);
            for (_, e) in &state.events {
                match e {
                    NodeEvent::HoleRecovered { after, .. } => {
                        recovery.push(after.as_millis_f64());
                    }
                    NodeEvent::StartupBurst { .. } => bursts += 1,
                    _ => {}
                }
            }
        }
        let mut frame_delays = Vec::new();
        let mut viewers = Vec::new();
        let mut client_frames = Vec::new();
        let ticks_per_sec = 90_000.0;
        for (client, chost, _) in client_ids {
            let host = sim.host(chost).expect("client host");
            let state = host.as_client().expect("is client");
            client_frames.push(state.frames.clone());
            for &(at, ts, _) in &state.frames {
                let capture = start.as_secs_f64() + f64::from(ts) / ticks_per_sec;
                let delay_ms = (at.as_secs_f64() - capture) * 1000.0;
                if delay_ms.is_finite() && delay_ms >= 0.0 {
                    frame_delays.push(delay_ms);
                }
            }
            viewers.push((client, chost));
        }
        // Finish clients by removing them from the sim (finish consumes).
        let mut viewer_qoe = Vec::new();
        for (client, chost) in viewers {
            if let Some(host) = sim.remove_host(chost) {
                if let Some((c, q)) = host.finish_client(finish) {
                    assert_eq!(c, client);
                    viewer_qoe.push((c, q));
                }
            }
        }

        let total = sim.total_link_stats();
        PacketSimReport {
            viewers: viewer_qoe,
            recovery_latencies_ms: recovery,
            frame_delays_ms: frame_delays,
            node_stats: stats,
            startup_bursts: bursts,
            client_frames,
            link_loss_rate: total.loss_rate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_chain_delivers_smoothly() {
        let report = PacketSim::new(PacketSimConfig::three_node_chain(0.0, 1)).run();
        assert_eq!(report.viewers.len(), 1);
        let (_, qoe) = report.viewers[0];
        assert!(qoe.fast_startup(), "startup {:?}", qoe.startup);
        assert_eq!(qoe.stalls, 0);
        assert!(qoe.frames_rendered > 100, "{}", qoe.frames_rendered);
        assert!(report.recovery_latencies_ms.is_empty());
    }

    #[test]
    fn lossy_first_hop_recovers_via_slow_path() {
        let report = PacketSim::new(PacketSimConfig::three_node_chain(0.02, 2)).run();
        let (_, qoe) = report.viewers[0];
        // Recovery happened at the relay (B NACKs A).
        assert!(
            !report.recovery_latencies_ms.is_empty(),
            "no recoveries observed"
        );
        assert!(report.node_stats[0].rtx_served > 0, "A served no RTX");
        // The viewer still plays through ≥95% of frames.
        assert!(qoe.frames_rendered > 130, "{}", qoe.frames_rendered);
        // Recovery latency ≈ scan wait + one hop RTT: well under 150 ms.
        let mean: f64 = report.recovery_latencies_ms.iter().sum::<f64>()
            / report.recovery_latencies_ms.len() as f64;
        assert!(mean < 150.0, "mean recovery {mean} ms");
    }

    #[test]
    fn mid_stream_joiner_gets_fast_startup_from_gop_cache() {
        let mut cfg = PacketSimConfig::three_node_chain(0.0, 3);
        // Second viewer joins 6 s in; the consumer already carries the
        // stream, so startup is served from the GoP cache burst.
        cfg.viewers.push(ViewerSpec {
            node_index: 2,
            join_at: SimTime::from_secs(6),
            downlink: Bandwidth::from_mbps(50),
        });
        let report = PacketSim::new(cfg).run();
        assert_eq!(report.viewers.len(), 2);
        let late = &report.viewers[1].1;
        assert!(
            late.fast_startup(),
            "late joiner startup {:?}",
            late.startup
        );
        assert!(report.startup_bursts >= 1);
        // The burst makes startup much faster than one full GoP (2 s).
        assert!(late.startup.unwrap() < SimDuration::from_millis(800));
    }

    #[test]
    fn frame_delay_is_consistent_with_hop_count() {
        let report = PacketSim::new(PacketSimConfig::three_node_chain(0.0, 4)).run();
        assert!(!report.frame_delays_ms.is_empty());
        let mut sorted = report.frame_delays_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        // 2 overlay hops (10 ms each) + access 15 ms + pacing/processing;
        // must sit well under a GoP length but above raw propagation.
        assert!(median > 35.0, "median {median}");
        assert!(median < 600.0, "median {median}");
    }
}
