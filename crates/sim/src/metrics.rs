//! Session records and aggregation helpers mirroring the paper's logs.
//!
//! The paper's evaluation draws on three data sources (§6.1): consumer-node
//! logs (path length, CDN path delay, first-packet delay, local-hit flag),
//! client logs (streaming delay, stalls, fast-startup flag), and Path
//! Decision logs (response time). [`SessionRecord`] carries the union of
//! these per viewing session.

use livenet_telemetry::{ids, MetricSink};
use livenet_types::{Ecdf, SimTime};
use serde::{Deserialize, Serialize};

/// How a session's path decision was served — the Path Decision log's
/// outcome field as one typed value.
///
/// Replaces the three loosely-coupled `SessionRecord` fields (`local_hit`,
/// `last_resort`, `brain_response_ms`) that could previously encode
/// impossible combinations (e.g. a local hit with a brain response time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DecisionOutcome {
    /// The consumer node already carried the stream; no lookup at all.
    LocalHit,
    /// Served from a prefetched/degenerate path with no Brain round trip
    /// (popular broadcasters' paths are pushed to all nodes, §4.4).
    Prefetched,
    /// Served by a live Brain round trip.
    Brain {
        /// Path Decision log: response time.
        response_ms: f32,
    },
    /// Served via a last-resort path (PIB miss or overload filtering).
    LastResort {
        /// Response time of the failed lookup, when one was made.
        response_ms: Option<f32>,
    },
}

impl DecisionOutcome {
    /// The consumer already had the path/stream.
    pub fn is_local_hit(self) -> bool {
        matches!(self, DecisionOutcome::LocalHit)
    }

    /// The session was served via a last-resort path.
    pub fn is_last_resort(self) -> bool {
        matches!(self, DecisionOutcome::LastResort { .. })
    }

    /// Path Decision response time, when a Brain round trip happened.
    pub fn response_ms(self) -> Option<f32> {
        match self {
            DecisionOutcome::Brain { response_ms } => Some(response_ms),
            DecisionOutcome::LastResort { response_ms } => response_ms,
            DecisionOutcome::LocalHit | DecisionOutcome::Prefetched => None,
        }
    }
}

/// One viewing session's metrics for one system (LiveNet or Hier).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    /// Session start time.
    pub start: SimTime,
    /// Day index (0-based).
    pub day: u32,
    /// Hour of day (0–23).
    pub hour: u32,
    /// Overlay hops actually traversed (realized path, incl. long chains).
    pub path_len: u8,
    /// True when the viewer and broadcaster are in different countries.
    pub international: bool,
    /// Consumer node log: CDN path delay.
    pub cdn_delay_ms: f32,
    /// Client log: end-to-end streaming delay.
    pub streaming_delay_ms: f32,
    /// Consumer node log: first-packet delay.
    pub first_packet_ms: f32,
    /// Client log: startup delay (request → playback).
    pub startup_ms: f32,
    /// Client log: number of stalls during the view.
    pub stalls: u16,
    /// Path Decision log: how the path decision was served.
    pub outcome: DecisionOutcome,
}

impl SessionRecord {
    /// Paper definition: startup within 1 second.
    pub fn fast_startup(&self) -> bool {
        self.startup_ms < 1000.0
    }

    /// Paper definition: no stalls during the view.
    pub fn zero_stall(&self) -> bool {
        self.stalls == 0
    }
}

/// Record one session — counters by decision outcome plus the per-stage
/// latency histograms (`stage.*`) that attribute startup latency the way
/// the paper's client logs support (Fig. 10) — into a metric sink.
///
/// This is the [`MetricSink`] port of the aggregation `summarize` does by
/// hand; the fleet simulator calls it per LiveNet session.
pub fn record_session(sink: &mut impl MetricSink, s: &SessionRecord) {
    sink.incr(ids::FLEET_SESSIONS);
    match s.outcome {
        DecisionOutcome::LocalHit => sink.incr(ids::FLEET_LOCAL_HITS),
        DecisionOutcome::Prefetched => sink.incr(ids::FLEET_PREFETCHED),
        DecisionOutcome::Brain { response_ms } => {
            sink.incr(ids::FLEET_BRAIN_SERVED);
            sink.observe(ids::STAGE_BRAIN_LOOKUP_MS, f64::from(response_ms));
        }
        DecisionOutcome::LastResort { response_ms } => {
            sink.incr(ids::FLEET_LAST_RESORT);
            if let Some(ms) = response_ms {
                sink.observe(ids::STAGE_BRAIN_LOOKUP_MS, f64::from(ms));
            }
        }
    }
    sink.observe(ids::STAGE_FIRST_PACKET_MS, f64::from(s.first_packet_ms));
    sink.observe(ids::STAGE_STARTUP_MS, f64::from(s.startup_ms));
    sink.observe(ids::STAGE_CDN_PATH_MS, f64::from(s.cdn_delay_ms));
    sink.observe(ids::STAGE_STREAMING_MS, f64::from(s.streaming_delay_ms));
}

/// Accumulates a per-hour scalar series over the run (e.g. hit ratio,
/// first-packet delay) — the shape Fig. 10 plots.
#[deprecated(
    since = "0.1.0",
    note = "use a `livenet_telemetry::TelemetryHub` histogram keyed per hour instead"
)]
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HourlySeries {
    sums: Vec<f64>,
    counts: Vec<u64>,
}

#[allow(deprecated)]
impl HourlySeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&mut self, hour_index: usize) -> usize {
        if self.sums.len() <= hour_index {
            self.sums.resize(hour_index + 1, 0.0);
            self.counts.resize(hour_index + 1, 0);
        }
        hour_index
    }

    /// Add one observation in absolute hour `hour_index` (day*24+hour).
    pub fn push(&mut self, hour_index: usize, value: f64) {
        let i = self.slot(hour_index);
        self.sums[i] += value;
        self.counts[i] += 1;
    }

    /// Mean value per absolute hour (NaN where empty).
    pub fn means(&self) -> Vec<f64> {
        self.sums
            .iter()
            .zip(&self.counts)
            .map(|(s, &c)| if c == 0 { f64::NAN } else { s / c as f64 })
            .collect()
    }

    /// Observation count per hour.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Collapse to a 24-entry hour-of-day profile (mean over days).
    pub fn hour_of_day_profile(&self) -> [f64; 24] {
        let mut sums = [0.0f64; 24];
        let mut counts = [0u64; 24];
        for (i, (s, &c)) in self.sums.iter().zip(&self.counts).enumerate() {
            sums[i % 24] += s;
            counts[i % 24] += c;
        }
        let mut out = [f64::NAN; 24];
        for h in 0..24 {
            if counts[h] > 0 {
                out[h] = sums[h] / counts[h] as f64;
            }
        }
        out
    }
}

/// Summary statistics over a slice of sessions — the Table 1 row set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSummary {
    /// Number of sessions.
    pub sessions: usize,
    /// Median CDN path delay (ms).
    pub median_cdn_delay_ms: f64,
    /// Median path length (hops).
    pub median_path_len: f64,
    /// Median streaming delay (ms).
    pub median_streaming_delay_ms: f64,
    /// Fraction of sessions with zero stalls.
    pub zero_stall_ratio: f64,
    /// Fraction of sessions starting within 1 s.
    pub fast_startup_ratio: f64,
    /// Fraction of sessions with a local hit.
    pub local_hit_ratio: f64,
    /// Fraction of sessions on last-resort paths.
    pub last_resort_ratio: f64,
}

/// Compute the Table-1 summary over sessions.
pub fn summarize(sessions: &[SessionRecord]) -> SessionSummary {
    let mut cdn = Ecdf::new();
    let mut len = Ecdf::new();
    let mut stream = Ecdf::new();
    let mut zero_stall = 0usize;
    let mut fast = 0usize;
    let mut hits = 0usize;
    let mut lr = 0usize;
    for s in sessions {
        cdn.push(f64::from(s.cdn_delay_ms));
        len.push(f64::from(s.path_len));
        stream.push(f64::from(s.streaming_delay_ms));
        zero_stall += usize::from(s.zero_stall());
        fast += usize::from(s.fast_startup());
        hits += usize::from(s.outcome.is_local_hit());
        lr += usize::from(s.outcome.is_last_resort());
    }
    let n = sessions.len().max(1);
    SessionSummary {
        sessions: sessions.len(),
        median_cdn_delay_ms: cdn.median(),
        median_path_len: len.median(),
        median_streaming_delay_ms: stream.median(),
        zero_stall_ratio: zero_stall as f64 / n as f64,
        fast_startup_ratio: fast as f64 / n as f64,
        local_hit_ratio: hits as f64 / n as f64,
        last_resort_ratio: lr as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(startup: f32, stalls: u16) -> SessionRecord {
        SessionRecord {
            start: SimTime::ZERO,
            day: 0,
            hour: 0,
            path_len: 2,
            international: false,
            cdn_delay_ms: 188.0,
            streaming_delay_ms: 950.0,
            first_packet_ms: 80.0,
            startup_ms: startup,
            stalls,
            outcome: DecisionOutcome::LocalHit,
        }
    }

    #[test]
    fn fast_startup_threshold_is_one_second() {
        assert!(rec(999.0, 0).fast_startup());
        assert!(!rec(1000.0, 0).fast_startup());
    }

    #[test]
    fn summarize_ratios() {
        let sessions = vec![rec(500.0, 0), rec(1500.0, 2), rec(700.0, 0), rec(800.0, 1)];
        let s = summarize(&sessions);
        assert_eq!(s.sessions, 4);
        assert!((s.fast_startup_ratio - 0.75).abs() < 1e-9);
        assert!((s.zero_stall_ratio - 0.5).abs() < 1e-9);
        assert_eq!(s.median_path_len, 2.0);
        assert_eq!(s.median_cdn_delay_ms, 188.0);
    }

    #[test]
    fn record_session_counts_outcomes_and_stage_latencies() {
        use livenet_telemetry::TelemetryHub;
        let mut hub = TelemetryHub::new();
        let mut brain_rec = rec(500.0, 0);
        brain_rec.outcome = DecisionOutcome::Brain { response_ms: 42.0 };
        let mut lr_rec = rec(1200.0, 1);
        lr_rec.outcome = DecisionOutcome::LastResort { response_ms: None };
        for s in [rec(500.0, 0), brain_rec, lr_rec] {
            record_session(&mut hub, &s);
        }
        let snap = hub.snapshot();
        assert_eq!(snap.counter("fleet.sessions"), 3);
        assert_eq!(snap.counter("fleet.local_hits"), 1);
        assert_eq!(snap.counter("fleet.brain_served"), 1);
        assert_eq!(snap.counter("fleet.last_resort"), 1);
        let lookup = snap.hist("stage.brain_lookup_ms").unwrap();
        assert_eq!(lookup.count, 1);
        assert!((lookup.mean().unwrap() - 42.0).abs() < 1e-9);
        assert_eq!(snap.hist("stage.startup_ms").unwrap().count, 3);
    }

    #[test]
    #[allow(deprecated)]
    fn hourly_series_means_and_profile() {
        let mut h = HourlySeries::new();
        h.push(0, 10.0);
        h.push(0, 20.0);
        h.push(25, 30.0); // day 1, hour 1
        let means = h.means();
        assert_eq!(means[0], 15.0);
        assert!(means[1].is_nan());
        assert_eq!(means[25], 30.0);
        let profile = h.hour_of_day_profile();
        assert_eq!(profile[0], 15.0);
        assert_eq!(profile[1], 30.0);
        assert!(profile[2].is_nan());
    }
}
