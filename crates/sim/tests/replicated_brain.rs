//! Fleet regression: with the Paxos-replicated Brain in the control loop
//! (and a leader crash mid-run), serial and parallel execution of the
//! same shard partition stay bit-identical — sessions, telemetry snapshot
//! and the replication summary included — at every shard width.

use livenet_sim::{FleetConfigBuilder, FleetFault, FleetRunner, ReplicationConfig};

/// A lease long enough that renewal decrees don't dominate debug-mode
/// runtime, but far shorter than the crash downtime so failover happens.
/// The client retry budget (timeout × attempts) must cover lease expiry
/// plus takeover, or requests issued right after the crash give up.
fn test_replication() -> ReplicationConfig {
    ReplicationConfig {
        lease_ms: 60_000,
        renew_margin_ms: 10_000,
        max_attempts: 300,
        ..ReplicationConfig::default()
    }
}

#[test]
fn replicated_fleet_is_bit_identical_across_shard_widths() {
    for shards in [1usize, 2, 4, 8] {
        let cfg = FleetConfigBuilder::smoke(33)
            .peak_arrivals_per_sec(0.15)
            .shards(shards)
            .replication(test_replication())
            .fault(FleetFault::BrainLeaderCrash {
                at_secs: 8 * 3600,
                down_for_secs: 600,
            })
            .build()
            .unwrap();
        let runner = FleetRunner::new(cfg).unwrap();
        let serial = runner.run_serial();
        let parallel = runner.run_parallel(shards.max(2));
        assert!(
            serial.bit_identical(&parallel),
            "replicated fleet diverged between serial and parallel at {shards} shards"
        );

        let rep = serial
            .replication
            .as_ref()
            .expect("replicated run must carry a replication summary");
        // Every shard ran a real cluster: decrees were committed and no
        // replica's log or post-run path decisions diverged.
        assert!(rep.ops_committed > 0, "no state decrees at {shards} shards");
        assert!(rep.lease_grants > 0, "no lease was ever granted");
        assert_eq!(rep.log_divergences, 0, "Paxos log divergence");
        assert_eq!(rep.assignment_mismatches, 0, "replica decision mismatch");
        assert_eq!(rep.give_ups, 0, "client gave up on the control plane");
        // The scripted crash hit exactly one shard's cluster per run
        // (every shard injects the fault; each crashes its own leader).
        assert_eq!(rep.leader_crashes, shards as u64);
        assert_eq!(rep.restarts, shards as u64);
        assert_eq!(serial.faults_injected, 1, "crash fault must be counted once");
        assert!(
            !rep.failover_ms.is_empty(),
            "leader crash produced no failover measurement at {shards} shards"
        );
        for &ms in &rep.failover_ms {
            assert!(ms.is_finite() && ms >= 0.0);
        }
    }
}

#[test]
fn replicated_run_matches_single_brain_session_stream() {
    // Enabling replication must not perturb the workload or the session
    // noise draws: the *set* of sessions (start times, channels) is
    // identical to the single-Brain run; only control-plane latency
    // outcomes may differ.
    let base = FleetConfigBuilder::smoke(34)
        .peak_arrivals_per_sec(0.15)
        .shards(2)
        .build()
        .unwrap();
    let replicated = FleetConfigBuilder::from_config(base.clone())
        .replication(test_replication())
        .build()
        .unwrap();
    let single = FleetRunner::new(base).unwrap().run_serial();
    let repl = FleetRunner::new(replicated).unwrap().run_serial();
    assert!(single.replication.is_none());
    assert_eq!(single.livenet.len(), repl.livenet.len());
    for (a, b) in single.livenet.iter().zip(&repl.livenet) {
        assert_eq!(a.start, b.start);
        assert_eq!(a.day, b.day);
        assert_eq!(a.international, b.international);
    }
}

#[test]
fn brain_crash_without_replication_is_rejected() {
    let err = FleetConfigBuilder::smoke(35)
        .fault(FleetFault::BrainLeaderCrash {
            at_secs: 3600,
            down_for_secs: 60,
        })
        .build();
    assert!(err.is_err(), "BrainLeaderCrash must require replication");
}
