//! Property-based tests for fault-plan determinism.
//!
//! The tentpole contract: a faulted fleet run is a pure function of its
//! seed and configuration — the same seed yields bit-identical recovery
//! metrics whether the shards execute serially or on any number of worker
//! threads.

use livenet_sim::{FleetConfigBuilder, FleetFault, FleetRunner};
use proptest::prelude::*;

proptest! {
    // Fleet runs are seconds-long; a handful of cases is plenty — the
    // property space is (seed × fault placement), not fine-grained input.
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Same seed ⇒ identical recovery metrics at every worker width.
    #[test]
    fn faulted_runs_are_bit_identical_at_any_width(
        seed in 0u64..1000,
        at_hour in 1u64..22,
        down_mins in 5u64..40,
        country in 0u32..5,
        per_day in 0u8..4,
    ) {
        let cfg = FleetConfigBuilder::smoke(seed)
            .peak_arrivals_per_sec(0.15)
            .fault(FleetFault::RegionOutage {
                at_secs: at_hour * 3600,
                down_for_secs: down_mins * 60,
                country,
            })
            .random_faults(f64::from(per_day), (300, 1200))
            .build()
            .unwrap();
        let runner = FleetRunner::new(cfg).unwrap();
        let serial = runner.run_serial();
        for width in [2usize, 8] {
            let parallel = runner.run_parallel(width);
            prop_assert!(
                serial.bit_identical(&parallel),
                "width {width} diverged from serial"
            );
            prop_assert_eq!(&serial.recoveries_livenet, &parallel.recoveries_livenet);
            prop_assert_eq!(&serial.recoveries_hier, &parallel.recoveries_hier);
            prop_assert_eq!(serial.faults_injected, parallel.faults_injected);
        }
        prop_assert!(serial.faults_injected >= 1);
    }
}
