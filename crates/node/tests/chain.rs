//! End-to-end tests of the overlay data plane on an in-process 3-node chain
//! (the paper's §3 example: A → B → C), with controllable per-link delay and
//! deterministic loss injection.

use bytes::Bytes;
use livenet_emu::EventQueue;
use livenet_media::{FrameKind, GopConfig, VideoEncoder};
use livenet_node::{
    NodeAction, NodeConfig, NodeEvent, OverlayMsg, OverlayNode, Subscriber, TimerKind,
};
use livenet_packet::rtp::ssrc_for_stream;
use livenet_packet::{MediaKind, Nack, Packetizer, RtcpPacket, RtxMiss};
use livenet_types::{Bandwidth, ClientId, NodeId, SeqNo, SimDuration, SimTime, StreamId};
use std::collections::{BTreeMap, HashMap};

/// Events flowing in the harness calendar.
enum Ev {
    Deliver {
        to: NodeId,
        from: NodeId,
        bytes: Bytes,
    },
    Timer {
        node: NodeId,
        key: u64,
    },
    ClientDeliver {
        client: ClientId,
        msg: OverlayMsg,
    },
}

/// A deterministic in-process driver for a set of overlay nodes.
struct Harness {
    nodes: BTreeMap<NodeId, OverlayNode>,
    queue: EventQueue<Ev>,
    link_delay: SimDuration,
    /// (from, to, nth-rtp-packet) triples to drop, counted per link.
    drop_rtp: Vec<(NodeId, NodeId, u64)>,
    /// Links on which every retransmission is dropped ("the network hates
    /// RTX"): models a link whose loss keeps eating the recovery traffic
    /// too, so the sender's own NACK retries never close its hole.
    drop_rtx: Vec<(NodeId, NodeId)>,
    rtp_sent: HashMap<(NodeId, NodeId), u64>,
    client_rx: HashMap<ClientId, Vec<OverlayMsg>>,
    events: Vec<(NodeId, NodeEvent)>,
}

impl Harness {
    fn new(ids: &[u64], link_delay_ms: u64) -> Self {
        let mut nodes = BTreeMap::new();
        let mut queue = EventQueue::new();
        for &id in ids {
            let nid = NodeId::new(id);
            let mut node = OverlayNode::new(NodeConfig::new(nid));
            for &other in ids {
                if other != id {
                    node.set_neighbor_rtt(
                        NodeId::new(other),
                        SimDuration::from_millis(2 * link_delay_ms),
                    );
                }
            }
            for action in node.start(SimTime::ZERO) {
                if let NodeAction::SetTimer { at, key } = action {
                    queue.schedule(at, Ev::Timer { node: nid, key });
                }
            }
            nodes.insert(nid, node);
        }
        Harness {
            nodes,
            queue,
            link_delay: SimDuration::from_millis(link_delay_ms),
            drop_rtp: Vec::new(),
            drop_rtx: Vec::new(),
            rtp_sent: HashMap::new(),
            client_rx: HashMap::new(),
            events: Vec::new(),
        }
    }

    fn node(&self, id: u64) -> &OverlayNode {
        &self.nodes[&NodeId::new(id)]
    }

    fn apply(&mut self, from: NodeId, actions: Vec<NodeAction>) {
        let now = self.queue.now();
        for a in actions {
            match a {
                NodeAction::Send { to, msg } => match to {
                    Subscriber::Node(n) => {
                        // RTP loss injection by per-link packet index.
                        if matches!(msg, OverlayMsg::Rtp { .. }) {
                            let count = self.rtp_sent.entry((from, n)).or_insert(0);
                            let idx = *count;
                            *count += 1;
                            if self.drop_rtp.iter().any(|&(f, t, i)| {
                                f == from && t == n && i == idx
                            }) {
                                continue; // dropped by "the network"
                            }
                            if matches!(msg, OverlayMsg::Rtp { retransmit: true, .. })
                                && self.drop_rtx.iter().any(|&(f, t)| f == from && t == n)
                            {
                                continue; // recovery traffic eaten too
                            }
                        }
                        self.queue.schedule(
                            now + self.link_delay,
                            Ev::Deliver {
                                to: n,
                                from,
                                bytes: msg.encode(),
                            },
                        );
                    }
                    Subscriber::Client(c) => {
                        self.queue.schedule(
                            now + SimDuration::from_millis(1),
                            Ev::ClientDeliver { client: c, msg },
                        );
                    }
                },
                NodeAction::SetTimer { at, key } => {
                    self.queue.schedule(at, Ev::Timer { node: from, key });
                }
                NodeAction::Event(e) => self.events.push((from, e)),
            }
        }
    }

    fn run_until(&mut self, t: SimTime) {
        while let Some((_, ev)) = self.queue.pop_until(t) {
            match ev {
                Ev::Deliver { to, from, bytes } => {
                    let now = self.queue.now();
                    let _ = now;
                    let Some(node) = self.nodes.get_mut(&to) else {
                        continue;
                    };
                    let actions = node.on_datagram(self.queue.now(), from, bytes);
                    self.apply(to, actions);
                }
                Ev::Timer { node, key } => {
                    let Some(n) = self.nodes.get_mut(&node) else {
                        continue;
                    };
                    let actions = n.on_timer(self.queue.now(), key);
                    self.apply(node, actions);
                }
                Ev::ClientDeliver { client, msg } => {
                    self.client_rx.entry(client).or_default().push(msg);
                }
            }
        }
    }

    fn with_node(&mut self, id: u64, f: impl FnOnce(&mut OverlayNode, SimTime) -> Vec<NodeAction>) {
        let nid = NodeId::new(id);
        let now = self.queue.now();
        let actions = {
            let node = self.nodes.get_mut(&nid).expect("node");
            f(node, now)
        };
        self.apply(nid, actions);
    }

    fn client_packets(&self, client: u64) -> usize {
        self.client_rx
            .get(&ClientId::new(client))
            .map_or(0, |v| v.iter().filter(|m| matches!(m, OverlayMsg::Rtp { .. })).count())
    }
}

const STREAM: StreamId = StreamId(7);

/// Build the A(1) → B(2) → C(3) chain with a client on C, producer on A,
/// and run the encoder for `secs` seconds.
fn run_chain(harness: &mut Harness, secs: u64) {
    harness.with_node(1, |n, _| {
        n.register_producer(STREAM, None);
        Vec::new()
    });
    // Client 9 attaches at C with path A → B → C.
    harness.with_node(3, |n, now| {
        let mut actions = Vec::new();
        n.client_attach(
            now,
            ClientId::new(9),
            STREAM,
            Some(Bandwidth::from_mbps(50)),
            Some(&[NodeId::new(1), NodeId::new(2), NodeId::new(3)]),
            &mut actions,
        );
        actions
    });
    harness.run_until(SimTime::from_millis(200));

    // Feed encoder frames into the producer.
    let mut enc = VideoEncoder::new(
        STREAM,
        GopConfig::default(),
        Bandwidth::from_mbps(2),
        SimTime::from_millis(200),
    );
    let end = SimTime::from_millis(200) + SimDuration::from_secs(secs);
    let mut next = enc.next_capture_time();
    while next < end {
        harness.run_until(next);
        let frame = enc.next_frame();
        let payload = Bytes::from(vec![0u8; frame.size_bytes as usize]);
        harness.with_node(1, |n, now| n.ingest_frame(now, &frame, &payload));
        next = enc.next_capture_time();
    }
    harness.run_until(end + SimDuration::from_secs(1));
}

#[test]
fn subscription_establishes_through_chain() {
    let mut h = Harness::new(&[1, 2, 3], 10);
    run_chain(&mut h, 1);
    // C's upstream is B; B's upstream is A.
    assert_eq!(h.node(3).upstream_of(STREAM), Some(NodeId::new(2)));
    assert_eq!(h.node(2).upstream_of(STREAM), Some(NodeId::new(1)));
    assert!(h.node(1).is_producer(STREAM));
    // FIBs: A → {B}, B → {C}, C → {client 9}.
    assert_eq!(h.node(1).fib().subscriber_count(STREAM), 1);
    assert_eq!(h.node(2).fib().subscriber_count(STREAM), 1);
    assert_eq!(h.node(3).fib().subscriber_count(STREAM), 1);
    // Subscription events observed.
    assert!(h
        .events
        .iter()
        .any(|(n, e)| *n == NodeId::new(3)
            && matches!(e, NodeEvent::SubscriptionEstablished { .. })));
}

#[test]
fn client_receives_stream_through_chain() {
    let mut h = Harness::new(&[1, 2, 3], 10);
    run_chain(&mut h, 2);
    let got = h.client_packets(9);
    assert!(got > 50, "client got only {got} packets");
    // Every hop forwarded.
    assert!(h.node(1).stats.forwarded > 0);
    assert!(h.node(2).stats.forwarded > 0);
    assert!(h.node(3).stats.forwarded > 0);
}

#[test]
fn lost_packet_recovered_via_nack_from_upstream() {
    let mut h = Harness::new(&[1, 2, 3], 10);
    // Drop the 20th RTP packet on A→B.
    h.drop_rtp.push((NodeId::new(1), NodeId::new(2), 20));
    run_chain(&mut h, 2);
    // B detected and recovered the hole (A retransmitted).
    let b = NodeId::new(2);
    assert!(
        h.events
            .iter()
            .any(|(n, e)| *n == b && matches!(e, NodeEvent::HoleRecovered { .. })),
        "B never recovered the hole"
    );
    assert!(h.node(1).stats.rtx_served >= 1, "A served no RTX");
    assert!(h.node(2).stats.nacks_sent >= 1, "B sent no NACK");
    // And the slow-path recovery is invisible to C: it sees a hole too
    // (fast path forwarded around the missing packet), NACKs B, and B
    // serves it from its recovered cache.
    let frames_at_c: usize = h
        .events
        .iter()
        .filter(|(n, e)| {
            *n == NodeId::new(3) && matches!(e, NodeEvent::FrameAssembled { .. })
        })
        .count();
    assert!(frames_at_c > 20, "C assembled only {frames_at_c} frames");
}

#[test]
fn second_viewer_hits_cache_and_gets_startup_burst() {
    let mut h = Harness::new(&[1, 2, 3], 10);
    run_chain(&mut h, 2);
    let before = h.node(3).stats.local_hits;
    // A second client attaches at C: the stream is already there.
    h.with_node(3, |n, now| {
        let mut actions = Vec::new();
        n.client_attach(
            now,
            ClientId::new(10),
            STREAM,
            Some(Bandwidth::from_mbps(50)),
            None, // no path needed — local hit expected
            &mut actions,
        );
        actions
    });
    let t = h.queue.now() + SimDuration::from_millis(500);
    h.run_until(t);
    assert_eq!(h.node(3).stats.local_hits, before + 1);
    assert!(
        h.events
            .iter()
            .any(|(n, e)| *n == NodeId::new(3)
                && matches!(
                    e,
                    NodeEvent::StartupBurst {
                        to: Subscriber::Client(c),
                        ..
                    } if c.raw() == 10
                )),
        "no startup burst to the second client"
    );
    // The burst arrives promptly (fast startup), well before the next GoP.
    assert!(h.client_packets(10) > 0, "client 10 got nothing");
}

#[test]
fn relay_cache_hit_stops_backtracking() {
    // D(4) also subscribes via B: B already carries the stream → cache hit
    // at B; A's FIB must NOT gain a second subscriber.
    let mut h = Harness::new(&[1, 2, 3, 4], 10);
    run_chain(&mut h, 1);
    let a_subs_before = h.node(1).fib().subscriber_count(STREAM);
    h.with_node(4, |n, now| {
        let mut actions = Vec::new();
        n.client_attach(
            now,
            ClientId::new(11),
            STREAM,
            Some(Bandwidth::from_mbps(50)),
            Some(&[NodeId::new(1), NodeId::new(2), NodeId::new(4)]),
            &mut actions,
        );
        actions
    });
    let t = h.queue.now() + SimDuration::from_secs(1);
    h.run_until(t);
    assert_eq!(h.node(1).fib().subscriber_count(STREAM), a_subs_before);
    assert_eq!(h.node(4).upstream_of(STREAM), Some(NodeId::new(2)));
    assert!(h
        .events
        .iter()
        .any(|(n, e)| *n == NodeId::new(2) && matches!(e, NodeEvent::CacheHit { .. })));
    // B now fans out to C and D.
    assert_eq!(h.node(2).fib().subscriber_count(STREAM), 2);
}

#[test]
fn unsubscribe_tears_down_unused_branches() {
    let mut h = Harness::new(&[1, 2, 3], 10);
    run_chain(&mut h, 1);
    // Client leaves C; C should unsubscribe from B, B from A.
    h.with_node(3, |n, now| {
        let mut actions = Vec::new();
        n.client_detach(now, ClientId::new(9), &mut actions);
        actions
    });
    let t = h.queue.now() + SimDuration::from_millis(200);
    h.run_until(t);
    assert_eq!(h.node(3).upstream_of(STREAM), None);
    assert_eq!(h.node(2).upstream_of(STREAM), None);
    assert_eq!(h.node(1).fib().subscriber_count(STREAM), 0);
}

#[test]
fn delay_field_accumulates_across_hops() {
    let mut h = Harness::new(&[1, 2, 3], 10);
    run_chain(&mut h, 2);
    // Find I-frame delay fields assembled at C; they must exceed the sum of
    // per-hop processing (2 ms × hops) plus half-RTT increments.
    let mut max_delay = SimDuration::ZERO;
    for (n, e) in &h.events {
        if *n == NodeId::new(3) {
            if let NodeEvent::FrameAssembled {
                delay_field: Some(d),
                ..
            } = e
            {
                max_delay = max_delay.max(*d);
            }
        }
    }
    // encoder 20ms + 2 hops × (2ms processing + 10ms half-RTT) = 44ms floor.
    assert!(
        max_delay >= SimDuration::from_millis(40),
        "delay field {max_delay} too small"
    );
}

#[test]
fn frame_dropping_kicks_in_on_constrained_client() {
    let mut h = Harness::new(&[1, 2, 3], 5);
    h.with_node(1, |n, _| {
        n.register_producer(STREAM, None);
        Vec::new()
    });
    // Client with a downlink far below the stream bitrate.
    h.with_node(3, |n, now| {
        let mut actions = Vec::new();
        n.client_attach(
            now,
            ClientId::new(9),
            STREAM,
            Some(Bandwidth::from_kbps(300)), // 2 Mbps stream → heavy backlog
            Some(&[NodeId::new(1), NodeId::new(2), NodeId::new(3)]),
            &mut actions,
        );
        actions
    });
    h.run_until(SimTime::from_millis(200));
    let mut enc = VideoEncoder::new(
        STREAM,
        GopConfig::default(),
        Bandwidth::from_mbps(2),
        SimTime::from_millis(200),
    );
    let end = SimTime::from_secs(6);
    let mut next = enc.next_capture_time();
    while next < end {
        h.run_until(next);
        let frame = enc.next_frame();
        let payload = Bytes::from(vec![0u8; frame.size_bytes as usize]);
        h.with_node(1, |n, now| n.ingest_frame(now, &frame, &payload));
        next = enc.next_capture_time();
    }
    h.run_until(end + SimDuration::from_secs(1));
    let ctl = h.node(3).client(ClientId::new(9)).unwrap();
    let s = ctl.stats;
    assert!(
        s.dropped_bunref + s.dropped_b + s.dropped_p + s.dropped_gop > 0,
        "no frames dropped despite 300 kbps downlink: {s:?}"
    );
    // Unreferenced B frames go first: they must dominate early drops.
    assert!(s.dropped_bunref > 0);
}

#[test]
fn costream_switch_is_seamless() {
    let mut h = Harness::new(&[1, 2, 3], 10);
    run_chain(&mut h, 2);
    // A co-broadcast stream starts at A.
    let co = StreamId::new(77);
    h.with_node(1, |n, _| {
        n.register_producer(co, None);
        Vec::new()
    });
    // Consumer C initiates the switch on the client's behalf.
    h.with_node(3, |n, now| {
        let mut actions = Vec::new();
        n.begin_costream_switch(
            now,
            ClientId::new(9),
            co,
            Some(&[NodeId::new(1), NodeId::new(2), NodeId::new(3)]),
            &mut actions,
        );
        actions
    });
    // Feed frames of the co-stream until its first GoP lands at C.
    let start = h.queue.now();
    let mut enc = VideoEncoder::new(co, GopConfig::default(), Bandwidth::from_mbps(2), start);
    let end = start + SimDuration::from_secs(4);
    let mut next = enc.next_capture_time();
    while next < end {
        h.run_until(next);
        let frame = enc.next_frame();
        let payload = Bytes::from(vec![0u8; frame.size_bytes as usize]);
        h.with_node(1, |n, now| n.ingest_frame(now, &frame, &payload));
        next = enc.next_capture_time();
    }
    h.run_until(end + SimDuration::from_secs(1));
    assert!(
        h.events.iter().any(|(n, e)| *n == NodeId::new(3)
            && matches!(e, NodeEvent::SwitchCompleted { to, .. } if *to == co)),
        "switch never completed"
    );
    let ctl = h.node(3).client(ClientId::new(9)).unwrap();
    assert_eq!(ctl.stream, co);
    assert_eq!(ctl.stats.switches, 1);
}

#[test]
fn mid_stream_path_switch_is_make_before_break() {
    // A(1) → B(2) → C(3) serving a client; D(4) offers an alternative
    // relay. C switches its path to A → D → C mid-stream (§7.1): the old
    // branch keeps feeding until the new one confirms, then B is released.
    let mut h = Harness::new(&[1, 2, 3, 4], 10);
    run_chain(&mut h, 2);
    assert_eq!(h.node(3).upstream_of(STREAM), Some(NodeId::new(2)));
    let frames_before: usize = h
        .events
        .iter()
        .filter(|(n, e)| *n == NodeId::new(3) && matches!(e, NodeEvent::FrameAssembled { .. }))
        .count();

    // Switch C onto A → D → C.
    h.with_node(3, |n, now| {
        n.switch_path(now, STREAM, &[NodeId::new(1), NodeId::new(4), NodeId::new(3)])
    });

    // Continue streaming for 2 more seconds.
    let start = h.queue.now();
    let mut enc = VideoEncoder::new(
        STREAM,
        GopConfig::default(),
        Bandwidth::from_mbps(2),
        start,
    );
    // Skip the encoder to fresh frame indices (timestamps don't collide
    // with the earlier run because sequence state lives in the producer).
    let end = start + SimDuration::from_secs(2);
    let mut next = enc.next_capture_time();
    while next < end {
        h.run_until(next);
        let frame = enc.next_frame();
        let payload = Bytes::from(vec![0u8; frame.size_bytes as usize]);
        h.with_node(1, |n, now| n.ingest_frame(now, &frame, &payload));
        next = enc.next_capture_time();
    }
    h.run_until(end + SimDuration::from_secs(1));

    // New upstream is D; B no longer carries the stream.
    assert_eq!(h.node(3).upstream_of(STREAM), Some(NodeId::new(4)));
    assert_eq!(h.node(4).upstream_of(STREAM), Some(NodeId::new(1)));
    assert_eq!(
        h.node(2).fib().subscriber_count(STREAM),
        0,
        "B should have been released"
    );
    assert_eq!(h.node(2).upstream_of(STREAM), None, "B should unsubscribe from A");
    // A now feeds D only.
    assert_eq!(h.node(1).fib().subscriber_count(STREAM), 1);

    // Frames kept flowing to C across the switch.
    let frames_after: usize = h
        .events
        .iter()
        .filter(|(n, e)| *n == NodeId::new(3) && matches!(e, NodeEvent::FrameAssembled { .. }))
        .count();
    assert!(
        frames_after > frames_before + 20,
        "stream starved across the switch: {frames_before} → {frames_after}"
    );
}

#[test]
fn switch_path_to_same_next_hop_is_noop() {
    let mut h = Harness::new(&[1, 2, 3], 10);
    run_chain(&mut h, 1);
    let before = h.node(3).upstream_of(STREAM);
    h.with_node(3, |n, now| {
        n.switch_path(now, STREAM, &[NodeId::new(1), NodeId::new(2), NodeId::new(3)])
    });
    h.run_until(h.queue.now() + SimDuration::from_millis(500));
    assert_eq!(h.node(3).upstream_of(STREAM), before);
    assert_eq!(h.node(2).fib().subscriber_count(STREAM), 1);
}

#[test]
fn relay_failure_recovered_by_path_switch() {
    // B dies mid-stream; the consumer re-routes through D and the stream
    // resumes (the failure-circumvention flexibility of §7.2).
    let mut h = Harness::new(&[1, 2, 3, 4], 10);
    run_chain(&mut h, 1);
    assert_eq!(h.node(3).upstream_of(STREAM), Some(NodeId::new(2)));

    // Kill B: the harness drops all events addressed to it.
    h.nodes.remove(&NodeId::new(2));

    // Keep streaming for a second: C starves (B is gone).
    let start = h.queue.now();
    let mut enc = VideoEncoder::new(
        STREAM,
        GopConfig::default(),
        Bandwidth::from_mbps(2),
        start,
    );
    let feed = |h: &mut Harness, enc: &mut VideoEncoder, until: SimTime| {
        let mut next = enc.next_capture_time();
        while next < until {
            h.run_until(next);
            let frame = enc.next_frame();
            let payload = Bytes::from(vec![0u8; frame.size_bytes as usize]);
            h.with_node(1, |n, now| n.ingest_frame(now, &frame, &payload));
            next = enc.next_capture_time();
        }
        h.run_until(until);
    };
    feed(&mut h, &mut enc, start + SimDuration::from_secs(1));
    let starved: usize = h
        .events
        .iter()
        .filter(|(n, e)| {
            *n == NodeId::new(3) && matches!(e, NodeEvent::FrameAssembled { .. })
        })
        .count();

    // The consumer detects the dead path (driver-side health check) and
    // switches to A → D → C.
    h.with_node(3, |n, now| {
        n.switch_path(now, STREAM, &[NodeId::new(1), NodeId::new(4), NodeId::new(3)])
    });
    feed(&mut h, &mut enc, start + SimDuration::from_secs(3));

    assert_eq!(h.node(3).upstream_of(STREAM), Some(NodeId::new(4)));
    let recovered: usize = h
        .events
        .iter()
        .filter(|(n, e)| {
            *n == NodeId::new(3) && matches!(e, NodeEvent::FrameAssembled { .. })
        })
        .count();
    assert!(
        recovered > starved + 20,
        "stream did not resume after the relay died: {starved} → {recovered}"
    );
}

#[test]
fn upstream_death_fast_failover_via_cached_backup_path() {
    // B dies mid-stream. C's liveness check notices the RTCP silence,
    // declares B dead, and autonomously re-subscribes along the cached
    // backup path A → D → C — no Brain round trip (§7.1 fast recovery).
    let mut h = Harness::new(&[1, 2, 3, 4], 10);
    run_chain(&mut h, 1);
    assert_eq!(h.node(3).upstream_of(STREAM), Some(NodeId::new(2)));
    h.with_node(3, |n, _| {
        n.install_paths(
            STREAM,
            &[vec![NodeId::new(1), NodeId::new(4), NodeId::new(3)]],
        );
        Vec::new()
    });

    // Kill B: the harness drops all events addressed to it.
    h.nodes.remove(&NodeId::new(2));

    // Keep the encoder running well past the upstream timeout.
    let start = h.queue.now();
    let mut enc = VideoEncoder::new(STREAM, GopConfig::default(), Bandwidth::from_mbps(2), start);
    let end = start + SimDuration::from_secs(6);
    let mut next = enc.next_capture_time();
    while next < end {
        h.run_until(next);
        let frame = enc.next_frame();
        let payload = Bytes::from(vec![0u8; frame.size_bytes as usize]);
        h.with_node(1, |n, now| n.ingest_frame(now, &frame, &payload));
        next = enc.next_capture_time();
    }
    h.run_until(end + SimDuration::from_secs(1));

    // C declared B dead and failed over to D without driver involvement.
    assert!(
        h.events.iter().any(|(n, e)| *n == NodeId::new(3)
            && matches!(
                e,
                NodeEvent::UpstreamDead { upstream, .. } if upstream.raw() == 2
            )),
        "C never declared B dead"
    );
    assert_eq!(h.node(3).upstream_of(STREAM), Some(NodeId::new(4)));
    assert_eq!(h.node(4).upstream_of(STREAM), Some(NodeId::new(1)));
    assert_eq!(h.node(3).stats.upstream_failovers, 1);
    // No Brain request was needed: the cached backup covered it.
    assert!(
        !h.events
            .iter()
            .any(|(_, e)| matches!(e, NodeEvent::PathRequestNeeded { .. })),
        "fast path should not have asked for a new path"
    );
}

#[test]
fn upstream_death_without_backup_requests_brain_path() {
    // Same failure, but no alternate path is cached (the only cached path
    // runs through the dead node): the node surfaces PathRequestNeeded —
    // the driver must fetch a fresh path from the Brain (slow recovery).
    let mut h = Harness::new(&[1, 2, 3], 10);
    run_chain(&mut h, 1);
    h.nodes.remove(&NodeId::new(2));

    let start = h.queue.now();
    let mut enc = VideoEncoder::new(STREAM, GopConfig::default(), Bandwidth::from_mbps(2), start);
    let end = start + SimDuration::from_secs(6);
    let mut next = enc.next_capture_time();
    while next < end {
        h.run_until(next);
        let frame = enc.next_frame();
        let payload = Bytes::from(vec![0u8; frame.size_bytes as usize]);
        h.with_node(1, |n, now| n.ingest_frame(now, &frame, &payload));
        next = enc.next_capture_time();
    }
    h.run_until(end + SimDuration::from_secs(1));

    assert!(h.events.iter().any(|(n, e)| *n == NodeId::new(3)
        && matches!(e, NodeEvent::UpstreamDead { .. })));
    assert!(
        h.events.iter().any(|(n, e)| *n == NodeId::new(3)
            && matches!(
                e,
                NodeEvent::PathRequestNeeded { dead, .. } if dead.raw() == 2
            )),
        "C never asked for a fresh path"
    );
    // The stream stays down until the driver supplies one.
    assert_eq!(h.node(3).upstream_of(STREAM), None);
}

#[test]
fn healthy_idle_upstream_is_not_declared_dead() {
    // The producer stops sending media but B and C stay alive: periodic
    // receiver reports keep flowing (which count as liveness), so silence
    // of the MEDIA alone must not trip failover... except RR stops too
    // when no packets ever arrive. Instead we verify the steady case: a
    // live chain never produces failovers.
    let mut h = Harness::new(&[1, 2, 3], 10);
    run_chain(&mut h, 4);
    assert_eq!(h.node(3).stats.upstream_failovers, 0);
    assert_eq!(h.node(2).stats.upstream_failovers, 0);
    assert!(h
        .events
        .iter()
        .all(|(_, e)| !matches!(e, NodeEvent::UpstreamDead { .. })));
}

#[test]
fn crash_reset_clears_volatile_state() {
    let mut h = Harness::new(&[1, 2, 3], 10);
    run_chain(&mut h, 1);
    h.with_node(2, |n, _| {
        n.crash_reset();
        Vec::new()
    });
    let b = h.node(2);
    assert_eq!(b.upstream_of(STREAM), None);
    assert_eq!(b.fib().subscriber_count(STREAM), 0);
    assert!(b.cache(STREAM).is_none());
    assert!(!b.is_producer(STREAM));
}

#[test]
fn broadcaster_mobility_rehomes_producer() {
    // The broadcaster moves: the new producer is D(4); the old producer
    // A(1) demotes to a relay and subscribes to D (§7.1), so C's existing
    // path A→B→C keeps delivering without resubscription.
    let mut h = Harness::new(&[1, 2, 3, 4], 10);
    run_chain(&mut h, 1);

    // The broadcaster re-homes to D; D becomes the producer, continuing
    // the sequence space from the handover state (A's next seq).
    let handover_seq = {
        let a = h.node(1);
        a.producer_next_seq(STREAM).expect("A was the producer")
    };
    h.with_node(4, |n, _| {
        n.register_producer_continuation(STREAM, None, handover_seq);
        Vec::new()
    });
    // The Brain instructs the OLD producer to subscribe to the new one
    // along D → A (the lookup exp_all's Brain would return).
    h.with_node(1, |n, now| {
        n.demote_to_relay(now, STREAM, &[NodeId::new(4), NodeId::new(1)])
    });

    // The (moved) broadcaster now uploads at D; continue the stream there.
    let start = h.queue.now();
    let mut enc = VideoEncoder::new(
        STREAM,
        GopConfig::default(),
        Bandwidth::from_mbps(2),
        start,
    );
    let end = start + SimDuration::from_secs(2);
    let mut next = enc.next_capture_time();
    let frames_before: usize = h
        .events
        .iter()
        .filter(|(n, e)| *n == NodeId::new(3) && matches!(e, NodeEvent::FrameAssembled { .. }))
        .count();
    while next < end {
        h.run_until(next);
        let frame = enc.next_frame();
        let payload = Bytes::from(vec![0u8; frame.size_bytes as usize]);
        h.with_node(4, |n, now| n.ingest_frame(now, &frame, &payload));
        next = enc.next_capture_time();
    }
    h.run_until(end + SimDuration::from_secs(1));

    // A is now a relay: not a producer, upstream = D.
    assert!(!h.node(1).is_producer(STREAM));
    assert_eq!(h.node(1).upstream_of(STREAM), Some(NodeId::new(4)));
    // C never changed its subscription, yet keeps assembling frames.
    assert_eq!(h.node(3).upstream_of(STREAM), Some(NodeId::new(2)));
    let frames_after: usize = h
        .events
        .iter()
        .filter(|(n, e)| *n == NodeId::new(3) && matches!(e, NodeEvent::FrameAssembled { .. }))
        .count();
    assert!(
        frames_after > frames_before + 20,
        "stream did not survive the producer move: {frames_before} → {frames_after}"
    );
}

// ----------------------------------------------------------------------
// Multi-supplier RTX and pending-RTX lifecycle
// ----------------------------------------------------------------------

/// One encoded RTP overlay datagram (single small packet) with the given
/// sequence number, for direct-driving a node without the harness.
fn rtp_datagram(seq: u16, sent_at: SimTime) -> Bytes {
    let mut p = Packetizer::new(ssrc_for_stream(STREAM), SeqNo(seq));
    let pkts = p.packetize_with_meta(
        MediaKind::Video,
        u32::from(seq).wrapping_mul(3000),
        &Bytes::from(vec![0u8; 64]),
        None,
        FrameKind::P.to_nibble(),
    );
    OverlayMsg::Rtp {
        stream: STREAM,
        sent_at,
        packet: pkts[0].encode(),
        retransmit: false,
    }
    .encode()
}

/// NACK sequence lists extracted from a node's emitted actions.
fn nack_batches_in(actions: &[NodeAction]) -> Vec<Vec<SeqNo>> {
    actions
        .iter()
        .filter_map(|a| match a {
            NodeAction::Send {
                msg: OverlayMsg::Rtcp { packet, .. },
                ..
            } => match RtcpPacket::decode(packet.clone()) {
                Ok(RtcpPacket::Nack(Nack { lost, .. })) => Some(lost),
                _ => None,
            },
            _ => None,
        })
        .collect()
}

#[test]
fn cache_miss_is_recovered_from_alternate_supplier() {
    // Diamond: A(1) feeds B(2) and D(4); C(3) subscribes via B with
    // A → D → C installed as a backup path. One packet is lost on A→B and
    // every retransmission on A→B dies too, so B can never serve C's NACK
    // (cache miss) nor close its own hole. B must answer with an RTX-miss
    // and C must immediately chase D — which is warm thanks to its own
    // viewer — instead of waiting out B's parked recovery.
    let mut h = Harness::new(&[1, 2, 3, 4], 10);
    h.drop_rtp.push((NodeId::new(1), NodeId::new(2), 20));
    h.drop_rtx.push((NodeId::new(1), NodeId::new(2)));
    h.with_node(1, |n, _| {
        n.register_producer(STREAM, None);
        Vec::new()
    });
    // A viewer at D keeps the alternate supplier's cache warm.
    h.with_node(4, |n, now| {
        let mut actions = Vec::new();
        n.client_attach(
            now,
            ClientId::new(12),
            STREAM,
            Some(Bandwidth::from_mbps(50)),
            Some(&[NodeId::new(1), NodeId::new(4)]),
            &mut actions,
        );
        actions
    });
    h.with_node(3, |n, now| {
        let mut actions = Vec::new();
        n.client_attach(
            now,
            ClientId::new(9),
            STREAM,
            Some(Bandwidth::from_mbps(50)),
            Some(&[NodeId::new(1), NodeId::new(2), NodeId::new(3)]),
            &mut actions,
        );
        n.install_paths(
            STREAM,
            &[vec![NodeId::new(1), NodeId::new(4), NodeId::new(3)]],
        );
        actions
    });
    h.run_until(SimTime::from_millis(200));
    let mut enc = VideoEncoder::new(
        STREAM,
        GopConfig::default(),
        Bandwidth::from_mbps(2),
        SimTime::from_millis(200),
    );
    let end = SimTime::from_millis(200) + SimDuration::from_secs(3);
    let mut next = enc.next_capture_time();
    while next < end {
        h.run_until(next);
        let frame = enc.next_frame();
        let payload = Bytes::from(vec![0u8; frame.size_bytes as usize]);
        h.with_node(1, |n, now| n.ingest_frame(now, &frame, &payload));
        next = enc.next_capture_time();
    }
    h.run_until(end + SimDuration::from_secs(1));

    // B missed the cache and said so instead of silently parking.
    assert!(h.node(2).stats.rtx_unavailable >= 1, "B never cache-missed");
    // C chased the alternate and the hole closed from D's retransmission.
    let c = h.node(3);
    assert!(
        c.stats.rtx_alternate_requests >= 1,
        "C never re-NACKed an alternate supplier"
    );
    assert!(
        c.stats.rtx_alternate_recovered >= 1,
        "no hole closed by the alternate: {:?}",
        c.stats
    );
    assert!(h.node(4).stats.rtx_served >= 1, "D served no RTX");
    assert!(
        h.events.iter().any(|(n, e)| *n == NodeId::new(3)
            && matches!(e, NodeEvent::HoleRecovered { alternate: true, .. })),
        "no alternate-supplier recovery event at C"
    );
    // B's parked waiter for C could never be served: the TTL sweep must
    // have evicted it rather than leaving it until stream teardown.
    assert!(
        h.node(2).stats.rtx_pending_expired >= 1,
        "B's dead parked waiter was never swept"
    );
}

#[test]
fn pending_rtx_is_capped_and_swept_by_ttl() {
    // A downstream NACKs 1500 sequences the node cannot serve: only
    // MAX_PENDING_RTX (1024) may park, every miss is reported back in one
    // RTX-miss, and the loss-scan sweep evicts the parked entries once the
    // TTL passes — none earlier.
    let mut node = OverlayNode::new(NodeConfig::new(NodeId::new(2)));
    node.register_producer(STREAM, None); // empty cache: every seq misses
    let _ = node.start(SimTime::ZERO);
    let lost: Vec<SeqNo> = (0u16..1500).map(SeqNo).collect();
    let nack = RtcpPacket::Nack(Nack {
        ssrc: ssrc_for_stream(STREAM),
        lost,
    });
    let actions = node.on_datagram(
        SimTime::from_millis(10),
        NodeId::new(3),
        OverlayMsg::Rtcp {
            stream: STREAM,
            packet: nack.encode(),
        }
        .encode(),
    );
    assert_eq!(node.stats.rtx_unavailable, 1500);
    let miss_lens: Vec<usize> = actions
        .iter()
        .filter_map(|a| match a {
            NodeAction::Send {
                msg: OverlayMsg::Rtcp { packet, .. },
                ..
            } => match RtcpPacket::decode(packet.clone()) {
                Ok(RtcpPacket::RtxMiss(RtxMiss { missing, .. })) => Some(missing.len()),
                _ => None,
            },
            _ => None,
        })
        .collect();
    assert_eq!(miss_lens, vec![1500], "every missed seq must be reported");

    // Before the TTL: nothing expires.
    let _ = node.on_timer(SimTime::from_millis(500), TimerKind::LossScan.encode());
    assert_eq!(node.stats.rtx_pending_expired, 0);
    // After the TTL: exactly the capped population is evicted.
    let _ = node.on_timer(SimTime::from_millis(1200), TimerKind::LossScan.encode());
    assert_eq!(node.stats.rtx_pending_expired, 1024);
    // The sweep is complete: a later sweep finds nothing left.
    let _ = node.on_timer(SimTime::from_millis(2400), TimerKind::LossScan.encode());
    assert_eq!(node.stats.rtx_pending_expired, 1024);
}

#[test]
fn stream_reset_purges_parked_rtx_waiters() {
    // Waiters parked against the old sequence space can never be served
    // after a large forward jump (stream reset): they must be purged, not
    // left to rot against the cap.
    let mut node = OverlayNode::new(NodeConfig::new(NodeId::new(2)));
    node.on_datagram(SimTime::ZERO, NodeId::new(1), rtp_datagram(0, SimTime::ZERO));
    let nack = RtcpPacket::Nack(Nack {
        ssrc: ssrc_for_stream(STREAM),
        lost: vec![SeqNo(2), SeqNo(3)],
    });
    node.on_datagram(
        SimTime::from_millis(5),
        NodeId::new(5),
        OverlayMsg::Rtcp {
            stream: STREAM,
            packet: nack.encode(),
        }
        .encode(),
    );
    assert_eq!(node.stats.rtx_unavailable, 2);
    assert_eq!(node.stats.rtx_pending_expired, 0);
    // Forward jump far past RESET_JUMP: the old space is gone.
    node.on_datagram(
        SimTime::from_millis(20),
        NodeId::new(1),
        rtp_datagram(5000, SimTime::from_millis(20)),
    );
    assert_eq!(
        node.stats.rtx_pending_expired, 2,
        "reset did not purge the parked waiters"
    );
}

/// Establish `upstream` (node 2) for STREAM on a fresh consumer node.
fn consumer_with_upstream() -> OverlayNode {
    let mut node = OverlayNode::new(NodeConfig::new(NodeId::new(3)));
    let mut actions = Vec::new();
    node.client_attach(
        SimTime::ZERO,
        ClientId::new(9),
        STREAM,
        None,
        Some(&[NodeId::new(2), NodeId::new(3)]),
        &mut actions,
    );
    node.on_datagram(
        SimTime::from_millis(5),
        NodeId::new(2),
        OverlayMsg::SubscribeOk { stream: STREAM }.encode(),
    );
    assert_eq!(node.upstream_of(STREAM), Some(NodeId::new(2)));
    node
}

#[test]
fn nack_retries_stop_at_retry_limit() {
    // One unrecovered hole: the node NACKs it exactly `nack_retry_limit`
    // times, then abandons it — no infinite retry stream.
    let mut node = consumer_with_upstream();
    node.on_datagram(
        SimTime::from_millis(10),
        NodeId::new(2),
        rtp_datagram(0, SimTime::from_millis(10)),
    );
    node.on_datagram(
        SimTime::from_millis(12),
        NodeId::new(2),
        rtp_datagram(2, SimTime::from_millis(12)),
    );
    let mut batches = Vec::new();
    for i in 1..=20u64 {
        let now = SimTime::from_millis(12 + i * 60);
        batches.extend(nack_batches_in(&node.on_timer(
            now,
            TimerKind::LossScan.encode(),
        )));
    }
    assert_eq!(batches.len(), 5, "hole must be NACKed exactly limit times");
    for b in &batches {
        assert_eq!(b.as_slice(), &[SeqNo(1)]);
    }
    assert_eq!(node.stats.nacks_sent, 5);
    assert_eq!(node.stats.nack_batches, 5);
}

#[test]
fn nacks_sent_counts_seqs_and_nack_batches_counts_messages() {
    // A 4-seq hole in one scan round is one NACK message but four lost
    // sequences: the two counters must diverge accordingly.
    let mut node = consumer_with_upstream();
    node.on_datagram(
        SimTime::from_millis(10),
        NodeId::new(2),
        rtp_datagram(0, SimTime::from_millis(10)),
    );
    node.on_datagram(
        SimTime::from_millis(12),
        NodeId::new(2),
        rtp_datagram(5, SimTime::from_millis(12)),
    );
    let actions = node.on_timer(SimTime::from_millis(80), TimerKind::LossScan.encode());
    let batches = nack_batches_in(&actions);
    assert_eq!(batches.len(), 1);
    assert_eq!(
        batches[0].as_slice(),
        &[SeqNo(1), SeqNo(2), SeqNo(3), SeqNo(4)]
    );
    assert_eq!(node.stats.nacks_sent, 4, "per-seq counter");
    assert_eq!(node.stats.nack_batches, 1, "per-message counter");
}
