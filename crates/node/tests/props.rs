//! Property-based tests for the node data-plane structures.

use bytes::Bytes;
use livenet_media::FrameKind;
use livenet_node::{StreamCache, StreamFib, Subscriber};
use livenet_packet::{MediaKind, Packetizer};
use livenet_node::rx::{RxOutcome, RxState};
use livenet_types::{ClientId, DetRng, NodeId, SeqNo, SimDuration, SimTime, Ssrc, StreamId};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum FibOp {
    Sub(u64, u64, bool),
    Unsub(u64, u64, bool),
}

fn arb_fib_ops() -> impl Strategy<Value = Vec<FibOp>> {
    prop::collection::vec(
        (0u64..5, 0u64..6, any::<bool>(), any::<bool>()).prop_map(|(s, p, client, sub)| {
            if sub {
                FibOp::Sub(s, p, client)
            } else {
                FibOp::Unsub(s, p, client)
            }
        }),
        0..100,
    )
}

proptest! {
    /// The FIB matches a reference model (HashSet) under any op sequence.
    #[test]
    fn fib_matches_reference(ops in arb_fib_ops()) {
        let mut fib = StreamFib::new();
        let mut model: HashSet<(u64, Subscriber)> = HashSet::new();
        for op in ops {
            match op {
                FibOp::Sub(s, p, client) => {
                    let sub = if client {
                        Subscriber::Client(ClientId::new(p))
                    } else {
                        Subscriber::Node(NodeId::new(p))
                    };
                    let added = fib.subscribe(StreamId::new(s), sub);
                    prop_assert_eq!(added, model.insert((s, sub)));
                }
                FibOp::Unsub(s, p, client) => {
                    let sub = if client {
                        Subscriber::Client(ClientId::new(p))
                    } else {
                        Subscriber::Node(NodeId::new(p))
                    };
                    let removed = fib.unsubscribe(StreamId::new(s), sub);
                    prop_assert_eq!(removed, model.remove(&(s, sub)));
                }
            }
            // Aggregate invariants hold at every step.
            prop_assert_eq!(fib.total_subscriptions(), model.len());
            for s in 0..5u64 {
                let count = model.iter().filter(|(ms, _)| *ms == s).count();
                prop_assert_eq!(fib.subscriber_count(StreamId::new(s)), count);
                prop_assert_eq!(fib.has_stream(StreamId::new(s)), count > 0);
            }
        }
    }

    /// RxState: received + outstanding + abandoned == expected, always.
    #[test]
    fn rx_accounting_invariant(
        deliveries in prop::collection::vec((0u16..500, any::<bool>()), 1..300),
        scans in 1u64..20,
    ) {
        let mut rx = RxState::new();
        let mut t = SimTime::ZERO;
        for (i, &(seq, deliver)) in deliveries.iter().enumerate() {
            t = SimTime::from_millis(i as u64 * 7);
            if deliver {
                rx.on_packet(t, SeqNo(seq), SimDuration::from_millis(5));
            }
        }
        for s in 0..scans {
            let _ = rx.scan(
                t + SimDuration::from_millis(s * 100),
                SimDuration::from_millis(50),
                3,
            );
        }
        prop_assert_eq!(
            rx.received + rx.outstanding_holes() as u64 + rx.abandoned,
            rx.expected,
            "accounting identity broken"
        );
        prop_assert!(rx.residual_loss() <= 1.0);
    }

    /// Cache: a contiguous insert sequence always yields a startup burst
    /// beginning at an I frame and ending at the newest packet.
    #[test]
    fn cache_burst_invariants(
        frames in prop::collection::vec((any::<bool>(), 100usize..4000), 1..30),
        capacity in 64usize..512,
    ) {
        let mut cache = StreamCache::new(capacity);
        let mut p = Packetizer::new(Ssrc(3), SeqNo(0));
        let mut any_i = false;
        let mut total = 0usize;
        for (i, &(is_i, size)) in frames.iter().enumerate() {
            let kind = if is_i || i == 0 { FrameKind::I } else { FrameKind::P };
            any_i |= kind == FrameKind::I;
            let payload = Bytes::from(vec![0u8; size]);
            for pkt in p.packetize_with_meta(MediaKind::Video, i as u32 * 3000, &payload, None, kind.to_nibble()) {
                total += 1;
                cache.insert(pkt);
            }
        }
        prop_assert!(cache.len() <= capacity.max(8));
        let burst = cache.startup_burst();
        if !burst.is_empty() {
            prop_assert!(any_i);
            prop_assert_eq!(cache.kind_of(burst[0].header.seq), Some(FrameKind::I));
            prop_assert_eq!(burst.last().unwrap().header.seq, cache.highest_seq().unwrap());
            for w in burst.windows(2) {
                prop_assert_eq!(w[1].header.seq, w[0].header.seq.next());
            }
        }
        let _ = total;
    }

    /// Duplicate delivery is always detected, never double-counted.
    #[test]
    fn rx_duplicates_detected(seqs in prop::collection::vec(0u16..100, 1..200)) {
        let mut rx = RxState::new();
        let mut rng = DetRng::seed(1);
        let mut delivered: HashSet<u16> = HashSet::new();
        let mut fresh_or_recovered = 0u64;
        for (i, &s) in seqs.iter().enumerate() {
            let t = SimTime::from_millis(i as u64);
            let out = rx.on_packet(t, SeqNo(s), SimDuration::from_millis(3));
            match out {
                RxOutcome::Fresh | RxOutcome::Reset | RxOutcome::Recovered { .. } => {
                    prop_assert!(delivered.insert(s), "double-counted {s}");
                    fresh_or_recovered += 1;
                }
                RxOutcome::Duplicate => {
                    // Either truly seen, or behind the window start.
                }
            }
            let _ = rng.f64();
        }
        prop_assert_eq!(rx.received, fresh_or_recovered);
    }
}

proptest! {
    /// A contiguous (wrapping) sequence run never manufactures holes or
    /// resets, wherever it starts — including runs that cross the 32,768
    /// midpoint and the 65,535 → 0 wrap.
    #[test]
    fn rx_contiguous_run_survives_wraparound(start in any::<u16>(), n in 1usize..2048) {
        let mut rx = RxState::new();
        let mut seq = SeqNo(start);
        for i in 0..n {
            let t = SimTime::from_millis(i as u64);
            let out = rx.on_packet(t, seq, SimDuration::from_millis(3));
            prop_assert!(matches!(out, RxOutcome::Fresh), "non-fresh at {i}");
            seq = seq.next();
        }
        prop_assert_eq!(rx.received, n as u64);
        prop_assert_eq!(rx.expected, n as u64);
        prop_assert_eq!(rx.outstanding_holes(), 0);
        prop_assert_eq!(rx.abandoned, 0);
    }

    /// A small forward jump marks exactly `gap − 1` holes even when the
    /// pair straddles the signed-midpoint (32,768) boundary or the u16
    /// wrap, and the accounting identity holds.
    #[test]
    fn rx_gap_accounting_wraps_cleanly(start in any::<u16>(), gap in 2u16..64) {
        let mut rx = RxState::new();
        rx.on_packet(SimTime::ZERO, SeqNo(start), SimDuration::from_millis(3));
        rx.on_packet(
            SimTime::from_millis(1),
            SeqNo(start).add(gap),
            SimDuration::from_millis(3),
        );
        prop_assert_eq!(rx.outstanding_holes(), usize::from(gap) - 1);
        prop_assert_eq!(rx.expected, u64::from(gap) + 1);
        prop_assert_eq!(rx.received, 2);
        prop_assert_eq!(
            rx.received + rx.outstanding_holes() as u64 + rx.abandoned,
            rx.expected
        );
    }

    /// `scan` never NACKs any hole more than `retry_limit` times, no
    /// matter how often it runs or how the holes are interleaved with
    /// recoveries; exhausted holes are abandoned, never re-NACKed.
    #[test]
    fn scan_respects_retry_limit_per_hole(
        gap in 3u16..120,
        retry_limit in 1u32..6,
        scans in 1u64..40,
        recover_stride in 0u16..5,
    ) {
        let mut rx = RxState::new();
        rx.on_packet(SimTime::ZERO, SeqNo(10), SimDuration::from_millis(3));
        rx.on_packet(
            SimTime::from_millis(1),
            SeqNo(10).add(gap),
            SimDuration::from_millis(3),
        );
        let interval = SimDuration::from_millis(50);
        let mut nacks: std::collections::HashMap<u16, u32> = std::collections::HashMap::new();
        for s in 0..scans {
            let now = SimTime::from_millis(10 + s * 60);
            for seq in rx.scan(now, interval, retry_limit) {
                *nacks.entry(seq.0).or_insert(0) += 1;
            }
            // Occasionally recover one of the holes mid-stream.
            if recover_stride > 0 && s % u64::from(recover_stride) == 0 {
                let victim = SeqNo(11).add((s % u64::from(gap - 1)) as u16);
                let _ = rx.on_packet(now, victim, SimDuration::from_millis(3));
            }
        }
        for (&seq, &n) in &nacks {
            prop_assert!(
                n <= retry_limit,
                "seq {seq} NACKed {n} times (limit {retry_limit})"
            );
        }
        prop_assert_eq!(
            rx.received + rx.outstanding_holes() as u64 + rx.abandoned,
            rx.expected
        );
    }

    /// Timer keys roundtrip for every kind and id.
    #[test]
    fn timer_kind_roundtrip(raw in 0u64..(1u64 << 48), client: bool) {
        use livenet_node::TimerKind;
        let kinds = [
            TimerKind::LossScan,
            TimerKind::RrTick,
            if client {
                TimerKind::PacerPoll(Subscriber::Client(ClientId::new(raw)))
            } else {
                TimerKind::PacerPoll(Subscriber::Node(NodeId::new(raw)))
            },
        ];
        for k in kinds {
            prop_assert_eq!(TimerKind::decode(k.encode()), Some(k));
        }
    }
}
