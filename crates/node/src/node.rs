//! The overlay node state machine: fast path + slow path (paper §5, Fig. 7).
//!
//! `OverlayNode` is sans-I/O: drivers feed it datagrams and timer expiries,
//! and it returns [`NodeAction`]s (datagrams to send, timers to arm,
//! instrumentation events). The same core runs under the discrete-event
//! emulator and the tokio transport.
//!
//! The two packet pipelines:
//!
//! * **Fast path** — an arriving RTP packet is immediately looked up in the
//!   Stream FIB and enqueued to every subscriber's pacer, without loss
//!   detection or congestion control. The delay field is incremented by
//!   this node's processing time plus half the next hop's RTT (§6.1).
//! * **Slow path** — a copy feeds, per stream: the receive state (hole
//!   detection, 50 ms NACK scans), the per-upstream GCC delay estimator,
//!   the packet/GoP cache (retransmission + fast startup), and the framing
//!   module (GoP assembly). Slow-path copies are never forwarded.

use crate::cache::StreamCache;
use crate::client::ClientControl;
use crate::fib::{StreamFib, Subscriber};
use crate::msg::OverlayMsg;
use crate::rx::{RxOutcome, RxState};
use bytes::Bytes;
use livenet_cc::{
    DelayBasedEstimator, GccSender, PacedPacket, Pacer, PacerConfig, RateDecisionStats,
    SendPriority,
};
use livenet_media::{EncodedFrame, FrameKind, SimulcastLadder};
use livenet_packet::{frag_meta, MediaKind, Packetizer, RtcpPacket, RtpPacket};
use livenet_packet::rtp::ssrc_for_stream;
use livenet_packet::{Nack, ReceiverReport, Remb, RtxMiss};
use livenet_types::{
    Bandwidth, ClientId, NodeId, SeqNo, SimDuration, SimTime, StreamId,
};
use std::collections::{BTreeMap, HashMap};

/// Timer kinds multiplexed over the driver's single timer key space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// The 50 ms slow-path loss scan.
    LossScan,
    /// The periodic receiver-report / REMB tick.
    RrTick,
    /// A pacer for one peer has queued data.
    PacerPoll(Subscriber),
    /// The upstream-liveness check (RTCP-silence failure detection, §7.1).
    Liveness,
}

const KIND_SCAN: u64 = 1;
const KIND_RR: u64 = 2;
const KIND_PACER: u64 = 3;
const KIND_LIVENESS: u64 = 4;
const CLIENT_BIT: u64 = 1 << 55;

impl TimerKind {
    /// Pack into a u64 timer key.
    pub fn encode(self) -> u64 {
        match self {
            TimerKind::LossScan => KIND_SCAN << 56,
            TimerKind::RrTick => KIND_RR << 56,
            TimerKind::PacerPoll(Subscriber::Node(n)) => (KIND_PACER << 56) | n.raw(),
            TimerKind::PacerPoll(Subscriber::Client(c)) => {
                (KIND_PACER << 56) | CLIENT_BIT | c.raw()
            }
            TimerKind::Liveness => KIND_LIVENESS << 56,
        }
    }

    /// Unpack from a u64 timer key.
    pub fn decode(key: u64) -> Option<TimerKind> {
        match key >> 56 {
            KIND_SCAN => Some(TimerKind::LossScan),
            KIND_RR => Some(TimerKind::RrTick),
            KIND_LIVENESS => Some(TimerKind::Liveness),
            KIND_PACER => {
                let aux = key & ((1 << 56) - 1);
                if aux & CLIENT_BIT != 0 {
                    Some(TimerKind::PacerPoll(Subscriber::Client(ClientId::new(
                        aux & !CLIENT_BIT,
                    ))))
                } else {
                    Some(TimerKind::PacerPoll(Subscriber::Node(NodeId::new(aux))))
                }
            }
            _ => None,
        }
    }
}

/// Static node configuration.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's identity.
    pub id: NodeId,
    /// Per-packet processing latency added on the fast path.
    pub processing_delay: SimDuration,
    /// Slow-path loss-scan period (paper: 50 ms).
    pub loss_scan_interval: SimDuration,
    /// Minimum spacing between NACKs for the same sequence number.
    pub nack_retry_interval: SimDuration,
    /// NACK retries before a hole is abandoned.
    pub nack_retry_limit: u32,
    /// Receiver-report / REMB period.
    pub rr_interval: SimDuration,
    /// Per-stream packet-cache capacity (packets ≈ a few GoPs).
    pub cache_packets: usize,
    /// Pacer settings (I-frame gain 1.5, backlog threshold).
    pub pacer: PacerConfig,
    /// Initial pacing rate per peer.
    pub initial_rate: Bandwidth,
    /// GCC rate floor.
    pub min_rate: Bandwidth,
    /// GCC rate ceiling (≈ link capacity share).
    pub max_rate: Bandwidth,
    /// Serve GoP-cache startup bursts to new subscribers (§5.1). Disabled
    /// only by the ablation harness — without it, a new viewer waits for
    /// the next I frame.
    pub startup_burst: bool,
    /// Liveness-check period for upstream-death detection.
    pub liveness_interval: SimDuration,
    /// Silence threshold after which an upstream is declared dead: no RTP
    /// or RTCP heard for this long. Must exceed several RR intervals so a
    /// healthy-but-idle upstream (which still reports) is never declared
    /// dead on media gaps alone.
    pub upstream_timeout: SimDuration,
    /// Largest overlay datagram a socket driver should accept without
    /// truncation. Socket drivers size their receive buffer from this;
    /// they additionally cap it at 64 KiB, the UDP maximum.
    pub max_datagram_bytes: usize,
    /// Alternate RTX suppliers to re-NACK when the primary upstream
    /// reports a cache miss (AutoRec-style multi-supplier recovery).
    /// Candidates come from the cached backup paths, liveness-filtered
    /// and RTT-ordered. `0` disables the alternate path entirely: misses
    /// park on the primary and wait out its own recovery.
    pub rtx_alt_suppliers: usize,
    /// How long an unserviceable downstream NACK may stay parked in
    /// `pending_rtx` before the loss-scan sweep evicts it. By then the
    /// downstream has either recovered elsewhere or abandoned the hole,
    /// so serving it would only produce duplicates.
    pub pending_rtx_ttl: SimDuration,
}

impl NodeConfig {
    /// Defaults matching the paper's parameters.
    pub fn new(id: NodeId) -> Self {
        NodeConfig {
            id,
            processing_delay: SimDuration::from_millis(2),
            loss_scan_interval: SimDuration::from_millis(50),
            nack_retry_interval: SimDuration::from_millis(50),
            nack_retry_limit: 5,
            rr_interval: SimDuration::from_millis(500),
            cache_packets: 2048,
            pacer: PacerConfig::default(),
            initial_rate: Bandwidth::from_mbps(20),
            min_rate: Bandwidth::from_kbps(200),
            max_rate: Bandwidth::from_gbps(2),
            startup_burst: true,
            liveness_interval: SimDuration::from_millis(500),
            upstream_timeout: SimDuration::from_millis(2500),
            max_datagram_bytes: 64 * 1024,
            rtx_alt_suppliers: 1,
            pending_rtx_ttl: SimDuration::from_millis(1000),
        }
    }
}

/// Instrumentation events emitted by the node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeEvent {
    /// A subscription was forwarded upstream (cache miss, backtracking).
    SubscribeForwarded {
        /// Stream being subscribed.
        stream: StreamId,
        /// The upstream hop chosen from the path remainder.
        upstream: NodeId,
    },
    /// A subscription hit local state (the stream was already here).
    CacheHit {
        /// Stream requested.
        stream: StreamId,
        /// Who asked.
        subscriber: Subscriber,
    },
    /// Our own upstream subscription was confirmed.
    SubscriptionEstablished {
        /// Stream now flowing.
        stream: StreamId,
        /// The confirmed upstream.
        upstream: NodeId,
    },
    /// A fast-startup GoP burst was sent to a new subscriber.
    StartupBurst {
        /// Stream.
        stream: StreamId,
        /// Recipient.
        to: Subscriber,
        /// Packets in the burst.
        packets: usize,
    },
    /// The framing module completed a frame (slow path).
    FrameAssembled {
        /// Stream.
        stream: StreamId,
        /// RTP timestamp of the frame.
        timestamp: u32,
        /// Frame kind decoded from the fragment header.
        kind: Option<FrameKind>,
        /// Cumulative delay field, when the frame carried one.
        delay_field: Option<SimDuration>,
    },
    /// A hole was recovered via retransmission.
    HoleRecovered {
        /// Stream.
        stream: StreamId,
        /// Detection-to-recovery latency.
        after: SimDuration,
        /// The recovery came from an alternate supplier, not the
        /// established upstream (multi-supplier RTX).
        alternate: bool,
    },
    /// A client's pending co-stream switch completed seamlessly.
    SwitchCompleted {
        /// The client switched.
        client: ClientId,
        /// Old stream.
        from: StreamId,
        /// New stream.
        to: StreamId,
    },
    /// A client was stepped down to a lower bitrate rendition.
    SteppedDown {
        /// The client.
        client: ClientId,
        /// New (lower) rendition stream.
        to: StreamId,
    },
    /// An upstream was declared dead after RTCP silence (§7.1 failover).
    UpstreamDead {
        /// Stream whose feed stopped.
        stream: StreamId,
        /// The silent upstream.
        upstream: NodeId,
    },
    /// No cached backup path avoids the dead element: the driver must ask
    /// the Brain for a fresh path (the slow recovery path).
    PathRequestNeeded {
        /// Stream that needs a new path.
        stream: StreamId,
        /// The failed upstream to route around.
        dead: NodeId,
    },
}

/// Actions requested by the node.
#[derive(Debug, Clone)]
pub enum NodeAction {
    /// Transmit a datagram to a peer.
    Send {
        /// Destination (overlay node or attached client).
        to: Subscriber,
        /// Message.
        msg: OverlayMsg,
    },
    /// Arm a timer; the driver must call [`OverlayNode::on_timer`] at `at`.
    SetTimer {
        /// Absolute expiry.
        at: SimTime,
        /// Opaque key (a packed [`TimerKind`]).
        key: u64,
    },
    /// Instrumentation.
    Event(NodeEvent),
}

/// Telemetry counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeStats {
    /// RTP packets forwarded on the fast path (per subscriber fan-out).
    pub forwarded: u64,
    /// RTP packets ingested from a local broadcaster.
    pub ingested: u64,
    /// Retransmissions served to downstream NACKs.
    pub rtx_served: u64,
    /// NACKed sequences we did not have cached.
    pub rtx_unavailable: u64,
    /// Lost sequence numbers NACKed upstream (one per seq, not per
    /// message — comparable with `rtx_served`/`rtx_unavailable`).
    pub nacks_sent: u64,
    /// NACK messages sent upstream (each batches one scan's seqs).
    pub nack_batches: u64,
    /// Parked downstream NACK waiters evicted without being served
    /// (stream reset purge or TTL sweep).
    pub rtx_pending_expired: u64,
    /// Lost sequences re-NACKed to an alternate supplier after the
    /// primary reported a cache miss.
    pub rtx_alternate_requests: u64,
    /// Holes recovered by a retransmission from an alternate supplier.
    pub rtx_alternate_recovered: u64,
    /// Cache-missed sequences with no live alternate supplier available
    /// (fell back to parking on the primary).
    pub rtx_alternate_exhausted: u64,
    /// Duplicate packets discarded by the slow path.
    pub duplicates: u64,
    /// Subscription requests received.
    pub subs_received: u64,
    /// Local hits (stream already present when a subscription arrived).
    pub local_hits: u64,
    /// Upstreams declared dead and failed over (fast or slow path).
    pub upstream_failovers: u64,
}

impl NodeStats {
    /// Export these counters — the consumer-node log analogue (§6.1) —
    /// into a metric sink.  Values are cumulative totals, so record into a
    /// sink that has not seen this node before (e.g. a per-run hub), or
    /// diff externally.
    pub fn record_into(&self, sink: &mut impl livenet_telemetry::MetricSink) {
        use livenet_telemetry::ids;
        sink.add(ids::NODE_FORWARDED, self.forwarded);
        sink.add(ids::NODE_INGESTED, self.ingested);
        sink.add(ids::NODE_RTX_SERVED, self.rtx_served);
        sink.add(ids::NODE_RTX_UNAVAILABLE, self.rtx_unavailable);
        sink.add(ids::NODE_NACKS_SENT, self.nacks_sent);
        sink.add(ids::NODE_NACK_BATCHES, self.nack_batches);
        sink.add(ids::NODE_RTX_PENDING_EXPIRED, self.rtx_pending_expired);
        sink.add(ids::NODE_RTX_ALTERNATE_REQUESTS, self.rtx_alternate_requests);
        sink.add(ids::NODE_RTX_ALTERNATE_RECOVERED, self.rtx_alternate_recovered);
        sink.add(ids::NODE_RTX_ALTERNATE_EXHAUSTED, self.rtx_alternate_exhausted);
        sink.add(ids::NODE_DUPLICATES, self.duplicates);
        sink.add(ids::NODE_SUBS_RECEIVED, self.subs_received);
        sink.add(ids::NODE_LOCAL_HITS, self.local_hits);
        sink.add(ids::NODE_FAILOVERS, self.upstream_failovers);
    }
}

/// A packet waiting in a peer's pacer.
#[derive(Debug, Clone)]
struct OutPkt {
    stream: StreamId,
    packet: RtpPacket,
    retransmit: bool,
}

/// Per-stream producer state.
struct ProducerState {
    packetizer: Packetizer,
}

/// The overlay node.
pub struct OverlayNode {
    cfg: NodeConfig,
    fib: StreamFib,
    /// Established upstream per stream.
    upstream: HashMap<StreamId, NodeId>,
    /// Subscription sent upstream, awaiting SubscribeOk.
    pending: HashMap<StreamId, NodeId>,
    /// Mid-stream path switch in flight: stream → old upstream to release
    /// once the new subscription confirms (§7.1 "Maintaining Multiple
    /// Paths": consumers re-route on local quality observations).
    switching_from: HashMap<StreamId, NodeId>,
    /// Downstream nodes awaiting our SubscribeOk relay.
    waiting_ok: HashMap<StreamId, Vec<NodeId>>,
    caches: HashMap<StreamId, StreamCache>,
    rx: HashMap<StreamId, RxState>,
    depack: HashMap<StreamId, livenet_packet::Depacketizer>,
    gcc_rx: HashMap<NodeId, DelayBasedEstimator>,
    gcc_tx: BTreeMap<Subscriber, GccSender>,
    pacers: BTreeMap<Subscriber, Pacer<OutPkt>>,
    /// Pacer timers currently armed (avoid duplicate timers per peer).
    pacer_armed: BTreeMap<Subscriber, SimTime>,
    clients: BTreeMap<ClientId, ClientControl>,
    producers: HashMap<StreamId, ProducerState>,
    ladders: HashMap<StreamId, SimulcastLadder>,
    neighbor_rtt: HashMap<NodeId, SimDuration>,
    /// Last time anything (RTP or RTCP) was heard from each neighbor;
    /// feeds the upstream-liveness check.
    last_heard: HashMap<NodeId, SimTime>,
    /// Cached candidate paths per stream (producer-first, ending here):
    /// the Brain's K paths from the original lookup plus any prefetched
    /// backups. The fast failover path re-subscribes along the first
    /// cached path that avoids the failed element (§7.1 backup paths).
    path_cache: HashMap<StreamId, Vec<Vec<NodeId>>>,
    /// Downstream NACKs we could not serve because the packet was missing
    /// from our own cache (lost on our upstream link too). Served the
    /// moment the packet arrives — typically as our own recovery — instead
    /// of making the downstream wait out another NACK retry round.
    /// Entries are purged on stream reset and swept by TTL in the loss
    /// scan so stale waiters cannot eat the cap.
    pending_rtx: HashMap<StreamId, BTreeMap<u16, PendingRtx>>,
    /// Telemetry.
    pub stats: NodeStats,
}

/// One parked downstream NACK: who is waiting, and since when (drives the
/// TTL sweep).
#[derive(Debug, Clone)]
struct PendingRtx {
    waiters: Vec<NodeId>,
    parked_at: SimTime,
}

/// Bound on remembered unserviceable NACKs per stream.
const MAX_PENDING_RTX: usize = 1_024;

impl OverlayNode {
    /// Build a node. Call [`Self::start`] to arm the periodic timers.
    pub fn new(cfg: NodeConfig) -> Self {
        OverlayNode {
            cfg,
            fib: StreamFib::new(),
            upstream: HashMap::new(),
            pending: HashMap::new(),
            switching_from: HashMap::new(),
            waiting_ok: HashMap::new(),
            caches: HashMap::new(),
            rx: HashMap::new(),
            depack: HashMap::new(),
            gcc_rx: HashMap::new(),
            gcc_tx: BTreeMap::new(),
            pacers: BTreeMap::new(),
            pacer_armed: BTreeMap::new(),
            clients: BTreeMap::new(),
            producers: HashMap::new(),
            ladders: HashMap::new(),
            neighbor_rtt: HashMap::new(),
            last_heard: HashMap::new(),
            path_cache: HashMap::new(),
            pending_rtx: HashMap::new(),
            stats: NodeStats::default(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.cfg.id
    }

    /// The Stream FIB (read access for drivers/tests).
    pub fn fib(&self) -> &StreamFib {
        &self.fib
    }

    /// The packet cache of a stream, if any.
    pub fn cache(&self, stream: StreamId) -> Option<&StreamCache> {
        self.caches.get(&stream)
    }

    /// A client's control state.
    pub fn client(&self, client: ClientId) -> Option<&ClientControl> {
        self.clients.get(&client)
    }

    /// Established upstream of a stream.
    pub fn upstream_of(&self, stream: StreamId) -> Option<NodeId> {
        self.upstream.get(&stream).copied()
    }

    /// Provide an RTT hint for a neighbor (used for the delay field's
    /// half-next-hop-RTT increment). Drivers refresh this from probes.
    pub fn set_neighbor_rtt(&mut self, neighbor: NodeId, rtt: SimDuration) {
        self.neighbor_rtt.insert(neighbor, rtt);
    }

    /// Arm the periodic slow-path timers. Call once at startup.
    pub fn start(&mut self, now: SimTime) -> Vec<NodeAction> {
        vec![
            NodeAction::SetTimer {
                at: now + self.cfg.loss_scan_interval,
                key: TimerKind::LossScan.encode(),
            },
            NodeAction::SetTimer {
                at: now + self.cfg.rr_interval,
                key: TimerKind::RrTick.encode(),
            },
            NodeAction::SetTimer {
                at: now + self.cfg.liveness_interval,
                key: TimerKind::Liveness.encode(),
            },
        ]
    }

    /// Install candidate paths (producer-first, ending at this node) for a
    /// stream — the Brain's K-path lookup result or prefetched backups.
    /// The upstream-failover fast path picks from these.
    pub fn install_paths(&mut self, stream: StreamId, paths: &[Vec<NodeId>]) {
        let entry = self.path_cache.entry(stream).or_default();
        for p in paths {
            if p.len() >= 2 && !entry.contains(p) {
                entry.push(p.clone());
            }
        }
    }

    /// Cached candidate paths for a stream.
    pub fn cached_paths(&self, stream: StreamId) -> &[Vec<NodeId>] {
        self.path_cache
            .get(&stream)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Drop all volatile state after a process crash, keeping only the
    /// static config and the driver-provided neighbor RTT hints. The
    /// restarted process re-arms its timers via [`Self::start`] and
    /// re-learns everything else from the network.
    pub fn crash_reset(&mut self) {
        self.fib = StreamFib::new();
        self.upstream.clear();
        self.pending.clear();
        self.switching_from.clear();
        self.waiting_ok.clear();
        self.caches.clear();
        self.rx.clear();
        self.depack.clear();
        self.gcc_rx.clear();
        self.gcc_tx.clear();
        self.pacers.clear();
        self.pacer_armed.clear();
        self.clients.clear();
        self.producers.clear();
        self.ladders.clear();
        self.last_heard.clear();
        self.path_cache.clear();
        self.pending_rtx.clear();
    }

    // ------------------------------------------------------------------
    // Producer role
    // ------------------------------------------------------------------

    /// Register this node as the producer of `stream` (broadcaster mapped
    /// here by DNS). Optionally records the stream's simulcast ladder so
    /// consumer-side selection can use it.
    pub fn register_producer(&mut self, stream: StreamId, ladder: Option<SimulcastLadder>) {
        self.register_producer_continuation(stream, ladder, SeqNo::ZERO);
    }

    /// [`Self::register_producer`] continuing an existing sequence space —
    /// broadcaster-mobility handover (§7.1): the new producer resumes the
    /// stream at `next_seq` so downstream slow paths see a contiguous
    /// sequence rather than a stale-looking restart.
    pub fn register_producer_continuation(
        &mut self,
        stream: StreamId,
        ladder: Option<SimulcastLadder>,
        next_seq: SeqNo,
    ) {
        self.producers.entry(stream).or_insert_with(|| ProducerState {
            packetizer: Packetizer::new(ssrc_for_stream(stream), next_seq),
        });
        self.caches
            .entry(stream)
            .or_insert_with(|| StreamCache::new(self.cfg.cache_packets));
        if let Some(l) = ladder {
            for r in l.renditions() {
                self.ladders.insert(r.stream, l.clone());
            }
        }
    }

    /// The next sequence number this producer will emit (handover state
    /// for broadcaster mobility).
    pub fn producer_next_seq(&self, stream: StreamId) -> Option<SeqNo> {
        self.producers.get(&stream).map(|p| p.packetizer.next_seq())
    }

    /// True when this node produces the stream.
    pub fn is_producer(&self, stream: StreamId) -> bool {
        self.producers.contains_key(&stream)
    }

    /// Broadcaster mobility (§7.1): the broadcaster re-homed to a new
    /// producer node. This (old) producer stops ingesting and instead
    /// subscribes to the new producer along `path_to_new` (producer-first,
    /// ending at this node), so every existing downstream path keeps
    /// working — "the Streaming Brain instructs the old producer node to
    /// subscribe to the new one. By doing so, the existing overlay paths
    /// do not need to change."
    pub fn demote_to_relay(
        &mut self,
        now: SimTime,
        stream: StreamId,
        path_to_new: &[NodeId],
    ) -> Vec<NodeAction> {
        let mut actions = Vec::new();
        if self.producers.remove(&stream).is_none() {
            return actions; // we weren't the producer
        }
        // Keep the cache (it still serves startups and RTX for old data),
        // and pull the stream from the new producer.
        self.subscribe_upstream(now, stream, path_to_new, &mut actions);
        actions
    }

    /// Ingest one encoded frame from a local broadcaster: packetize, cache,
    /// and fan out on the fast path.
    pub fn ingest_frame(
        &mut self,
        now: SimTime,
        frame: &EncodedFrame,
        payload: &Bytes,
    ) -> Vec<NodeAction> {
        let mut actions = Vec::new();
        let stream = frame.id.stream;
        let Some(prod) = self.producers.get_mut(&stream) else {
            return actions; // not our stream; drop
        };
        let media = if frame.kind == FrameKind::Audio {
            MediaKind::Audio
        } else {
            MediaKind::Video
        };
        // The delay field starts at the encoder delay (paper §6.1: the
        // broadcaster adds frame encoding time + queue + half first RTT;
        // the first-mile part is added by the driver).
        let delay0 = if frame.kind == FrameKind::I {
            Some(SimDuration::from_nanos(frame.encode_delay_ns))
        } else {
            None
        };
        let packets = prod.packetizer.packetize_with_meta(
            media,
            frame.rtp_timestamp,
            payload,
            delay0,
            frame.kind.to_nibble(),
        );
        self.stats.ingested += packets.len() as u64;
        for pkt in packets {
            self.slow_path_insert(now, stream, &pkt, &mut actions);
            self.fast_path_forward(now, stream, &pkt, false, &mut actions);
        }
        actions
    }

    // ------------------------------------------------------------------
    // Consumer role: client attach/detach and stream control
    // ------------------------------------------------------------------

    /// Attach a viewer client. If the node does not yet carry the stream,
    /// `path` (producer-first node list ending at this node) drives the
    /// reverse-path subscription. Returns the selected rendition.
    pub fn client_attach(
        &mut self,
        now: SimTime,
        client: ClientId,
        requested: StreamId,
        downlink: Option<Bandwidth>,
        path: Option<&[NodeId]>,
        actions: &mut Vec<NodeAction>,
    ) -> StreamId {
        let ladder = self.ladders.get(&requested).cloned();
        let ctl = ClientControl::new(client, requested, ladder, downlink, now);
        let stream = ctl.stream;
        self.clients.insert(client, ctl);
        // Per-client pacer at the downlink estimate.
        let rate = downlink.unwrap_or(self.cfg.initial_rate);
        let peer = Subscriber::Client(client);
        self.pacers
            .entry(peer)
            .or_insert_with(|| Pacer::new(self.cfg.pacer, rate))
            .set_rate(rate);

        self.stats.subs_received += 1;
        let had = self.carries(stream);
        self.fib.subscribe(stream, peer);
        if had {
            self.stats.local_hits += 1;
            actions.push(NodeAction::Event(NodeEvent::CacheHit {
                stream,
                subscriber: peer,
            }));
            self.send_startup_burst(now, stream, peer, actions);
        } else if let Some(path) = path {
            self.install_paths(stream, std::slice::from_ref(&path.to_vec()));
            self.subscribe_upstream(now, stream, path, actions);
        }
        stream
    }

    /// Detach a viewer.
    pub fn client_detach(
        &mut self,
        now: SimTime,
        client: ClientId,
        actions: &mut Vec<NodeAction>,
    ) {
        let Some(ctl) = self.clients.remove(&client) else {
            return;
        };
        let peer = Subscriber::Client(client);
        let mut streams = vec![ctl.stream];
        if let Some(p) = ctl.pending_switch() {
            streams.push(p);
        }
        for stream in streams {
            if self.fib.unsubscribe(stream, peer) {
                self.maybe_release_stream(now, stream, actions);
            }
        }
        self.pacers.remove(&peer);
        self.pacer_armed.remove(&peer);
        self.gcc_tx.remove(&peer);
    }

    /// Update a client's estimated downlink (mobile bandwidth variation).
    pub fn set_client_downlink(&mut self, client: ClientId, rate: Bandwidth) {
        if let Some(p) = self.pacers.get_mut(&Subscriber::Client(client)) {
            p.set_rate(rate);
        }
    }

    /// Current pacing rate toward an attached client, `None` when the
    /// client is unknown. Observes the sender-side cc loop from outside —
    /// the wire harness uses this to show client feedback moving the rate.
    pub fn client_pacing_rate(&self, client: ClientId) -> Option<Bandwidth> {
        self.pacers
            .get(&Subscriber::Client(client))
            .map(|p| p.rate())
    }

    /// Sum of sender-side rate decisions across every per-subscriber GCC
    /// controller (nodes and clients alike).
    pub fn cc_decision_totals(&self) -> RateDecisionStats {
        let mut total = RateDecisionStats::default();
        for sender in self.gcc_tx.values() {
            total.increases += sender.decisions.increases;
            total.holds += sender.decisions.holds;
            total.decreases += sender.decisions.decreases;
        }
        total
    }

    /// Begin a seamless co-stream switch for a client (§5.2). The consumer
    /// subscribes to the co-broadcast stream itself; once a complete GoP is
    /// cached the client is flipped without a stall.
    pub fn begin_costream_switch(
        &mut self,
        now: SimTime,
        client: ClientId,
        new_stream: StreamId,
        path: Option<&[NodeId]>,
        actions: &mut Vec<NodeAction>,
    ) {
        let Some(ctl) = self.clients.get_mut(&client) else {
            return;
        };
        ctl.begin_switch(new_stream);
        if !self.carries(new_stream) {
            if let Some(path) = path {
                self.subscribe_upstream(now, new_stream, path, actions);
            }
        } else {
            self.try_complete_switches(now, new_stream, actions);
        }
    }

    /// Switch this node's upstream for `stream` onto a new overlay path
    /// (producer-first, ending at this node), make-before-break: the old
    /// upstream keeps feeding the fast path until the new subscription is
    /// confirmed, and duplicate packets arriving from both paths during
    /// the overlap are absorbed by the slow path's duplicate detection.
    ///
    /// This is §7.1's consumer-side re-routing: "consumer nodes can
    /// autonomously switch to the backup path when the primary one
    /// encounters a high delay or packet loss", and also §4.4's remedy for
    /// the long-chain problem.
    pub fn switch_path(
        &mut self,
        now: SimTime,
        stream: StreamId,
        new_path: &[NodeId],
    ) -> Vec<NodeAction> {
        let mut actions = Vec::new();
        self.install_paths(stream, std::slice::from_ref(&new_path.to_vec()));
        let Some(&old) = self.upstream.get(&stream) else {
            // Nothing established yet: treat as a fresh subscription.
            self.subscribe_upstream(now, stream, new_path, &mut actions);
            return actions;
        };
        let mut remainder: Vec<NodeId> = new_path.to_vec();
        if remainder.last() == Some(&self.cfg.id) {
            remainder.pop();
        }
        if remainder.last() == Some(&old) {
            return actions; // same next hop: nothing to switch
        }
        self.switching_from.insert(stream, old);
        self.subscribe_upstream_remainder(now, stream, remainder, &mut actions);
        actions
    }

    // ------------------------------------------------------------------
    // Datagram handling
    // ------------------------------------------------------------------

    /// Handle one incoming overlay datagram.
    pub fn on_datagram(
        &mut self,
        now: SimTime,
        from: NodeId,
        payload: Bytes,
    ) -> Vec<NodeAction> {
        let mut actions = Vec::new();
        self.last_heard.insert(from, now);
        let Ok(msg) = OverlayMsg::decode(payload) else {
            return actions; // malformed; drop
        };
        match msg {
            OverlayMsg::Rtp {
                stream,
                sent_at,
                packet,
                retransmit,
            } => self.on_rtp(now, from, stream, sent_at, packet, retransmit, &mut actions),
            OverlayMsg::Rtcp { stream, packet } => {
                self.on_rtcp(now, from, stream, packet, &mut actions)
            }
            OverlayMsg::Subscribe { stream, remainder } => {
                self.on_subscribe(now, from, stream, remainder, &mut actions)
            }
            OverlayMsg::SubscribeOk { stream } => {
                self.on_subscribe_ok(now, from, stream, &mut actions)
            }
            OverlayMsg::Unsubscribe { stream } => {
                if self.fib.unsubscribe(stream, Subscriber::Node(from)) {
                    self.maybe_release_stream(now, stream, &mut actions);
                }
            }
            // The `last_heard` refresh above is the entire effect.
            OverlayMsg::Keepalive => {}
        }
        actions
    }

    /// Handle one datagram arriving from an attached viewer client — the
    /// client-sourced half of the datapath. Clients never carry RTP or the
    /// subscription protocol; the only meaningful traffic is RTCP feedback
    /// (NACKs, receiver reports, REMB) and keepalives. Feedback drives the
    /// same per-subscriber GCC sender and pacer as node feedback does, so
    /// rate adaptation and loss recovery work for last-mile viewers too.
    pub fn on_client_datagram(
        &mut self,
        now: SimTime,
        from: ClientId,
        payload: Bytes,
    ) -> Vec<NodeAction> {
        let mut actions = Vec::new();
        let Ok(msg) = OverlayMsg::decode(payload) else {
            return actions; // malformed; drop
        };
        match msg {
            OverlayMsg::Rtcp { stream, packet } => {
                self.on_rtcp_from(now, Subscriber::Client(from), stream, packet, &mut actions)
            }
            OverlayMsg::Keepalive => {}
            // Clients do not speak the node-to-node protocol.
            _ => {}
        }
        actions
    }

    #[allow(clippy::too_many_arguments)]
    fn on_rtp(
        &mut self,
        now: SimTime,
        from: NodeId,
        stream: StreamId,
        sent_at: SimTime,
        packet_bytes: Bytes,
        retransmit: bool,
        actions: &mut Vec<NodeAction>,
    ) {
        let Ok(packet) = RtpPacket::decode(packet_bytes) else {
            return;
        };
        // Slow path: GCC receiver estimator per upstream neighbor.
        let est = self.gcc_rx.entry(from).or_insert_with(|| {
            DelayBasedEstimator::new(
                self.cfg.initial_rate,
                self.cfg.min_rate,
                self.cfg.max_rate,
            )
        });
        est.on_packet(sent_at, now, packet.wire_len());

        // Slow path: receive state (loss detection + recovery accounting).
        let transit = now.saturating_since(sent_at);
        let outcome = self
            .rx
            .entry(stream)
            .or_default()
            .on_packet(now, packet.header.seq, transit);
        match outcome {
            RxOutcome::Duplicate => {
                self.stats.duplicates += 1;
                return; // nothing further: not forwarded, not re-cached
            }
            RxOutcome::Recovered { after } => {
                // A retransmission from anyone but the established
                // upstream means an alternate supplier closed the hole.
                let alternate = retransmit && self.upstream.get(&stream) != Some(&from);
                if alternate {
                    self.stats.rtx_alternate_recovered += 1;
                }
                actions.push(NodeAction::Event(NodeEvent::HoleRecovered {
                    stream,
                    after,
                    alternate,
                }));
            }
            RxOutcome::Fresh => {}
            RxOutcome::Reset => {
                // The sequence space restarted: parked downstream waiters
                // keyed to the old space can never be served.
                self.purge_pending_rtx(stream);
            }
        }

        self.slow_path_insert(now, stream, &packet, actions);
        self.serve_pending_rtx(now, stream, &packet, actions);

        // Fast path: retransmissions are recoveries for *this* node's slow
        // path; downstream NODES request their own via NACK (§3's A→B→C
        // example — "this copied packet ... will not be forwarded to the
        // downstream nodes"). Locally-attached viewers, however, receive
        // the recovered packet directly: the consumer is the client's
        // reliability delegate (§5.2 thin clients).
        if retransmit {
            self.forward_recovery_to_clients(now, stream, &packet, actions);
        } else {
            self.fast_path_forward(now, stream, &packet, false, actions);
        }
    }

    /// Serve downstream nodes whose NACK for this sequence number arrived
    /// before we had the packet ourselves.
    fn serve_pending_rtx(
        &mut self,
        now: SimTime,
        stream: StreamId,
        packet: &RtpPacket,
        actions: &mut Vec<NodeAction>,
    ) {
        let Some(pend) = self.pending_rtx.get_mut(&stream) else {
            return;
        };
        let Some(entry) = pend.remove(&packet.header.seq.0) else {
            return;
        };
        if pend.is_empty() {
            self.pending_rtx.remove(&stream);
        }
        for peer in entry.waiters {
            self.stats.rtx_served += 1;
            self.enqueue_to_peer(
                now,
                Subscriber::Node(peer),
                stream,
                packet.clone(),
                true,
                actions,
            );
        }
    }

    /// Drop every parked downstream waiter of a stream (stream reset: the
    /// old sequence space will never be served).
    fn purge_pending_rtx(&mut self, stream: StreamId) {
        if let Some(pend) = self.pending_rtx.remove(&stream) {
            self.stats.rtx_pending_expired += pend.len() as u64;
        }
    }

    /// Deliver a recovered packet to client subscribers only.
    fn forward_recovery_to_clients(
        &mut self,
        now: SimTime,
        stream: StreamId,
        packet: &RtpPacket,
        actions: &mut Vec<NodeAction>,
    ) {
        let clients: Vec<Subscriber> = self
            .fib
            .subscribers(stream)
            .filter(|s| matches!(s, Subscriber::Client(_)))
            .collect();
        for sub in clients {
            let fwd = packet.with_added_delay(self.cfg.processing_delay);
            self.enqueue_to_peer(now, sub, stream, fwd, true, actions);
        }
    }

    fn on_rtcp(
        &mut self,
        now: SimTime,
        from: NodeId,
        stream: StreamId,
        packet: Bytes,
        actions: &mut Vec<NodeAction>,
    ) {
        self.on_rtcp_from(now, Subscriber::Node(from), stream, packet, actions);
    }

    /// Shared RTCP handling for node- and client-sourced feedback.
    fn on_rtcp_from(
        &mut self,
        now: SimTime,
        peer: Subscriber,
        stream: StreamId,
        packet: Bytes,
        actions: &mut Vec<NodeAction>,
    ) {
        let Ok(rtcp) = RtcpPacket::decode(packet) else {
            return;
        };
        match rtcp {
            RtcpPacket::Nack(Nack { lost, .. }) => {
                // Serve retransmissions from the packet cache; remember
                // what we could not serve so the arrival of our own
                // recovery forwards it without another downstream retry.
                let mut to_send = Vec::new();
                let mut unavailable = Vec::new();
                if let Some(cache) = self.caches.get(&stream) {
                    for seq in lost {
                        match cache.get(seq) {
                            Some(pkt) => to_send.push(pkt.clone()),
                            None => unavailable.push(seq),
                        }
                    }
                } else {
                    unavailable = lost;
                }
                for pkt in to_send {
                    self.stats.rtx_served += 1;
                    self.enqueue_to_peer(now, peer, stream, pkt, true, actions);
                }
                self.stats.rtx_unavailable += unavailable.len() as u64;
                // Only node waiters are parked: when our own recovery
                // arrives, `forward_recovery_to_clients` already fans
                // the retransmission out to every client subscriber.
                let Subscriber::Node(from) = peer else {
                    return;
                };
                if unavailable.is_empty() {
                    return;
                }
                for &seq in &unavailable {
                    let pend = self.pending_rtx.entry(stream).or_default();
                    if pend.len() < MAX_PENDING_RTX {
                        let entry = pend.entry(seq.0).or_insert_with(|| PendingRtx {
                            waiters: Vec::new(),
                            parked_at: now,
                        });
                        if !entry.waiters.contains(&from) {
                            entry.waiters.push(from);
                        }
                    }
                }
                // Tell the requester which seqs missed the cache so it can
                // chase an alternate supplier immediately instead of
                // waiting out our own recovery (parking stays as the
                // backstop: duplicates are absorbed downstream).
                let miss = RtcpPacket::RtxMiss(RtxMiss {
                    ssrc: ssrc_for_stream(stream),
                    missing: unavailable,
                });
                actions.push(NodeAction::Send {
                    to: peer,
                    msg: OverlayMsg::Rtcp {
                        stream,
                        packet: miss.encode(),
                    },
                });
            }
            RtcpPacket::RtxMiss(RtxMiss { missing, .. }) => {
                let Subscriber::Node(from) = peer else {
                    return; // clients never supply RTX
                };
                self.on_rtx_miss(now, from, stream, missing, actions);
            }
            RtcpPacket::ReceiverReport(ReceiverReport { loss_fraction, .. }) => {
                let sender = self.tx_sender(peer);
                sender.on_loss_report(now, loss_fraction);
                let rate = sender.pacing_rate();
                if let Some(p) = self.pacers.get_mut(&peer) {
                    p.set_rate(rate);
                }
            }
            RtcpPacket::Remb(Remb { bitrate_bps, .. }) => {
                let sender = self.tx_sender(peer);
                sender.on_remb(Bandwidth::from_bps(bitrate_bps));
                let rate = sender.pacing_rate();
                if let Some(p) = self.pacers.get_mut(&peer) {
                    p.set_rate(rate);
                }
            }
        }
    }

    /// The upstream reported a cache miss for `missing`: immediately
    /// re-NACK the still-outstanding holes to the best alternate suppliers
    /// from the cached backup paths (AutoRec-style multi-supplier RTX).
    /// With no live alternate, the parked waiter on the primary remains
    /// the only recovery path — exactly the old single-supplier behavior.
    fn on_rtx_miss(
        &mut self,
        now: SimTime,
        from: NodeId,
        stream: StreamId,
        missing: Vec<SeqNo>,
        actions: &mut Vec<NodeAction>,
    ) {
        if self.cfg.rtx_alt_suppliers == 0 {
            return;
        }
        let Some(rx) = self.rx.get(&stream) else {
            return;
        };
        let chase = rx.still_missing(&missing, self.cfg.nack_retry_limit);
        if chase.is_empty() {
            return;
        }
        let alternates = self.alternate_suppliers(now, stream, from);
        if alternates.is_empty() {
            self.stats.rtx_alternate_exhausted += chase.len() as u64;
            return;
        }
        if let Some(rx) = self.rx.get_mut(&stream) {
            for &seq in &chase {
                rx.note_nack(now, seq);
            }
        }
        for alt in alternates {
            self.stats.rtx_alternate_requests += chase.len() as u64;
            self.stats.nacks_sent += chase.len() as u64;
            self.stats.nack_batches += 1;
            let rtcp = RtcpPacket::Nack(Nack {
                ssrc: ssrc_for_stream(stream),
                lost: chase.clone(),
            });
            actions.push(NodeAction::Send {
                to: Subscriber::Node(alt),
                msg: OverlayMsg::Rtcp {
                    stream,
                    packet: rtcp.encode(),
                },
            });
        }
    }

    /// Candidate alternate RTX suppliers for a stream: the penultimate hop
    /// of every cached backup path ending here (the neighbor that would
    /// feed us on that path), excluding the miss sender and ourselves,
    /// liveness-filtered, RTT-ordered (unknown RTT last, ties by id so the
    /// choice is deterministic), capped at `rtx_alt_suppliers`.
    fn alternate_suppliers(&self, now: SimTime, stream: StreamId, exclude: NodeId) -> Vec<NodeId> {
        let timeout = self.cfg.upstream_timeout;
        let mut cands: Vec<NodeId> = Vec::new();
        for path in self.cached_paths(stream) {
            if path.len() < 2 || path.last() != Some(&self.cfg.id) {
                continue;
            }
            let hop = path[path.len() - 2];
            if hop == exclude || hop == self.cfg.id || cands.contains(&hop) {
                continue;
            }
            // Liveness: a supplier that went silent on us would eat the
            // re-NACK and give the hole nothing. Never-heard candidates
            // are tried optimistically — the NACK doubles as a probe.
            let alive = match self.last_heard.get(&hop) {
                Some(&heard) => now.saturating_since(heard) < timeout,
                None => true,
            };
            if alive {
                cands.push(hop);
            }
        }
        cands.sort_by_key(|n| {
            (
                self.neighbor_rtt
                    .get(n)
                    .copied()
                    .unwrap_or(SimDuration::MAX),
                *n,
            )
        });
        cands.truncate(self.cfg.rtx_alt_suppliers);
        cands
    }

    fn tx_sender(&mut self, peer: Subscriber) -> &mut GccSender {
        self.gcc_tx.entry(peer).or_insert_with(|| {
            GccSender::new(self.cfg.initial_rate, self.cfg.min_rate, self.cfg.max_rate)
        })
    }

    fn on_subscribe(
        &mut self,
        now: SimTime,
        from: NodeId,
        stream: StreamId,
        mut remainder: Vec<NodeId>,
        actions: &mut Vec<NodeAction>,
    ) {
        self.stats.subs_received += 1;
        let peer = Subscriber::Node(from);
        let had = self.carries(stream);
        self.fib.subscribe(stream, peer);

        if had {
            // Cache hit: stop backtracking (§4.4) — this is where the
            // long-chain effect comes from.
            self.stats.local_hits += 1;
            actions.push(NodeAction::Event(NodeEvent::CacheHit {
                stream,
                subscriber: peer,
            }));
            if self.upstream.contains_key(&stream) || self.is_producer(stream) {
                actions.push(NodeAction::Send {
                    to: peer,
                    msg: OverlayMsg::SubscribeOk { stream },
                });
                self.send_startup_burst(now, stream, peer, actions);
            } else {
                // Still establishing ourselves: relay the Ok when it comes.
                self.waiting_ok.entry(stream).or_default().push(from);
            }
            return;
        }

        // Cache miss: continue backtracking along the reverse path.
        // `remainder` is producer-first; the next hop is the last element.
        match remainder.pop() {
            Some(next) if next == self.cfg.id => {
                // Path listed us (consumer hop); recurse with the rest.
                self.waiting_ok.entry(stream).or_default().push(from);
                let mut inner = Vec::new();
                self.subscribe_upstream_remainder(now, stream, remainder, &mut inner);
                actions.extend(inner);
            }
            Some(next) => {
                self.waiting_ok.entry(stream).or_default().push(from);
                self.pending.insert(stream, next);
                actions.push(NodeAction::Send {
                    to: Subscriber::Node(next),
                    msg: OverlayMsg::Subscribe {
                        stream,
                        remainder,
                    },
                });
                actions.push(NodeAction::Event(NodeEvent::SubscribeForwarded {
                    stream,
                    upstream: next,
                }));
            }
            None => {
                // We are the path's head but not the producer: the stream
                // has ended or the path is stale. Drop the FIB entry.
                self.fib.unsubscribe(stream, peer);
            }
        }
    }

    fn on_subscribe_ok(
        &mut self,
        _now: SimTime,
        from: NodeId,
        stream: StreamId,
        actions: &mut Vec<NodeAction>,
    ) {
        if self.pending.remove(&stream).is_some() {
            // A mid-stream path switch completes here: release the old
            // upstream only after the new one confirmed (make-before-break,
            // so the fast path never starves).
            if let Some(old) = self.switching_from.remove(&stream) {
                if old != from {
                    actions.push(NodeAction::Send {
                        to: Subscriber::Node(old),
                        msg: OverlayMsg::Unsubscribe { stream },
                    });
                }
            }
            self.upstream.insert(stream, from);
            actions.push(NodeAction::Event(NodeEvent::SubscriptionEstablished {
                stream,
                upstream: from,
            }));
        }
        // Relay the Ok to downstream requesters that were waiting on us.
        for d in self.waiting_ok.remove(&stream).unwrap_or_default() {
            actions.push(NodeAction::Send {
                to: Subscriber::Node(d),
                msg: OverlayMsg::SubscribeOk { stream },
            });
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Handle a timer expiry for `key` (a packed [`TimerKind`]).
    pub fn on_timer(&mut self, now: SimTime, key: u64) -> Vec<NodeAction> {
        let mut actions = Vec::new();
        match TimerKind::decode(key) {
            Some(TimerKind::LossScan) => {
                self.loss_scan(now, &mut actions);
                actions.push(NodeAction::SetTimer {
                    at: now + self.cfg.loss_scan_interval,
                    key: TimerKind::LossScan.encode(),
                });
            }
            Some(TimerKind::RrTick) => {
                self.rr_tick(now, &mut actions);
                actions.push(NodeAction::SetTimer {
                    at: now + self.cfg.rr_interval,
                    key: TimerKind::RrTick.encode(),
                });
            }
            Some(TimerKind::PacerPoll(peer)) => {
                self.pacer_armed.remove(&peer);
                self.flush_pacer(now, peer, &mut actions);
            }
            Some(TimerKind::Liveness) => {
                self.liveness_check(now, &mut actions);
                actions.push(NodeAction::SetTimer {
                    at: now + self.cfg.liveness_interval,
                    key: TimerKind::Liveness.encode(),
                });
            }
            None => {}
        }
        actions
    }

    /// Declare upstreams dead after prolonged silence and fail over: first
    /// to a cached backup path avoiding the dead element (fast, ≈ one
    /// subscribe RTT), otherwise surface [`NodeEvent::PathRequestNeeded`]
    /// so the driver asks the Brain (slow, a control-plane round trip).
    fn liveness_check(&mut self, now: SimTime, actions: &mut Vec<NodeAction>) {
        let timeout = self.cfg.upstream_timeout;
        // Silent upstreams, deduped and sorted: HashMap iteration order is
        // not deterministic across processes, and the emitted action order
        // must be.
        let mut dead: Vec<NodeId> = self
            .upstream
            .values()
            .chain(self.pending.values())
            .copied()
            .filter(|up| {
                self.last_heard
                    .get(up)
                    .is_some_and(|&heard| now.saturating_since(heard) >= timeout)
            })
            .collect();
        dead.sort();
        dead.dedup();
        for up in dead {
            self.fail_over_upstream(now, up, actions);
        }
    }

    /// Route every stream fed by `dead` onto a different path.
    fn fail_over_upstream(
        &mut self,
        now: SimTime,
        dead: NodeId,
        actions: &mut Vec<NodeAction>,
    ) {
        let mut streams: Vec<StreamId> = self
            .upstream
            .iter()
            .filter(|&(_, &u)| u == dead)
            .map(|(&s, _)| s)
            .chain(
                self.pending
                    .iter()
                    .filter(|&(_, &u)| u == dead)
                    .map(|(&s, _)| s),
            )
            .collect();
        streams.sort();
        streams.dedup();
        self.last_heard.remove(&dead);
        self.gcc_rx.remove(&dead);
        for stream in streams {
            self.upstream.remove(&stream);
            self.pending.remove(&stream);
            self.switching_from.remove(&stream);
            self.stats.upstream_failovers += 1;
            actions.push(NodeAction::Event(NodeEvent::UpstreamDead {
                stream,
                upstream: dead,
            }));
            let backup = self.path_cache.get(&stream).and_then(|paths| {
                paths
                    .iter()
                    .find(|p| p.len() >= 2 && !p.contains(&dead))
                    .cloned()
            });
            match backup {
                Some(path) => self.subscribe_upstream(now, stream, &path, actions),
                None => actions.push(NodeAction::Event(NodeEvent::PathRequestNeeded {
                    stream,
                    dead,
                })),
            }
        }
    }

    fn loss_scan(&mut self, now: SimTime, actions: &mut Vec<NodeAction>) {
        let interval = self.cfg.nack_retry_interval;
        let limit = self.cfg.nack_retry_limit;
        let mut nacks: Vec<(StreamId, NodeId, Vec<SeqNo>)> = Vec::new();
        for (&stream, rx) in self.rx.iter_mut() {
            let Some(&up) = self.upstream.get(&stream) else {
                continue; // producer-local stream: nothing to NACK
            };
            let lost = rx.scan(now, interval, limit);
            if !lost.is_empty() {
                nacks.push((stream, up, lost));
            }
        }
        // `self.rx` is a HashMap: sort so the emitted NACK order (and thus
        // downstream packet interleaving) is identical across processes.
        nacks.sort_by_key(|&(stream, up, _)| (stream, up));
        for (stream, up, lost) in nacks {
            self.stats.nacks_sent += lost.len() as u64;
            self.stats.nack_batches += 1;
            let rtcp = RtcpPacket::Nack(Nack {
                ssrc: ssrc_for_stream(stream),
                lost,
            });
            actions.push(NodeAction::Send {
                to: Subscriber::Node(up),
                msg: OverlayMsg::Rtcp {
                    stream,
                    packet: rtcp.encode(),
                },
            });
        }
        self.sweep_pending_rtx(now);
    }

    /// Evict parked downstream waiters older than the TTL. Without this,
    /// waiters whose packet never arrives here (and stale entries left by
    /// downstream abandonment) would sit until stream teardown, eating the
    /// `MAX_PENDING_RTX` cap and starving live NACKs.
    fn sweep_pending_rtx(&mut self, now: SimTime) {
        let ttl = self.cfg.pending_rtx_ttl;
        let mut expired = 0u64;
        self.pending_rtx.retain(|_, pend| {
            pend.retain(|_, entry| {
                let stale = now.saturating_since(entry.parked_at) >= ttl;
                if stale {
                    expired += 1;
                }
                !stale
            });
            !pend.is_empty()
        });
        self.stats.rtx_pending_expired += expired;
    }

    fn rr_tick(&mut self, _now: SimTime, actions: &mut Vec<NodeAction>) {
        // Receiver reports per (stream, upstream).
        let mut reports = Vec::new();
        for (&stream, rx) in self.rx.iter_mut() {
            let Some(&up) = self.upstream.get(&stream) else {
                continue;
            };
            // No report until the first packet: a `highest_seq` of zero
            // would read as "receiver is a full window behind".
            let Some((loss, highest, jitter)) = rx.rr_stats() else {
                continue;
            };
            reports.push((up, stream, loss, highest, jitter));
        }
        for (up, stream, loss, highest, jitter) in reports {
            let rr = RtcpPacket::ReceiverReport(ReceiverReport {
                ssrc: ssrc_for_stream(stream),
                loss_fraction: loss,
                highest_seq: highest,
                jitter_us: jitter,
            });
            actions.push(NodeAction::Send {
                to: Subscriber::Node(up),
                msg: OverlayMsg::Rtcp {
                    stream,
                    packet: rr.encode(),
                },
            });
        }
        // REMB per upstream neighbor (attach to one of its streams).
        let mut rembs = Vec::new();
        for (&stream, &up) in self.upstream.iter() {
            if rembs.iter().any(|(u, _, _)| *u == up) {
                continue;
            }
            if let Some(est) = self.gcc_rx.get(&up) {
                rembs.push((up, stream, est.estimate()));
            }
        }
        for (up, stream, rate) in rembs {
            let remb = RtcpPacket::Remb(Remb {
                ssrc: ssrc_for_stream(stream),
                bitrate_bps: rate.as_bps(),
            });
            actions.push(NodeAction::Send {
                to: Subscriber::Node(up),
                msg: OverlayMsg::Rtcp {
                    stream,
                    packet: remb.encode(),
                },
            });
        }
        // Housekeeping: bound depacketizer memory.
        for d in self.depack.values_mut() {
            d.gc(8);
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Does this node already carry (or is establishing) the stream?
    fn carries(&self, stream: StreamId) -> bool {
        self.is_producer(stream)
            || self.upstream.contains_key(&stream)
            || self.pending.contains_key(&stream)
    }

    /// Initiate our own upstream subscription along `path` (producer-first,
    /// ending at this node).
    fn subscribe_upstream(
        &mut self,
        now: SimTime,
        stream: StreamId,
        path: &[NodeId],
        actions: &mut Vec<NodeAction>,
    ) {
        if self.carries(stream) {
            return;
        }
        let mut remainder: Vec<NodeId> = path.to_vec();
        // Strip ourselves off the tail.
        if remainder.last() == Some(&self.cfg.id) {
            remainder.pop();
        }
        self.subscribe_upstream_remainder(now, stream, remainder, actions);
    }

    fn subscribe_upstream_remainder(
        &mut self,
        _now: SimTime,
        stream: StreamId,
        mut remainder: Vec<NodeId>,
        actions: &mut Vec<NodeAction>,
    ) {
        let Some(next) = remainder.pop() else {
            return;
        };
        self.pending.insert(stream, next);
        actions.push(NodeAction::Send {
            to: Subscriber::Node(next),
            msg: OverlayMsg::Subscribe { stream, remainder },
        });
        actions.push(NodeAction::Event(NodeEvent::SubscribeForwarded {
            stream,
            upstream: next,
        }));
    }

    /// Tear down per-stream state when the last subscriber leaves.
    fn maybe_release_stream(
        &mut self,
        _now: SimTime,
        stream: StreamId,
        actions: &mut Vec<NodeAction>,
    ) {
        if self.fib.has_stream(stream) || self.is_producer(stream) {
            return;
        }
        if let Some(up) = self.upstream.remove(&stream) {
            actions.push(NodeAction::Send {
                to: Subscriber::Node(up),
                msg: OverlayMsg::Unsubscribe { stream },
            });
        }
        self.pending.remove(&stream);
        self.rx.remove(&stream);
        self.depack.remove(&stream);
        self.caches.remove(&stream);
        self.pending_rtx.remove(&stream);
    }

    /// Slow-path: cache + framing (§5.1's GoP caching and Framing Control).
    fn slow_path_insert(
        &mut self,
        now: SimTime,
        stream: StreamId,
        packet: &RtpPacket,
        actions: &mut Vec<NodeAction>,
    ) {
        self.caches
            .entry(stream)
            .or_insert_with(|| StreamCache::new(self.cfg.cache_packets))
            .insert(packet.clone());
        let depack = self.depack.entry(stream).or_default();
        let kind = frag_meta(&packet.payload).and_then(FrameKind::from_nibble);
        depack.push(packet.clone());
        for frame in depack.drain() {
            actions.push(NodeAction::Event(NodeEvent::FrameAssembled {
                stream,
                timestamp: frame.timestamp,
                kind,
                delay_field: frame.delay_field,
            }));
        }
        self.try_complete_switches(now, stream, actions);
    }

    /// Complete any client co-stream switches waiting on this stream.
    fn try_complete_switches(
        &mut self,
        now: SimTime,
        stream: StreamId,
        actions: &mut Vec<NodeAction>,
    ) {
        let _ = now;
        // §5.2: the client flips only once a COMPLETE GoP of the new
        // stream is cached (the switch burst spans two I-frame starts).
        let burst = self
            .caches
            .get(&stream)
            .map(|c| c.switch_burst())
            .unwrap_or_default();
        if burst.is_empty() {
            return;
        }
        let waiting: Vec<ClientId> = self
            .clients
            .iter()
            .filter(|(_, c)| c.pending_switch() == Some(stream))
            .map(|(&id, _)| id)
            .collect();
        for client in waiting {
            let Some(ctl) = self.clients.get_mut(&client) else {
                continue;
            };
            let Some(old) = ctl.complete_switch() else {
                continue;
            };
            let peer = Subscriber::Client(client);
            self.fib.unsubscribe(old, peer);
            self.fib.subscribe(stream, peer);
            actions.push(NodeAction::Event(NodeEvent::SwitchCompleted {
                client,
                from: old,
                to: stream,
            }));
            // Deliver the complete-GoP burst so the client's buffer is
            // full the instant the timeline flips.
            let n = burst.len();
            for pkt in burst.clone() {
                self.enqueue_to_peer(now, peer, stream, pkt, false, actions);
            }
            actions.push(NodeAction::Event(NodeEvent::StartupBurst {
                stream,
                to: peer,
                packets: n,
            }));
            self.maybe_release_stream(now, old, actions);
        }
    }

    /// Fast path: FIB lookup + per-subscriber enqueue.
    fn fast_path_forward(
        &mut self,
        now: SimTime,
        stream: StreamId,
        packet: &RtpPacket,
        retransmit: bool,
        actions: &mut Vec<NodeAction>,
    ) {
        let subscribers: Vec<Subscriber> = self.fib.subscribers(stream).collect();
        let kind = frag_meta(&packet.payload).and_then(FrameKind::from_nibble);
        for sub in subscribers {
            match sub {
                Subscriber::Node(next) => {
                    // Delay field: our processing + half next-hop RTT (§6.1).
                    let half_rtt = self
                        .neighbor_rtt
                        .get(&next)
                        .copied()
                        .unwrap_or(SimDuration::ZERO)
                        / 2;
                    let fwd = packet.with_added_delay(self.cfg.processing_delay + half_rtt);
                    self.enqueue_to_peer(now, sub, stream, fwd, retransmit, actions);
                }
                Subscriber::Client(client) => {
                    // Consumer-side per-client control: frame dropping,
                    // bitrate step-down.
                    let backlogged = self
                        .pacers
                        .get(&sub)
                        .map(|p| p.is_backlogged())
                        .unwrap_or(false);
                    let Some(ctl) = self.clients.get_mut(&client) else {
                        continue;
                    };
                    if ctl.stream != stream {
                        continue; // stale FIB entry mid-switch
                    }
                    if !ctl.admit(now, kind, backlogged) {
                        // Frame dropper rejected this packet; also purge any
                        // already-queued packets of the same frame.
                        let ts = packet.header.timestamp;
                        if let Some(p) = self.pacers.get_mut(&sub) {
                            p.drop_video_where(|o| {
                                o.stream == stream && o.packet.header.timestamp == ts
                            });
                        }
                        continue;
                    }
                    if ctl.wants_lower_bitrate(now) {
                        if let Some(lower) = ctl.lower_rendition() {
                            ctl.apply_step_down(lower, now);
                            let peer = Subscriber::Client(client);
                            self.fib.unsubscribe(stream, peer);
                            self.fib.subscribe(lower, peer);
                            actions.push(NodeAction::Event(NodeEvent::SteppedDown {
                                client,
                                to: lower,
                            }));
                            // NOTE: the lower rendition must already flow to
                            // this node (simulcast uploads all renditions to
                            // the producer; consumers subscribe per need).
                            // The driver subscribes us if it does not.
                            continue;
                        }
                    }
                    let fwd = packet.with_added_delay(self.cfg.processing_delay);
                    self.enqueue_to_peer(now, sub, stream, fwd, retransmit, actions);
                }
            }
        }
    }

    /// Enqueue a packet into a peer's pacer and flush/arm the pacer timer.
    fn enqueue_to_peer(
        &mut self,
        now: SimTime,
        peer: Subscriber,
        stream: StreamId,
        packet: RtpPacket,
        retransmit: bool,
        actions: &mut Vec<NodeAction>,
    ) {
        let kind = frag_meta(&packet.payload).and_then(FrameKind::from_nibble);
        let priority = if packet.header.kind == MediaKind::Audio {
            SendPriority::Audio
        } else if retransmit {
            SendPriority::Retransmission
        } else {
            SendPriority::Video
        };
        let is_iframe = kind == Some(FrameKind::I);
        let bytes = packet.wire_len() + 18; // envelope overhead
        let pacer = self
            .pacers
            .entry(peer)
            .or_insert_with(|| Pacer::new(self.cfg.pacer, self.cfg.initial_rate));
        pacer.enqueue(PacedPacket {
            priority,
            bytes,
            is_iframe,
            payload: OutPkt {
                stream,
                packet,
                retransmit,
            },
        });
        self.flush_pacer(now, peer, actions);
    }

    /// Poll a peer's pacer: emit sends, then arm the next poll timer.
    fn flush_pacer(&mut self, now: SimTime, peer: Subscriber, actions: &mut Vec<NodeAction>) {
        let Some(pacer) = self.pacers.get_mut(&peer) else {
            return;
        };
        for released in pacer.poll(now) {
            self.stats.forwarded += 1;
            let out = released.payload;
            actions.push(NodeAction::Send {
                to: peer,
                msg: OverlayMsg::Rtp {
                    stream: out.stream,
                    sent_at: now,
                    packet: out.packet.encode(),
                    retransmit: out.retransmit,
                },
            });
        }
        if let Some(next) = pacer.next_send_time(now) {
            let next = next.max(now + SimDuration::from_micros(100));
            let armed = self.pacer_armed.get(&peer).copied();
            if armed.is_none_or(|t| t > next) {
                self.pacer_armed.insert(peer, next);
                actions.push(NodeAction::SetTimer {
                    at: next,
                    key: TimerKind::PacerPoll(peer).encode(),
                });
            }
        }
    }

    /// Send the most recent complete GoP to a new subscriber (fast startup).
    fn send_startup_burst(
        &mut self,
        now: SimTime,
        stream: StreamId,
        to: Subscriber,
        actions: &mut Vec<NodeAction>,
    ) {
        if !self.cfg.startup_burst {
            return;
        }
        let burst = match self.caches.get(&stream) {
            Some(c) => c.startup_burst(),
            None => Vec::new(),
        };
        if burst.is_empty() {
            return;
        }
        let n = burst.len();
        for pkt in burst {
            self.enqueue_to_peer(now, to, stream, pkt, false, actions);
        }
        actions.push(NodeAction::Event(NodeEvent::StartupBurst {
            stream,
            to,
            packets: n,
        }));
    }
}
