//! Consumer-side fine-grained stream control (paper §5.2).
//!
//! The consumer node is the client's delegate ("thin clients", §7.2): it
//! selects the simulcast rendition on the viewer's behalf, proactively
//! drops frames when the per-client send queue builds up (unreferenced B
//! frames → B frames → P frames → the whole GoP), requests a lower bitrate
//! when the queue keeps building, and performs seamless stream switching
//! during co-broadcasts.

use livenet_media::{FrameKind, SimulcastLadder};
use livenet_types::{Bandwidth, ClientId, SimDuration, SimTime, StreamId};
use serde::{Deserialize, Serialize};

/// Counters for one client's queue policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientQueueStats {
    /// Packets admitted to the client's queue.
    pub admitted: u64,
    /// Dropped unreferenced-B packets.
    pub dropped_bunref: u64,
    /// Dropped referenced-B packets.
    pub dropped_b: u64,
    /// Dropped P packets.
    pub dropped_p: u64,
    /// Packets dropped during whole-GoP skips.
    pub dropped_gop: u64,
    /// Rendition step-down requests issued.
    pub step_downs: u64,
    /// Seamless stream switches completed.
    pub switches: u64,
}

/// Escalation ladder for proactive dropping.
const LEVEL_NONE: u8 = 0;
const LEVEL_BUNREF: u8 = 1;
const LEVEL_B: u8 = 2;
const LEVEL_P: u8 = 3;
const LEVEL_GOP: u8 = 4;

/// Continuous backlog duration that escalates one drop level. Time-based
/// (not admission-count-based) so a transient burst — e.g. a GoP startup
/// burst draining through the pacer — does not trigger panic dropping.
const ESCALATE_AFTER: SimDuration = SimDuration::from_millis(300);
/// Quiet time after which the drop level relaxes one step.
const RELAX_AFTER: SimDuration = SimDuration::from_millis(500);
/// Sustained time at P-level dropping that triggers a bitrate step-down.
const STEP_DOWN_AFTER: SimDuration = SimDuration::from_millis(1500);

/// Per-client control state held by a consumer node.
#[derive(Debug, Clone)]
pub struct ClientControl {
    /// The viewer.
    pub client: ClientId,
    /// The stream currently forwarded to the viewer.
    pub stream: StreamId,
    ladder: Option<SimulcastLadder>,
    drop_level: u8,
    gop_skipping: bool,
    backlog_since: Option<SimTime>,
    level_entered_at: SimTime,
    last_backlog: Option<SimTime>,
    pending_switch: Option<StreamId>,
    /// Policy counters.
    pub stats: ClientQueueStats,
}

impl ClientControl {
    /// Attach a client to a stream. When `ladder` and `downlink` are given,
    /// the initial rendition is selected on the client's behalf.
    pub fn new(
        client: ClientId,
        requested: StreamId,
        ladder: Option<SimulcastLadder>,
        downlink: Option<Bandwidth>,
        now: SimTime,
    ) -> Self {
        let stream = match (&ladder, downlink) {
            (Some(l), Some(bw)) => l.select(bw, 1.2).stream,
            _ => requested,
        };
        ClientControl {
            client,
            stream,
            ladder,
            drop_level: LEVEL_NONE,
            gop_skipping: false,
            backlog_since: None,
            level_entered_at: now,
            last_backlog: None,
            pending_switch: None,
            stats: ClientQueueStats::default(),
        }
    }

    /// Current drop level (0 = none … 4 = whole-GoP skipping).
    pub fn drop_level(&self) -> u8 {
        self.drop_level
    }

    /// Decide whether to enqueue one packet toward this client.
    ///
    /// `kind` is the packet's frame kind (None = unknown → always admit);
    /// `backlogged` is the pacer's queue-pressure signal.
    pub fn admit(&mut self, now: SimTime, kind: Option<FrameKind>, backlogged: bool) -> bool {
        self.update_level(now, backlogged);

        let Some(kind) = kind else {
            self.stats.admitted += 1;
            return true;
        };
        if kind == FrameKind::Audio {
            // Audio is never dropped (§5.2).
            self.stats.admitted += 1;
            return true;
        }

        if self.gop_skipping {
            if kind == FrameKind::I {
                // A new GoP begins: resume delivery.
                self.gop_skipping = false;
            } else {
                self.stats.dropped_gop += 1;
                return false;
            }
        }

        let admit = match kind {
            FrameKind::BUnref => self.drop_level < LEVEL_BUNREF,
            FrameKind::B => self.drop_level < LEVEL_B,
            FrameKind::P => self.drop_level < LEVEL_P,
            FrameKind::I | FrameKind::Audio => true,
        };
        if admit {
            self.stats.admitted += 1;
        } else {
            match kind {
                FrameKind::BUnref => self.stats.dropped_bunref += 1,
                FrameKind::B => self.stats.dropped_b += 1,
                FrameKind::P => {
                    self.stats.dropped_p += 1;
                    // Dropping a P frame corrupts the rest of the GoP:
                    // skip forward to the next I frame.
                    if self.drop_level >= LEVEL_GOP {
                        self.gop_skipping = true;
                    }
                }
                _ => {}
            }
        }
        admit
    }

    fn update_level(&mut self, now: SimTime, backlogged: bool) {
        if backlogged {
            self.last_backlog = Some(now);
            let since = *self.backlog_since.get_or_insert(now);
            if now.saturating_since(since) >= ESCALATE_AFTER && self.drop_level < LEVEL_GOP {
                self.drop_level += 1;
                self.backlog_since = Some(now); // next level needs its own span
                self.level_entered_at = now;
            }
        } else {
            self.backlog_since = None;
            let quiet = self
                .last_backlog
                .map(|t| now.saturating_since(t) >= RELAX_AFTER)
                .unwrap_or(true);
            if quiet && self.drop_level > LEVEL_NONE {
                self.drop_level -= 1;
                self.level_entered_at = now;
            }
        }
    }

    /// True when the queue has been at P-dropping level long enough that
    /// the consumer should resubscribe this client to a lower bitrate
    /// rendition ("the consumer node will request a lower bitrate stream
    /// version if the sending queue is consistently building up", §5.2).
    pub fn wants_lower_bitrate(&self, now: SimTime) -> bool {
        self.drop_level >= LEVEL_P
            && now.saturating_since(self.level_entered_at) >= STEP_DOWN_AFTER
            && self.lower_rendition().is_some()
    }

    /// The next rendition down the ladder from the current stream.
    pub fn lower_rendition(&self) -> Option<StreamId> {
        self.ladder.as_ref()?.step_down(self.stream).map(|r| r.stream)
    }

    /// Apply a rendition change (after the consumer resubscribed).
    pub fn apply_step_down(&mut self, new_stream: StreamId, now: SimTime) {
        self.stream = new_stream;
        self.stats.step_downs += 1;
        self.drop_level = LEVEL_NONE;
        self.gop_skipping = false;
        self.backlog_since = None;
        self.level_entered_at = now;
    }

    /// Begin a seamless switch to `new_stream` (co-streaming, §5.2). The
    /// consumer keeps forwarding the old stream until a complete GoP of the
    /// new stream is available, then calls [`Self::complete_switch`].
    pub fn begin_switch(&mut self, new_stream: StreamId) {
        if new_stream != self.stream {
            self.pending_switch = Some(new_stream);
        }
    }

    /// The switch target, if one is pending.
    pub fn pending_switch(&self) -> Option<StreamId> {
        self.pending_switch
    }

    /// Complete a pending switch: the client's forwarding flips to the new
    /// stream with no gap (it has a full GoP buffered).
    pub fn complete_switch(&mut self) -> Option<StreamId> {
        let new = self.pending_switch.take()?;
        let old = self.stream;
        self.stream = new;
        self.stats.switches += 1;
        self.gop_skipping = false;
        Some(old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> ClientControl {
        ClientControl::new(
            ClientId::new(1),
            StreamId::new(100),
            Some(SimulcastLadder::taobao_default(StreamId::new(100))),
            Some(Bandwidth::from_mbps(10)),
            SimTime::ZERO,
        )
    }

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn initial_rendition_selected_from_bandwidth() {
        let fast = ctl();
        assert_eq!(fast.stream, StreamId::new(100)); // 720p
        let slow = ClientControl::new(
            ClientId::new(2),
            StreamId::new(100),
            Some(SimulcastLadder::taobao_default(StreamId::new(100))),
            Some(Bandwidth::from_kbps(1500)),
            SimTime::ZERO,
        );
        assert_eq!(slow.stream, StreamId::new(101)); // 480p
    }

    #[test]
    fn no_drops_when_healthy() {
        let mut c = ctl();
        for i in 0..100 {
            assert!(c.admit(at(i), Some(FrameKind::BUnref), false));
        }
        assert_eq!(c.stats.admitted, 100);
    }

    #[test]
    fn escalation_drops_bunref_first() {
        let mut c = ctl();
        // Sustained backlog (> 300 ms) escalates to level 1.
        for i in (0..=350).step_by(50) {
            c.admit(at(i), Some(FrameKind::P), true);
        }
        assert_eq!(c.drop_level(), LEVEL_BUNREF);
        assert!(!c.admit(at(360), Some(FrameKind::BUnref), true));
        assert!(c.admit(at(370), Some(FrameKind::B), true));
        assert!(c.admit(at(380), Some(FrameKind::P), true));
        assert!(c.stats.dropped_bunref > 0);
        assert_eq!(c.stats.dropped_b, 0);
    }

    #[test]
    fn full_ladder_escalation_reaches_gop_skip() {
        let mut c = ctl();
        let mut t = 0;
        while c.drop_level() < LEVEL_GOP {
            c.admit(at(t), Some(FrameKind::P), true);
            t += 50;
            assert!(t < 100_000, "never reached GoP level");
        }
        // At GoP level, dropping a P frame triggers skip-to-next-I.
        assert!(!c.admit(at(t), Some(FrameKind::P), true));
        assert!(!c.admit(at(t + 1), Some(FrameKind::B), true));
        // The next I frame resumes delivery.
        assert!(c.admit(at(t + 2), Some(FrameKind::I), true));
    }

    #[test]
    fn audio_is_never_dropped() {
        let mut c = ctl();
        let mut t = 0;
        while c.drop_level() < LEVEL_GOP {
            c.admit(at(t), Some(FrameKind::P), true);
            t += 50;
        }
        assert!(c.admit(at(t), Some(FrameKind::Audio), true));
    }

    #[test]
    fn quiet_period_relaxes_level() {
        let mut c = ctl();
        for i in (0..=350).step_by(50) {
            c.admit(at(i), Some(FrameKind::P), true);
        }
        assert_eq!(c.drop_level(), LEVEL_BUNREF);
        // One non-backlogged admit long after the last backlog.
        c.admit(at(5_000), Some(FrameKind::P), false);
        assert_eq!(c.drop_level(), LEVEL_NONE);
    }

    #[test]
    fn sustained_p_dropping_requests_step_down() {
        let mut c = ctl();
        let mut t = 0;
        while c.drop_level() < LEVEL_P {
            c.admit(at(t), Some(FrameKind::P), true);
            t += 50;
        }
        assert!(!c.wants_lower_bitrate(at(t)));
        let later = at(t + STEP_DOWN_AFTER.as_millis() + 1);
        assert!(c.wants_lower_bitrate(later));
        let lower = c.lower_rendition().unwrap();
        c.apply_step_down(lower, later);
        assert_eq!(c.stream, lower);
        assert_eq!(c.drop_level(), LEVEL_NONE);
        assert_eq!(c.stats.step_downs, 1);
        // Already at the bottom: no further step-down available.
        assert!(c.lower_rendition().is_none());
    }

    #[test]
    fn seamless_switch_flips_stream_once_ready() {
        let mut c = ctl();
        let old = c.stream;
        let co = StreamId::new(500);
        c.begin_switch(co);
        assert_eq!(c.pending_switch(), Some(co));
        assert_eq!(c.stream, old, "old stream keeps flowing until GoP ready");
        let prev = c.complete_switch().unwrap();
        assert_eq!(prev, old);
        assert_eq!(c.stream, co);
        assert_eq!(c.stats.switches, 1);
        assert_eq!(c.pending_switch(), None);
    }

    #[test]
    fn switch_to_same_stream_is_noop() {
        let mut c = ctl();
        c.begin_switch(c.stream);
        assert_eq!(c.pending_switch(), None);
        assert!(c.complete_switch().is_none());
    }

    #[test]
    fn transient_burst_does_not_escalate() {
        let mut c = ctl();
        // 100 backlogged admissions within 80 ms (a GoP burst draining):
        // time-based escalation must not trigger.
        for i in 0..100u64 {
            c.admit(SimTime::from_micros(800 * i), Some(FrameKind::P), true);
        }
        assert_eq!(c.drop_level(), LEVEL_NONE);
    }

    #[test]
    fn unknown_kind_is_admitted() {
        let mut c = ctl();
        assert!(c.admit(at(0), None, true));
    }
}
