//! Slow-path receive state: loss detection and NACK bookkeeping (§5.1).
//!
//! "For loss recovery, each node examines holes in the sequence numbers of
//! the received RTP packets every 50 ms and sends the sequence numbers of
//! the lost packets to the upstream node in RTCP NACK messages."
//!
//! [`RxState`] tracks, per (upstream, stream): the highest sequence number,
//! the set of missing sequence numbers with per-seq NACK retry state, the
//! cumulative expected/received counters feeding receiver reports, and an
//! interarrival jitter estimate.

use livenet_types::{SeqNo, SimDuration, SimTime};
use std::collections::BTreeMap;

/// Per-missing-sequence retry state.
#[derive(Debug, Clone, Copy)]
struct MissingEntry {
    detected_at: SimTime,
    nacks_sent: u32,
    last_nack: Option<SimTime>,
}

/// Outcome of feeding one packet to the receive state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxOutcome {
    /// A never-before-seen, in-order packet.
    Fresh,
    /// A forward jump past [`RESET_JUMP`]: the stream restarted (encoder
    /// restart, rejoin after failover). All outstanding holes were
    /// abandoned; callers must drop any per-seq state keyed to the old
    /// sequence space (e.g. parked downstream RTX waiters).
    Reset,
    /// A packet that filled a previously-detected hole (recovery).
    Recovered {
        /// Time from hole detection to recovery.
        after: SimDuration,
    },
    /// A duplicate (already received or already given up on).
    Duplicate,
}

/// Forward jumps larger than this are treated as a stream reset (encoder
/// restart, rejoin after failover) rather than as loss: inserting one hole
/// per skipped sequence number would flood `missing` with thousands of
/// entries and NACK-storm the upstream for packets that never existed.
const RESET_JUMP: i32 = 3_000;

/// Upper bound on tracked holes. When exceeded, the oldest holes (in
/// sequence order) are abandoned so state stays bounded under pathological
/// loss.
const MAX_MISSING: usize = 4_096;

/// Slow-path receive state for one (upstream, stream) pair.
#[derive(Debug)]
pub struct RxState {
    highest: Option<SeqNo>,
    missing: BTreeMap<u16, MissingEntry>,
    /// Cumulative packets received (non-duplicate).
    pub received: u64,
    /// Cumulative packets expected (sequence span covered).
    pub expected: u64,
    /// Packets abandoned after exhausting NACK retries.
    pub abandoned: u64,
    /// Packets recovered via retransmission.
    pub recovered: u64,
    // RR window snapshot (values at the last report).
    rr_received: u64,
    rr_expected: u64,
    // Interarrival jitter (RFC 3550-style EWMA), in microseconds.
    jitter_us: f64,
    last_transit: Option<SimDuration>,
}

impl Default for RxState {
    fn default() -> Self {
        Self::new()
    }
}

impl RxState {
    /// Fresh state.
    pub fn new() -> Self {
        RxState {
            highest: None,
            missing: BTreeMap::new(),
            received: 0,
            expected: 0,
            abandoned: 0,
            recovered: 0,
            rr_received: 0,
            rr_expected: 0,
            jitter_us: 0.0,
            last_transit: None,
        }
    }

    /// Highest sequence number seen.
    pub fn highest(&self) -> Option<SeqNo> {
        self.highest
    }

    /// Number of currently-outstanding holes.
    pub fn outstanding_holes(&self) -> usize {
        self.missing.len()
    }

    /// Feed one received packet. `transit` is arrival − sent_at (per-hop
    /// one-way delay sample feeding the jitter estimate).
    pub fn on_packet(&mut self, now: SimTime, seq: SeqNo, transit: SimDuration) -> RxOutcome {
        // Jitter update per RFC 3550 §6.4.1 (J += (|D| − J) / 16).
        if let Some(prev) = self.last_transit {
            let d = transit.as_micros() as f64 - prev.as_micros() as f64;
            self.jitter_us += (d.abs() - self.jitter_us) / 16.0;
        }
        self.last_transit = Some(transit);

        match self.highest {
            None => {
                self.highest = Some(seq);
                self.received += 1;
                self.expected += 1;
                RxOutcome::Fresh
            }
            Some(h) if seq.newer_than(h) => {
                let gap = seq.distance(h);
                if gap > RESET_JUMP {
                    // Stream reset: abandon outstanding holes instead of
                    // manufacturing `gap − 1` new ones.
                    self.abandoned += self.missing.len() as u64;
                    self.missing.clear();
                    self.highest = Some(seq);
                    self.received += 1;
                    self.expected += 1;
                    return RxOutcome::Reset;
                }
                // Mark intermediate holes, keeping the map bounded.
                let mut s = h.next();
                for _ in 1..gap {
                    if self.missing.len() >= MAX_MISSING
                        && self.missing.pop_first().is_some() {
                            self.abandoned += 1;
                        }
                    self.missing.insert(
                        s.0,
                        MissingEntry {
                            detected_at: now,
                            nacks_sent: 0,
                            last_nack: None,
                        },
                    );
                    s = s.next();
                }
                self.highest = Some(seq);
                self.received += 1;
                self.expected += gap as u64;
                RxOutcome::Fresh
            }
            Some(_) => {
                // At or behind highest: either a recovery or a duplicate.
                if let Some(entry) = self.missing.remove(&seq.0) {
                    self.received += 1;
                    self.recovered += 1;
                    RxOutcome::Recovered {
                        after: now.saturating_since(entry.detected_at),
                    }
                } else {
                    RxOutcome::Duplicate
                }
            }
        }
    }

    /// The 50 ms loss scan: returns the sequence numbers to NACK now.
    ///
    /// A hole is NACKed when it has never been NACKed, or when its last NACK
    /// is older than `retry_interval`. After `retry_limit` NACKs the hole is
    /// abandoned (the depacketizer's GC will skip the frame).
    pub fn scan(
        &mut self,
        now: SimTime,
        retry_interval: SimDuration,
        retry_limit: u32,
    ) -> Vec<SeqNo> {
        let mut to_nack = Vec::new();
        let mut abandoned = Vec::new();
        for (&seq, entry) in self.missing.iter_mut() {
            if entry.nacks_sent >= retry_limit {
                abandoned.push(seq);
                continue;
            }
            let due = match entry.last_nack {
                None => true,
                Some(t) => now.saturating_since(t) >= retry_interval,
            };
            if due {
                entry.nacks_sent += 1;
                entry.last_nack = Some(now);
                to_nack.push(SeqNo(seq));
            }
        }
        for seq in abandoned {
            self.missing.remove(&seq);
            self.abandoned += 1;
        }
        to_nack
    }

    /// Of the given sequence numbers, those still tracked as holes whose
    /// NACK count is below `retry_limit`.
    ///
    /// The multi-supplier recovery path uses this to decide which of an
    /// upstream's [`RtxMiss`]-reported sequences are still worth chasing
    /// on an alternate supplier: recovered/abandoned holes are gone, and
    /// the retry-limit filter stops a chain of cache misses from bouncing
    /// NACKs between suppliers forever.
    ///
    /// [`RtxMiss`]: livenet_packet::RtxMiss
    pub fn still_missing(&self, seqs: &[SeqNo], retry_limit: u32) -> Vec<SeqNo> {
        seqs.iter()
            .copied()
            .filter(|s| {
                self.missing
                    .get(&s.0)
                    .is_some_and(|e| e.nacks_sent < retry_limit)
            })
            .collect()
    }

    /// Record an out-of-band NACK for a hole (sent outside [`Self::scan`],
    /// e.g. re-issued to an alternate supplier). Counts against the retry
    /// limit and restarts the retry-interval clock so the next scan does
    /// not immediately duplicate it.
    pub fn note_nack(&mut self, now: SimTime, seq: SeqNo) {
        if let Some(entry) = self.missing.get_mut(&seq.0) {
            entry.nacks_sent += 1;
            entry.last_nack = Some(now);
        }
    }

    /// Produce receiver-report statistics for the window since the last
    /// call: `(loss_fraction, highest_seq, jitter_us)`.
    ///
    /// Returns `None` before the first packet arrives: there is no highest
    /// sequence number to report yet, and sending a report claiming
    /// `highest_seq = 0` would tell the upstream we are behind by however
    /// far its own sequence counter has advanced.
    pub fn rr_stats(&mut self) -> Option<(f64, SeqNo, u32)> {
        let highest = self.highest?;
        let expected = self.expected - self.rr_expected;
        let received = self.received - self.rr_received;
        self.rr_expected = self.expected;
        self.rr_received = self.received;
        let loss = if expected == 0 {
            0.0
        } else {
            ((expected.saturating_sub(received)) as f64 / expected as f64).clamp(0.0, 1.0)
        };
        Some((loss, highest, self.jitter_us as u32))
    }

    /// Cumulative residual loss rate (abandoned / expected).
    pub fn residual_loss(&self) -> f64 {
        if self.expected == 0 {
            0.0
        } else {
            self.abandoned as f64 / self.expected as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: SimDuration = SimDuration::from_millis(10);

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn in_order_packets_are_fresh() {
        let mut rx = RxState::new();
        for i in 0..10u16 {
            assert_eq!(rx.on_packet(at(i as u64), SeqNo(i), T), RxOutcome::Fresh);
        }
        assert_eq!(rx.received, 10);
        assert_eq!(rx.expected, 10);
        assert_eq!(rx.outstanding_holes(), 0);
    }

    #[test]
    fn gap_creates_holes_and_nacks() {
        let mut rx = RxState::new();
        rx.on_packet(at(0), SeqNo(0), T);
        rx.on_packet(at(10), SeqNo(4), T); // holes 1,2,3
        assert_eq!(rx.outstanding_holes(), 3);
        let nacks = rx.scan(at(50), SimDuration::from_millis(50), 5);
        assert_eq!(nacks, vec![SeqNo(1), SeqNo(2), SeqNo(3)]);
        // Immediately rescanning does not re-NACK (retry interval).
        assert!(rx.scan(at(60), SimDuration::from_millis(50), 5).is_empty());
        // After the interval it does.
        let again = rx.scan(at(100), SimDuration::from_millis(50), 5);
        assert_eq!(again.len(), 3);
    }

    #[test]
    fn recovery_clears_hole_and_reports_latency() {
        let mut rx = RxState::new();
        rx.on_packet(at(0), SeqNo(0), T);
        rx.on_packet(at(10), SeqNo(2), T);
        match rx.on_packet(at(40), SeqNo(1), T) {
            RxOutcome::Recovered { after } => {
                assert_eq!(after, SimDuration::from_millis(30));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(rx.outstanding_holes(), 0);
        assert_eq!(rx.recovered, 1);
    }

    #[test]
    fn duplicates_are_flagged() {
        let mut rx = RxState::new();
        rx.on_packet(at(0), SeqNo(0), T);
        assert_eq!(rx.on_packet(at(1), SeqNo(0), T), RxOutcome::Duplicate);
    }

    #[test]
    fn abandon_after_retry_limit() {
        let mut rx = RxState::new();
        rx.on_packet(at(0), SeqNo(0), T);
        rx.on_packet(at(1), SeqNo(2), T);
        for i in 0..3 {
            let n = rx.scan(at(100 * (i + 1)), SimDuration::from_millis(50), 3);
            assert_eq!(n.len(), 1, "retry {i}");
        }
        // 4th scan: retries exhausted → abandoned.
        let n = rx.scan(at(500), SimDuration::from_millis(50), 3);
        assert!(n.is_empty());
        assert_eq!(rx.abandoned, 1);
        assert_eq!(rx.outstanding_holes(), 0);
        assert!(rx.residual_loss() > 0.0);
        // Late arrival of the abandoned packet is a duplicate.
        assert_eq!(rx.on_packet(at(600), SeqNo(1), T), RxOutcome::Duplicate);
    }

    #[test]
    fn still_missing_filters_recovered_and_exhausted() {
        let mut rx = RxState::new();
        rx.on_packet(at(0), SeqNo(0), T);
        rx.on_packet(at(10), SeqNo(4), T); // holes 1,2,3
        let seqs = [SeqNo(1), SeqNo(2), SeqNo(3), SeqNo(9)];
        // Seq 9 was never a hole.
        assert_eq!(
            rx.still_missing(&seqs, 5),
            vec![SeqNo(1), SeqNo(2), SeqNo(3)]
        );
        // Recover 2: it drops out.
        rx.on_packet(at(20), SeqNo(2), T);
        assert_eq!(rx.still_missing(&seqs, 5), vec![SeqNo(1), SeqNo(3)]);
        // Out-of-band NACKs count against the retry limit.
        rx.note_nack(at(30), SeqNo(1));
        rx.note_nack(at(40), SeqNo(1));
        assert_eq!(rx.still_missing(&seqs, 2), vec![SeqNo(3)]);
        // And they restart the retry-interval clock for the next scan.
        let due = rx.scan(at(60), SimDuration::from_millis(50), 5);
        assert_eq!(due, vec![SeqNo(3)], "seq 1 re-NACKed too early");
    }

    #[test]
    fn rr_stats_window_resets() {
        let mut rx = RxState::new();
        rx.on_packet(at(0), SeqNo(0), T);
        rx.on_packet(at(1), SeqNo(3), T); // expect 4, got 2
        let (loss, highest, _) = rx.rr_stats().expect("stats");
        assert!((loss - 0.5).abs() < 1e-9);
        assert_eq!(highest, SeqNo(3));
        // New window: recover one hole → negative loss clamps to 0.
        rx.on_packet(at(2), SeqNo(1), T);
        let (loss2, _, _) = rx.rr_stats().expect("stats");
        assert_eq!(loss2, 0.0);
    }

    #[test]
    fn rr_stats_none_before_first_packet() {
        let mut rx = RxState::new();
        assert_eq!(rx.rr_stats(), None);
        rx.on_packet(at(0), SeqNo(500), T);
        let (loss, highest, _) = rx.rr_stats().expect("stats after first packet");
        assert_eq!(loss, 0.0);
        assert_eq!(highest, SeqNo(500));
    }

    #[test]
    fn large_jump_is_stream_reset_not_loss() {
        let mut rx = RxState::new();
        rx.on_packet(at(0), SeqNo(0), T);
        rx.on_packet(at(1), SeqNo(2), T); // one genuine hole
        assert_eq!(rx.outstanding_holes(), 1);
        // A jump far beyond any plausible reorder window resets the stream:
        // no hole flood, prior holes abandoned, and the caller is told so.
        let out = rx.on_packet(at(2), SeqNo(20_000), T);
        assert_eq!(out, RxOutcome::Reset);
        assert_eq!(rx.outstanding_holes(), 0);
        assert_eq!(rx.abandoned, 1);
        assert_eq!(rx.highest(), Some(SeqNo(20_000)));
        // Counters stay sane: the skipped range is not counted as expected.
        assert!(rx.expected <= 5, "expected={}", rx.expected);
    }

    #[test]
    fn missing_set_is_bounded() {
        let mut rx = RxState::new();
        rx.on_packet(at(0), SeqNo(0), T);
        // Repeated sub-reset jumps accumulate holes; the map must stay
        // capped with the oldest holes abandoned.
        let mut seq = SeqNo(0);
        for i in 0..4u64 {
            seq = seq.add(2_500);
            rx.on_packet(at(i + 1), seq, T);
        }
        assert!(rx.outstanding_holes() <= 4_096);
        assert!(rx.abandoned > 0);
    }

    #[test]
    fn jitter_tracks_transit_variation() {
        let mut rx = RxState::new();
        // Constant transit → jitter ≈ 0.
        for i in 0..20u16 {
            rx.on_packet(at(u64::from(i) * 10), SeqNo(i), SimDuration::from_millis(5));
        }
        let (_, _, j0) = rx.rr_stats().expect("stats");
        assert_eq!(j0, 0);
        // Oscillating transit → jitter > 0.
        for i in 20..60u16 {
            let t = if i % 2 == 0 { 5 } else { 25 };
            rx.on_packet(at(u64::from(i) * 10), SeqNo(i), SimDuration::from_millis(t));
        }
        let (_, _, j1) = rx.rr_stats().expect("stats");
        assert!(j1 > 1000, "jitter={j1}us");
    }

    #[test]
    fn seq_wraparound_handled() {
        let mut rx = RxState::new();
        rx.on_packet(at(0), SeqNo(u16::MAX - 1), T);
        rx.on_packet(at(1), SeqNo(1), T); // holes: 65535, 0
        assert_eq!(rx.outstanding_holes(), 2);
        let nacks = rx.scan(at(50), SimDuration::from_millis(50), 5);
        assert_eq!(nacks.len(), 2);
        assert!(nacks.contains(&SeqNo(u16::MAX)));
        assert!(nacks.contains(&SeqNo(0)));
    }
}
