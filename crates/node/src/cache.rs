//! Per-stream packet & GoP cache (paper §5.1 "GoP caching on each node").
//!
//! The cache serves two purposes:
//!
//! * **Loss recovery** — the slow path's retransmission source: packets are
//!   kept by sequence number so a downstream NACK can be answered;
//! * **Fast startup** — when a new subscriber (node or viewer) attaches and
//!   the node already carries the stream, the most recent complete GoP is
//!   burst to it immediately, so playback starts without waiting for the
//!   next keyframe (the effect quantified in Fig. 9).

use livenet_media::FrameKind;
use livenet_packet::{frag_is_start, frag_meta, RtpPacket};
use livenet_types::SeqNo;
use std::collections::BTreeMap;

/// Cached packet with decoded policy metadata.
#[derive(Debug, Clone)]
struct CachedPacket {
    packet: RtpPacket,
    kind: Option<FrameKind>,
}

/// Ring-like per-stream cache of recent RTP packets, indexed by sequence
/// number, with an index of I-frame start positions.
#[derive(Debug, Clone)]
pub struct StreamCache {
    packets: BTreeMap<u16, CachedPacket>,
    /// Sequence numbers (insertion-ordered) of I-frame first packets.
    iframe_starts: Vec<SeqNo>,
    /// Highest sequence number inserted.
    highest: Option<SeqNo>,
    /// Capacity in packets (≈ a small number of GoPs).
    capacity: usize,
}

impl StreamCache {
    /// Cache holding up to `capacity` packets.
    pub fn new(capacity: usize) -> Self {
        StreamCache {
            packets: BTreeMap::new(),
            iframe_starts: Vec::new(),
            highest: None,
            capacity: capacity.max(8),
        }
    }

    /// Number of cached packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Highest sequence number seen.
    pub fn highest_seq(&self) -> Option<SeqNo> {
        self.highest
    }

    /// Insert a packet (original or retransmitted — both are cacheable).
    pub fn insert(&mut self, packet: RtpPacket) {
        let seq = packet.header.seq;
        let kind = frag_meta(&packet.payload).and_then(FrameKind::from_nibble);
        let frame_start = frag_is_start(&packet.payload);
        if frame_start && kind == Some(FrameKind::I) && !self.iframe_starts.contains(&seq) {
            self.iframe_starts.push(seq);
        }
        self.packets.insert(
            seq.0,
            CachedPacket { packet, kind },
        );
        self.highest = Some(match self.highest {
            Some(h) if h.newer_than(seq) => h,
            _ => seq,
        });
        self.evict();
    }

    fn evict(&mut self) {
        while self.packets.len() > self.capacity {
            let Some(h) = self.highest else { break };
            // The victim is the packet furthest *behind* the highest seq in
            // serial-number arithmetic (largest positive distance).
            let victim = self
                .packets
                .keys()
                .copied()
                .max_by_key(|&k| h.distance(SeqNo(k)));
            match victim {
                Some(v) => {
                    self.packets.remove(&v);
                    self.iframe_starts.retain(|s| s.0 != v);
                }
                None => break,
            }
        }
    }

    /// Fetch one packet for retransmission.
    pub fn get(&self, seq: SeqNo) -> Option<&RtpPacket> {
        self.packets.get(&seq.0).map(|c| &c.packet)
    }

    /// The packets of the most recent *complete* GoP prefix: from the last
    /// I-frame start whose run to `highest` is contiguous, through the
    /// newest packet. Empty when no such burst can be assembled.
    pub fn startup_burst(&self) -> Vec<RtpPacket> {
        let Some(highest) = self.highest else {
            return Vec::new();
        };
        // Try I-frame starts newest-first (smallest distance behind highest).
        let mut starts: Vec<SeqNo> = self.iframe_starts.clone();
        starts.sort_by_key(|s| highest.distance(*s));
        for &start in &starts {
            let span = highest.distance(start);
            if span < 0 {
                continue;
            }
            let mut run = Vec::with_capacity(span as usize + 1);
            let mut seq = start;
            let mut complete = true;
            for _ in 0..=span {
                match self.packets.get(&seq.0) {
                    Some(c) => run.push(c.packet.clone()),
                    None => {
                        complete = false;
                        break;
                    }
                }
                seq = seq.next();
            }
            if complete {
                return run;
            }
        }
        Vec::new()
    }

    /// Count of distinct cached I-frame starts (≈ GoPs retained).
    pub fn gops_cached(&self) -> usize {
        self.iframe_starts.len()
    }

    /// Frame kind of a cached packet (None when unknown).
    pub fn kind_of(&self, seq: SeqNo) -> Option<FrameKind> {
        self.packets.get(&seq.0).and_then(|c| c.kind)
    }
}

impl StreamCache {
    /// Like [`Self::startup_burst`] but also reports the burst's byte size.
    pub fn startup_burst_with_size(&self) -> (Vec<RtpPacket>, usize) {
        let burst = self.startup_burst();
        let bytes = burst.iter().map(RtpPacket::wire_len).sum();
        (burst, bytes)
    }

    /// A burst guaranteed to contain at least one COMPLETE GoP: the newest
    /// contiguous run (ending at `highest`) that spans ≥ 2 I-frame starts.
    /// Used for seamless co-stream switching (§5.2), where the client must
    /// receive a whole GoP before the flip. Empty when no such run exists.
    pub fn switch_burst(&self) -> Vec<RtpPacket> {
        let Some(highest) = self.highest else {
            return Vec::new();
        };
        let mut starts: Vec<SeqNo> = self.iframe_starts.clone();
        starts.sort_by_key(|s| highest.distance(*s));
        // Walk I starts oldest-to-newest looking for the longest complete
        // run that still covers two I frames.
        for &start in starts.iter().rev() {
            let span = highest.distance(start);
            if span < 0 {
                continue;
            }
            let mut run = Vec::with_capacity(span as usize + 1);
            let mut seq = start;
            let mut complete = true;
            let mut i_starts = 0;
            for _ in 0..=span {
                match self.packets.get(&seq.0) {
                    Some(c) => {
                        if c.kind == Some(FrameKind::I)
                            && frag_is_start(&c.packet.payload)
                        {
                            i_starts += 1;
                        }
                        run.push(c.packet.clone());
                    }
                    None => {
                        complete = false;
                        break;
                    }
                }
                seq = seq.next();
            }
            if complete && i_starts >= 2 {
                return run;
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use livenet_packet::{MediaKind, Packetizer};
    use livenet_types::Ssrc;

    fn frame_packets(
        p: &mut Packetizer,
        kind: FrameKind,
        ts: u32,
        bytes: usize,
    ) -> Vec<RtpPacket> {
        let payload = Bytes::from(vec![0u8; bytes]);
        p.packetize_with_meta(MediaKind::Video, ts, &payload, None, kind.to_nibble())
    }

    #[test]
    fn insert_and_get_for_retransmission() {
        let mut cache = StreamCache::new(64);
        let mut p = Packetizer::new(Ssrc(1), SeqNo(0));
        for pkt in frame_packets(&mut p, FrameKind::I, 0, 3000) {
            cache.insert(pkt);
        }
        assert!(cache.get(SeqNo(0)).is_some());
        assert!(cache.get(SeqNo(99)).is_none());
        assert_eq!(cache.gops_cached(), 1);
        assert_eq!(cache.kind_of(SeqNo(0)), Some(FrameKind::I));
    }

    #[test]
    fn startup_burst_spans_last_complete_gop() {
        let mut cache = StreamCache::new(256);
        let mut p = Packetizer::new(Ssrc(1), SeqNo(0));
        // GoP 1: I + P; GoP 2: I + P + P.
        for (kind, ts, sz) in [
            (FrameKind::I, 0, 3000),
            (FrameKind::P, 3000, 800),
            (FrameKind::I, 6000, 3000),
            (FrameKind::P, 9000, 800),
            (FrameKind::P, 12000, 800),
        ] {
            for pkt in frame_packets(&mut p, kind, ts, sz) {
                cache.insert(pkt);
            }
        }
        let burst = cache.startup_burst();
        assert!(!burst.is_empty());
        // Burst starts at the *second* I frame (ts 6000).
        assert_eq!(burst[0].header.timestamp, 6000);
        assert_eq!(
            burst.last().unwrap().header.timestamp,
            12000,
            "burst runs to the newest packet"
        );
        // Contiguous seqs.
        for w in burst.windows(2) {
            assert_eq!(w[1].header.seq, w[0].header.seq.next());
        }
    }

    #[test]
    fn startup_burst_falls_back_to_older_gop_when_newest_has_hole() {
        let mut cache = StreamCache::new(256);
        let mut p = Packetizer::new(Ssrc(1), SeqNo(0));
        for pkt in frame_packets(&mut p, FrameKind::I, 0, 2000) {
            cache.insert(pkt);
        }
        for pkt in frame_packets(&mut p, FrameKind::P, 3000, 500) {
            cache.insert(pkt);
        }
        // Second GoP with a missing packet.
        let pkts = frame_packets(&mut p, FrameKind::I, 6000, 3000);
        for (i, pkt) in pkts.iter().enumerate() {
            if i != 1 {
                cache.insert(pkt.clone());
            }
        }
        let burst = cache.startup_burst();
        // Falls back to the first (complete-to-highest? no: hole at newest)
        // GoP 1 run has the same hole in its run to highest → empty is also
        // acceptable? No: run from GoP1 start to highest crosses the hole.
        // Therefore burst must be empty.
        assert!(burst.is_empty());
        // Once the hole is recovered (retransmission), the burst works.
        cache.insert(pkts[1].clone());
        let burst = cache.startup_burst();
        assert_eq!(burst[0].header.timestamp, 6000);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut cache = StreamCache::new(10);
        let mut p = Packetizer::new(Ssrc(1), SeqNo(0));
        for i in 0..20u32 {
            for pkt in frame_packets(&mut p, FrameKind::P, i * 3000, 400) {
                cache.insert(pkt);
            }
        }
        assert!(cache.len() <= 10);
        assert!(cache.get(SeqNo(0)).is_none(), "oldest evicted");
        assert!(cache.get(SeqNo(19)).is_some(), "newest kept");
    }

    #[test]
    fn empty_cache_has_no_burst() {
        let cache = StreamCache::new(16);
        assert!(cache.startup_burst().is_empty());
        assert!(cache.is_empty());
        assert_eq!(cache.highest_seq(), None);
    }

    #[test]
    fn burst_size_accounts_bytes() {
        let mut cache = StreamCache::new(64);
        let mut p = Packetizer::new(Ssrc(1), SeqNo(0));
        for pkt in frame_packets(&mut p, FrameKind::I, 0, 2500) {
            cache.insert(pkt);
        }
        let (burst, bytes) = cache.startup_burst_with_size();
        assert_eq!(
            bytes,
            burst.iter().map(|p| p.wire_len()).sum::<usize>()
        );
        assert!(bytes >= 2500);
    }
}
