//! The Stream Forwarding Information Base (paper §5.1, Fig. 7).
//!
//! Each node records, per stream, the set of subscriber peers — downstream
//! nodes and locally-attached viewer clients. The FIB is updated by
//! subscription/unsubscription requests; the fast path consults it on every
//! RTP packet.

use livenet_types::{ClientId, NodeId, StreamId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A downstream subscriber: another overlay node or a local client.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum Subscriber {
    /// A downstream overlay node.
    Node(NodeId),
    /// A viewer client attached to this (consumer) node.
    Client(ClientId),
}

impl std::fmt::Display for Subscriber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Subscriber::Node(n) => write!(f, "{n}"),
            Subscriber::Client(c) => write!(f, "{c}"),
        }
    }
}

/// The per-node Stream FIB.
#[derive(Debug, Clone, Default)]
pub struct StreamFib {
    entries: BTreeMap<StreamId, BTreeSet<Subscriber>>,
}

impl StreamFib {
    /// Empty FIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a subscriber; returns true when newly added (false when it was
    /// already present — duplicate subscription requests are idempotent).
    pub fn subscribe(&mut self, stream: StreamId, sub: Subscriber) -> bool {
        self.entries.entry(stream).or_default().insert(sub)
    }

    /// Remove a subscriber; returns true when it was present. Empty entries
    /// are removed entirely so `has_stream` reflects live interest.
    pub fn unsubscribe(&mut self, stream: StreamId, sub: Subscriber) -> bool {
        let Some(set) = self.entries.get_mut(&stream) else {
            return false;
        };
        let removed = set.remove(&sub);
        if set.is_empty() {
            self.entries.remove(&stream);
        }
        removed
    }

    /// Subscribers of a stream (deterministic order).
    pub fn subscribers(&self, stream: StreamId) -> impl Iterator<Item = Subscriber> + '_ {
        self.entries
            .get(&stream)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Number of subscribers for a stream.
    pub fn subscriber_count(&self, stream: StreamId) -> usize {
        self.entries.get(&stream).map_or(0, BTreeSet::len)
    }

    /// True when anything subscribes to the stream here.
    pub fn has_stream(&self, stream: StreamId) -> bool {
        self.entries.contains_key(&stream)
    }

    /// Streams with at least one subscriber.
    pub fn streams(&self) -> impl Iterator<Item = StreamId> + '_ {
        self.entries.keys().copied()
    }

    /// Total number of (stream, subscriber) pairs — the node's fan-out load.
    pub fn total_subscriptions(&self) -> usize {
        self.entries.values().map(BTreeSet::len).sum()
    }

    /// Remove a subscriber from every stream (peer failure / client leave).
    /// Returns the streams it was removed from.
    pub fn purge_subscriber(&mut self, sub: Subscriber) -> Vec<StreamId> {
        let mut affected = Vec::new();
        self.entries.retain(|stream, set| {
            if set.remove(&sub) {
                affected.push(*stream);
            }
            !set.is_empty()
        });
        affected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u64) -> StreamId {
        StreamId::new(i)
    }
    fn n(i: u64) -> Subscriber {
        Subscriber::Node(NodeId::new(i))
    }
    fn c(i: u64) -> Subscriber {
        Subscriber::Client(ClientId::new(i))
    }

    #[test]
    fn subscribe_is_idempotent() {
        let mut fib = StreamFib::new();
        assert!(fib.subscribe(s(1), n(4)));
        assert!(!fib.subscribe(s(1), n(4)));
        assert_eq!(fib.subscriber_count(s(1)), 1);
    }

    #[test]
    fn paper_example_e3_serves_e4_and_e5() {
        // §5.1: E4 subscribes sx at E3 → <sx, {E4}>; E5 joins → <sx, {E4,E5}>.
        let mut fib = StreamFib::new();
        fib.subscribe(s(1), n(4));
        fib.subscribe(s(1), n(5));
        let subs: Vec<Subscriber> = fib.subscribers(s(1)).collect();
        assert_eq!(subs, vec![n(4), n(5)]);
    }

    #[test]
    fn unsubscribe_clears_empty_entries() {
        let mut fib = StreamFib::new();
        fib.subscribe(s(1), n(4));
        assert!(fib.has_stream(s(1)));
        assert!(fib.unsubscribe(s(1), n(4)));
        assert!(!fib.has_stream(s(1)));
        assert!(!fib.unsubscribe(s(1), n(4)));
    }

    #[test]
    fn nodes_and_clients_are_distinct_subscribers() {
        let mut fib = StreamFib::new();
        fib.subscribe(s(1), n(4));
        fib.subscribe(s(1), c(4)); // same raw id, different kind
        assert_eq!(fib.subscriber_count(s(1)), 2);
    }

    #[test]
    fn purge_subscriber_spans_streams() {
        let mut fib = StreamFib::new();
        fib.subscribe(s(1), n(9));
        fib.subscribe(s(2), n(9));
        fib.subscribe(s(2), n(3));
        let affected = fib.purge_subscriber(n(9));
        assert_eq!(affected, vec![s(1), s(2)]);
        assert!(!fib.has_stream(s(1)));
        assert_eq!(fib.subscriber_count(s(2)), 1);
    }

    #[test]
    fn total_subscriptions_counts_pairs() {
        let mut fib = StreamFib::new();
        fib.subscribe(s(1), n(1));
        fib.subscribe(s(1), n(2));
        fib.subscribe(s(2), c(1));
        assert_eq!(fib.total_subscriptions(), 3);
        assert_eq!(fib.streams().count(), 2);
    }
}
