//! The LiveNet overlay node data plane (paper §5).
//!
//! Every CDN node runs the same software stack (Fig. 7). This crate
//! implements it as a sans-I/O state machine, [`OverlayNode`]: events go in
//! (`(now, datagram)` or `(now, timer)`), actions come out (datagrams to
//! send, timers to arm, instrumentation events). The discrete-event
//! emulator and the tokio transport are two drivers of the same core.
//!
//! Layout:
//!
//! * [`msg`] — the overlay wire protocol: RTP/RTCP envelopes plus the
//!   subscription control messages that establish reverse paths;
//! * [`fib`] — the Stream FIB mapping stream → downstream subscribers;
//! * [`cache`] — the per-stream packet/GoP cache serving retransmissions
//!   and fast-startup bursts;
//! * [`rx`] — slow-path receive state: loss detection (50 ms scans), NACK
//!   bookkeeping, framing;
//! * [`client`] — consumer-side per-client control: bitrate selection,
//!   proactive frame dropping, seamless stream switching;
//! * [`node`] — [`OverlayNode`] itself, wiring fast path, slow path, GCC
//!   and the pacer together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod fib;
pub mod msg;
pub mod node;
pub mod rx;

pub use cache::StreamCache;
pub use client::{ClientControl, ClientQueueStats};
pub use fib::{StreamFib, Subscriber};
pub use msg::OverlayMsg;
pub use node::{NodeAction, NodeConfig, NodeEvent, NodeStats, OverlayNode, TimerKind};
pub use rx::RxState;
