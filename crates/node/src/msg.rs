//! The overlay wire protocol.
//!
//! Nodes exchange a single datagram type, [`OverlayMsg`], over UDP (or the
//! emulator's datagram service):
//!
//! * `Rtp` — a media packet envelope. Carries the per-hop departure time
//!   (the abs-send-time role in WebRTC) that the next hop's delay-based
//!   GCC estimator needs, plus the stream ID so the Stream FIB lookup does
//!   not require decoding the RTP header.
//! * `Rtcp` — feedback (NACK / receiver report / REMB) for a stream.
//! * `Subscribe` / `SubscribeOk` / `Unsubscribe` — the reverse-path
//!   establishment protocol of §4.4 ("Overlay Path Establishment").

use bytes::{Buf, BufMut, Bytes, BytesMut};
use livenet_types::{Error, NodeId, Result, SimTime, StreamId};

const TAG_RTP: u8 = 1;
const TAG_RTCP: u8 = 2;
const TAG_SUBSCRIBE: u8 = 3;
const TAG_SUBSCRIBE_OK: u8 = 4;
const TAG_UNSUBSCRIBE: u8 = 5;
const TAG_KEEPALIVE: u8 = 6;

/// One overlay datagram.
#[derive(Debug, Clone, PartialEq)]
pub enum OverlayMsg {
    /// A media packet in flight, wrapped with forwarding metadata.
    Rtp {
        /// Stream the packet belongs to.
        stream: StreamId,
        /// Departure time at the sending hop (feeds GCC at the receiver).
        sent_at: SimTime,
        /// Encoded [`livenet_packet::RtpPacket`] bytes.
        packet: Bytes,
        /// True when this is a retransmission (skips some slow-path work).
        retransmit: bool,
    },
    /// Feedback for a stream: encoded [`livenet_packet::RtcpPacket`] bytes.
    Rtcp {
        /// Stream the feedback is about.
        stream: StreamId,
        /// Encoded RTCP bytes.
        packet: Bytes,
    },
    /// Subscribe to a stream; `remainder` is the rest of the reverse path
    /// toward the producer (consumed right-to-left as hops backtrack).
    Subscribe {
        /// Stream being subscribed.
        stream: StreamId,
        /// Upstream nodes still to traverse, producer first.
        remainder: Vec<NodeId>,
    },
    /// Acknowledgement that the subscription reached a node that already
    /// carries the stream (or the producer).
    SubscribeOk {
        /// Stream subscribed.
        stream: StreamId,
    },
    /// Remove the sender from the stream's subscriber set.
    Unsubscribe {
        /// Stream to drop.
        stream: StreamId,
    },
    /// Liveness ping. Nodes refresh `last_heard` for the source; clients
    /// use it to keep NAT bindings warm between receiver reports.
    Keepalive,
}

impl OverlayMsg {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        match self {
            OverlayMsg::Rtp {
                stream,
                sent_at,
                packet,
                retransmit,
            } => {
                buf.put_u8(TAG_RTP);
                buf.put_u64(stream.raw());
                buf.put_u64(sent_at.as_nanos());
                buf.put_u8(u8::from(*retransmit));
                buf.put_slice(packet);
            }
            OverlayMsg::Rtcp { stream, packet } => {
                buf.put_u8(TAG_RTCP);
                buf.put_u64(stream.raw());
                buf.put_slice(packet);
            }
            OverlayMsg::Subscribe { stream, remainder } => {
                buf.put_u8(TAG_SUBSCRIBE);
                buf.put_u64(stream.raw());
                buf.put_u16(remainder.len() as u16);
                for n in remainder {
                    buf.put_u64(n.raw());
                }
            }
            OverlayMsg::SubscribeOk { stream } => {
                buf.put_u8(TAG_SUBSCRIBE_OK);
                buf.put_u64(stream.raw());
            }
            OverlayMsg::Unsubscribe { stream } => {
                buf.put_u8(TAG_UNSUBSCRIBE);
                buf.put_u64(stream.raw());
            }
            OverlayMsg::Keepalive => {
                buf.put_u8(TAG_KEEPALIVE);
            }
        }
        buf.freeze()
    }

    /// Encoded size in bytes.
    pub fn wire_len(&self) -> usize {
        match self {
            OverlayMsg::Rtp { packet, .. } => 1 + 8 + 8 + 1 + packet.len(),
            OverlayMsg::Rtcp { packet, .. } => 1 + 8 + packet.len(),
            OverlayMsg::Subscribe { remainder, .. } => 1 + 8 + 2 + 8 * remainder.len(),
            OverlayMsg::SubscribeOk { .. } | OverlayMsg::Unsubscribe { .. } => 1 + 8,
            OverlayMsg::Keepalive => 1,
        }
    }

    /// Decode from wire bytes.
    pub fn decode(mut buf: Bytes) -> Result<OverlayMsg> {
        if buf.is_empty() {
            return Err(Error::decode("empty overlay message"));
        }
        let tag = buf.get_u8();
        match tag {
            TAG_RTP => {
                if buf.remaining() < 17 {
                    return Err(Error::decode("truncated RTP envelope"));
                }
                let stream = StreamId::new(buf.get_u64());
                let sent_at = SimTime::from_nanos(buf.get_u64());
                let retransmit = buf.get_u8() != 0;
                Ok(OverlayMsg::Rtp {
                    stream,
                    sent_at,
                    packet: buf,
                    retransmit,
                })
            }
            TAG_RTCP => {
                if buf.remaining() < 8 {
                    return Err(Error::decode("truncated RTCP envelope"));
                }
                let stream = StreamId::new(buf.get_u64());
                Ok(OverlayMsg::Rtcp {
                    stream,
                    packet: buf,
                })
            }
            TAG_SUBSCRIBE => {
                if buf.remaining() < 10 {
                    return Err(Error::decode("truncated Subscribe"));
                }
                let stream = StreamId::new(buf.get_u64());
                let n = buf.get_u16() as usize;
                if buf.remaining() < n * 8 {
                    return Err(Error::decode("truncated Subscribe path"));
                }
                let remainder = (0..n).map(|_| NodeId::new(buf.get_u64())).collect();
                Ok(OverlayMsg::Subscribe { stream, remainder })
            }
            TAG_SUBSCRIBE_OK => {
                if buf.remaining() < 8 {
                    return Err(Error::decode("truncated SubscribeOk"));
                }
                Ok(OverlayMsg::SubscribeOk {
                    stream: StreamId::new(buf.get_u64()),
                })
            }
            TAG_UNSUBSCRIBE => {
                if buf.remaining() < 8 {
                    return Err(Error::decode("truncated Unsubscribe"));
                }
                Ok(OverlayMsg::Unsubscribe {
                    stream: StreamId::new(buf.get_u64()),
                })
            }
            TAG_KEEPALIVE => Ok(OverlayMsg::Keepalive),
            other => Err(Error::decode(format!("unknown overlay tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtp_envelope_roundtrip() {
        let m = OverlayMsg::Rtp {
            stream: StreamId::new(42),
            sent_at: SimTime::from_millis(1234),
            packet: Bytes::from_static(b"rtp-bytes"),
            retransmit: true,
        };
        assert_eq!(OverlayMsg::decode(m.encode()).unwrap(), m);
        assert_eq!(m.encode().len(), m.wire_len());
    }

    #[test]
    fn subscribe_roundtrip_with_remainder() {
        let m = OverlayMsg::Subscribe {
            stream: StreamId::new(7),
            remainder: vec![NodeId::new(1), NodeId::new(9)],
        };
        assert_eq!(OverlayMsg::decode(m.encode()).unwrap(), m);
    }

    #[test]
    fn subscribe_roundtrip_empty_remainder() {
        let m = OverlayMsg::Subscribe {
            stream: StreamId::new(7),
            remainder: vec![],
        };
        assert_eq!(OverlayMsg::decode(m.encode()).unwrap(), m);
    }

    #[test]
    fn control_messages_roundtrip() {
        for m in [
            OverlayMsg::SubscribeOk {
                stream: StreamId::new(3),
            },
            OverlayMsg::Unsubscribe {
                stream: StreamId::new(4),
            },
            OverlayMsg::Rtcp {
                stream: StreamId::new(5),
                packet: Bytes::from_static(b"fb"),
            },
            OverlayMsg::Keepalive,
        ] {
            assert_eq!(OverlayMsg::decode(m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(OverlayMsg::decode(Bytes::new()).is_err());
        assert!(OverlayMsg::decode(Bytes::from_static(&[99])).is_err());
        assert!(OverlayMsg::decode(Bytes::from_static(&[TAG_RTP, 0, 1])).is_err());
    }
}
