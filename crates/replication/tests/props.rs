//! Adversarial-schedule property tests for the Paxos core.
//!
//! Two properties, straight from the protocol's contract:
//!
//! * **Safety** — no two replicas ever decide different values for the
//!   same slot, under *any* message schedule: random drops, reorders and
//!   duplicates included.  This must hold unconditionally.
//! * **Liveness** — dueling proposers converge given fair delivery plus
//!   proposer backoff (retry with a strictly higher minimum round).
//!   Liveness is not unconditional in Paxos; the test drives the standard
//!   sufficient condition.

use livenet_replication::{Outbound, Replica, ReplicaId};
use livenet_types::DetRng;
use proptest::prelude::*;

/// An adversarial network: in-flight messages are delivered in random
/// order, dropped with probability `loss`, and duplicated with
/// probability `dup`.
struct AdversaryNet {
    replicas: Vec<Replica>,
    inflight: Vec<(ReplicaId, Outbound)>,
    rng: DetRng,
    loss: f64,
    dup: f64,
}

impl AdversaryNet {
    fn new(n: u32, seed: u64, loss: f64, dup: f64) -> AdversaryNet {
        let ids: Vec<ReplicaId> = (0..n).collect();
        AdversaryNet {
            replicas: ids.iter().map(|&i| Replica::new(i, ids.clone())).collect(),
            inflight: Vec::new(),
            rng: DetRng::seed(seed),
            loss,
            dup,
        }
    }

    fn send_all(&mut self, from: ReplicaId, out: Vec<Outbound>) {
        for o in out {
            self.inflight.push((from, o));
        }
    }

    /// Deliver one randomly chosen in-flight message (maybe dropping or
    /// duplicating it first). Returns false when nothing is in flight.
    fn step(&mut self) -> bool {
        if self.inflight.is_empty() {
            return false;
        }
        let idx = self.rng.range_u64(0, self.inflight.len() as u64) as usize;
        let (from, o) = self.inflight.swap_remove(idx);
        if self.rng.chance(self.loss) {
            return true; // dropped
        }
        if self.rng.chance(self.dup) {
            self.inflight.push((from, o.clone()));
        }
        let out = self.replicas[o.to as usize].handle(from, o.msg);
        self.send_all(o.to, out);
        true
    }

    /// Every pair of replicas that decided a slot decided the same value.
    fn assert_safety(&self, max_slot: u64) -> Result<(), String> {
        for slot in 0..=max_slot {
            let mut chosen: Option<&Vec<u8>> = None;
            for r in &self.replicas {
                if let Some(v) = r.decided(slot) {
                    match chosen {
                        None => chosen = Some(v),
                        Some(c) if c != v => {
                            return Err(format!(
                                "slot {slot}: replica {} decided {:?}, another decided {:?}",
                                r.id(),
                                v,
                                c
                            ));
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Safety under drop/reorder/duplicate: whatever subset of replicas
    /// reaches a decision for a slot, they all hold the same value.
    #[test]
    fn no_two_replicas_decide_differently(
        seed in 0u64..10_000,
        n in 3u32..6,
        loss in 0.0f64..0.4,
        dup in 0.0f64..0.3,
        n_props in 1usize..6,
    ) {
        let mut net = AdversaryNet::new(n, seed, loss, dup);
        // Several proposers contend, some in the same slot on purpose.
        for i in 0..n_props {
            let proposer = (i as u32) % n;
            let value = vec![b'v', i as u8];
            let out = net.replicas[proposer as usize]
                .propose_in_slot((i % 2) as u64, value, 0);
            net.send_all(proposer, out);
        }
        for _ in 0..20_000 {
            if !net.step() {
                break;
            }
        }
        prop_assert!(net.assert_safety(4).is_ok(), "{:?}", net.assert_safety(4));
    }

    /// Duplicated decision traffic (Learn/Accepted replays) never flips a
    /// decided slot: re-running the full schedule with heavy duplication
    /// leaves every decided value stable.
    #[test]
    fn duplicates_never_flip_decisions(
        seed in 0u64..10_000,
        n in 3u32..6,
    ) {
        let mut net = AdversaryNet::new(n, seed, 0.0, 0.5);
        let out = net.replicas[0].propose_in_slot(0, vec![1], 0);
        net.send_all(0, out);
        let out = net.replicas[1].propose_in_slot(0, vec![2], 0);
        net.send_all(1, out);
        let mut first_decisions: Vec<Option<Vec<u8>>> = vec![None; n as usize];
        for _ in 0..20_000 {
            if !net.step() {
                break;
            }
            for (i, r) in net.replicas.iter().enumerate() {
                if let Some(v) = r.decided(0) {
                    match &first_decisions[i] {
                        None => first_decisions[i] = Some(v.clone()),
                        Some(f) => prop_assert_eq!(
                            f, v,
                            "replica {} flipped its decision", i
                        ),
                    }
                }
            }
        }
        prop_assert!(net.assert_safety(0).is_ok());
    }

    /// Dueling-proposer liveness: two proposers fight over one slot; with
    /// fair (lossless, randomly ordered) delivery and exponential-ish
    /// round backoff on retry, some value is decided within a bounded
    /// number of rounds — and safety still holds.
    #[test]
    fn dueling_proposers_converge_with_backoff(
        seed in 0u64..10_000,
        n in 3u32..6,
    ) {
        let mut net = AdversaryNet::new(n, seed, 0.0, 0.0);
        let a: ReplicaId = 0;
        let b: ReplicaId = 1;
        let out = net.replicas[a as usize].propose_in_slot(0, vec![b'a'], 0);
        net.send_all(a, out);
        let out = net.replicas[b as usize].propose_in_slot(0, vec![b'b'], 0);
        net.send_all(b, out);
        let mut round = 0u64;
        let decided = 'outer: loop {
            // Drain the current schedule fairly.
            for _ in 0..20_000 {
                if !net.step() {
                    break;
                }
            }
            if net.replicas.iter().any(|r| r.decided(0).is_some()) {
                break 'outer true;
            }
            round += 1;
            if round > 12 {
                break 'outer false;
            }
            // Backoff: proposers retry with staggered, strictly growing
            // minimum rounds (a backs off harder than b), so one of them
            // eventually completes both phases uncontested.
            if net.replicas[a as usize].proposing(0) {
                let out = net.replicas[a as usize]
                    .propose_in_slot(0, vec![b'a'], round * 4);
                net.send_all(a, out);
                for _ in 0..20_000 {
                    if !net.step() {
                        break;
                    }
                }
                if net.replicas.iter().any(|r| r.decided(0).is_some()) {
                    break 'outer true;
                }
            }
            if net.replicas[b as usize].proposing(0) {
                let out = net.replicas[b as usize]
                    .propose_in_slot(0, vec![b'b'], round * 4 + 2);
                net.send_all(b, out);
            }
        };
        prop_assert!(decided, "dueling proposers failed to converge");
        prop_assert!(net.assert_safety(0).is_ok());
        // Fair delivery spreads the decision to every replica.
        for _ in 0..20_000 {
            if !net.step() {
                break;
            }
        }
        let v0 = net.replicas[0].decided(0).cloned();
        prop_assert!(v0.is_some());
        for r in &net.replicas {
            prop_assert_eq!(r.decided(0), v0.as_ref());
        }
    }
}
