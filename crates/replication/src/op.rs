//! The replicated Brain operation log schema.
//!
//! Every PIB/SIB mutation the fleet performs against the Streaming Brain
//! is serialized as a [`BrainOp`] into a Paxos [`crate::Value`] (a plain
//! byte vector) and applied by every replica in decided-slot order, so all
//! replicas converge to the same routing state (paper §7.1).
//!
//! The codec is hand-rolled and fully deterministic: a one-byte tag per
//! variant, little-endian fixed-width integers, `f64::to_bits` for floats
//! and `u32` length prefixes for vectors.  No external serialization
//! format is involved, so encoded bytes are bit-stable across platforms
//! and the decided log can be compared byte-for-byte between replicas.

use livenet_topology::{LinkReport, NodeReport};
use livenet_types::{Error, NodeId, Result, SimDuration, SimTime, StreamId};

use crate::paxos::ReplicaId;

/// One replicated mutation of the Brain's PIB/SIB state.
///
/// Applying the decided sequence of ops to a fresh
/// `livenet_brain::StreamingBrain` is the *only* way replicated state
/// changes — reads never mutate across replicas divergently because the
/// decision counters they bump are advanced identically during the final
/// audit.  `Lease` ops carry the leader lease through the same log, so
/// leadership is itself a replicated, totally ordered fact.
#[derive(Debug, Clone, PartialEq)]
pub enum BrainOp {
    /// A batch of minute-tick node reports (Global Discovery input),
    /// followed by a periodic-recompute check at `now`.
    Reports {
        /// Virtual time of the batch (drives `maybe_recompute`).
        now: SimTime,
        /// The node reports, in deterministic fleet order.
        reports: Vec<NodeReport>,
    },
    /// Stream Management: a producer registered a new upload.
    RegisterStream {
        /// Stream being registered.
        stream: StreamId,
        /// Producer node it uploads to.
        producer: NodeId,
    },
    /// Stream Management: a stream ended.
    UnregisterStream {
        /// Stream being removed.
        stream: StreamId,
    },
    /// Mark a stream popular (prefetch set member, §4.4).
    MarkPopular {
        /// Stream being marked.
        stream: StreamId,
    },
    /// Broadcaster mobility (§7.1): re-home a stream to a new producer.
    RehomeProducer {
        /// Stream being re-homed.
        stream: StreamId,
        /// The new producer node.
        new_producer: NodeId,
        /// Virtual time of the rehome (bridge path lookup timestamp).
        now: SimTime,
    },
    /// A node was observed dead; recompute the PIB around it.
    NodeFailed {
        /// The dead node.
        node: NodeId,
    },
    /// A failed node came back.
    NodeRecovered {
        /// The recovered node.
        node: NodeId,
    },
    /// Both directions of a link failed.
    LinkFailed {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// A failed link recovered.
    LinkRecovered {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Leader lease grant/renewal: `holder` owns leadership for lease
    /// `term` until virtual time `until`.
    Lease {
        /// The replica holding the lease.
        holder: ReplicaId,
        /// Monotonically increasing lease term.
        term: u64,
        /// Lease expiry (cluster virtual time).
        until: SimTime,
    },
    /// A no-op filler decree (used by tests and slot back-fill).
    Noop,
}

const TAG_REPORTS: u8 = 1;
const TAG_REGISTER: u8 = 2;
const TAG_UNREGISTER: u8 = 3;
const TAG_POPULAR: u8 = 4;
const TAG_REHOME: u8 = 5;
const TAG_NODE_FAILED: u8 = 6;
const TAG_NODE_RECOVERED: u8 = 7;
const TAG_LINK_FAILED: u8 = 8;
const TAG_LINK_RECOVERED: u8 = 9;
const TAG_LEASE: u8 = 10;
const TAG_NOOP: u8 = 11;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Error::decode("brain op truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn done(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Error::decode("trailing bytes after brain op"))
        }
    }
}

fn put_report(buf: &mut Vec<u8>, r: &NodeReport) {
    put_u64(buf, r.node.raw());
    put_u64(buf, r.at.as_nanos());
    put_f64(buf, r.utilization);
    put_u32(buf, r.links.len() as u32);
    for l in &r.links {
        put_u64(buf, l.to.raw());
        put_u64(buf, l.rtt.as_nanos());
        put_f64(buf, l.loss);
        put_f64(buf, l.utilization);
        buf.push(u8::from(l.from_transport));
    }
}

fn get_report(c: &mut Cursor<'_>) -> Result<NodeReport> {
    let node = NodeId::new(c.u64()?);
    let at = SimTime::from_nanos(c.u64()?);
    let utilization = c.f64()?;
    let n_links = c.u32()? as usize;
    let mut links = Vec::with_capacity(n_links.min(1024));
    for _ in 0..n_links {
        links.push(LinkReport {
            to: NodeId::new(c.u64()?),
            rtt: SimDuration::from_nanos(c.u64()?),
            loss: c.f64()?,
            utilization: c.f64()?,
            from_transport: c.u8()? != 0,
        });
    }
    Ok(NodeReport {
        node,
        at,
        utilization,
        links,
    })
}

impl BrainOp {
    /// Encode into a Paxos `Value` (deterministic byte layout).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        match self {
            BrainOp::Reports { now, reports } => {
                buf.push(TAG_REPORTS);
                put_u64(&mut buf, now.as_nanos());
                put_u32(&mut buf, reports.len() as u32);
                for r in reports {
                    put_report(&mut buf, r);
                }
            }
            BrainOp::RegisterStream { stream, producer } => {
                buf.push(TAG_REGISTER);
                put_u64(&mut buf, stream.raw());
                put_u64(&mut buf, producer.raw());
            }
            BrainOp::UnregisterStream { stream } => {
                buf.push(TAG_UNREGISTER);
                put_u64(&mut buf, stream.raw());
            }
            BrainOp::MarkPopular { stream } => {
                buf.push(TAG_POPULAR);
                put_u64(&mut buf, stream.raw());
            }
            BrainOp::RehomeProducer {
                stream,
                new_producer,
                now,
            } => {
                buf.push(TAG_REHOME);
                put_u64(&mut buf, stream.raw());
                put_u64(&mut buf, new_producer.raw());
                put_u64(&mut buf, now.as_nanos());
            }
            BrainOp::NodeFailed { node } => {
                buf.push(TAG_NODE_FAILED);
                put_u64(&mut buf, node.raw());
            }
            BrainOp::NodeRecovered { node } => {
                buf.push(TAG_NODE_RECOVERED);
                put_u64(&mut buf, node.raw());
            }
            BrainOp::LinkFailed { a, b } => {
                buf.push(TAG_LINK_FAILED);
                put_u64(&mut buf, a.raw());
                put_u64(&mut buf, b.raw());
            }
            BrainOp::LinkRecovered { a, b } => {
                buf.push(TAG_LINK_RECOVERED);
                put_u64(&mut buf, a.raw());
                put_u64(&mut buf, b.raw());
            }
            BrainOp::Lease {
                holder,
                term,
                until,
            } => {
                buf.push(TAG_LEASE);
                put_u32(&mut buf, *holder);
                put_u64(&mut buf, *term);
                put_u64(&mut buf, until.as_nanos());
            }
            BrainOp::Noop => buf.push(TAG_NOOP),
        }
        buf
    }

    /// Decode from a Paxos `Value`.  Errors on unknown tags, truncation or
    /// trailing bytes — a decode failure in a decided slot is a protocol
    /// invariant violation, not a recoverable condition.
    pub fn decode(bytes: &[u8]) -> Result<BrainOp> {
        let mut c = Cursor::new(bytes);
        let op = match c.u8()? {
            TAG_REPORTS => {
                let now = SimTime::from_nanos(c.u64()?);
                let n = c.u32()? as usize;
                let mut reports = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    reports.push(get_report(&mut c)?);
                }
                BrainOp::Reports { now, reports }
            }
            TAG_REGISTER => BrainOp::RegisterStream {
                stream: StreamId::new(c.u64()?),
                producer: NodeId::new(c.u64()?),
            },
            TAG_UNREGISTER => BrainOp::UnregisterStream {
                stream: StreamId::new(c.u64()?),
            },
            TAG_POPULAR => BrainOp::MarkPopular {
                stream: StreamId::new(c.u64()?),
            },
            TAG_REHOME => BrainOp::RehomeProducer {
                stream: StreamId::new(c.u64()?),
                new_producer: NodeId::new(c.u64()?),
                now: SimTime::from_nanos(c.u64()?),
            },
            TAG_NODE_FAILED => BrainOp::NodeFailed {
                node: NodeId::new(c.u64()?),
            },
            TAG_NODE_RECOVERED => BrainOp::NodeRecovered {
                node: NodeId::new(c.u64()?),
            },
            TAG_LINK_FAILED => BrainOp::LinkFailed {
                a: NodeId::new(c.u64()?),
                b: NodeId::new(c.u64()?),
            },
            TAG_LINK_RECOVERED => BrainOp::LinkRecovered {
                a: NodeId::new(c.u64()?),
                b: NodeId::new(c.u64()?),
            },
            TAG_LEASE => BrainOp::Lease {
                holder: c.u32()?,
                term: c.u64()?,
                until: SimTime::from_nanos(c.u64()?),
            },
            TAG_NOOP => BrainOp::Noop,
            t => return Err(Error::decode(format!("unknown brain op tag {t}"))),
        };
        c.done()?;
        Ok(op)
    }

    /// True for lease-protocol decrees (leadership bookkeeping), false for
    /// state mutations.  Used to split telemetry counters.
    pub fn is_lease(&self) -> bool {
        matches!(self, BrainOp::Lease { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(op: BrainOp) {
        let bytes = op.encode();
        let back = BrainOp::decode(&bytes).expect("decode");
        assert_eq!(op, back);
        // Re-encoding is byte-stable.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(BrainOp::Reports {
            now: SimTime::from_secs(61),
            reports: vec![NodeReport {
                node: NodeId::new(3),
                at: SimTime::from_secs(60),
                utilization: 0.375,
                links: vec![LinkReport {
                    to: NodeId::new(4),
                    rtt: SimDuration::from_millis(17),
                    loss: 0.004,
                    utilization: 0.5,
                    from_transport: true,
                }],
            }],
        });
        roundtrip(BrainOp::RegisterStream {
            stream: StreamId::new(9),
            producer: NodeId::new(2),
        });
        roundtrip(BrainOp::UnregisterStream {
            stream: StreamId::new(9),
        });
        roundtrip(BrainOp::MarkPopular {
            stream: StreamId::new(1),
        });
        roundtrip(BrainOp::RehomeProducer {
            stream: StreamId::new(5),
            new_producer: NodeId::new(7),
            now: SimTime::from_millis(1234),
        });
        roundtrip(BrainOp::NodeFailed {
            node: NodeId::new(11),
        });
        roundtrip(BrainOp::NodeRecovered {
            node: NodeId::new(11),
        });
        roundtrip(BrainOp::LinkFailed {
            a: NodeId::new(1),
            b: NodeId::new(2),
        });
        roundtrip(BrainOp::LinkRecovered {
            a: NodeId::new(1),
            b: NodeId::new(2),
        });
        roundtrip(BrainOp::Lease {
            holder: 2,
            term: 41,
            until: SimTime::from_millis(987_654),
        });
        roundtrip(BrainOp::Noop);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BrainOp::decode(&[]).is_err());
        assert!(BrainOp::decode(&[0xff]).is_err());
        assert!(BrainOp::decode(&[TAG_REGISTER, 1, 2]).is_err());
        // Trailing bytes are rejected.
        let mut v = BrainOp::Noop.encode();
        v.push(0);
        assert!(BrainOp::decode(&v).is_err());
    }
}
