//! Paxos-replicated log for Streaming Brain state (paper §7.1).
//!
//! "While logically centralized, the Streaming Brain is deployed on
//! multiple geo-replicated data centers... We maintain consistency using a
//! Paxos-like scheme."
//!
//! This crate implements a classic multi-decree Paxos as a sans-I/O state
//! machine: each [`Replica`] plays proposer, acceptor and learner for a
//! sequence of slots, and the driver (tests, or a Brain deployment
//! harness) shuttles [`PaxosMsg`]s between replicas — dropping, delaying
//! and reordering them at will. Safety (no two replicas decide different
//! values for one slot) holds under any such schedule; liveness needs only
//! fair message delivery and proposer backoff, which the tests drive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod op;
pub mod paxos;

pub use cluster::{BrainCluster, ClusterAudit, ClusterConfig, ClusterStats};
pub use op::BrainOp;
pub use paxos::{Ballot, Outbound, PaxosMsg, Replica, ReplicaId, Value};
