//! `BrainCluster`: N replicated Streaming Brains behind one Paxos log.
//!
//! The paper (§7.1) deploys the logically centralized Streaming Brain on
//! multiple geo-replicated data centers and keeps their state consistent
//! with a Paxos-like scheme.  This module is the deployment harness for
//! that story: every PIB/SIB mutation is encoded as a [`BrainOp`],
//! serialized through the multi-decree [`Replica`] log, and applied by
//! each replica in decided-slot order — so all replicas converge to the
//! same routing state, and leadership itself is a decree in the same log.
//!
//! # Determinism
//!
//! The cluster runs on **virtual time** ([`SimTime`]), fully detached from
//! wall clocks: messages travel on a binary-heap event queue keyed by
//! `(deliver_at, seq)`, delays and drops come from a [`DetRng`], and every
//! client call (`replicate`, `path_request`, …) first advances the
//! cluster clock to the caller's `now` and then pumps events.  Two runs
//! with the same seed and the same call sequence produce bit-identical
//! logs, latencies and telemetry — the property the fleet's
//! serial-vs-parallel equivalence check rides on.
//!
//! # Leases and failover
//!
//! Leadership is a replicated `Lease { holder, term, until }` decree.  The
//! holder renews before `until`; when the lease expires without renewal
//! (leader crash), each replica stands for election after a per-rank
//! backoff (`takeover_backoff × id`), which staggers proposers and keeps
//! dueling rare.  A failed ballot retries from a deadline wake with a
//! bumped minimum round and a jittered delay — classic proposer backoff.
//! Failover latency is measured from the last decree decided before the
//! crash to the first *lease* decree granted to a live holder afterwards.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use livenet_brain::{BrainConfig, PathAssignment, StreamingBrain};
use livenet_telemetry::{ids, MetricSink};
use livenet_topology::Topology;
use livenet_types::{DetRng, Error, NodeId, Result, SimDuration, SimTime, StreamId};

use crate::op::BrainOp;
use crate::paxos::{Outbound, PaxosMsg, Replica, ReplicaId, Value};

/// Deployment parameters for a [`BrainCluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of Brain replicas (geo-replicated data centers).
    pub replicas: u32,
    /// One-way inter-replica network delay.
    pub one_way_delay: SimDuration,
    /// Multiplicative delay jitter (`±fraction` around the base delay).
    pub delay_jitter: f64,
    /// Probability an inter-replica message is lost.
    pub msg_loss: f64,
    /// Leader lease duration.
    pub lease: SimDuration,
    /// The holder renews when the lease has less than this left.
    pub renew_margin: SimDuration,
    /// Per-rank delay before a non-holder stands for election after the
    /// lease expires (replica `r` waits `r × takeover_backoff`).
    pub takeover_backoff: SimDuration,
    /// Client-side retry timeout for proposals and leader waits.
    pub client_timeout: SimDuration,
    /// Client attempts before giving up (`client_timeout` each).
    pub max_attempts: u32,
    /// Upper bound on the idle lease stretch factor (`>= 1.0`; `1.0`
    /// disables stretching). When the log has seen no *state* decree for a
    /// while, the holder grants itself a lease of up to
    /// `lease × idle_stretch_max` — amortizing renewal decrees over quiet
    /// stretches at the cost of a longer worst-case failover if the
    /// leader crashes while idle (a crash under load still re-elects
    /// within the unstretched bound, because recent state decrees keep the
    /// stretch at ~1).
    pub idle_stretch_max: f64,
    /// Seed for the cluster's private message-delay/loss RNG.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            replicas: 3,
            one_way_delay: SimDuration::from_millis(15),
            delay_jitter: 0.1,
            msg_loss: 0.01,
            lease: SimDuration::from_millis(3000),
            renew_margin: SimDuration::from_millis(1000),
            takeover_backoff: SimDuration::from_millis(150),
            client_timeout: SimDuration::from_millis(250),
            max_attempts: 40,
            idle_stretch_max: 1.0,
            seed: 0,
        }
    }
}

/// Lifetime counters for the cluster (all deterministic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// State (non-lease) decrees chosen.
    pub state_ops_committed: u64,
    /// Lease decrees that moved leadership to a different holder
    /// (includes the initial election).
    pub lease_grants: u64,
    /// Lease decrees that renewed the incumbent.
    pub lease_renewals: u64,
    /// Ballots started (fresh proposals plus retries).
    pub proposals: u64,
    /// Inter-replica messages put on the wire.
    pub msgs_sent: u64,
    /// Inter-replica messages lost in flight.
    pub msgs_dropped: u64,
    /// Client retries (leader wait or proposal timeout).
    pub client_retries: u64,
    /// Client redirects to a different leader than its cached hint.
    pub client_redirects: u64,
    /// Client operations abandoned after `max_attempts`.
    pub client_give_ups: u64,
    /// Leader crashes injected.
    pub leader_crashes: u64,
    /// Crashed replicas restarted (and caught up from the log).
    pub restarts: u64,
}

/// Applied lease view: who leads, until when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LeaseView {
    holder: ReplicaId,
    term: u64,
    until: SimTime,
}

/// An in-flight proposal a replica must retry until its slot decides.
#[derive(Debug, Clone)]
struct Pending {
    slot: u64,
    value: Value,
    attempts: u64,
    deadline: SimTime,
    lease: bool,
}

#[derive(Debug)]
enum NetEvent {
    Deliver {
        from: ReplicaId,
        to: ReplicaId,
        msg: PaxosMsg,
    },
    Wake {
        replica: ReplicaId,
    },
}

#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    ev: NetEvent,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One Brain replica: a Paxos participant plus the state machine it feeds.
#[derive(Debug)]
struct Member {
    paxos: Replica,
    brain: StreamingBrain,
    up: bool,
    /// Next slot to apply into the brain (contiguous application cursor).
    applied: u64,
    /// Canon prefix already force-fed via Learn (catch-up watermark).
    /// Decided state never disappears — crash/restart models a replica
    /// with stable storage — so the watermark is monotone-safe.
    learned: usize,
    /// Lease view as of the *applied* log prefix.
    lease: Option<LeaseView>,
    pending: Vec<Pending>,
    next_wake: SimTime,
    /// Result of the most recently applied `RehomeProducer` decree.
    last_rehome: Option<(u64, Option<PathAssignment>)>,
}

impl Member {
    fn apply_op(&mut self, slot: u64, op: BrainOp) {
        match op {
            BrainOp::Reports { now, reports } => {
                for r in &reports {
                    self.brain.absorb_report(r);
                }
                self.brain.maybe_recompute(now);
            }
            BrainOp::RegisterStream { stream, producer } => {
                self.brain.register_stream(stream, producer);
            }
            BrainOp::UnregisterStream { stream } => self.brain.unregister_stream(stream),
            BrainOp::MarkPopular { stream } => self.brain.mark_popular(stream),
            BrainOp::RehomeProducer {
                stream,
                new_producer,
                now,
            } => {
                let res = self.brain.rehome_producer(stream, new_producer, now).ok();
                self.last_rehome = Some((slot, res));
            }
            BrainOp::NodeFailed { node } => self.brain.node_failed(node),
            BrainOp::NodeRecovered { node } => self.brain.node_recovered(node),
            BrainOp::LinkFailed { a, b } => self.brain.link_failed(a, b),
            BrainOp::LinkRecovered { a, b } => self.brain.link_recovered(a, b),
            BrainOp::Lease {
                holder,
                term,
                until,
            } => {
                self.lease = Some(LeaseView {
                    holder,
                    term,
                    until,
                });
            }
            BrainOp::Noop => {}
        }
    }
}

/// Post-run consistency audit results (see [`BrainCluster::finalize`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterAudit {
    /// Slots where some replica's decided value differs from the
    /// canonical chosen log — any nonzero value is a Paxos safety bug.
    pub log_divergences: u64,
    /// Replicas that answered a sampled post-run `path_request` with a
    /// different `PathAssignment` than replica 0 — any nonzero value
    /// means the applied state machines diverged.
    pub assignment_mismatches: u64,
    /// Length of the canonical chosen log.
    pub decided_slots: u64,
    /// Minimum decided-slot count across replicas after final catch-up.
    pub min_replica_decided: u64,
}

/// N Paxos-replicated [`StreamingBrain`]s plus the deterministic
/// virtual-time network that connects them.  See the module docs.
#[derive(Debug)]
pub struct BrainCluster {
    cfg: ClusterConfig,
    members: Vec<Member>,
    heap: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    now: SimTime,
    rng: DetRng,
    /// Canonical chosen log: slot `i` holds the cluster-wide chosen value.
    canon: Vec<Value>,
    /// Lease view as of the canonical log (the client's leader oracle).
    canon_lease: Option<LeaseView>,
    client_hint: Option<ReplicaId>,
    /// Virtual time of the most recent decree decision.
    last_decided_at: SimTime,
    /// Virtual time of the most recent *state* (non-lease) decree — the
    /// idle clock the lease stretch is computed from.
    last_state_decided_at: SimTime,
    /// Replica currently down from [`Self::crash_leader`].
    crashed: Option<ReplicaId>,
    /// `last_decided_at` captured at crash time; cleared when a live
    /// holder wins a lease (failover complete).
    crash_pending: Option<SimTime>,
    failover_ms: Vec<f64>,
    divergences: u64,
    stats: ClusterStats,
}

impl BrainCluster {
    /// Build a cluster of `cfg.replicas` brains over clones of `topology`
    /// and schedule the initial election.
    pub fn new(topology: &Topology, brain_cfg: &BrainConfig, cfg: ClusterConfig) -> Self {
        assert!(cfg.replicas >= 1, "cluster needs at least one replica");
        let ids: Vec<ReplicaId> = (0..cfg.replicas).collect();
        let members = ids
            .iter()
            .map(|&id| Member {
                paxos: Replica::new(id, ids.clone()),
                brain: StreamingBrain::new(topology.clone(), brain_cfg.clone()),
                up: true,
                applied: 0,
                learned: 0,
                lease: None,
                pending: Vec::new(),
                next_wake: SimTime::MAX,
                last_rehome: None,
            })
            .collect();
        let rng = DetRng::seed(cfg.seed).fork("brain-cluster");
        let mut cluster = BrainCluster {
            cfg,
            members,
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            rng,
            canon: Vec::new(),
            canon_lease: None,
            client_hint: None,
            last_decided_at: SimTime::ZERO,
            last_state_decided_at: SimTime::ZERO,
            crashed: None,
            crash_pending: None,
            failover_ms: Vec::new(),
            divergences: 0,
            stats: ClusterStats::default(),
        };
        for r in 0..cluster.members.len() {
            cluster.maybe_wake(r as ReplicaId, SimTime::ZERO);
        }
        cluster
    }

    // ------------------------------------------------------------------
    // Event engine
    // ------------------------------------------------------------------

    fn schedule(&mut self, at: SimTime, ev: NetEvent) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, ev }));
    }

    /// Schedule a wake for `r` at `at` unless an earlier one is pending.
    fn maybe_wake(&mut self, r: ReplicaId, at: SimTime) {
        let cur = self.members[r as usize].next_wake;
        if at < cur || cur <= self.now {
            self.members[r as usize].next_wake = at;
            self.schedule(at, NetEvent::Wake { replica: r });
        }
    }

    fn send_out(&mut self, from: ReplicaId, outs: Vec<Outbound>) {
        for o in outs {
            if o.to == from {
                // Local loopback: lossless, zero delay (ordered by seq).
                self.schedule(
                    self.now,
                    NetEvent::Deliver {
                        from,
                        to: o.to,
                        msg: o.msg,
                    },
                );
                continue;
            }
            self.stats.msgs_sent += 1;
            if self.rng.chance(self.cfg.msg_loss) {
                self.stats.msgs_dropped += 1;
                continue;
            }
            let jitter = self
                .rng
                .range_f64(1.0 - self.cfg.delay_jitter, 1.0 + self.cfg.delay_jitter);
            let at = self.now + self.cfg.one_way_delay.mul_f64(jitter);
            self.schedule(
                at,
                NetEvent::Deliver {
                    from,
                    to: o.to,
                    msg: o.msg,
                },
            );
        }
    }

    /// Process the next queued event (advancing the clock to it).
    /// Returns false when the queue is empty.
    fn step(&mut self) -> bool {
        let Some(Reverse(s)) = self.heap.pop() else {
            return false;
        };
        self.now = self.now.max(s.at);
        match s.ev {
            NetEvent::Deliver { from, to, msg } => {
                if self.members[to as usize].up {
                    let outs = self.members[to as usize].paxos.handle(from, msg);
                    self.send_out(to, outs);
                    self.after_progress(to);
                }
            }
            NetEvent::Wake { replica } => self.on_wake(replica),
        }
        true
    }

    /// Process one event if it is due at or before `t`; otherwise advance
    /// the clock to `t` and return false.
    fn pump_step_until(&mut self, t: SimTime) -> bool {
        match self.heap.peek() {
            Some(Reverse(s)) if s.at <= t => self.step(),
            _ => {
                self.now = self.now.max(t);
                false
            }
        }
    }

    /// Advance the cluster clock to `t`, processing everything due.
    pub fn advance_to(&mut self, t: SimTime) {
        while self.pump_step_until(t) {}
    }

    // ------------------------------------------------------------------
    // Log progress: canon extension + state-machine application
    // ------------------------------------------------------------------

    fn after_progress(&mut self, r: ReplicaId) {
        loop {
            let slot = self.canon.len() as u64;
            let Some(v) = self.members[r as usize].paxos.decided(slot) else {
                break;
            };
            let v = v.clone();
            self.canon.push(v.clone());
            self.on_chosen(&v);
        }
        self.apply_ready(r);
    }

    fn on_chosen(&mut self, value: &Value) {
        self.last_decided_at = self.now;
        match BrainOp::decode(value) {
            Ok(BrainOp::Lease {
                holder,
                term,
                until,
            }) => {
                let new_holder = self.canon_lease.is_none_or(|p| p.holder != holder);
                if new_holder {
                    self.stats.lease_grants += 1;
                } else {
                    self.stats.lease_renewals += 1;
                }
                self.canon_lease = Some(LeaseView {
                    holder,
                    term,
                    until,
                });
                if let Some(t0) = self.crash_pending {
                    if self.members[holder as usize].up {
                        self.failover_ms
                            .push(self.now.saturating_since(t0).as_millis_f64());
                        self.crash_pending = None;
                    }
                }
            }
            Ok(_) => {
                self.stats.state_ops_committed += 1;
                self.last_state_decided_at = self.now;
            }
            // A chosen value that fails to decode means a corrupted log —
            // surfaced as a divergence so the audit gate trips.
            Err(_) => self.divergences += 1,
        }
    }

    fn apply_ready(&mut self, r: ReplicaId) {
        loop {
            let m = &mut self.members[r as usize];
            let slot = m.applied;
            let Some(v) = m.paxos.decided(slot) else {
                break;
            };
            let v = v.clone();
            m.applied += 1;
            match BrainOp::decode(&v) {
                Ok(op) => m.apply_op(slot, op),
                Err(_) => self.divergences += 1,
            }
        }
    }

    /// Feed `r` every canonically chosen value it has not decided yet
    /// (the learner shortcut a restarted replica uses to catch up), then
    /// apply everything that became contiguous.
    fn catch_up(&mut self, r: ReplicaId) {
        let m = &mut self.members[r as usize];
        for slot in m.learned..self.canon.len() {
            if m.paxos.decided(slot as u64).is_none() {
                let value = self.canon[slot].clone();
                let outs = m.paxos.handle(
                    r,
                    PaxosMsg::Learn {
                        slot: slot as u64,
                        value,
                    },
                );
                debug_assert!(outs.is_empty());
            }
        }
        m.learned = self.canon.len();
        self.apply_ready(r);
    }

    // ------------------------------------------------------------------
    // Lease maintenance + proposal retry (the per-replica wake handler)
    // ------------------------------------------------------------------

    fn on_wake(&mut self, r: ReplicaId) {
        if !self.members[r as usize].up {
            return;
        }
        self.apply_ready(r);
        self.retry_pendings(r);
        self.lease_maintenance(r);
        let next = self.next_wake_time(r);
        self.maybe_wake(r, next);
    }

    fn retry_pendings(&mut self, r: ReplicaId) {
        let now = self.now;
        let ri = r as usize;
        // Drop pendings whose slot decided (win or lose — losers are
        // re-proposed in a fresh slot by their originating client loop or
        // by lease maintenance).
        let decided: Vec<u64> = self.members[ri]
            .pending
            .iter()
            .filter(|p| self.members[ri].paxos.decided(p.slot).is_some())
            .map(|p| p.slot)
            .collect();
        self.members[ri]
            .pending
            .retain(|p| !decided.contains(&p.slot));
        // Retry expired ballots with a bumped minimum round (backoff).
        let due: Vec<usize> = self.members[ri]
            .pending
            .iter()
            .enumerate()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(i, _)| i)
            .collect();
        for i in due {
            let (slot, value, attempts) = {
                let p = &mut self.members[ri].pending[i];
                p.attempts += 1;
                (p.slot, p.value.clone(), p.attempts)
            };
            let jitter = self.rng.range_f64(0.75, 1.5);
            let delay = self
                .cfg
                .client_timeout
                .mul_f64(attempts as f64 * jitter);
            self.members[ri].pending[i].deadline = now + delay;
            let min_round = attempts * self.cfg.replicas as u64;
            let outs = self.members[ri]
                .paxos
                .propose_in_slot(slot, value, min_round);
            self.stats.proposals += 1;
            self.send_out(r, outs);
        }
    }

    fn lease_maintenance(&mut self, r: ReplicaId) {
        let ri = r as usize;
        if self.members[ri].pending.iter().any(|p| p.lease) {
            return; // a lease ballot of ours is already in flight
        }
        let now = self.now;
        let view = self.members[ri].lease;
        match view {
            Some(l) if l.holder == r => {
                if now + self.cfg.renew_margin >= l.until {
                    self.propose_lease(r, l.term + 1);
                }
            }
            Some(l) if now < l.until => {} // someone else holds a valid lease
            other => {
                // Expired (or never granted): stand for election after the
                // per-rank backoff so proposers stagger instead of duel.
                let base = other.map(|l| l.until).unwrap_or(SimTime::ZERO);
                let stand_at = base + self.cfg.takeover_backoff.mul_f64(r as f64);
                if now >= stand_at {
                    let term = other.map(|l| l.term).unwrap_or(0) + 1;
                    self.propose_lease(r, term);
                }
            }
        }
    }

    fn propose_lease(&mut self, r: ReplicaId, term: u64) {
        // Idle stretch: with no state decrees flowing there is nothing a
        // stale leader could serve wrong, so the lease may safely grow
        // toward `lease × idle_stretch_max`, amortizing renewal decrees
        // over quiet stretches (a day-long idle shard otherwise burns
        // ~43k renewal decrees on a 2 s renew cadence).
        let idle = self
            .now
            .saturating_since(self.last_state_decided_at)
            .as_millis_f64();
        let stretch = (idle / self.cfg.lease.as_millis_f64())
            .clamp(1.0, self.cfg.idle_stretch_max.max(1.0));
        let op = BrainOp::Lease {
            holder: r,
            term,
            until: self.now + self.cfg.lease.mul_f64(stretch),
        };
        let value = op.encode();
        let (slot, outs) = self.members[r as usize].paxos.propose(value.clone());
        self.stats.proposals += 1;
        let deadline = self.now + self.cfg.client_timeout;
        self.members[r as usize].pending.push(Pending {
            slot,
            value,
            attempts: 1,
            deadline,
            lease: true,
        });
        self.send_out(r, outs);
        self.maybe_wake(r, deadline);
    }

    /// The next virtual time at which `r` has lease or retry work to do.
    fn next_wake_time(&self, r: ReplicaId) -> SimTime {
        let m = &self.members[r as usize];
        let mut next = match m.lease {
            Some(l) if l.holder == r => l.until - self.cfg.renew_margin,
            Some(l) => l.until + self.cfg.takeover_backoff.mul_f64(r as f64),
            None => self.now + self.cfg.takeover_backoff.mul_f64((r + 1) as f64),
        };
        for p in &m.pending {
            next = if p.deadline < next { p.deadline } else { next };
        }
        // Never busy-spin: wake strictly in the future.
        let floor = self.now + SimDuration::from_millis(10);
        next.max(floor)
    }

    // ------------------------------------------------------------------
    // Client interface (the fleet's control-plane surface)
    // ------------------------------------------------------------------

    /// Current leader per the canonical lease, if alive and unexpired.
    pub fn leader(&self) -> Option<ReplicaId> {
        self.canon_lease
            .filter(|l| self.now < l.until)
            .map(|l| l.holder)
            .filter(|&h| self.members[h as usize].up)
    }

    fn lowest_live(&self) -> Option<ReplicaId> {
        self.members
            .iter()
            .position(|m| m.up)
            .map(|i| i as ReplicaId)
    }

    /// Block (in virtual time) until a live leader holds the lease, or
    /// the attempt budget runs out.  Returns the leader.
    fn await_leader(&mut self, give_up_at: SimTime) -> Result<ReplicaId> {
        loop {
            if let Some(h) = self.leader() {
                if self.client_hint != Some(h) {
                    if self.client_hint.is_some() {
                        self.stats.client_redirects += 1;
                    }
                    self.client_hint = Some(h);
                }
                return Ok(h);
            }
            if self.now >= give_up_at {
                self.stats.client_give_ups += 1;
                return Err(Error::exhausted("brain cluster has no live leader"));
            }
            self.stats.client_retries += 1;
            let wait = self.now + self.cfg.client_timeout;
            self.advance_to(wait);
        }
    }

    /// Replicate one mutation through the log.  Returns the client-visible
    /// latency in ms and, for `RehomeProducer`, the bridge-path assignment
    /// produced when the decree applied on the serving replica.
    ///
    /// Semantics are at-least-once: a proposal that times out is re-issued
    /// in a fresh slot, and the original may still be chosen later, so an
    /// op can appear twice in the log.  All [`BrainOp`] state mutations
    /// are idempotent at the state level (counters may advance twice —
    /// identically on every replica).
    pub fn replicate(&mut self, op: &BrainOp, now: SimTime) -> Result<(f64, Option<PathAssignment>)> {
        self.advance_to(now);
        let start = self.now;
        let value = op.encode();
        let base = self.canon.len();
        let give_up_at = start + self.cfg.client_timeout.mul_f64(self.cfg.max_attempts as f64);
        let committed_slot = 'outer: loop {
            if let Some(i) = self.canon[base..].iter().position(|v| *v == value) {
                break 'outer base as u64 + i as u64;
            }
            if self.now >= give_up_at {
                self.stats.client_give_ups += 1;
                return Err(Error::exhausted("brain cluster replicate timed out"));
            }
            let h = self.await_leader(give_up_at)?;
            self.catch_up(h);
            let (slot, outs) = self.members[h as usize].paxos.propose(value.clone());
            self.stats.proposals += 1;
            let deadline = self.now + self.cfg.client_timeout;
            self.members[h as usize].pending.push(Pending {
                slot,
                value: value.clone(),
                attempts: 1,
                deadline,
                lease: false,
            });
            self.send_out(h, outs);
            self.maybe_wake(h, deadline);
            let wait_until = self.now + self.cfg.client_timeout;
            loop {
                if self.canon[base..].contains(&value) {
                    continue 'outer; // picked up at the top of the loop
                }
                if !self.pump_step_until(wait_until) {
                    break;
                }
            }
            if self.canon[base..].iter().all(|v| *v != value) {
                self.stats.client_retries += 1;
            }
        };
        let rtt_ms = self.cfg.one_way_delay.as_millis_f64() * 2.0;
        let latency = self.now.saturating_since(start).as_millis_f64() + rtt_ms;
        let rehome = if matches!(op, BrainOp::RehomeProducer { .. }) {
            let r = self
                .leader()
                .or_else(|| self.lowest_live())
                .ok_or_else(|| Error::exhausted("no live replica"))?;
            self.catch_up(r);
            match &self.members[r as usize].last_rehome {
                Some((slot, res)) if *slot == committed_slot => res.clone(),
                _ => None,
            }
        } else {
            None
        };
        Ok((latency, rehome))
    }

    /// Serve a path request.
    ///
    /// `prefetched` requests model node-local prefetched path tables
    /// (§4.4): they are answered by the lowest-id live replica at zero
    /// added latency.  Everything else is a leader read under the lease
    /// (the leader first syncs to the canonical log, so reads observe all
    /// committed writes), charged one client→leader round trip plus any
    /// virtual time spent waiting out a leader failover.
    pub fn path_request(
        &mut self,
        stream: StreamId,
        consumer: NodeId,
        now: SimTime,
        prefetched: bool,
    ) -> Result<(PathAssignment, f64)> {
        self.advance_to(now);
        if prefetched {
            let r = self
                .lowest_live()
                .ok_or_else(|| Error::exhausted("no live replica"))?;
            self.catch_up(r);
            let t = self.now;
            let a = self.members[r as usize].brain.path_request(stream, consumer, t)?;
            return Ok((a, 0.0));
        }
        let start = self.now;
        let give_up_at = start + self.cfg.client_timeout.mul_f64(self.cfg.max_attempts as f64);
        let h = self.await_leader(give_up_at)?;
        self.catch_up(h);
        let t = self.now;
        let a = self.members[h as usize].brain.path_request(stream, consumer, t)?;
        let latency = self.now.saturating_since(start).as_millis_f64()
            + self.cfg.one_way_delay.as_millis_f64() * 2.0;
        Ok((a, latency))
    }

    /// Streams currently produced on `node`, read from a synced replica.
    pub fn streams_on(&mut self, node: NodeId) -> Vec<StreamId> {
        match self.lowest_live() {
            Some(r) => {
                self.catch_up(r);
                self.members[r as usize].brain.streams_on(node)
            }
            None => Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Crash the current lease holder (or the lowest live replica when no
    /// lease is active).  Returns the victim.  At most one crash can be
    /// outstanding; a second call before [`Self::restart_crashed`] is a
    /// no-op.
    pub fn crash_leader(&mut self, now: SimTime) -> Option<ReplicaId> {
        self.advance_to(now);
        if self.crashed.is_some() {
            return None;
        }
        let victim = self.leader().or_else(|| self.lowest_live())?;
        let m = &mut self.members[victim as usize];
        m.up = false;
        m.pending.clear();
        self.crashed = Some(victim);
        self.crash_pending = Some(self.last_decided_at);
        self.stats.leader_crashes += 1;
        self.client_hint = None;
        Some(victim)
    }

    /// Restart the replica downed by [`Self::crash_leader`]: it rejoins,
    /// catches up from the canonical log (state transfer through the
    /// learner path) and resumes lease participation.
    pub fn restart_crashed(&mut self, now: SimTime) {
        self.advance_to(now);
        let Some(r) = self.crashed.take() else {
            return;
        };
        self.members[r as usize].up = true;
        self.stats.restarts += 1;
        self.catch_up(r);
        self.members[r as usize].next_wake = SimTime::MAX;
        let at = self.now + SimDuration::from_millis(10);
        self.maybe_wake(r, at);
    }

    // ------------------------------------------------------------------
    // End-of-run audit + telemetry
    // ------------------------------------------------------------------

    /// Settle in-flight traffic, audit every replica's decided log
    /// against the canonical chosen log, sync stragglers, and compare
    /// sampled `PathAssignment`s across replicas.
    pub fn finalize(&mut self, horizon: SimTime) -> ClusterAudit {
        self.advance_to(horizon);
        // Grace window: let in-flight ballots and lease traffic settle.
        let settle = self.now + self.cfg.lease + self.cfg.lease;
        self.advance_to(settle);
        let mut audit = ClusterAudit {
            log_divergences: self.divergences,
            ..ClusterAudit::default()
        };
        // Safety audit: no replica may have decided a value different
        // from the canonical chosen log in any slot.
        for m in &self.members {
            for (slot, canon_v) in self.canon.iter().enumerate() {
                if let Some(v) = m.paxos.decided(slot as u64) {
                    if v != canon_v {
                        audit.log_divergences += 1;
                    }
                }
            }
        }
        // State transfer: every replica (including a still-down one — it
        // would recover from the log on restart) syncs to the canon.
        for r in 0..self.members.len() as ReplicaId {
            self.catch_up(r);
        }
        audit.decided_slots = self.canon.len() as u64;
        audit.min_replica_decided = self
            .members
            .iter()
            .map(|m| m.paxos.decided_count() as u64)
            .min()
            .unwrap_or(0);
        // Convergence audit: sampled streams must yield identical
        // assignments from every replica's applied state.
        let sample: Vec<(StreamId, NodeId)> = {
            let mut s: Vec<(StreamId, NodeId)> =
                self.members[0].brain.decision().sib.iter().collect();
            s.sort_unstable();
            s.truncate(8);
            s
        };
        let t = self.now;
        for (stream, producer) in sample {
            let consumer = self.members[0]
                .brain
                .topology()
                .routable_node_ids()
                .find(|&n| n != producer);
            let Some(consumer) = consumer else { continue };
            let baseline = self.members[0].brain.path_request(stream, consumer, t).ok();
            for m in self.members.iter_mut().skip(1) {
                let got = m.brain.path_request(stream, consumer, t).ok();
                if got != baseline {
                    audit.assignment_mismatches += 1;
                }
            }
        }
        audit
    }

    /// Export cluster counters and failover observations into a sink.
    ///
    /// Brain lifetime counters (recompute rounds, rehomes, KSP work, node
    /// up/down) are identical on every synced replica and are read from
    /// replica 0; request-serving counters are summed across replicas
    /// (each leader term served its own share).  Call after
    /// [`Self::finalize`] so all replicas are synced.
    pub fn record_telemetry(&self, sink: &mut impl MetricSink) {
        let b0 = &self.members[0].brain;
        sink.add(ids::BRAIN_RECOMPUTE_ROUNDS, b0.recompute_rounds);
        sink.add(ids::BRAIN_KSP_PATHS, b0.ksp_paths_computed);
        sink.add(ids::BRAIN_REHOMES, b0.rehomes);
        sink.add(ids::BRAIN_NODE_FAILED, b0.nodes_failed);
        sink.add(ids::BRAIN_NODE_RECOVERED, b0.nodes_recovered);
        let served: u64 = self
            .members
            .iter()
            .map(|m| m.brain.decision().requests_served)
            .sum();
        let last_resort: u64 = self
            .members
            .iter()
            .map(|m| m.brain.decision().last_resort_served)
            .sum();
        sink.add(ids::BRAIN_REQUESTS, served);
        sink.add(ids::BRAIN_LAST_RESORT, last_resort);
        sink.add(ids::REPLICATION_OPS_COMMITTED, self.stats.state_ops_committed);
        sink.add(ids::REPLICATION_LEASE_GRANTS, self.stats.lease_grants);
        sink.add(ids::REPLICATION_LEASE_RENEWALS, self.stats.lease_renewals);
        sink.add(ids::REPLICATION_PROPOSALS, self.stats.proposals);
        sink.add(ids::REPLICATION_MSGS_SENT, self.stats.msgs_sent);
        sink.add(ids::REPLICATION_MSGS_DROPPED, self.stats.msgs_dropped);
        sink.add(ids::REPLICATION_CLIENT_RETRIES, self.stats.client_retries);
        sink.add(ids::REPLICATION_REDIRECTS, self.stats.client_redirects);
        sink.add(ids::REPLICATION_LEADER_CRASHES, self.stats.leader_crashes);
        sink.add(ids::REPLICATION_DECIDED_SLOTS, self.canon.len() as u64);
        for &ms in &self.failover_ms {
            sink.observe(ids::BRAIN_FAILOVER_MS, ms);
        }
    }

    /// Measured failover latencies (ms), in crash order.
    pub fn failover_ms(&self) -> &[f64] {
        &self.failover_ms
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// Completed recompute rounds (replica 0's applied state).
    pub fn recompute_rounds(&self) -> u64 {
        self.members[0].brain.recompute_rounds
    }

    /// Number of replicas.
    pub fn replicas(&self) -> u32 {
        self.cfg.replicas
    }

    /// Length of the canonical chosen log.
    pub fn decided_slots(&self) -> u64 {
        self.canon.len() as u64
    }

    /// Decided-slot count of one replica (tests).
    pub fn replica_decided_count(&self, r: ReplicaId) -> usize {
        self.members[r as usize].paxos.decided_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livenet_topology::{GeoConfig, GeoTopology};

    fn cluster(seed: u64) -> (BrainCluster, Vec<NodeId>) {
        let g = GeoTopology::generate(&GeoConfig::tiny(seed));
        let nodes: Vec<NodeId> = g.topology.routable_node_ids().collect();
        let cfg = ClusterConfig {
            seed,
            ..ClusterConfig::default()
        };
        (
            BrainCluster::new(&g.topology, &BrainConfig::default(), cfg),
            nodes,
        )
    }

    #[test]
    fn initial_election_produces_a_leader() {
        let (mut c, _) = cluster(1);
        c.advance_to(SimTime::from_secs(5));
        assert!(c.leader().is_some());
        assert!(c.stats().lease_grants >= 1);
        // The lease keeps renewing while the holder is alive.
        c.advance_to(SimTime::from_secs(30));
        assert!(c.leader().is_some());
        assert!(c.stats().lease_renewals >= 2);
    }

    #[test]
    fn idle_lease_stretch_amortizes_renewal_decrees() {
        let run = |idle_stretch_max: f64| {
            let g = GeoTopology::generate(&GeoConfig::tiny(9));
            let cfg = ClusterConfig {
                idle_stretch_max,
                seed: 9,
                ..ClusterConfig::default()
            };
            let mut c = BrainCluster::new(&g.topology, &BrainConfig::default(), cfg);
            c.advance_to(SimTime::from_secs(300));
            (c.leader().is_some(), c.stats().clone())
        };
        let (plain_led, plain) = run(1.0);
        let (stretched_led, stretched) = run(20.0);
        // Leadership never lapses in either mode.
        assert!(plain_led && stretched_led);
        assert_eq!(stretched.lease_grants, plain.lease_grants);
        // An idle cluster stretches its lease toward 20×, so the renewal
        // decree stream collapses instead of burning one every ~2 s.
        assert!(
            stretched.lease_renewals * 5 < plain.lease_renewals,
            "stretch did not amortize: {} vs {} renewals",
            stretched.lease_renewals,
            plain.lease_renewals
        );
    }

    #[test]
    fn replicate_applies_on_every_replica() {
        let (mut c, nodes) = cluster(2);
        let s = StreamId::new(7);
        let now = SimTime::from_secs(5);
        let (lat, _) = c
            .replicate(
                &BrainOp::RegisterStream {
                    stream: s,
                    producer: nodes[0],
                },
                now,
            )
            .expect("replicate");
        assert!(lat > 0.0, "replication must cost virtual time");
        let audit = c.finalize(SimTime::from_secs(10));
        assert_eq!(audit.log_divergences, 0);
        for r in 0..c.replicas() {
            assert_eq!(
                c.members[r as usize].brain.producer_of(s),
                Some(nodes[0]),
                "replica {r} missed the replicated registration"
            );
        }
    }

    #[test]
    fn leader_reads_observe_committed_writes() {
        let (mut c, nodes) = cluster(3);
        let s = StreamId::new(1);
        let now = SimTime::from_secs(5);
        c.replicate(
            &BrainOp::RegisterStream {
                stream: s,
                producer: nodes[0],
            },
            now,
        )
        .unwrap();
        let (a, lat) = c
            .path_request(s, nodes[1], SimTime::from_secs(6), false)
            .expect("leader read");
        assert_eq!(a.producer, nodes[0]);
        assert!(lat >= c.cfg.one_way_delay.as_millis_f64() * 2.0);
        // Prefetched reads are free.
        let (_, lat0) = c
            .path_request(s, nodes[1], SimTime::from_secs(6), true)
            .unwrap();
        assert_eq!(lat0, 0.0);
    }

    #[test]
    fn leader_crash_fails_over_and_measures_latency() {
        let (mut c, nodes) = cluster(4);
        let s = StreamId::new(2);
        c.replicate(
            &BrainOp::RegisterStream {
                stream: s,
                producer: nodes[0],
            },
            SimTime::from_secs(5),
        )
        .unwrap();
        let old = c.crash_leader(SimTime::from_secs(10)).expect("victim");
        // Requests during the outage still succeed, just slower: the
        // client waits out the lease and a new leader takes over.
        let (a, lat) = c
            .path_request(s, nodes[1], SimTime::from_secs(10), false)
            .expect("request during failover");
        assert_eq!(a.producer, nodes[0]);
        let new = c.leader().expect("new leader");
        assert_ne!(new, old, "failover must move leadership");
        assert!(lat > 100.0, "failover read should pay the outage: {lat}");
        assert_eq!(c.failover_ms().len(), 1);
        let fo = c.failover_ms()[0];
        assert!(fo > 0.0 && fo < 15_000.0, "failover {fo}ms out of bounds");
        // Restart: the victim catches up from the log.
        c.restart_crashed(SimTime::from_secs(20));
        let audit = c.finalize(SimTime::from_secs(25));
        assert_eq!(audit.log_divergences, 0);
        assert_eq!(audit.assignment_mismatches, 0);
        assert_eq!(audit.min_replica_decided, audit.decided_slots);
    }

    #[test]
    fn lossy_network_still_converges() {
        let g = GeoTopology::generate(&GeoConfig::tiny(5));
        let nodes: Vec<NodeId> = g.topology.routable_node_ids().collect();
        let cfg = ClusterConfig {
            seed: 5,
            msg_loss: 0.15,
            ..ClusterConfig::default()
        };
        let mut c = BrainCluster::new(&g.topology, &BrainConfig::default(), cfg);
        for i in 0..10u64 {
            c.replicate(
                &BrainOp::RegisterStream {
                    stream: StreamId::new(i),
                    producer: nodes[(i % 3) as usize],
                },
                SimTime::from_secs(5 + i),
            )
            .expect("replicate under loss");
        }
        let audit = c.finalize(SimTime::from_secs(60));
        assert_eq!(audit.log_divergences, 0);
        assert_eq!(audit.assignment_mismatches, 0);
        assert!(c.stats().msgs_dropped > 0, "loss model must have fired");
    }

    #[test]
    fn same_seed_same_history() {
        let run = |seed: u64| {
            let (mut c, nodes) = cluster(seed);
            c.replicate(
                &BrainOp::RegisterStream {
                    stream: StreamId::new(3),
                    producer: nodes[0],
                },
                SimTime::from_secs(4),
            )
            .unwrap();
            c.crash_leader(SimTime::from_secs(8));
            c.restart_crashed(SimTime::from_secs(14));
            c.finalize(SimTime::from_secs(20));
            (
                c.stats().clone(),
                c.decided_slots(),
                c.failover_ms().to_vec(),
            )
        };
        let (s1, d1, f1) = run(9);
        let (s2, d2, f2) = run(9);
        assert_eq!(s1, s2);
        assert_eq!(d1, d2);
        assert_eq!(
            f1.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            f2.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
    }
}
