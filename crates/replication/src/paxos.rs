//! Multi-decree Paxos.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Replica identity (small dense integers).
pub type ReplicaId = u32;

/// A replicated value — e.g. a serialized PIB/SIB update.
pub type Value = Vec<u8>;

/// A Paxos ballot: totally ordered, unique per proposer.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Ballot {
    /// Round counter.
    pub round: u64,
    /// Proposing replica (tie-break).
    pub proposer: ReplicaId,
}

/// Messages between replicas. `slot` scopes every message to one decree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PaxosMsg {
    /// Phase 1a.
    Prepare {
        /// Decree slot.
        slot: u64,
        /// Proposer's ballot.
        ballot: Ballot,
    },
    /// Phase 1b.
    Promise {
        /// Decree slot.
        slot: u64,
        /// The promised ballot.
        ballot: Ballot,
        /// Highest accepted (ballot, value) at the acceptor, if any.
        accepted: Option<(Ballot, Value)>,
    },
    /// Phase 2a.
    Accept {
        /// Decree slot.
        slot: u64,
        /// Ballot.
        ballot: Ballot,
        /// Proposed value.
        value: Value,
    },
    /// Phase 2b.
    Accepted {
        /// Decree slot.
        slot: u64,
        /// Ballot.
        ballot: Ballot,
    },
    /// Decision broadcast (learner shortcut).
    Learn {
        /// Decree slot.
        slot: u64,
        /// Chosen value.
        value: Value,
    },
}

/// Per-slot acceptor state.
#[derive(Debug, Clone, Default)]
struct AcceptorSlot {
    promised: Option<Ballot>,
    accepted: Option<(Ballot, Value)>,
}

/// Per-slot proposer state.
#[derive(Debug, Clone)]
struct ProposerSlot {
    ballot: Ballot,
    value: Value,
    promises: HashMap<ReplicaId, Option<(Ballot, Value)>>,
    accepts: HashSet<ReplicaId>,
    phase2_started: bool,
}

/// Outbound message with its destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outbound {
    /// Destination replica.
    pub to: ReplicaId,
    /// The message.
    pub msg: PaxosMsg,
}

/// One Paxos replica (proposer + acceptor + learner).
#[derive(Debug)]
pub struct Replica {
    id: ReplicaId,
    peers: Vec<ReplicaId>,
    acceptor: BTreeMap<u64, AcceptorSlot>,
    proposer: BTreeMap<u64, ProposerSlot>,
    decided: BTreeMap<u64, Value>,
    next_slot_hint: u64,
}

impl Replica {
    /// New replica in a cluster of `peers` (must include `id`).
    pub fn new(id: ReplicaId, peers: Vec<ReplicaId>) -> Self {
        assert!(peers.contains(&id), "peers must include self");
        Replica {
            id,
            peers,
            acceptor: BTreeMap::new(),
            proposer: BTreeMap::new(),
            decided: BTreeMap::new(),
            next_slot_hint: 0,
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Quorum size (majority).
    fn quorum(&self) -> usize {
        self.peers.len() / 2 + 1
    }

    /// Decided value of a slot, if known.
    pub fn decided(&self, slot: u64) -> Option<&Value> {
        self.decided.get(&slot)
    }

    /// The decided log prefix: values for slots `0..n` where all decided.
    pub fn log_prefix(&self) -> Vec<&Value> {
        let mut out = Vec::new();
        let mut slot = 0;
        while let Some(v) = self.decided.get(&slot) {
            out.push(v);
            slot += 1;
        }
        out
    }

    /// Number of decided slots (not necessarily a prefix).
    pub fn decided_count(&self) -> usize {
        self.decided.len()
    }

    /// Propose `value` in a fresh slot. Returns the slot and the phase-1
    /// messages to deliver.
    pub fn propose(&mut self, value: Value) -> (u64, Vec<Outbound>) {
        // Pick the lowest slot we neither decided nor are proposing in.
        let mut slot = self.next_slot_hint;
        while self.decided.contains_key(&slot) || self.proposer.contains_key(&slot) {
            slot += 1;
        }
        self.next_slot_hint = slot + 1;
        let out = self.propose_in_slot(slot, value, 0);
        (slot, out)
    }

    /// (Re-)propose in a specific slot with a round at least `min_round`
    /// and higher than any round we used before in this slot. Used for
    /// retry/backoff after a failed ballot.
    pub fn propose_in_slot(&mut self, slot: u64, value: Value, min_round: u64) -> Vec<Outbound> {
        let prev_round = self.proposer.get(&slot).map(|p| p.ballot.round).unwrap_or(0);
        let ballot = Ballot {
            round: prev_round.max(min_round) + 1,
            proposer: self.id,
        };
        self.proposer.insert(
            slot,
            ProposerSlot {
                ballot,
                value,
                promises: HashMap::new(),
                accepts: HashSet::new(),
                phase2_started: false,
            },
        );
        self.broadcast(PaxosMsg::Prepare { slot, ballot })
    }

    fn broadcast(&self, msg: PaxosMsg) -> Vec<Outbound> {
        self.peers
            .iter()
            .map(|&to| Outbound {
                to,
                msg: msg.clone(),
            })
            .collect()
    }

    /// Handle a message from `from`; returns messages to send.
    pub fn handle(&mut self, from: ReplicaId, msg: PaxosMsg) -> Vec<Outbound> {
        match msg {
            PaxosMsg::Prepare { slot, ballot } => {
                let a = self.acceptor.entry(slot).or_default();
                if a.promised.is_none_or(|p| ballot > p) {
                    a.promised = Some(ballot);
                    vec![Outbound {
                        to: from,
                        msg: PaxosMsg::Promise {
                            slot,
                            ballot,
                            accepted: a.accepted.clone(),
                        },
                    }]
                } else {
                    Vec::new() // implicit NACK by silence; proposer re-tries
                }
            }
            PaxosMsg::Promise {
                slot,
                ballot,
                accepted,
            } => {
                let quorum = self.quorum();
                let Some(p) = self.proposer.get_mut(&slot) else {
                    return Vec::new();
                };
                if p.ballot != ballot || p.phase2_started {
                    return Vec::new();
                }
                p.promises.insert(from, accepted);
                if p.promises.len() >= quorum {
                    // Adopt the highest-ballot accepted value, if any.
                    if let Some((_, v)) = p
                        .promises
                        .values()
                        .flatten()
                        .max_by_key(|(b, _)| *b)
                    {
                        p.value = v.clone();
                    }
                    p.phase2_started = true;
                    let msg = PaxosMsg::Accept {
                        slot,
                        ballot,
                        value: p.value.clone(),
                    };
                    self.broadcast(msg)
                } else {
                    Vec::new()
                }
            }
            PaxosMsg::Accept {
                slot,
                ballot,
                value,
            } => {
                let a = self.acceptor.entry(slot).or_default();
                if a.promised.is_none_or(|p| ballot >= p) {
                    a.promised = Some(ballot);
                    a.accepted = Some((ballot, value));
                    vec![Outbound {
                        to: from,
                        msg: PaxosMsg::Accepted { slot, ballot },
                    }]
                } else {
                    Vec::new()
                }
            }
            PaxosMsg::Accepted { slot, ballot } => {
                let quorum = self.quorum();
                let Some(p) = self.proposer.get_mut(&slot) else {
                    return Vec::new();
                };
                if p.ballot != ballot {
                    return Vec::new();
                }
                p.accepts.insert(from);
                if p.accepts.len() >= quorum && !self.decided.contains_key(&slot) {
                    let value = p.value.clone();
                    self.decided.insert(slot, value.clone());
                    self.broadcast(PaxosMsg::Learn { slot, value })
                } else {
                    Vec::new()
                }
            }
            PaxosMsg::Learn { slot, value } => {
                // Safety note: Learn comes from a replica that observed a
                // quorum of accepts; adopting it is safe.
                self.decided.entry(slot).or_insert(value);
                Vec::new()
            }
        }
    }

    /// True when this replica has an unfinished proposal in `slot`.
    pub fn proposing(&self, slot: u64) -> bool {
        self.proposer
            .get(&slot)
            .is_some_and(|_| !self.decided.contains_key(&slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livenet_types::DetRng;

    /// Deterministic lossy network driver for a Paxos cluster.
    struct Net {
        replicas: Vec<Replica>,
        inflight: Vec<(ReplicaId, Outbound)>, // (from, outbound)
        rng: DetRng,
        loss: f64,
    }

    impl Net {
        fn new(n: u32, seed: u64, loss: f64) -> Net {
            let ids: Vec<ReplicaId> = (0..n).collect();
            Net {
                replicas: ids.iter().map(|&i| Replica::new(i, ids.clone())).collect(),
                inflight: Vec::new(),
                rng: DetRng::seed(seed),
                loss,
            }
        }

        fn send_all(&mut self, from: ReplicaId, out: Vec<Outbound>) {
            for o in out {
                self.inflight.push((from, o));
            }
        }

        /// Deliver messages in random order with random loss until quiet.
        fn run(&mut self, max_steps: usize) {
            for _ in 0..max_steps {
                if self.inflight.is_empty() {
                    return;
                }
                let idx = self.rng.range_u64(0, self.inflight.len() as u64) as usize;
                let (from, Outbound { to, msg }) = self.inflight.swap_remove(idx);
                if self.rng.chance(self.loss) {
                    continue;
                }
                let out = self.replicas[to as usize].handle(from, msg);
                self.send_all(to, out);
            }
        }
    }

    #[test]
    fn single_proposer_decides_everywhere() {
        let mut net = Net::new(3, 1, 0.0);
        let (slot, out) = net.replicas[0].propose(b"pib-update-1".to_vec());
        net.send_all(0, out);
        net.run(10_000);
        for r in &net.replicas {
            assert_eq!(r.decided(slot), Some(&b"pib-update-1".to_vec()));
        }
    }

    #[test]
    fn competing_proposers_agree_on_one_value() {
        for seed in 0..20 {
            let mut net = Net::new(5, seed, 0.0);
            let (s0, o0) = net.replicas[0].propose(b"A".to_vec());
            let (s1, o1) = net.replicas[1].propose(b"B".to_vec());
            net.send_all(0, o0);
            net.send_all(1, o1);
            net.run(50_000);
            // Both proposals may land in different slots, or collide in the
            // same slot. For every slot decided by 2+ replicas, values agree.
            for slot in [s0, s1] {
                let decided: Vec<&Value> = net
                    .replicas
                    .iter()
                    .filter_map(|r| r.decided(slot))
                    .collect();
                for w in decided.windows(2) {
                    assert_eq!(w[0], w[1], "seed {seed} slot {slot} disagreement");
                }
            }
        }
    }

    #[test]
    fn same_slot_conflict_resolves_to_single_value() {
        for seed in 0..20 {
            let mut net = Net::new(3, seed, 0.0);
            let o0 = net.replicas[0].propose_in_slot(7, b"X".to_vec(), 0);
            let o1 = net.replicas[1].propose_in_slot(7, b"Y".to_vec(), 0);
            net.send_all(0, o0);
            net.send_all(1, o1);
            net.run(50_000);
            // Retry loop for liveness: whoever hasn't decided re-proposes
            // with a higher round.
            for round in 1..10 {
                let undecided: Vec<u32> = net
                    .replicas
                    .iter()
                    .filter(|r| r.decided(7).is_none() && r.proposing(7))
                    .map(|r| r.id())
                    .collect();
                if undecided.is_empty() {
                    break;
                }
                for id in undecided {
                    let v = if id == 0 { b"X".to_vec() } else { b"Y".to_vec() };
                    let out = net.replicas[id as usize].propose_in_slot(7, v, round * 2);
                    net.send_all(id, out);
                }
                net.run(50_000);
            }
            let decided: Vec<&Value> = net
                .replicas
                .iter()
                .filter_map(|r| r.decided(7))
                .collect();
            assert!(!decided.is_empty(), "seed {seed}: nothing decided");
            for w in decided.windows(2) {
                assert_eq!(w[0], w[1], "seed {seed}: split decision");
            }
        }
    }

    #[test]
    fn survives_message_loss_with_retries() {
        for seed in 0..10 {
            let mut net = Net::new(3, seed, 0.25);
            let (slot, out) = net.replicas[0].propose(b"lossy".to_vec());
            net.send_all(0, out);
            net.run(20_000);
            // Retry with higher rounds until decided (proposer-side timeout).
            for round in 1..30 {
                if net.replicas[0].decided(slot).is_some() {
                    break;
                }
                let out =
                    net.replicas[0].propose_in_slot(slot, b"lossy".to_vec(), round * 3);
                net.send_all(0, out);
                net.run(20_000);
            }
            assert_eq!(
                net.replicas[0].decided(slot),
                Some(&b"lossy".to_vec()),
                "seed {seed}: never decided under loss"
            );
        }
    }

    #[test]
    fn log_prefix_replicates_a_sequence_of_updates() {
        let mut net = Net::new(3, 42, 0.0);
        for i in 0..10u8 {
            let (_, out) = net.replicas[0].propose(vec![i]);
            net.send_all(0, out);
            net.run(20_000);
        }
        for r in &net.replicas {
            let log = r.log_prefix();
            assert_eq!(log.len(), 10);
            for (i, v) in log.iter().enumerate() {
                assert_eq!(***v, *vec![i as u8]);
            }
        }
    }

    #[test]
    fn quorum_math() {
        let r3 = Replica::new(0, vec![0, 1, 2]);
        assert_eq!(r3.quorum(), 2);
        let r5 = Replica::new(0, vec![0, 1, 2, 3, 4]);
        assert_eq!(r5.quorum(), 3);
    }

    #[test]
    #[should_panic(expected = "peers must include self")]
    fn peers_must_include_self() {
        let _ = Replica::new(9, vec![0, 1, 2]);
    }
}
