//! Batched datagram I/O for the wire hot path.
//!
//! A 50+ node loopback overlay pushes tens of thousands of datagrams per
//! second through one cooperative executor; paying one syscall per
//! datagram is where a naive driver spends its core. [`BatchSocket`]
//! amortizes that cost: on Linux it issues `sendmmsg`/`recvmmsg` directly
//! (up to [`MAX_BATCH`] datagrams per syscall); everywhere else — and when
//! explicitly configured — it falls back to a portable
//! one-syscall-per-datagram loop with the *same* observable semantics, so
//! the two backends are interchangeable (a property the batch proptest
//! pins down by comparing delivered payload multisets).
//!
//! The module is deliberately sans-telemetry: callers count syscalls and
//! observe batch fills into their own hub, keeping this file a pure I/O
//! concern. Receive buffers carry the same one-byte truncation sentinel
//! the single-datagram driver used: each slot is sized `cap + 1`, so a
//! kernel-truncated datagram fills the slot completely and is detectable
//! without `MSG_TRUNC` plumbing.

use std::io;
use std::net::{SocketAddr, UdpSocket};

/// Hard ceiling on datagrams per batch syscall. 64 keeps the per-slot
/// bookkeeping (iovecs, sockaddr storage) comfortably on the stack-ish
/// side of cache while still amortizing the syscall ~60×.
pub const MAX_BATCH: usize = 64;

/// Which I/O strategy a [`BatchSocket`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchBackend {
    /// `sendmmsg`/`recvmmsg`: one syscall moves a whole batch.
    /// Linux-only; constructing a socket with this backend elsewhere
    /// falls back to [`BatchBackend::Sequential`].
    Mmsg,
    /// Portable fallback: one nonblocking `sendto`/`recvfrom` per
    /// datagram, looped until the batch is full or the socket blocks.
    Sequential,
}

impl BatchBackend {
    /// The best backend this platform supports.
    pub fn auto() -> BatchBackend {
        if cfg!(target_os = "linux") {
            BatchBackend::Mmsg
        } else {
            BatchBackend::Sequential
        }
    }
}

/// One datagram queued for a batched send.
#[derive(Debug, Clone)]
pub struct SendDatagram {
    /// Destination address.
    pub to: SocketAddr,
    /// Wire payload.
    pub payload: bytes::Bytes,
}

/// One received datagram, borrowed out of a [`RecvBatch`].
#[derive(Debug, Clone, Copy)]
pub struct RecvdDatagram<'a> {
    /// The payload, truncated to the configured cap when oversized.
    pub data: &'a [u8],
    /// Source address.
    pub src: SocketAddr,
    /// True when the kernel truncated the datagram (it overflowed the
    /// configured per-datagram cap); the payload tail is gone and the
    /// datagram should be dropped, not decoded.
    pub truncated: bool,
}

/// Reusable receive-side batch storage: `max_datagrams` slots of
/// `cap + 1` bytes each, allocated once and refilled every syscall.
#[derive(Debug)]
pub struct RecvBatch {
    cap: usize,
    bufs: Vec<Vec<u8>>,
    metas: Vec<(usize, SocketAddr)>,
    filled: usize,
}

impl RecvBatch {
    /// Storage for up to `max_datagrams` datagrams of up to `cap` bytes
    /// (plus the truncation sentinel byte per slot).
    pub fn new(max_datagrams: usize, cap: usize) -> RecvBatch {
        let n = max_datagrams.clamp(1, MAX_BATCH);
        RecvBatch {
            cap,
            bufs: (0..n).map(|_| vec![0u8; cap + 1]).collect(),
            metas: Vec::with_capacity(n),
            filled: 0,
        }
    }

    /// Number of datagrams the last fill produced.
    pub fn len(&self) -> usize {
        self.filled
    }

    /// True when the last fill produced nothing.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// Slot capacity (datagrams) per syscall.
    pub fn max_datagrams(&self) -> usize {
        self.bufs.len()
    }

    /// Iterate the datagrams of the last fill.
    pub fn iter(&self) -> impl Iterator<Item = RecvdDatagram<'_>> {
        self.metas.iter().take(self.filled).enumerate().map(move |(i, &(len, src))| {
            let truncated = len > self.cap;
            RecvdDatagram {
                data: &self.bufs[i][..len.min(self.cap)],
                src,
                truncated,
            }
        })
    }

    fn reset(&mut self) {
        self.metas.clear();
        self.filled = 0;
    }
}

/// A nonblocking UDP socket with batched send/receive.
#[derive(Debug)]
pub struct BatchSocket {
    sock: UdpSocket,
    addr: SocketAddr,
    backend: BatchBackend,
}

impl BatchSocket {
    /// Bind a nonblocking socket using the given backend (downgraded to
    /// [`BatchBackend::Sequential`] where `mmsg` is unavailable).
    pub fn bind(addr: SocketAddr, backend: BatchBackend) -> io::Result<BatchSocket> {
        let sock = UdpSocket::bind(addr)?;
        sock.set_nonblocking(true)?;
        let addr = sock.local_addr()?;
        let backend = if cfg!(target_os = "linux") {
            backend
        } else {
            BatchBackend::Sequential
        };
        Ok(BatchSocket { sock, addr, backend })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The backend actually in use.
    pub fn backend(&self) -> BatchBackend {
        self.backend
    }

    /// Try to receive a batch of datagrams without blocking.
    ///
    /// Returns the number of datagrams now readable via
    /// [`RecvBatch::iter`]; `0` means the socket had nothing pending.
    pub fn try_recv_batch(&self, batch: &mut RecvBatch) -> io::Result<usize> {
        batch.reset();
        match self.backend {
            #[cfg(target_os = "linux")]
            BatchBackend::Mmsg => mmsg::recv_batch(&self.sock, batch),
            _ => self.recv_batch_sequential(batch),
        }
    }

    /// Try to send `msgs` without blocking. Returns how many datagrams the
    /// kernel accepted, in order from the front of the slice (`0` when the
    /// socket buffer is full). A non-`WouldBlock` failure on the *first*
    /// datagram surfaces as `Err`; callers treating the datapath as
    /// best-effort should drop that datagram, count it, and move on.
    pub fn try_send_batch(&self, msgs: &[SendDatagram]) -> io::Result<usize> {
        if msgs.is_empty() {
            return Ok(0);
        }
        let window = &msgs[..msgs.len().min(MAX_BATCH)];
        match self.backend {
            #[cfg(target_os = "linux")]
            BatchBackend::Mmsg => mmsg::send_batch(&self.sock, window),
            _ => self.send_batch_sequential(window),
        }
    }

    fn recv_batch_sequential(&self, batch: &mut RecvBatch) -> io::Result<usize> {
        for i in 0..batch.bufs.len() {
            match self.sock.recv_from(&mut batch.bufs[i]) {
                Ok((len, src)) => {
                    batch.metas.push((len, src));
                    batch.filled += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => {
                    if batch.filled == 0 {
                        return Err(e);
                    }
                    break;
                }
            }
        }
        Ok(batch.filled)
    }

    fn send_batch_sequential(&self, msgs: &[SendDatagram]) -> io::Result<usize> {
        let mut sent = 0;
        for m in msgs {
            match self.sock.send_to(&m.payload, m.to) {
                Ok(_) => sent += 1,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => {
                    if sent == 0 {
                        return Err(e);
                    }
                    break;
                }
            }
        }
        Ok(sent)
    }
}

/// Future resolving when any of `socks` yields a non-empty batch.
///
/// Polls each socket once per executor round starting at `start`
/// (round-robin fairness is the caller's job: pass a rotating index).
/// Resolves to `(socket_index, datagram_count)`.
pub struct RecvAny<'a> {
    socks: &'a [BatchSocket],
    batch: &'a mut RecvBatch,
    start: usize,
}

/// Wait for a batch on any of `socks`, filling `batch`.
pub fn recv_any<'a>(
    socks: &'a [BatchSocket],
    start: usize,
    batch: &'a mut RecvBatch,
) -> RecvAny<'a> {
    RecvAny { socks, batch, start }
}

impl std::future::Future for RecvAny<'_> {
    type Output = io::Result<(usize, usize)>;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        _cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        let me = self.get_mut();
        let n = me.socks.len();
        for off in 0..n {
            let i = (me.start + off) % n;
            match me.socks[i].try_recv_batch(me.batch) {
                Ok(0) => continue,
                Ok(count) => return std::task::Poll::Ready(Ok((i, count))),
                Err(e) => return std::task::Poll::Ready(Err(e)),
            }
        }
        std::task::Poll::Pending
    }
}

/// Direct `sendmmsg`/`recvmmsg` bindings.
///
/// The workspace builds fully offline with no `libc` crate, so the two
/// syscall wrappers libc would provide are declared here directly against
/// the C library `std` already links. Struct layouts are the stable Linux
/// userspace ABI (identical on x86_64 and aarch64): `msghdr` with
/// size_t-sized iov/control lengths, `mmsghdr` appending a `u32` count,
/// and `sockaddr_in`/`sockaddr_in6` with network-order port and address.
/// This is the only unsafe code in the crate; everything above it is safe
/// and backend-agnostic.
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod mmsg {
    use super::{RecvBatch, SendDatagram, MAX_BATCH};
    use std::io;
    use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, UdpSocket};
    use std::os::fd::AsRawFd;

    const AF_INET: u16 = 2;
    const AF_INET6: u16 = 10;
    const MSG_DONTWAIT: i32 = 0x40;
    const EAGAIN: i32 = 11;
    const EINTR: i32 = 4;

    #[repr(C)]
    struct IoVec {
        base: *mut u8,
        len: usize,
    }

    #[repr(C)]
    struct MsgHdr {
        name: *mut SockAddrStorage,
        namelen: u32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut core::ffi::c_void,
        controllen: usize,
        flags: i32,
    }

    #[repr(C)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: u32,
    }

    /// Big enough for `sockaddr_in6` (28 bytes), aligned like the kernel's
    /// 128-byte `sockaddr_storage`.
    #[repr(C, align(8))]
    #[derive(Clone, Copy)]
    struct SockAddrStorage {
        data: [u8; 128],
    }

    impl SockAddrStorage {
        const ZERO: SockAddrStorage = SockAddrStorage { data: [0; 128] };
    }

    extern "C" {
        fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
        fn recvmmsg(
            fd: i32,
            msgvec: *mut MMsgHdr,
            vlen: u32,
            flags: i32,
            timeout: *mut core::ffi::c_void,
        ) -> i32;
    }

    fn encode_addr(addr: SocketAddr, out: &mut SockAddrStorage) -> u32 {
        match addr {
            SocketAddr::V4(v4) => {
                out.data[0..2].copy_from_slice(&AF_INET.to_ne_bytes());
                out.data[2..4].copy_from_slice(&v4.port().to_be_bytes());
                out.data[4..8].copy_from_slice(&v4.ip().octets());
                16
            }
            SocketAddr::V6(v6) => {
                out.data[0..2].copy_from_slice(&AF_INET6.to_ne_bytes());
                out.data[2..4].copy_from_slice(&v6.port().to_be_bytes());
                out.data[4..8].copy_from_slice(&v6.flowinfo().to_ne_bytes());
                out.data[8..24].copy_from_slice(&v6.ip().octets());
                out.data[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
                28
            }
        }
    }

    fn decode_addr(s: &SockAddrStorage) -> Option<SocketAddr> {
        let family = u16::from_ne_bytes([s.data[0], s.data[1]]);
        let port = u16::from_be_bytes([s.data[2], s.data[3]]);
        match family {
            AF_INET => {
                let ip = Ipv4Addr::new(s.data[4], s.data[5], s.data[6], s.data[7]);
                Some(SocketAddr::new(IpAddr::V4(ip), port))
            }
            AF_INET6 => {
                let mut oct = [0u8; 16];
                oct.copy_from_slice(&s.data[8..24]);
                Some(SocketAddr::new(IpAddr::V6(Ipv6Addr::from(oct)), port))
            }
            _ => None,
        }
    }

    pub(super) fn send_batch(sock: &UdpSocket, msgs: &[SendDatagram]) -> io::Result<usize> {
        debug_assert!(!msgs.is_empty() && msgs.len() <= MAX_BATCH);
        let mut names = [SockAddrStorage::ZERO; MAX_BATCH];
        let mut iovs: [IoVec; MAX_BATCH] =
            std::array::from_fn(|_| IoVec { base: std::ptr::null_mut(), len: 0 });
        let mut hdrs: Vec<MMsgHdr> = Vec::with_capacity(msgs.len());
        for (i, m) in msgs.iter().enumerate() {
            let namelen = encode_addr(m.to, &mut names[i]);
            iovs[i] = IoVec {
                // sendmmsg never writes through the iov; the mut pointer is
                // an artifact of sharing `iovec` with the receive path.
                base: m.payload.as_ptr() as *mut u8,
                len: m.payload.len(),
            };
            hdrs.push(MMsgHdr {
                hdr: MsgHdr {
                    name: &mut names[i],
                    namelen,
                    iov: &mut iovs[i],
                    iovlen: 1,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            });
        }
        loop {
            // SAFETY: every pointer in `hdrs` refers to storage (`names`,
            // `iovs`, the payload buffers) that outlives this call, and
            // `vlen` matches the populated prefix.
            let rc = unsafe {
                sendmmsg(
                    sock.as_raw_fd(),
                    hdrs.as_mut_ptr(),
                    hdrs.len() as u32,
                    MSG_DONTWAIT,
                )
            };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            match err.raw_os_error() {
                Some(EINTR) => continue,
                Some(EAGAIN) => return Ok(0),
                _ => return Err(err),
            }
        }
    }

    pub(super) fn recv_batch(sock: &UdpSocket, batch: &mut RecvBatch) -> io::Result<usize> {
        let slots = batch.bufs.len();
        let mut names = [SockAddrStorage::ZERO; MAX_BATCH];
        let mut iovs: [IoVec; MAX_BATCH] =
            std::array::from_fn(|_| IoVec { base: std::ptr::null_mut(), len: 0 });
        let mut hdrs: Vec<MMsgHdr> = Vec::with_capacity(slots);
        for i in 0..slots {
            iovs[i] = IoVec {
                base: batch.bufs[i].as_mut_ptr(),
                len: batch.bufs[i].len(),
            };
            hdrs.push(MMsgHdr {
                hdr: MsgHdr {
                    name: &mut names[i],
                    namelen: std::mem::size_of::<SockAddrStorage>() as u32,
                    iov: &mut iovs[i],
                    iovlen: 1,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            });
        }
        let rc = loop {
            // SAFETY: as in `send_batch`; additionally each iov points at a
            // distinct owned buffer in `batch.bufs`, so the kernel writes
            // into exclusive storage.
            let rc = unsafe {
                recvmmsg(
                    sock.as_raw_fd(),
                    hdrs.as_mut_ptr(),
                    hdrs.len() as u32,
                    MSG_DONTWAIT,
                    std::ptr::null_mut(),
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            match err.raw_os_error() {
                Some(EINTR) => continue,
                Some(EAGAIN) => return Ok(0),
                _ => return Err(err),
            }
        };
        for hdr in hdrs.iter().take(rc) {
            let src = decode_addr(unsafe { &*hdr.hdr.name }).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "unparseable source address")
            })?;
            batch.metas.push((hdr.len as usize, src));
        }
        batch.filled = rc;
        Ok(rc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn local() -> SocketAddr {
        "127.0.0.1:0".parse().expect("loopback addr")
    }

    fn roundtrip(backend: BatchBackend) {
        let tx = BatchSocket::bind(local(), backend).expect("bind tx");
        let rx = BatchSocket::bind(local(), backend).expect("bind rx");
        let dest = rx.local_addr();
        let msgs: Vec<SendDatagram> = (0u8..20)
            .map(|i| SendDatagram {
                to: dest,
                payload: Bytes::from(vec![i; 1 + i as usize * 7]),
            })
            .collect();
        let mut sent = 0;
        while sent < msgs.len() {
            let n = tx.try_send_batch(&msgs[sent..]).expect("send");
            assert!(n > 0, "loopback send stalled");
            sent += n;
        }
        let mut batch = RecvBatch::new(MAX_BATCH, 2048);
        let mut got: Vec<Vec<u8>> = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while got.len() < msgs.len() && std::time::Instant::now() < deadline {
            let n = rx.try_recv_batch(&mut batch).expect("recv");
            if n == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
                continue;
            }
            for d in batch.iter() {
                assert!(!d.truncated);
                assert_eq!(d.src, tx.local_addr());
                got.push(d.data.to_vec());
            }
        }
        let mut want: Vec<Vec<u8>> = msgs.iter().map(|m| m.payload.to_vec()).collect();
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn roundtrip_sequential() {
        roundtrip(BatchBackend::Sequential);
    }

    #[test]
    fn roundtrip_auto() {
        roundtrip(BatchBackend::auto());
    }

    #[test]
    fn oversized_datagram_is_flagged_truncated() {
        for backend in [BatchBackend::auto(), BatchBackend::Sequential] {
            let tx = BatchSocket::bind(local(), backend).expect("bind tx");
            let rx = BatchSocket::bind(local(), backend).expect("bind rx");
            tx.try_send_batch(&[SendDatagram {
                to: rx.local_addr(),
                payload: Bytes::from(vec![7u8; 900]),
            }])
            .expect("send");
            let mut batch = RecvBatch::new(4, 256);
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
            loop {
                if rx.try_recv_batch(&mut batch).expect("recv") > 0 {
                    break;
                }
                assert!(std::time::Instant::now() < deadline, "datagram never arrived");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let d = batch.iter().next().expect("one datagram");
            assert!(d.truncated, "900B into a 256B cap must truncate ({backend:?})");
            assert_eq!(d.data.len(), 256);
        }
    }

    #[test]
    fn empty_send_is_a_noop() {
        let s = BatchSocket::bind(local(), BatchBackend::auto()).expect("bind");
        assert_eq!(s.try_send_batch(&[]).expect("send nothing"), 0);
    }
}
