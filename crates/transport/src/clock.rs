//! Wall-clock ↔ simulated-time mapping.

use livenet_types::{SimDuration, SimTime};
use tokio::time::Instant;

/// Maps tokio [`Instant`]s onto the [`SimTime`] axis the protocol cores
/// use, relative to a fixed epoch.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A clock whose `SimTime::ZERO` is "now".
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }

    /// Current time on the sim axis.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64)
    }

    /// Convert a sim-axis deadline to a tokio [`Instant`].
    pub fn instant_at(&self, t: SimTime) -> Instant {
        self.epoch + std::time::Duration::from_nanos(t.as_nanos())
    }

    /// Convert a sim duration into a std duration.
    pub fn duration(d: SimDuration) -> std::time::Duration {
        std::time::Duration::from_nanos(d.as_nanos())
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn clock_is_monotone_and_consistent() {
        let clock = WallClock::new();
        let a = clock.now();
        tokio::time::sleep(std::time::Duration::from_millis(10)).await;
        let b = clock.now();
        assert!(b > a);
        assert!(b.saturating_since(a) >= SimDuration::from_millis(9));
        // instant_at roundtrips within scheduling noise.
        let deadline = b + SimDuration::from_millis(5);
        let inst = clock.instant_at(deadline);
        tokio::time::sleep_until(inst).await;
        assert!(clock.now() >= deadline);
    }
}
