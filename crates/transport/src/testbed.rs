//! The loopback harness: a complete LiveNet overlay on 127.0.0.1.
//!
//! Spawns the brain + N [`UdpOverlayNode`]s wired along a configured edge
//! list, drives a `livenet-media` [`VideoEncoder`] at wall-clock pace
//! through a `livenet-cc` [`Pacer`] (the broadcaster's uplink), and
//! attaches real-socket viewers that decode RTP, reassemble frames, and
//! send RTCP receiver reports + keepalives back — the client-sourced half
//! of the datapath the emulator models with passive clients. Every node
//! records into one [`SharedTelemetry`] hub, so a run ends with a single
//! snapshot spanning the wire datapath and the node cores.
//!
//! Configurations are constructed through [`TestbedBuilder`] — the same
//! validated-builder discipline as `livenet-sim`'s `FleetConfigBuilder`.
//! Two presets ship: [`TestbedBuilder::diamond`] (the historical 4-node
//! acceptance topology) and [`TestbedBuilder::geo_fleet`], which grows the
//! overlay to a 50+ node geography: region-clustered edge nodes around a
//! full-mesh core of per-country hubs, edges and RTTs taken from a
//! `livenet-topology` [`GeoTopology`] rather than hand-wired, and viewer
//! arrival times drawn from `livenet-sim`'s Taobao-shaped workload and
//! compressed into the broadcast window.
//!
//! This is the integration-test and `exp_wire` substrate; it measures the
//! same quantities as the emulator's client model (startup delay, E2E
//! delay via the RTP delay field, delivery completeness) on real sockets.

use crate::batch::{self, BatchBackend, BatchSocket, RecvBatch, SendDatagram, MAX_BATCH};
use crate::brain::BrainHandle;
use crate::clock::WallClock;
use crate::node::{NodeCommand, NodeHandle, UdpOverlayNode, WireNodeConfig};
use crate::telemetry::SharedTelemetry;
use bytes::Bytes;
use livenet_brain::{BrainConfig, StreamingBrain};
use livenet_cc::{PacedPacket, Pacer, PacerConfig, RateDecisionStats, SendPriority};
use livenet_media::{EncodedFrame, FrameKind, GopConfig, VideoEncoder};
use livenet_node::{NodeConfig, NodeStats, OverlayMsg};
use livenet_packet::{Depacketizer, ReceiverReport, RtcpPacket, RtpPacket};
use livenet_sim::workload::{Workload, WorkloadConfig};
use livenet_telemetry::{ids, MetricSink, Snapshot};
use livenet_topology::{GeoConfig, GeoTopology, LinkMetrics, NodeInfo, Topology};
use livenet_types::{Bandwidth, ClientId, Error, NodeId, SimDuration, SimTime, StreamId};
use std::net::SocketAddr;
use std::time::Duration;

/// Most overlay nodes one loopback harness will spawn. Each node binds
/// 1..=16 sockets and runs its own event loop on the single-threaded
/// executor; past a few hundred the harness stops resembling a testbed.
pub const MAX_TESTBED_NODES: usize = 256;

/// Most concurrent viewers one harness run will drive.
pub const MAX_TESTBED_VIEWERS: usize = 1024;

/// Wired-degree threshold above which a node is considered a busy core
/// (hub/reflector) and gets `hub_shards` receive sockets instead of one.
const SHARD_DEGREE: usize = 6;

/// One real-socket viewer in the harness.
#[derive(Debug, Clone)]
pub struct WireViewer {
    /// Index (into the harness node list) of the consumer node.
    pub node: usize,
    /// Downlink estimate passed to `ClientAttach`.
    pub downlink: Option<Bandwidth>,
    /// When set, receiver reports sent after the given wall-clock offset
    /// claim this loss fraction — a synthetic congestion signal used to
    /// demonstrate client feedback driving the sender-side cc loop.
    pub lossy_rr: Option<(Duration, f64)>,
    /// Wall-clock delay from broadcast start to this viewer's attach.
    /// Zero means "attached before the first frame" (the harness settles
    /// the subscription during the settle window).
    pub join_after: Duration,
}

impl WireViewer {
    /// A well-behaved viewer at `node` (index range is validated by
    /// [`TestbedBuilder::build`], surfacing `Error::InvalidConfig` instead
    /// of the panic this constructor historically caused downstream).
    pub fn at(node: usize) -> Self {
        WireViewer {
            node,
            downlink: Some(Bandwidth::from_mbps(50)),
            lossy_rr: None,
            join_after: Duration::ZERO,
        }
    }

    /// Stagger this viewer's attach into the broadcast window.
    pub fn join_after(mut self, after: Duration) -> Self {
        self.join_after = after;
        self
    }

    /// Mark this viewer synthetically lossy from `after` onward.
    pub fn lossy_after(mut self, after: Duration, loss: f64) -> Self {
        self.lossy_rr = Some((after, loss));
        self
    }
}

/// Harness configuration: topology, media source, viewers, run length,
/// and the wire-datapath knobs (datagram cap, batch size, shard count)
/// folded into one validated surface.
///
/// Construct through [`TestbedBuilder`]; fields stay public so tests can
/// tweak a built preset, but [`run`] re-validates before spawning.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// The broadcast stream.
    pub stream: StreamId,
    /// Number of overlay nodes (ids are assigned 1..=nodes).
    pub nodes: usize,
    /// Duplex overlay edges as `(a, b, rtt)` node-index pairs.
    pub edges: Vec<(usize, usize, SimDuration)>,
    /// Country of each node (indexed like the node list); used for
    /// per-region reporting. Empty means "all country 0".
    pub countries: Vec<u32>,
    /// Index of the producer (broadcaster ingest) node.
    pub producer: usize,
    /// The viewers.
    pub viewers: Vec<WireViewer>,
    /// Video bitrate of the source.
    pub bitrate: Bandwidth,
    /// GoP shape of the source.
    pub gop: GopConfig,
    /// Wall-clock broadcast length.
    pub broadcast: Duration,
    /// Broadcaster uplink pacing rate (should exceed `bitrate`; I-frame
    /// bursts are smoothed at this rate).
    pub uplink: Bandwidth,
    /// Viewer receiver-report cadence.
    pub rr_interval: Duration,
    /// Extra wall-clock time viewers keep draining after the broadcast.
    pub drain: Duration,
    /// Settle time between wiring/attach and the first frame, letting
    /// reverse-path subscriptions establish.
    pub settle: Duration,
    /// Per-datagram payload cap on every node (`NodeConfig`'s knob,
    /// surfaced here so the whole overlay agrees).
    pub max_datagram_bytes: usize,
    /// Max datagrams per batch syscall on every node.
    pub batch: usize,
    /// Receive-socket shards for busy cores (wired degree >
    /// `SHARD_DEGREE`, or the producer). Leaf nodes always bind one.
    pub hub_shards: usize,
    /// Batched-I/O backend for every node socket.
    pub backend: BatchBackend,
}

impl TestbedConfig {
    /// Start building a minimal single-node config around `stream`.
    pub fn builder(stream: StreamId) -> TestbedBuilder {
        TestbedBuilder::new(stream)
    }

    /// The acceptance topology: a 4-node diamond 0→{1,2}→3 with the
    /// producer at 0 and two viewers at 3.
    #[deprecated(note = "use TestbedBuilder::diamond(stream).build() instead")]
    pub fn diamond(stream: StreamId) -> Self {
        TestbedBuilder::diamond(stream)
            .build()
            .expect("diamond preset is always valid")
    }

    /// Check the whole surface; every violation is `Error::InvalidConfig`.
    pub fn validate(&self) -> livenet_types::Result<()> {
        if self.nodes == 0 || self.nodes > MAX_TESTBED_NODES {
            return Err(Error::invalid_config(format!(
                "nodes must be in 1..={MAX_TESTBED_NODES}, got {}",
                self.nodes
            )));
        }
        if self.producer >= self.nodes {
            return Err(Error::invalid_config(format!(
                "producer index {} out of range for {} nodes",
                self.producer, self.nodes
            )));
        }
        for &(a, b, _) in &self.edges {
            if a >= self.nodes || b >= self.nodes {
                return Err(Error::invalid_config(format!(
                    "edge ({a}, {b}) out of range for {} nodes",
                    self.nodes
                )));
            }
            if a == b {
                return Err(Error::invalid_config(format!("self-edge at node {a}")));
            }
        }
        if !self.countries.is_empty() && self.countries.len() != self.nodes {
            return Err(Error::invalid_config(format!(
                "countries has {} entries for {} nodes",
                self.countries.len(),
                self.nodes
            )));
        }
        if self.viewers.is_empty() || self.viewers.len() > MAX_TESTBED_VIEWERS {
            return Err(Error::invalid_config(format!(
                "viewers must be in 1..={MAX_TESTBED_VIEWERS}, got {}",
                self.viewers.len()
            )));
        }
        for (i, v) in self.viewers.iter().enumerate() {
            if v.node >= self.nodes {
                return Err(Error::invalid_config(format!(
                    "viewer {i} at node {} out of range for {} nodes",
                    v.node, self.nodes
                )));
            }
            if v.join_after > self.broadcast {
                return Err(Error::invalid_config(format!(
                    "viewer {i} joins {}ms after a {}ms broadcast",
                    v.join_after.as_millis(),
                    self.broadcast.as_millis()
                )));
            }
        }
        if self.broadcast.is_zero() {
            return Err(Error::invalid_config("broadcast length must be > 0"));
        }
        if self.rr_interval.is_zero() {
            return Err(Error::invalid_config("rr_interval must be > 0"));
        }
        if self.uplink < self.bitrate {
            return Err(Error::invalid_config(format!(
                "uplink {} below source bitrate {} — the pacer would back up \
                 unboundedly",
                self.uplink, self.bitrate
            )));
        }
        // The per-node driver knobs share WireNodeConfig's rules; validate
        // at the busy-core shard count, the largest this config will bind.
        self.wire_node_config(NodeId::new(1), self.hub_shards).validate()
    }

    /// The per-node driver config this testbed spawns (`shards` chosen
    /// per node by wired degree).
    fn wire_node_config(&self, id: NodeId, shards: usize) -> WireNodeConfig {
        let mut node = NodeConfig::new(id);
        node.max_datagram_bytes = self.max_datagram_bytes;
        WireNodeConfig::new(node)
            .with_batch(self.batch)
            .with_recv_shards(shards)
            .with_backend(self.backend)
    }

    /// Country of node index `i` (0 when `countries` is unset).
    pub fn country_of(&self, i: usize) -> u32 {
        self.countries.get(i).copied().unwrap_or(0)
    }
}

/// Validated builder for [`TestbedConfig`] — the only non-deprecated way
/// to construct one. Mirrors `FleetConfigBuilder`: presets, chained
/// setters, and a [`TestbedBuilder::build`] that returns
/// `Error::InvalidConfig` instead of letting a bad config panic deep in
/// the harness.
#[derive(Debug, Clone)]
pub struct TestbedBuilder {
    cfg: TestbedConfig,
    /// Preset-construction failure, surfaced at `build()` (builders have
    /// no other error channel).
    err: Option<Error>,
}

impl TestbedBuilder {
    /// A minimal valid starting point: one node, producer 0, one viewer
    /// at the producer, diamond-era media defaults.
    pub fn new(stream: StreamId) -> TestbedBuilder {
        TestbedBuilder {
            cfg: TestbedConfig {
                stream,
                nodes: 1,
                edges: Vec::new(),
                countries: Vec::new(),
                producer: 0,
                viewers: vec![WireViewer::at(0)],
                bitrate: Bandwidth::from_mbps(1),
                gop: GopConfig::default(),
                broadcast: Duration::from_secs(3),
                uplink: Bandwidth::from_mbps(8),
                rr_interval: Duration::from_millis(400),
                drain: Duration::from_millis(900),
                settle: Duration::from_millis(150),
                max_datagram_bytes: 1400,
                batch: 32,
                hub_shards: 1,
                backend: BatchBackend::auto(),
            },
            err: None,
        }
    }

    /// The historical 4-node acceptance diamond 0→{1,2}→3.
    pub fn diamond(stream: StreamId) -> TestbedBuilder {
        let ms = SimDuration::from_millis;
        TestbedBuilder::new(stream)
            .nodes(4)
            .edge(0, 1, ms(8))
            .edge(0, 2, ms(12))
            .edge(1, 3, ms(8))
            .edge(2, 3, ms(12))
            .producer(0)
            .viewers(vec![WireViewer::at(3), WireViewer::at(3)])
    }

    /// A 50+ node geography built from `livenet-topology` data.
    ///
    /// The wired overlay is the region-clustered shape of the paper's
    /// deployment rather than the generator's full mesh: per-country hub
    /// nodes (every country's first, well-peered node) form a full-mesh
    /// backbone core, each remaining edge node wires to `fanout` hubs
    /// (its own country's first, then nearby ones), and last-resort
    /// relays wire to every hub. Edge RTTs are the generated
    /// [`GeoTopology`] link metrics, so intra-country spokes are short
    /// and the backbone carries the long-haul delay.
    ///
    /// `viewer_count` viewer arrivals are drawn from the `livenet-sim`
    /// workload (`workload_seed` selects the replay): each session's
    /// country picks an edge node in that country and its Poisson
    /// arrival time is compressed into the first half of the broadcast
    /// window, so attach load ramps the way the fleet sim's does.
    pub fn geo_fleet(
        stream: StreamId,
        geo: &GeoConfig,
        viewer_count: usize,
        fanout: usize,
        workload_seed: u64,
    ) -> TestbedBuilder {
        let mut b = TestbedBuilder::new(stream)
            .bitrate(Bandwidth::from_kbps(400))
            .uplink(Bandwidth::from_mbps(8))
            .broadcast(Duration::from_secs(6))
            .drain(Duration::from_millis(1500))
            .settle(Duration::from_millis(400))
            .rr_interval(Duration::from_millis(500))
            .hub_shards(4);
        if fanout == 0 || fanout > 8 {
            b.err = Some(Error::invalid_config(format!(
                "geo_fleet fanout must be in 1..=8, got {fanout}"
            )));
            return b;
        }
        if viewer_count == 0 || viewer_count > MAX_TESTBED_VIEWERS {
            b.err = Some(Error::invalid_config(format!(
                "geo_fleet viewer count must be in 1..={MAX_TESTBED_VIEWERS}, \
                 got {viewer_count}"
            )));
            return b;
        }
        let g = GeoTopology::generate(geo);
        let n = g.node_ids.len();
        if n > MAX_TESTBED_NODES {
            b.err = Some(Error::invalid_config(format!(
                "geo config generates {n} nodes, cap is {MAX_TESTBED_NODES}"
            )));
            return b;
        }
        let info: Vec<&NodeInfo> = g
            .node_ids
            .iter()
            .map(|&id| g.topology.node(id).expect("generated node"))
            .collect();
        let countries: Vec<u32> = info.iter().map(|i| i.country).collect();
        // One hub per country: the first (always well-peered) node.
        let mut hub_of_country: Vec<Option<usize>> = vec![None; geo.countries as usize];
        for (i, inf) in info.iter().enumerate() {
            if !inf.last_resort && hub_of_country[inf.country as usize].is_none() {
                hub_of_country[inf.country as usize] = Some(i);
            }
        }
        let hubs: Vec<usize> = hub_of_country.iter().filter_map(|&h| h).collect();
        let rtt_of = |a: usize, bx: usize| -> SimDuration {
            g.topology
                .link(g.node_ids[a], g.node_ids[bx])
                .expect("full-mesh generator links every pair")
                .rtt
        };
        let mut edges: Vec<(usize, usize, SimDuration)> = Vec::new();
        // Backbone: hub full mesh.
        for (hi, &a) in hubs.iter().enumerate() {
            for &bx in hubs.iter().skip(hi + 1) {
                edges.push((a, bx, rtt_of(a, bx)));
            }
        }
        // Spokes: every other node wires to `fanout` hubs, own country
        // first, then the closest foreign hubs (by generated RTT).
        for (i, inf) in info.iter().enumerate() {
            if hubs.contains(&i) {
                continue;
            }
            let mut targets: Vec<usize> = if inf.last_resort {
                hubs.clone()
            } else {
                let home = hub_of_country[inf.country as usize]
                    .expect("every country has a hub");
                let mut rest: Vec<usize> =
                    hubs.iter().copied().filter(|&h| h != home).collect();
                rest.sort_by(|&x, &y| {
                    rtt_of(i, x).cmp(&rtt_of(i, y))
                });
                let mut t = vec![home];
                t.extend(rest.into_iter().take(fanout - 1));
                t
            };
            targets.truncate(hubs.len());
            for h in targets {
                edges.push((i, h, rtt_of(i, h)));
            }
        }
        // Viewer arrivals: the fleet workload's Poisson/diurnal stream,
        // compressed into the first half of the broadcast so every viewer
        // still has a streaming phase to measure.
        let wl_cfg = WorkloadConfig {
            seed: workload_seed,
            ..WorkloadConfig::smoke(workload_seed)
        };
        let mut wl = Workload::new(wl_cfg, geo.countries);
        let mut sessions = Vec::with_capacity(viewer_count);
        while sessions.len() < viewer_count {
            match wl.next_session() {
                Some(s) => sessions.push(s),
                None => break,
            }
        }
        if sessions.len() < viewer_count {
            b.err = Some(Error::invalid_config(format!(
                "workload horizon produced only {} of {viewer_count} arrivals",
                sessions.len()
            )));
            return b;
        }
        let span = sessions
            .last()
            .map(|s| s.at.as_secs_f64())
            .filter(|&s| s > 0.0)
            .unwrap_or(1.0);
        let join_window = b.cfg.broadcast.as_secs_f64() * 0.5;
        // Per-country round-robin over that country's non-hub edge nodes
        // (hub fallback keeps single-node countries servable).
        let mut edge_nodes: Vec<Vec<usize>> = vec![Vec::new(); geo.countries as usize];
        for (i, inf) in info.iter().enumerate() {
            if !inf.last_resort && !hubs.contains(&i) {
                edge_nodes[inf.country as usize].push(i);
            }
        }
        let mut rr_cursor = vec![0usize; geo.countries as usize];
        let viewers: Vec<WireViewer> = sessions
            .iter()
            .map(|s| {
                let c = (s.viewer_country as usize) % edge_nodes.len();
                let pool = &edge_nodes[c];
                let node = if pool.is_empty() {
                    hub_of_country[c].expect("every country has a hub")
                } else {
                    let k = pool[rr_cursor[c] % pool.len()];
                    rr_cursor[c] += 1;
                    k
                };
                let after = s.at.as_secs_f64() / span * join_window;
                WireViewer::at(node).join_after(Duration::from_secs_f64(after))
            })
            .collect();
        let producer = hubs[0];
        b.nodes(n)
            .tweak(|c| {
                c.edges = edges;
                c.countries = countries;
            })
            .producer(producer)
            .viewers(viewers)
    }

    /// Set the node count.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.cfg.nodes = nodes;
        self
    }

    /// Add one duplex edge.
    pub fn edge(mut self, a: usize, b: usize, rtt: SimDuration) -> Self {
        self.cfg.edges.push((a, b, rtt));
        self
    }

    /// Set the producer node index.
    pub fn producer(mut self, producer: usize) -> Self {
        self.cfg.producer = producer;
        self
    }

    /// Replace the viewer list.
    pub fn viewers(mut self, viewers: Vec<WireViewer>) -> Self {
        self.cfg.viewers = viewers;
        self
    }

    /// Add one viewer.
    pub fn viewer(mut self, viewer: WireViewer) -> Self {
        self.cfg.viewers.push(viewer);
        self
    }

    /// Set the source bitrate.
    pub fn bitrate(mut self, bitrate: Bandwidth) -> Self {
        self.cfg.bitrate = bitrate;
        self
    }

    /// Set the broadcaster uplink pacing rate.
    pub fn uplink(mut self, uplink: Bandwidth) -> Self {
        self.cfg.uplink = uplink;
        self
    }

    /// Set the broadcast length.
    pub fn broadcast(mut self, broadcast: Duration) -> Self {
        self.cfg.broadcast = broadcast;
        self
    }

    /// Set the post-broadcast drain window.
    pub fn drain(mut self, drain: Duration) -> Self {
        self.cfg.drain = drain;
        self
    }

    /// Set the pre-broadcast settle window.
    pub fn settle(mut self, settle: Duration) -> Self {
        self.cfg.settle = settle;
        self
    }

    /// Set the viewer receiver-report cadence.
    pub fn rr_interval(mut self, rr: Duration) -> Self {
        self.cfg.rr_interval = rr;
        self
    }

    /// Set the per-datagram payload cap for every node.
    pub fn max_datagram_bytes(mut self, cap: usize) -> Self {
        self.cfg.max_datagram_bytes = cap;
        self
    }

    /// Set the batch-syscall size for every node.
    pub fn batch(mut self, batch: usize) -> Self {
        self.cfg.batch = batch;
        self
    }

    /// Set the receive-shard count for busy core nodes.
    pub fn hub_shards(mut self, shards: usize) -> Self {
        self.cfg.hub_shards = shards;
        self
    }

    /// Force an I/O backend for every node socket.
    pub fn backend(mut self, backend: BatchBackend) -> Self {
        self.cfg.backend = backend;
        self
    }

    /// Arbitrary adjustment — the escape hatch for fields without a
    /// dedicated setter (still validated by `build`).
    pub fn tweak(mut self, f: impl FnOnce(&mut TestbedConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// Validate and return the config.
    pub fn build(self) -> livenet_types::Result<TestbedConfig> {
        if let Some(e) = self.err {
            return Err(e);
        }
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// What one viewer saw.
#[derive(Debug, Clone)]
pub struct ViewerReport {
    /// The client id used on the wire.
    pub client: ClientId,
    /// The consumer node the viewer attached to.
    pub node: NodeId,
    /// When (harness clock) the viewer attached.
    pub attach_at: SimTime,
    /// RTP packets received (including retransmissions).
    pub packets: u64,
    /// Frames fully reassembled.
    pub frames_completed: u64,
    /// Frames the broadcaster ingested during this viewer's streaming
    /// phase (attach + measured startup → end of broadcast); filled by
    /// [`run`]. The denominator of [`ViewerReport::delivery`].
    pub expected_frames: u64,
    /// Attach → first RTP packet, ms.
    pub first_packet_ms: Option<f64>,
    /// Attach → first complete frame, ms (the startup delay).
    pub startup_ms: Option<f64>,
    /// Mean end-to-end delay over frames carrying the RTP delay field, ms.
    pub mean_e2e_ms: Option<f64>,
    /// Max end-to-end delay, ms.
    pub max_e2e_ms: Option<f64>,
    /// Receiver reports sent.
    pub rr_sent: u64,
    /// Keepalives sent.
    pub keepalives_sent: u64,
}

impl ViewerReport {
    /// Streaming-phase delivery: completed frames over the frames
    /// broadcast while this viewer was attached and past startup, capped
    /// at 1.0. A viewer the broadcaster owed nothing (startup completed
    /// after the last ingest) scores 1.0.
    pub fn delivery(&self) -> f64 {
        if self.expected_frames == 0 {
            return 1.0;
        }
        (self.frames_completed as f64 / self.expected_frames as f64).min(1.0)
    }
}

/// The outcome of one loopback run.
#[derive(Debug)]
pub struct WireRunReport {
    /// Frames the broadcaster ingested at the producer.
    pub frames_broadcast: u64,
    /// Per-viewer delivery and latency figures.
    pub viewers: Vec<ViewerReport>,
    /// Final pacing rate toward each client, from the consumer core.
    pub client_rates: Vec<(ClientId, Option<Bandwidth>)>,
    /// Per-node cumulative core stats.
    pub node_stats: Vec<(NodeId, NodeStats)>,
    /// Sender-side cc decision totals summed over every node core.
    pub cc: RateDecisionStats,
    /// Per-node cc decision totals (indexed like `node_stats`).
    pub node_cc: Vec<(NodeId, RateDecisionStats)>,
    /// Country of each node, indexed by node list position.
    pub countries: Vec<u32>,
    /// Snapshot of the shared hub (transport counters, spans, core stats).
    pub telemetry: Snapshot,
}

impl WireRunReport {
    /// Streaming-phase delivery of the worst-off viewer.
    pub fn worst_delivery(&self) -> f64 {
        self.viewers
            .iter()
            .map(ViewerReport::delivery)
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }

    /// Sum of cc rate decreases over the nodes of one country.
    pub fn cc_decreases_in_country(&self, country: u32) -> u64 {
        self.node_cc
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.countries.get(i).copied().unwrap_or(0) == country)
            .map(|(_, (_, s))| s.decreases)
            .sum()
    }

    /// Startup delays (ms) of every viewer that completed a frame, sorted.
    pub fn startup_ms_sorted(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.viewers.iter().filter_map(|r| r.startup_ms).collect();
        v.sort_by(f64::total_cmp);
        v
    }

    /// Per-viewer mean E2E delays (ms), sorted.
    pub fn e2e_ms_sorted(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.viewers.iter().filter_map(|r| r.mean_e2e_ms).collect();
        v.sort_by(f64::total_cmp);
        v
    }
}

/// Quantile of an already-sorted sample (nearest-rank); `None` when empty.
pub fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
    Some(sorted[idx])
}

fn local() -> SocketAddr {
    "127.0.0.1:0".parse().expect("loopback addr")
}

/// Everything one viewer task needs to join, watch, and report.
struct ViewerPlan {
    client: ClientId,
    node_idx: usize,
    node: NodeHandle,
    producer_idx: usize,
    stream: StreamId,
    downlink: Option<Bandwidth>,
    lossy_rr: Option<(Duration, f64)>,
    rr_interval: Duration,
    /// Wall-clock delay before attaching (zero = attach immediately; the
    /// harness then settles before media flows).
    attach_delay: Duration,
    deadline: tokio::time::Instant,
    brain: BrainHandle,
    consumer_id: NodeId,
    clock: WallClock,
    telemetry: SharedTelemetry,
}

/// Run one full loopback overlay session and report what happened.
///
/// Config problems (including out-of-range viewer node indices, which
/// formerly panicked) surface as `Error::InvalidConfig`. Harness-level
/// failures (bind errors, a node dying mid-run) still panic: the callers
/// are tests and bench bins, where aborting loudly is right.
pub async fn run(cfg: TestbedConfig) -> livenet_types::Result<WireRunReport> {
    cfg.validate()?;
    let clock = WallClock::new();
    let telemetry = SharedTelemetry::new();
    let ids_v: Vec<NodeId> = (0..cfg.nodes).map(|i| NodeId::new(i as u64 + 1)).collect();

    // Brain: the same Topology/StreamingBrain the emulator uses, fed
    // exactly the wired edges (not the generator's full mesh), so every
    // path it hands out is routable on the harness overlay.
    let mut topo = Topology::new();
    for (i, &id) in ids_v.iter().enumerate() {
        topo.upsert_node(NodeInfo {
            id,
            country: cfg.country_of(i),
            capacity: Bandwidth::from_gbps(10),
            utilization: 0.1,
            last_resort: false,
            well_peered: true,
        });
    }
    for &(a, b, rtt) in &cfg.edges {
        topo.upsert_duplex(ids_v[a], ids_v[b], LinkMetrics::healthy(rtt, Bandwidth::from_gbps(10)))
            .expect("edge endpoints were upserted above");
    }
    let brain = BrainHandle::new(StreamingBrain::new(topo, BrainConfig::default()));
    brain.register_stream(cfg.stream, ids_v[cfg.producer]);

    // Overlay nodes, all recording into one hub. Busy cores (hubs,
    // reflectors, the producer) shard their receive sockets.
    let mut degree = vec![0usize; cfg.nodes];
    for &(a, b, _) in &cfg.edges {
        degree[a] += 1;
        degree[b] += 1;
    }
    let mut handles: Vec<NodeHandle> = Vec::new();
    let mut joins = Vec::new();
    for (i, &id) in ids_v.iter().enumerate() {
        let shards = if degree[i] > SHARD_DEGREE || i == cfg.producer {
            cfg.hub_shards
        } else {
            1
        };
        let (h, _events, join) = UdpOverlayNode::spawn_wire(
            cfg.wire_node_config(id, shards),
            local(),
            clock,
            telemetry.clone(),
        )
        .await
        .expect("bind overlay node");
        handles.push(h);
        joins.push(join);
    }
    for &(a, b, rtt) in &cfg.edges {
        for (x, y) in [(a, b), (b, a)] {
            // Pair-wise shard pinning: x sends to (and hears from) the
            // shard of y that y assigned to x's id.
            handles[x]
                .send(NodeCommand::AddPeer {
                    node: handles[y].id,
                    addr: handles[y].addr_for_peer(handles[x].id),
                    rtt,
                })
                .await
                .expect("node alive during wiring");
        }
    }
    handles[cfg.producer]
        .send(NodeCommand::RegisterProducer {
            stream: cfg.stream,
            ladder: None,
        })
        .await
        .expect("producer alive");

    // Viewers: each runs its whole session (delayed attach included) as
    // one task, so arrivals stagger like the workload says while the
    // broadcaster keeps pacing.
    let run_deadline = tokio::time::Instant::now()
        + cfg.settle
        + cfg.broadcast
        + cfg.drain;
    let mut viewer_joins = Vec::new();
    let mut viewer_meta: Vec<(ClientId, usize)> = Vec::new();
    for (vi, spec) in cfg.viewers.iter().enumerate() {
        let client = ClientId::new(vi as u64 + 1);
        let plan = ViewerPlan {
            client,
            node_idx: spec.node,
            node: handles[spec.node].clone(),
            producer_idx: cfg.producer,
            stream: cfg.stream,
            downlink: spec.downlink,
            lossy_rr: spec.lossy_rr,
            rr_interval: cfg.rr_interval,
            attach_delay: if spec.join_after.is_zero() {
                Duration::ZERO
            } else {
                cfg.settle + spec.join_after
            },
            deadline: run_deadline,
            brain: brain.clone(),
            consumer_id: ids_v[spec.node],
            clock,
            telemetry: telemetry.clone(),
        };
        viewer_joins.push(tokio::spawn(viewer_session(plan)));
        viewer_meta.push((client, spec.node));
    }

    // Let the zero-join reverse-path subscriptions establish before media
    // flows.
    tokio::time::sleep(cfg.settle).await;

    // Broadcaster: encode at wall-clock pace, smooth the uplink through
    // the cc pacer, ingest whatever the pacer releases.
    let (frames_broadcast, ingest_times) =
        broadcast(&cfg, clock, &handles[cfg.producer]).await;

    // Harvest viewers (they stop at their deadline), then the nodes.
    let mut viewers = Vec::new();
    for join in viewer_joins {
        viewers.push(join.await.expect("viewer task"));
    }
    for h in &handles {
        h.send(NodeCommand::Shutdown).await.expect("node alive at shutdown");
    }
    let mut cores = Vec::new();
    for join in joins {
        cores.push(join.await.expect("node join"));
    }

    // Per-viewer expected frames: what the broadcaster ingested during
    // the viewer's streaming phase (attach + measured startup onward).
    // Startup is reported separately; delivery measures steady state,
    // mirroring the emulator's startup/streaming stage split.
    for v in &mut viewers {
        let from = match v.startup_ms {
            Some(ms) => v.attach_at + SimDuration::from_millis_f64(ms),
            None => v.attach_at,
        };
        v.expected_frames = ingest_times.iter().filter(|&&t| t >= from).count() as u64;
    }

    // Stage telemetry on the shared hub: the same ids the emulator's
    // client model records, now measured over real sockets.
    telemetry.with(|h| {
        for v in &viewers {
            if let Some(ms) = v.first_packet_ms {
                h.observe(ids::STAGE_FIRST_PACKET_MS, ms);
            }
            if let Some(ms) = v.startup_ms {
                h.observe(ids::STAGE_STARTUP_MS, ms);
            }
            if let Some(ms) = v.mean_e2e_ms {
                h.observe(ids::STAGE_STREAMING_MS, ms);
            }
        }
    });

    let client_rates = viewer_meta
        .iter()
        .map(|&(client, node_idx)| {
            let core = cores
                .iter()
                .find(|c| c.id() == ids_v[node_idx])
                .expect("core for viewer node");
            (client, core.client_pacing_rate(client))
        })
        .collect();
    let mut cc = RateDecisionStats::default();
    let mut node_cc = Vec::with_capacity(cores.len());
    for core in &cores {
        let t = core.cc_decision_totals();
        cc.increases += t.increases;
        cc.holds += t.holds;
        cc.decreases += t.decreases;
        node_cc.push((core.id(), t));
    }
    let node_stats = cores.iter().map(|c| (c.id(), c.stats)).collect();
    let countries = (0..cfg.nodes).map(|i| cfg.country_of(i)).collect();

    Ok(WireRunReport {
        frames_broadcast,
        viewers,
        client_rates,
        node_stats,
        cc,
        node_cc,
        countries,
        telemetry: telemetry.snapshot(),
    })
}

/// Drive the encoder through the pacer at wall-clock pace; returns the
/// number of frames ingested at the producer and each frame's ingest time
/// (the denominator data for per-viewer expected-frame accounting).
async fn broadcast(
    cfg: &TestbedConfig,
    clock: WallClock,
    producer: &NodeHandle,
) -> (u64, Vec<SimTime>) {
    let mut encoder = VideoEncoder::new(cfg.stream, cfg.gop, cfg.bitrate, clock.now());
    let mut pacer: Pacer<(EncodedFrame, Bytes)> = Pacer::new(PacerConfig::default(), cfg.uplink);
    let interval = Duration::from_nanos(cfg.gop.frame_interval().as_nanos());
    let total = (cfg.broadcast.as_nanos() / interval.as_nanos()).max(1) as u64;
    let mut ingest_times = Vec::with_capacity(total as usize);
    for _ in 0..total {
        let frame = encoder.next_frame();
        let payload = Bytes::from(vec![0u8; frame.size_bytes as usize]);
        pacer.enqueue(PacedPacket {
            priority: SendPriority::Video,
            bytes: frame.size_bytes as usize,
            is_iframe: frame.kind == FrameKind::I,
            payload: (frame, payload),
        });
        drain_pacer(&mut pacer, clock, producer, &mut ingest_times).await;
        tokio::time::sleep(interval).await;
    }
    // Flush the tail the token bucket is still holding.
    let flush_deadline = tokio::time::Instant::now() + Duration::from_millis(500);
    while pacer.is_backlogged() && tokio::time::Instant::now() < flush_deadline {
        drain_pacer(&mut pacer, clock, producer, &mut ingest_times).await;
        tokio::time::sleep(Duration::from_millis(5)).await;
    }
    (ingest_times.len() as u64, ingest_times)
}

async fn drain_pacer(
    pacer: &mut Pacer<(EncodedFrame, Bytes)>,
    clock: WallClock,
    producer: &NodeHandle,
    ingest_times: &mut Vec<SimTime>,
) {
    let released = pacer.poll(clock.now());
    for paced in released {
        let (frame, payload) = paced.payload;
        producer
            .send(NodeCommand::Ingest { frame, payload })
            .await
            .expect("producer alive during broadcast");
        ingest_times.push(clock.now());
    }
}

/// One viewer's whole session: wait out the staggered join, bind, fetch a
/// brain path, attach, then read RTP off the socket in batches, reassemble
/// frames, and feed RTCP receiver reports and keepalives back to the
/// consumer. RX goes through the same [`BatchSocket`] path the node driver
/// uses, so a burst of paced RTP costs one syscall, not one per datagram,
/// and the fill shows up in the run's telemetry snapshot.
async fn viewer_session(plan: ViewerPlan) -> ViewerReport {
    if !plan.attach_delay.is_zero() {
        tokio::time::sleep(plan.attach_delay).await;
    }
    let socks =
        [BatchSocket::bind(local(), BatchBackend::auto()).expect("bind viewer socket")];
    let addr = socks[0].local_addr();
    let path = if plan.node_idx == plan.producer_idx {
        None
    } else {
        let assign = plan
            .brain
            .path_request(plan.stream, plan.consumer_id, plan.clock.now())
            .expect("brain finds a path in the configured topology");
        Some(assign.paths[0].nodes.clone())
    };
    let attach_at = plan.clock.now();
    plan.node
        .send(NodeCommand::ClientAttach {
            client: plan.client,
            stream: plan.stream,
            downlink: plan.downlink,
            path,
            addr,
        })
        .await
        .expect("consumer alive");
    // The consumer talks to this client on its pinned shard.
    let node_addr = plan.node.addr_for_client(plan.client);

    let started = tokio::time::Instant::now();
    let mut depack = Depacketizer::new();
    // Datagrams from the consumer are MTU-bounded RTP (plus small RTCP);
    // 2 KiB slots leave generous headroom and the one-byte truncation
    // sentinel still catches anything oversized.
    let mut batch = RecvBatch::new(MAX_BATCH, 2048);
    let mut report = ViewerReport {
        client: plan.client,
        node: plan.node.id,
        attach_at,
        packets: 0,
        frames_completed: 0,
        expected_frames: 0,
        first_packet_ms: None,
        startup_ms: None,
        mean_e2e_ms: None,
        max_e2e_ms: None,
        rr_sent: 0,
        keepalives_sent: 0,
    };
    let mut e2e_ms: Vec<f64> = Vec::new();
    // Loss accounting for honest receiver reports (loopback: ~0).
    let mut last_rtp: Option<RtpPacket> = None;
    let mut window_received = 0u64;
    let mut window_first_seq: Option<u16> = None;
    let mut last_rr = tokio::time::Instant::now();
    let mut last_keepalive = tokio::time::Instant::now();

    loop {
        let now_i = tokio::time::Instant::now();
        if now_i >= plan.deadline {
            break;
        }
        // [`batch::recv_any`] is poll-driven (it registers no waker), so
        // under `timeout` the socket is probed when the slice expires: a
        // short slice bounds the added receive latency while a paced burst
        // still drains in one batched syscall.
        let slice = Duration::from_millis(5).min(plan.deadline - now_i);
        if let Ok(Ok((_idx, _count))) =
            tokio::time::timeout(slice, batch::recv_any(&socks, 0, &mut batch)).await
        {
            plan.telemetry.with(|h| {
                h.incr(ids::TRANSPORT_BATCH_RX_SYSCALLS);
                h.observe(ids::TRANSPORT_BATCH_RX_FILL, batch.len() as f64);
            });
            for d in batch.iter() {
                if d.truncated {
                    continue;
                }
                let Ok(msg) = OverlayMsg::decode(Bytes::copy_from_slice(d.data)) else {
                    continue;
                };
                let OverlayMsg::Rtp { packet, .. } = msg else {
                    continue;
                };
                let Ok(rtp) = RtpPacket::decode(packet) else {
                    continue;
                };
                report.packets += 1;
                if report.first_packet_ms.is_none() {
                    report.first_packet_ms =
                        Some(plan.clock.now().saturating_since(attach_at).as_millis_f64());
                }
                window_received += 1;
                window_first_seq.get_or_insert(rtp.header.seq.0);
                last_rtp = Some(rtp.clone());
                depack.push(rtp);
                for frame in depack.drain() {
                    report.frames_completed += 1;
                    if report.startup_ms.is_none() {
                        report.startup_ms =
                            Some(plan.clock.now().saturating_since(attach_at).as_millis_f64());
                    }
                    if let Some(d) = frame.delay_field {
                        e2e_ms.push(d.as_millis_f64());
                    }
                }
                depack.gc(8);
            }
        }

        // Feedback: honest (or synthetically lossy) RRs at the configured
        // cadence, keepalives in between.
        if last_rr.elapsed() >= plan.rr_interval {
            if let Some(rtp) = &last_rtp {
                let measured = match window_first_seq {
                    Some(first) => {
                        let expected =
                            u64::from(rtp.header.seq.0.wrapping_sub(first)) + 1;
                        1.0 - (window_received as f64 / expected as f64).min(1.0)
                    }
                    None => 0.0,
                };
                let loss_fraction = match plan.lossy_rr {
                    Some((after, loss)) if started.elapsed() >= after => loss,
                    _ => measured,
                };
                let rr = RtcpPacket::ReceiverReport(ReceiverReport {
                    ssrc: rtp.header.ssrc,
                    loss_fraction,
                    highest_seq: rtp.header.seq,
                    jitter_us: 0,
                });
                let msg = OverlayMsg::Rtcp {
                    stream: plan.stream,
                    packet: rr.encode(),
                };
                let _ = socks[0].try_send_batch(&[SendDatagram {
                    to: node_addr,
                    payload: msg.encode(),
                }]);
                report.rr_sent += 1;
                last_rr = tokio::time::Instant::now();
                window_received = 0;
                window_first_seq = None;
            }
        } else if last_keepalive.elapsed() >= plan.rr_interval / 2 {
            let _ = socks[0].try_send_batch(&[SendDatagram {
                to: node_addr,
                payload: OverlayMsg::Keepalive.encode(),
            }]);
            report.keepalives_sent += 1;
            last_keepalive = tokio::time::Instant::now();
        }
    }

    if !e2e_ms.is_empty() {
        report.mean_e2e_ms = Some(e2e_ms.iter().sum::<f64>() / e2e_ms.len() as f64);
        report.max_e2e_ms = e2e_ms.iter().copied().reduce(f64::max);
    }
    report
}
