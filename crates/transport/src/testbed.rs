//! The loopback harness: a complete LiveNet overlay on 127.0.0.1.
//!
//! Spawns the brain + N [`UdpOverlayNode`]s wired along a configured edge
//! list, drives a `livenet-media` [`VideoEncoder`] at wall-clock pace
//! through a `livenet-cc` [`Pacer`] (the broadcaster's uplink), and
//! attaches real-socket viewers that decode RTP, reassemble frames, and
//! send RTCP receiver reports + keepalives back — the client-sourced half
//! of the datapath the emulator models with passive clients. Every node
//! records into one [`SharedTelemetry`] hub, so a run ends with a single
//! snapshot spanning the wire datapath and the node cores.
//!
//! This is the integration-test and `exp_wire` substrate; it measures the
//! same quantities as the emulator's client model (startup delay, E2E
//! delay via the RTP delay field, delivery completeness) on real sockets.

use crate::brain::BrainHandle;
use crate::clock::WallClock;
use crate::node::{NodeCommand, NodeHandle, UdpOverlayNode};
use crate::telemetry::SharedTelemetry;
use bytes::Bytes;
use livenet_brain::{BrainConfig, StreamingBrain};
use livenet_cc::{PacedPacket, Pacer, PacerConfig, RateDecisionStats, SendPriority};
use livenet_media::{EncodedFrame, FrameKind, GopConfig, VideoEncoder};
use livenet_node::{NodeConfig, NodeStats, OverlayMsg};
use livenet_packet::{Depacketizer, ReceiverReport, RtcpPacket, RtpPacket};
use livenet_telemetry::{ids, MetricSink, Snapshot};
use livenet_topology::{LinkMetrics, NodeInfo, Topology};
use livenet_types::{Bandwidth, ClientId, NodeId, SimDuration, StreamId};
use std::net::SocketAddr;
use std::time::Duration;
use tokio::net::UdpSocket;

/// One real-socket viewer in the harness.
#[derive(Debug, Clone)]
pub struct WireViewer {
    /// Index (into the harness node list) of the consumer node.
    pub node: usize,
    /// Downlink estimate passed to `ClientAttach`.
    pub downlink: Option<Bandwidth>,
    /// When set, receiver reports sent after the given wall-clock offset
    /// claim this loss fraction — a synthetic congestion signal used to
    /// demonstrate client feedback driving the sender-side cc loop.
    pub lossy_rr: Option<(Duration, f64)>,
}

impl WireViewer {
    /// A well-behaved viewer at `node`.
    pub fn at(node: usize) -> Self {
        WireViewer {
            node,
            downlink: Some(Bandwidth::from_mbps(50)),
            lossy_rr: None,
        }
    }
}

/// Harness configuration: topology, media source, viewers, run length.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// The broadcast stream.
    pub stream: StreamId,
    /// Number of overlay nodes (ids are assigned 1..=nodes).
    pub nodes: usize,
    /// Duplex overlay edges as `(a, b, rtt)` node-index pairs.
    pub edges: Vec<(usize, usize, SimDuration)>,
    /// Index of the producer (broadcaster ingest) node.
    pub producer: usize,
    /// The viewers.
    pub viewers: Vec<WireViewer>,
    /// Video bitrate of the source.
    pub bitrate: Bandwidth,
    /// GoP shape of the source.
    pub gop: GopConfig,
    /// Wall-clock broadcast length.
    pub broadcast: Duration,
    /// Broadcaster uplink pacing rate (should exceed `bitrate`; I-frame
    /// bursts are smoothed at this rate).
    pub uplink: Bandwidth,
    /// Viewer receiver-report cadence.
    pub rr_interval: Duration,
    /// Extra wall-clock time viewers keep draining after the broadcast.
    pub drain: Duration,
}

impl TestbedConfig {
    /// The acceptance topology: a 4-node diamond 0→{1,2}→3 with the
    /// producer at 0 and two viewers at 3.
    pub fn diamond(stream: StreamId) -> Self {
        let ms = SimDuration::from_millis;
        TestbedConfig {
            stream,
            nodes: 4,
            edges: vec![
                (0, 1, ms(8)),
                (0, 2, ms(12)),
                (1, 3, ms(8)),
                (2, 3, ms(12)),
            ],
            producer: 0,
            viewers: vec![WireViewer::at(3), WireViewer::at(3)],
            bitrate: Bandwidth::from_mbps(1),
            gop: GopConfig::default(),
            broadcast: Duration::from_secs(3),
            uplink: Bandwidth::from_mbps(8),
            rr_interval: Duration::from_millis(400),
            drain: Duration::from_millis(900),
        }
    }
}

/// What one viewer saw.
#[derive(Debug, Clone)]
pub struct ViewerReport {
    /// The client id used on the wire.
    pub client: ClientId,
    /// The consumer node the viewer attached to.
    pub node: NodeId,
    /// RTP packets received (including retransmissions).
    pub packets: u64,
    /// Frames fully reassembled.
    pub frames_completed: u64,
    /// Attach → first RTP packet, ms.
    pub first_packet_ms: Option<f64>,
    /// Attach → first complete frame, ms (the startup delay).
    pub startup_ms: Option<f64>,
    /// Mean end-to-end delay over frames carrying the RTP delay field, ms.
    pub mean_e2e_ms: Option<f64>,
    /// Max end-to-end delay, ms.
    pub max_e2e_ms: Option<f64>,
    /// Receiver reports sent.
    pub rr_sent: u64,
    /// Keepalives sent.
    pub keepalives_sent: u64,
}

/// The outcome of one loopback run.
#[derive(Debug)]
pub struct WireRunReport {
    /// Frames the broadcaster ingested at the producer.
    pub frames_broadcast: u64,
    /// Per-viewer delivery and latency figures.
    pub viewers: Vec<ViewerReport>,
    /// Final pacing rate toward each client, from the consumer core.
    pub client_rates: Vec<(ClientId, Option<Bandwidth>)>,
    /// Per-node cumulative core stats.
    pub node_stats: Vec<(NodeId, NodeStats)>,
    /// Sender-side cc decision totals summed over every node core.
    pub cc: RateDecisionStats,
    /// Snapshot of the shared hub (transport counters, spans, core stats).
    pub telemetry: Snapshot,
}

impl WireRunReport {
    /// Fraction of broadcast frames the worst-off viewer completed.
    pub fn worst_delivery(&self) -> f64 {
        if self.frames_broadcast == 0 {
            return 0.0;
        }
        self.viewers
            .iter()
            .map(|v| v.frames_completed as f64 / self.frames_broadcast as f64)
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }
}

fn local() -> SocketAddr {
    "127.0.0.1:0".parse().expect("loopback addr")
}

/// Run one full loopback overlay session and report what happened.
///
/// Panics on harness-level failures (bind errors, a node dying mid-run):
/// the callers are tests and bench bins, where aborting loudly is right.
pub async fn run(cfg: TestbedConfig) -> WireRunReport {
    assert!(cfg.producer < cfg.nodes, "producer index in range");
    let clock = WallClock::new();
    let telemetry = SharedTelemetry::new();
    let ids_v: Vec<NodeId> = (0..cfg.nodes).map(|i| NodeId::new(i as u64 + 1)).collect();

    // Brain: the same Topology/StreamingBrain the emulator uses, fed the
    // harness edge list.
    let mut topo = Topology::new();
    for &id in &ids_v {
        topo.upsert_node(NodeInfo {
            id,
            country: 0,
            capacity: Bandwidth::from_gbps(10),
            utilization: 0.1,
            last_resort: false,
            well_peered: true,
        });
    }
    for &(a, b, rtt) in &cfg.edges {
        topo.upsert_duplex(ids_v[a], ids_v[b], LinkMetrics::healthy(rtt, Bandwidth::from_gbps(10)))
            .expect("edge endpoints were upserted above");
    }
    let brain = BrainHandle::new(StreamingBrain::new(topo, BrainConfig::default()));
    brain.register_stream(cfg.stream, ids_v[cfg.producer]);

    // Overlay nodes, all recording into one hub.
    let mut handles: Vec<NodeHandle> = Vec::new();
    let mut joins = Vec::new();
    for &id in &ids_v {
        let (h, _events, join) = UdpOverlayNode::spawn_with_telemetry(
            NodeConfig::new(id),
            local(),
            clock,
            telemetry.clone(),
        )
        .await
        .expect("bind overlay node");
        handles.push(h);
        joins.push(join);
    }
    for &(a, b, rtt) in &cfg.edges {
        for (x, y) in [(a, b), (b, a)] {
            handles[x]
                .send(NodeCommand::AddPeer {
                    node: handles[y].id,
                    addr: handles[y].addr,
                    rtt,
                })
                .await
                .expect("node alive during wiring");
        }
    }
    handles[cfg.producer]
        .send(NodeCommand::RegisterProducer {
            stream: cfg.stream,
            ladder: None,
        })
        .await
        .expect("producer alive");

    // Viewers: attach (with a brain-computed path when remote) and spawn
    // the socket-reading task.
    let mut viewer_joins = Vec::new();
    let mut viewer_meta: Vec<(ClientId, usize)> = Vec::new();
    for (vi, spec) in cfg.viewers.iter().enumerate() {
        assert!(spec.node < cfg.nodes, "viewer node index in range");
        let client = ClientId::new(vi as u64 + 1);
        let sock = UdpSocket::bind(local()).await.expect("bind viewer socket");
        let addr = sock.local_addr().expect("viewer addr");
        let path = if spec.node == cfg.producer {
            None
        } else {
            let assign = brain
                .path_request(cfg.stream, ids_v[spec.node], clock.now())
                .expect("brain finds a path in the configured topology");
            Some(assign.paths[0].nodes.clone())
        };
        handles[spec.node]
            .send(NodeCommand::ClientAttach {
                client,
                stream: cfg.stream,
                downlink: spec.downlink,
                path,
                addr,
            })
            .await
            .expect("consumer alive");
        let node_addr = handles[spec.node].addr;
        let node_id = handles[spec.node].id;
        let deadline = tokio::time::Instant::now() + cfg.broadcast + cfg.drain;
        let task = viewer_task(
            sock,
            node_addr,
            node_id,
            client,
            cfg.stream,
            clock,
            deadline,
            cfg.rr_interval,
            spec.lossy_rr,
        );
        viewer_joins.push(tokio::spawn(task));
        viewer_meta.push((client, spec.node));
    }

    // Let the reverse-path subscriptions establish before media flows.
    tokio::time::sleep(Duration::from_millis(150)).await;

    // Broadcaster: encode at wall-clock pace, smooth the uplink through
    // the cc pacer, ingest whatever the pacer releases.
    let frames_broadcast = broadcast(&cfg, clock, &handles[cfg.producer]).await;

    // Harvest viewers (they stop at their deadline), then the nodes.
    let mut viewers = Vec::new();
    for join in viewer_joins {
        viewers.push(join.await.expect("viewer task"));
    }
    for h in &handles {
        h.send(NodeCommand::Shutdown).await.expect("node alive at shutdown");
    }
    let mut cores = Vec::new();
    for join in joins {
        cores.push(join.await.expect("node join"));
    }

    // Stage telemetry on the shared hub: the same ids the emulator's
    // client model records, now measured over real sockets.
    telemetry.with(|h| {
        for v in &viewers {
            if let Some(ms) = v.first_packet_ms {
                h.observe(ids::STAGE_FIRST_PACKET_MS, ms);
            }
            if let Some(ms) = v.startup_ms {
                h.observe(ids::STAGE_STARTUP_MS, ms);
            }
            if let Some(ms) = v.mean_e2e_ms {
                h.observe(ids::STAGE_STREAMING_MS, ms);
            }
        }
    });

    let client_rates = viewer_meta
        .iter()
        .map(|&(client, node_idx)| {
            let core = cores
                .iter()
                .find(|c| c.id() == ids_v[node_idx])
                .expect("core for viewer node");
            (client, core.client_pacing_rate(client))
        })
        .collect();
    let mut cc = RateDecisionStats::default();
    for core in &cores {
        let t = core.cc_decision_totals();
        cc.increases += t.increases;
        cc.holds += t.holds;
        cc.decreases += t.decreases;
    }
    let node_stats = cores.iter().map(|c| (c.id(), c.stats)).collect();

    WireRunReport {
        frames_broadcast,
        viewers,
        client_rates,
        node_stats,
        cc,
        telemetry: telemetry.snapshot(),
    }
}

/// Drive the encoder through the pacer at wall-clock pace; returns the
/// number of frames ingested at the producer.
async fn broadcast(cfg: &TestbedConfig, clock: WallClock, producer: &NodeHandle) -> u64 {
    let mut encoder = VideoEncoder::new(cfg.stream, cfg.gop, cfg.bitrate, clock.now());
    let mut pacer: Pacer<(EncodedFrame, Bytes)> = Pacer::new(PacerConfig::default(), cfg.uplink);
    let interval = Duration::from_nanos(cfg.gop.frame_interval().as_nanos());
    let total = (cfg.broadcast.as_nanos() / interval.as_nanos()).max(1) as u64;
    let mut ingested = 0u64;
    for _ in 0..total {
        let frame = encoder.next_frame();
        let payload = Bytes::from(vec![0u8; frame.size_bytes as usize]);
        pacer.enqueue(PacedPacket {
            priority: SendPriority::Video,
            bytes: frame.size_bytes as usize,
            is_iframe: frame.kind == FrameKind::I,
            payload: (frame, payload),
        });
        ingested += drain_pacer(&mut pacer, clock, producer).await;
        tokio::time::sleep(interval).await;
    }
    // Flush the tail the token bucket is still holding.
    let flush_deadline = tokio::time::Instant::now() + Duration::from_millis(500);
    while pacer.is_backlogged() && tokio::time::Instant::now() < flush_deadline {
        ingested += drain_pacer(&mut pacer, clock, producer).await;
        tokio::time::sleep(Duration::from_millis(5)).await;
    }
    ingested
}

async fn drain_pacer(
    pacer: &mut Pacer<(EncodedFrame, Bytes)>,
    clock: WallClock,
    producer: &NodeHandle,
) -> u64 {
    let released = pacer.poll(clock.now());
    let mut n = 0u64;
    for paced in released {
        let (frame, payload) = paced.payload;
        producer
            .send(NodeCommand::Ingest { frame, payload })
            .await
            .expect("producer alive during broadcast");
        n += 1;
    }
    n
}

/// One viewer: read RTP off the socket, reassemble frames, feed RTCP
/// receiver reports and keepalives back to the consumer node.
#[allow(clippy::too_many_arguments)]
async fn viewer_task(
    sock: UdpSocket,
    node_addr: SocketAddr,
    node_id: NodeId,
    client: ClientId,
    stream: StreamId,
    clock: WallClock,
    deadline: tokio::time::Instant,
    rr_interval: Duration,
    lossy_rr: Option<(Duration, f64)>,
) -> ViewerReport {
    let attach_at = clock.now();
    let started = tokio::time::Instant::now();
    let mut depack = Depacketizer::new();
    let mut buf = vec![0u8; 64 * 1024];
    let mut report = ViewerReport {
        client,
        node: node_id,
        packets: 0,
        frames_completed: 0,
        first_packet_ms: None,
        startup_ms: None,
        mean_e2e_ms: None,
        max_e2e_ms: None,
        rr_sent: 0,
        keepalives_sent: 0,
    };
    let mut e2e_ms: Vec<f64> = Vec::new();
    // Loss accounting for honest receiver reports (loopback: ~0).
    let mut last_rtp: Option<RtpPacket> = None;
    let mut window_received = 0u64;
    let mut window_first_seq: Option<u16> = None;
    let mut last_rr = tokio::time::Instant::now();
    let mut last_keepalive = tokio::time::Instant::now();

    loop {
        let now_i = tokio::time::Instant::now();
        if now_i >= deadline {
            break;
        }
        let slice = Duration::from_millis(50).min(deadline - now_i);
        if let Ok(Ok((len, _src))) = tokio::time::timeout(slice, sock.recv_from(&mut buf)).await {
            let Ok(msg) = OverlayMsg::decode(Bytes::copy_from_slice(&buf[..len])) else {
                continue;
            };
            if let OverlayMsg::Rtp { packet, .. } = msg {
                let Ok(rtp) = RtpPacket::decode(packet) else {
                    continue;
                };
                report.packets += 1;
                if report.first_packet_ms.is_none() {
                    report.first_packet_ms =
                        Some(clock.now().saturating_since(attach_at).as_millis_f64());
                }
                window_received += 1;
                window_first_seq.get_or_insert(rtp.header.seq.0);
                last_rtp = Some(rtp.clone());
                depack.push(rtp);
                for frame in depack.drain() {
                    report.frames_completed += 1;
                    if report.startup_ms.is_none() {
                        report.startup_ms =
                            Some(clock.now().saturating_since(attach_at).as_millis_f64());
                    }
                    if let Some(d) = frame.delay_field {
                        e2e_ms.push(d.as_millis_f64());
                    }
                }
                depack.gc(8);
            }
        }

        // Feedback: honest (or synthetically lossy) RRs at the configured
        // cadence, keepalives in between.
        if last_rr.elapsed() >= rr_interval {
            if let Some(rtp) = &last_rtp {
                let measured = match window_first_seq {
                    Some(first) => {
                        let expected =
                            u64::from(rtp.header.seq.0.wrapping_sub(first)) + 1;
                        1.0 - (window_received as f64 / expected as f64).min(1.0)
                    }
                    None => 0.0,
                };
                let loss_fraction = match lossy_rr {
                    Some((after, loss)) if started.elapsed() >= after => loss,
                    _ => measured,
                };
                let rr = RtcpPacket::ReceiverReport(ReceiverReport {
                    ssrc: rtp.header.ssrc,
                    loss_fraction,
                    highest_seq: rtp.header.seq,
                    jitter_us: 0,
                });
                let msg = OverlayMsg::Rtcp {
                    stream,
                    packet: rr.encode(),
                };
                let _ = sock.send_to(&msg.encode(), node_addr).await;
                report.rr_sent += 1;
                last_rr = tokio::time::Instant::now();
                window_received = 0;
                window_first_seq = None;
            }
        } else if last_keepalive.elapsed() >= rr_interval / 2 {
            let _ = sock.send_to(&OverlayMsg::Keepalive.encode(), node_addr).await;
            report.keepalives_sent += 1;
            last_keepalive = tokio::time::Instant::now();
        }
    }

    if !e2e_ms.is_empty() {
        report.mean_e2e_ms = Some(e2e_ms.iter().sum::<f64>() / e2e_ms.len() as f64);
        report.max_e2e_ms = e2e_ms.iter().copied().reduce(f64::max);
    }
    report
}
