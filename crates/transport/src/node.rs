//! A UDP overlay node: the sans-I/O core + a tokio event loop.

use crate::clock::WallClock;
use bytes::Bytes;
use livenet_media::{EncodedFrame, SimulcastLadder};
use livenet_node::{NodeAction, NodeConfig, NodeEvent, OverlayNode, Subscriber};
use livenet_types::{Bandwidth, ClientId, NodeId, SimDuration, SimTime, StreamId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::net::SocketAddr;
use tokio::net::UdpSocket;
use tokio::sync::mpsc;

/// Commands accepted by a running node.
#[derive(Debug)]
pub enum NodeCommand {
    /// Declare this node the producer of a stream.
    RegisterProducer {
        /// The stream.
        stream: StreamId,
        /// Optional simulcast ladder for consumer-side selection.
        ladder: Option<SimulcastLadder>,
    },
    /// Ingest one encoded frame from a local broadcaster.
    Ingest {
        /// Frame metadata.
        frame: EncodedFrame,
        /// Encoded payload.
        payload: Bytes,
    },
    /// Register a peer overlay node's address.
    AddPeer {
        /// Peer id.
        node: NodeId,
        /// Peer socket address.
        addr: SocketAddr,
        /// RTT hint for the delay field.
        rtt: SimDuration,
    },
    /// Attach a viewer client (delivery over UDP to `addr`).
    ClientAttach {
        /// Client id.
        client: ClientId,
        /// Requested stream.
        stream: StreamId,
        /// Estimated downlink.
        downlink: Option<Bandwidth>,
        /// Producer-first path for reverse subscription (None = local hit
        /// expected).
        path: Option<Vec<NodeId>>,
        /// Where to send the client's packets.
        addr: SocketAddr,
    },
    /// Detach a viewer.
    ClientDetach {
        /// Client id.
        client: ClientId,
    },
    /// Stop the event loop.
    Shutdown,
}

/// Handle to a spawned node.
#[derive(Debug, Clone)]
pub struct NodeHandle {
    tx: mpsc::Sender<NodeCommand>,
    /// The node's bound socket address.
    pub addr: SocketAddr,
    /// The node's overlay id.
    pub id: NodeId,
}

impl NodeHandle {
    /// Send a command; panics if the node has shut down (test-friendly).
    pub async fn send(&self, cmd: NodeCommand) {
        self.tx.send(cmd).await.expect("node task alive");
    }
}

/// The tokio driver around one [`OverlayNode`].
pub struct UdpOverlayNode {
    core: OverlayNode,
    socket: UdpSocket,
    clock: WallClock,
    peers: HashMap<NodeId, SocketAddr>,
    peer_of_addr: HashMap<SocketAddr, NodeId>,
    clients: HashMap<ClientId, SocketAddr>,
    timers: BinaryHeap<Reverse<(SimTime, u64)>>,
    rx: mpsc::Receiver<NodeCommand>,
    /// Instrumentation events observed (bounded ring would be production
    /// behaviour; tests drain it via the returned channel).
    events_tx: mpsc::UnboundedSender<(SimTime, NodeEvent)>,
}

impl UdpOverlayNode {
    /// Bind a socket and spawn the node's event loop.
    ///
    /// Returns the handle, an event stream, and the join handle.
    pub async fn spawn(
        config: NodeConfig,
        bind: SocketAddr,
        clock: WallClock,
    ) -> std::io::Result<(
        NodeHandle,
        mpsc::UnboundedReceiver<(SimTime, NodeEvent)>,
        tokio::task::JoinHandle<OverlayNode>,
    )> {
        let socket = UdpSocket::bind(bind).await?;
        let addr = socket.local_addr()?;
        let id = config.id;
        let (tx, rx) = mpsc::channel(256);
        let (events_tx, events_rx) = mpsc::unbounded_channel();
        let mut node = UdpOverlayNode {
            core: OverlayNode::new(config),
            socket,
            clock,
            peers: HashMap::new(),
            peer_of_addr: HashMap::new(),
            clients: HashMap::new(),
            timers: BinaryHeap::new(),
            rx,
            events_tx,
        };
        let join = tokio::spawn(async move {
            node.run().await;
            node.core
        });
        Ok((NodeHandle { tx, addr, id }, events_rx, join))
    }

    async fn run(&mut self) {
        let start_actions = self.core.start(self.clock.now());
        self.apply(start_actions).await;
        let mut buf = vec![0u8; 2048];
        loop {
            let next_timer = self.timers.peek().map(|Reverse((t, _))| *t);
            let sleep_until = next_timer
                .map(|t| self.clock.instant_at(t))
                .unwrap_or_else(|| {
                    self.clock.instant_at(self.clock.now() + SimDuration::from_secs(3600))
                });
            tokio::select! {
                biased;
                cmd = self.rx.recv() => {
                    match cmd {
                        None | Some(NodeCommand::Shutdown) => return,
                        Some(cmd) => self.handle_command(cmd).await,
                    }
                }
                recv = self.socket.recv_from(&mut buf) => {
                    if let Ok((len, src)) = recv {
                        if let Some(&from) = self.peer_of_addr.get(&src) {
                            let payload = Bytes::copy_from_slice(&buf[..len]);
                            let now = self.clock.now();
                            let actions = self.core.on_datagram(now, from, payload);
                            self.apply(actions).await;
                        }
                    }
                }
                _ = tokio::time::sleep_until(sleep_until) => {
                    self.fire_due_timers().await;
                }
            }
        }
    }

    async fn fire_due_timers(&mut self) {
        let now = self.clock.now();
        let mut due = Vec::new();
        while let Some(&Reverse((t, key))) = self.timers.peek() {
            if t <= now {
                self.timers.pop();
                due.push(key);
            } else {
                break;
            }
        }
        for key in due {
            let actions = self.core.on_timer(self.clock.now(), key);
            self.apply(actions).await;
        }
    }

    async fn handle_command(&mut self, cmd: NodeCommand) {
        let now = self.clock.now();
        match cmd {
            NodeCommand::RegisterProducer { stream, ladder } => {
                self.core.register_producer(stream, ladder);
            }
            NodeCommand::Ingest { frame, payload } => {
                let actions = self.core.ingest_frame(now, &frame, &payload);
                self.apply(actions).await;
            }
            NodeCommand::AddPeer { node, addr, rtt } => {
                self.peers.insert(node, addr);
                self.peer_of_addr.insert(addr, node);
                self.core.set_neighbor_rtt(node, rtt);
            }
            NodeCommand::ClientAttach {
                client,
                stream,
                downlink,
                path,
                addr,
            } => {
                self.clients.insert(client, addr);
                let mut actions = Vec::new();
                self.core.client_attach(
                    now,
                    client,
                    stream,
                    downlink,
                    path.as_deref(),
                    &mut actions,
                );
                self.apply(actions).await;
            }
            NodeCommand::ClientDetach { client } => {
                let mut actions = Vec::new();
                self.core.client_detach(now, client, &mut actions);
                self.clients.remove(&client);
                self.apply(actions).await;
            }
            NodeCommand::Shutdown => {}
        }
    }

    async fn apply(&mut self, actions: Vec<NodeAction>) {
        for action in actions {
            match action {
                NodeAction::Send { to, msg } => {
                    let dest = match to {
                        Subscriber::Node(n) => self.peers.get(&n).copied(),
                        Subscriber::Client(c) => self.clients.get(&c).copied(),
                    };
                    if let Some(addr) = dest {
                        // Best-effort, like the fast path demands.
                        let _ = self.socket.send_to(&msg.encode(), addr).await;
                    }
                }
                NodeAction::SetTimer { at, key } => {
                    self.timers.push(Reverse((at, key)));
                }
                NodeAction::Event(e) => {
                    let _ = self.events_tx.send((self.clock.now(), e));
                }
            }
        }
    }
}
